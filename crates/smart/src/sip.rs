//! System-in-package assembly: 2-D substrate placement and 3-D stacking.
//!
//! Macii: "Advanced packaging technologies, such as system-in-package (SiP)
//! and chip stacking (3D IC) with through-silicon vias, allow today
//! manufacturers to package all these functionalities more densely". This
//! module turns a [`SmartSystem`] into a package: shelf-packed 2-D substrate
//! or TSV-stacked 3-D, with area/wirelength/cost metrics.

use crate::components::{ComponentKind, SmartSystem};

/// Packaging style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackageStyle {
    /// Side-by-side dies on a substrate.
    Sip2d,
    /// Stacked dies with through-silicon vias (battery/harvester stay on the
    /// substrate).
    Stack3d,
}

/// A packaged system.
#[derive(Debug, Clone, PartialEq)]
pub struct PackageOutcome {
    /// Style used.
    pub style: PackageStyle,
    /// Substrate footprint, mm².
    pub footprint_mm2: f64,
    /// Estimated inter-component wiring length, mm.
    pub wirelength_mm: f64,
    /// Through-silicon vias (3-D only).
    pub tsvs: u32,
    /// Assembly + substrate cost, dollars.
    pub assembly_cost_usd: f64,
    /// Component placements: `(x, y, w, h)` per component, mm.
    pub placements: Vec<(f64, f64, f64, f64)>,
}

/// Packages a system.
///
/// 2-D: components are shelf-packed by decreasing height into a near-square
/// substrate; wirelength is the Manhattan center distance of every
/// connection. 3-D: stackable dies overlap (footprint = largest die +
/// substrate-only parts); each connection between stacked dies becomes TSVs.
pub fn package(system: &SmartSystem, style: PackageStyle) -> PackageOutcome {
    match style {
        PackageStyle::Sip2d => package_2d(system),
        PackageStyle::Stack3d => package_3d(system),
    }
}

fn dims(area_mm2: f64) -> (f64, f64) {
    let side = area_mm2.sqrt();
    (side, side)
}

fn package_2d(system: &SmartSystem) -> PackageOutcome {
    // Shelf packing by decreasing height.
    let mut order: Vec<usize> = (0..system.components.len()).collect();
    order.sort_by(|&a, &b| {
        system.components[b]
            .area_mm2
            .partial_cmp(&system.components[a].area_mm2)
            .expect("areas are finite")
    });
    let total: f64 = system.total_area_mm2();
    let target_width = (total * 1.15).sqrt();
    let gap = 0.3; // assembly keep-out, mm
    let mut placements = vec![(0.0, 0.0, 0.0, 0.0); system.components.len()];
    let mut x = 0.0f64;
    let mut y = 0.0f64;
    let mut shelf_h = 0.0f64;
    let mut max_w = 0.0f64;
    for &i in &order {
        let (w, h) = dims(system.components[i].area_mm2);
        if x > 0.0 && x + w > target_width {
            x = 0.0;
            y += shelf_h + gap;
            shelf_h = 0.0;
        }
        placements[i] = (x, y, w, h);
        x += w + gap;
        shelf_h = shelf_h.max(h);
        max_w = max_w.max(x);
    }
    let height = y + shelf_h;
    let footprint = max_w * height;
    let wirelength = wirelength_2d(system, &placements);
    PackageOutcome {
        style: PackageStyle::Sip2d,
        footprint_mm2: footprint,
        wirelength_mm: wirelength,
        tsvs: 0,
        assembly_cost_usd: 0.4 + 0.02 * footprint + 0.01 * system.components.len() as f64,
        placements,
    }
}

fn wirelength_2d(system: &SmartSystem, placements: &[(f64, f64, f64, f64)]) -> f64 {
    system
        .connections
        .iter()
        .map(|c| {
            let (ax, ay, aw, ah) = placements[c.a];
            let (bx, by, bw, bh) = placements[c.b];
            let d = (ax + aw / 2.0 - bx - bw / 2.0).abs() + (ay + ah / 2.0 - by - bh / 2.0).abs();
            d * c.pins as f64
        })
        .sum()
}

fn stackable(kind: ComponentKind) -> bool {
    !matches!(kind, ComponentKind::Battery | ComponentKind::Harvester | ComponentKind::Actuator)
}

fn package_3d(system: &SmartSystem) -> PackageOutcome {
    // Stack all stackable dies; substrate parts are shelf-packed beside the
    // stack.
    let stacked: Vec<usize> = (0..system.components.len())
        .filter(|&i| stackable(system.components[i].kind))
        .collect();
    let substrate: Vec<usize> = (0..system.components.len())
        .filter(|&i| !stackable(system.components[i].kind))
        .collect();
    let stack_area = stacked
        .iter()
        .map(|&i| system.components[i].area_mm2)
        .fold(0.0f64, f64::max);
    let substrate_area: f64 = substrate.iter().map(|&i| system.components[i].area_mm2).sum();
    let footprint = (stack_area + substrate_area) * 1.1;
    // Placements: stack at origin (overlapping), substrate parts beside it.
    let mut placements = vec![(0.0, 0.0, 0.0, 0.0); system.components.len()];
    for &i in &stacked {
        let (w, h) = dims(system.components[i].area_mm2);
        placements[i] = (0.0, 0.0, w, h);
    }
    let mut x = stack_area.sqrt() + 0.5;
    for &i in &substrate {
        let (w, h) = dims(system.components[i].area_mm2);
        placements[i] = (x, 0.0, w, h);
        x += w + 0.3;
    }
    // TSVs: pins on connections where both endpoints are stacked.
    let tsvs: u32 = system
        .connections
        .iter()
        .filter(|c| stacked.contains(&c.a) && stacked.contains(&c.b))
        .map(|c| c.pins)
        .sum();
    // Vertical connections are ~zero length; others as 2-D.
    let wirelength: f64 = system
        .connections
        .iter()
        .filter(|c| !(stacked.contains(&c.a) && stacked.contains(&c.b)))
        .map(|c| {
            let (ax, ay, aw, ah) = placements[c.a];
            let (bx, by, bw, bh) = placements[c.b];
            ((ax + aw / 2.0 - bx - bw / 2.0).abs() + (ay + ah / 2.0 - by - bh / 2.0).abs())
                * c.pins as f64
        })
        .sum();
    PackageOutcome {
        style: PackageStyle::Stack3d,
        footprint_mm2: footprint,
        wirelength_mm: wirelength,
        tsvs,
        // TSV processing, thinning, and die-stack yield carry a fixed premium
        // plus a per-stacked-die handling cost.
        assembly_cost_usd: 2.0 + 0.02 * footprint + 0.002 * tsvs as f64
            + 0.15 * stacked.len() as f64,
        placements,
    }
}

/// Checks that no two placed components overlap (stacked dies excepted).
pub fn placement_legal(outcome: &PackageOutcome) -> bool {
    if outcome.style == PackageStyle::Stack3d {
        return true; // overlap is the point
    }
    let p = &outcome.placements;
    for i in 0..p.len() {
        for j in i + 1..p.len() {
            let (ax, ay, aw, ah) = p[i];
            let (bx, by, bw, bh) = p[j];
            let sep = ax + aw <= bx || bx + bw <= ax || ay + ah <= by || by + bh <= ay;
            if !sep {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_tech::Node;

    fn system() -> SmartSystem {
        SmartSystem::reference_iot_node(Node::N65)
    }

    #[test]
    fn sip_packing_is_legal_and_tight() {
        let s = system();
        let out = package(&s, PackageStyle::Sip2d);
        assert!(placement_legal(&out), "no overlaps allowed on the substrate");
        assert!(out.footprint_mm2 >= s.total_area_mm2(), "cannot beat the area sum");
        assert!(out.footprint_mm2 < s.total_area_mm2() * 2.5, "packing should be tight-ish");
        assert_eq!(out.tsvs, 0);
    }

    #[test]
    fn stacking_shrinks_footprint_and_wirelength() {
        let s = system();
        let flat = package(&s, PackageStyle::Sip2d);
        let stacked = package(&s, PackageStyle::Stack3d);
        assert!(stacked.footprint_mm2 < flat.footprint_mm2);
        assert!(stacked.wirelength_mm < flat.wirelength_mm);
        assert!(stacked.tsvs > 0, "stacked dies communicate through TSVs");
        assert!(stacked.assembly_cost_usd > flat.assembly_cost_usd, "stacking costs more");
    }

    #[test]
    fn battery_never_stacked() {
        let s = system();
        let out = package(&s, PackageStyle::Stack3d);
        // Battery placement must not overlap the stack at origin.
        let bat = s
            .components
            .iter()
            .position(|c| c.kind == ComponentKind::Battery)
            .expect("reference node has a battery");
        let (x, ..) = out.placements[bat];
        assert!(x > 0.0, "battery sits on the substrate, not in the stack");
    }
}
