//! IoT device energy autonomy and technology-node selection.
//!
//! Sawicki (claim C16): IoT devices "have in common a few elements: a radio
//! to communicate, a processor to manage data, and, often, a sensor", they
//! are low-power/low-cost, and "this wave does not require the next
//! technology node to implement" — established-node variants hit the right
//! power/cost/performance point. [`battery_life_days`] simulates the energy
//! budget; [`node_selection_sweep`] produces the cost/power/perf points.

use crate::components::{mcu_cost_usd, SmartSystem};
use eda_tech::Node;

/// A duty-cycled workload profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycle {
    /// Fraction of time sensing/computing (MCU + sensor active).
    pub active: f64,
    /// Fraction of time transmitting (radio + MCU active).
    pub transmit: f64,
}

impl DutyCycle {
    /// Validates and creates a duty cycle.
    ///
    /// # Panics
    ///
    /// Panics if fractions are negative or sum above 1.
    pub fn new(active: f64, transmit: f64) -> DutyCycle {
        assert!(active >= 0.0 && transmit >= 0.0, "fractions must be non-negative");
        assert!(active + transmit <= 1.0, "duty fractions exceed 100%");
        DutyCycle { active, transmit }
    }

    /// Sleeping fraction.
    pub fn sleep(&self) -> f64 {
        1.0 - self.active - self.transmit
    }
}

/// Average power draw of a system under a duty cycle, in mW.
pub fn average_power_mw(system: &SmartSystem, duty: &DutyCycle) -> f64 {
    use crate::components::ComponentKind as K;
    let mut avg = 0.0;
    for c in &system.components {
        let sleep_mw = c.sleep_uw * 1e-3;
        let share = match c.kind {
            K::Radio => duty.transmit * c.active_mw + (1.0 - duty.transmit) * sleep_mw,
            K::Sensor | K::Mcu => {
                (duty.active + duty.transmit) * c.active_mw
                    + duty.sleep() * sleep_mw
            }
            K::Pmu => c.active_mw * 0.5 + sleep_mw, // always partially on
            _ => 0.0,
        };
        avg += share;
    }
    avg
}

/// Battery life in days for a battery capacity and harvesting income.
///
/// Returns `f64::INFINITY` when harvesting covers the average draw — the
/// energy-autonomous regime Macii calls "usually energy-autonomous".
pub fn battery_life_days(
    system: &SmartSystem,
    duty: &DutyCycle,
    battery_mwh: f64,
    harvest_mw: f64,
) -> f64 {
    assert!(battery_mwh > 0.0, "battery capacity must be positive");
    let net = average_power_mw(system, duty) - harvest_mw;
    if net <= 0.0 {
        f64::INFINITY
    } else {
        battery_mwh / net / 24.0
    }
}

/// One point of the node-selection sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePoint {
    /// Candidate MCU node.
    pub node: Node,
    /// MCU unit cost, dollars.
    pub mcu_cost_usd: f64,
    /// Device battery life, days.
    pub battery_life_days: f64,
    /// MCU performance proxy (1/gate delay, GHz-equivalent).
    pub performance: f64,
    /// Composite IoT figure of merit: battery life per dollar.
    pub merit: f64,
}

/// Sweeps the MCU technology node for the reference IoT device.
pub fn node_selection_sweep(duty: &DutyCycle, battery_mwh: f64, harvest_mw: f64) -> Vec<NodePoint> {
    Node::ALL
        .iter()
        .map(|&node| {
            let system = SmartSystem::reference_iot_node(node);
            let life = battery_life_days(&system, duty, battery_mwh, harvest_mw);
            let cost = mcu_cost_usd(node);
            let perf = 1000.0 / node.spec().gate_delay_ps;
            NodePoint {
                node,
                mcu_cost_usd: cost,
                battery_life_days: life,
                performance: perf,
                merit: if life.is_finite() { life / cost } else { 1e6 / cost },
            }
        })
        .collect()
}

/// The node with the best IoT figure of merit.
pub fn best_iot_node(points: &[NodePoint]) -> Node {
    points
        .iter()
        .max_by(|a, b| a.merit.partial_cmp(&b.merit).expect("merit is finite"))
        .expect("sweep is non-empty")
        .node
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duty() -> DutyCycle {
        DutyCycle::new(0.01, 0.002)
    }

    #[test]
    fn sleep_dominates_duty_cycle() {
        let d = duty();
        assert!(d.sleep() > 0.98);
    }

    #[test]
    fn lower_duty_cycle_longer_life() {
        let s = SmartSystem::reference_iot_node(Node::N65);
        let busy = battery_life_days(&s, &DutyCycle::new(0.2, 0.05), 800.0, 0.0);
        let idle = battery_life_days(&s, &duty(), 800.0, 0.0);
        assert!(idle > 3.0 * busy, "duty cycling is the battery-life lever");
    }

    #[test]
    fn harvesting_can_reach_autonomy() {
        let s = SmartSystem::reference_iot_node(Node::N65);
        let p = average_power_mw(&s, &duty());
        let life = battery_life_days(&s, &duty(), 800.0, p * 1.1);
        assert!(life.is_infinite(), "harvest above draw = energy autonomy");
    }

    #[test]
    fn panel_claim_iot_does_not_need_the_newest_node() {
        let points = node_selection_sweep(&duty(), 800.0, 0.0);
        let best = best_iot_node(&points);
        assert!(
            best.is_established(),
            "best IoT merit should sit at an established node, got {best}"
        );
        // And yet the newest node wins raw performance.
        let perf_best = points
            .iter()
            .max_by(|a, b| a.performance.partial_cmp(&b.performance).unwrap())
            .unwrap();
        assert!(!perf_best.node.is_established());
    }

    #[test]
    fn battery_life_is_finite_and_positive_without_harvest() {
        let points = node_selection_sweep(&duty(), 800.0, 0.0);
        for p in points {
            assert!(p.battery_life_days > 0.0 && p.battery_life_days.is_finite());
            assert!(p.mcu_cost_usd > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "exceed 100%")]
    fn overfull_duty_panics() {
        let _ = DutyCycle::new(0.8, 0.4);
    }
}
