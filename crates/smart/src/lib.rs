//! Smart-system and IoT co-design for the `eda` workspace.
//!
//! Implements the panel's "new era for EDA" (Macii) and "next opportunity"
//! (Sawicki): heterogeneous smart-system modeling ([`components`]), SiP/3-D
//! packaging ([`sip`]), holistic co-design versus sequential ad-hoc
//! integration ([`codesign`], claim C13), and IoT energy autonomy with
//! technology-node selection ([`iot`], claim C16).
//!
//! # Examples
//!
//! ```
//! use eda_smart::{battery_life_days, DutyCycle, SmartSystem};
//! use eda_tech::Node;
//!
//! let device = SmartSystem::reference_iot_node(Node::N65);
//! let life = battery_life_days(&device, &DutyCycle::new(0.01, 0.002), 800.0, 0.0);
//! assert!(life > 30.0, "a duty-cycled node lasts months");
//! ```

pub mod codesign;
pub mod components;
pub mod iot;
pub mod sip;

pub use codesign::{
    candidate_space, codesign_flow, evaluate, sequential_flow, DesignMetrics, DesignPoint,
    FlowOutcome,
};
pub use components::{Component, ComponentKind, Connection, SmartSystem, Technology};
pub use iot::{
    average_power_mw, battery_life_days, best_iot_node, node_selection_sweep, DutyCycle, NodePoint,
};
pub use sip::{package, placement_legal, PackageOutcome, PackageStyle};
