//! Holistic smart-system co-design versus sequential ad-hoc integration.
//!
//! Macii (claim C13): *"Current smart system design approaches use separate
//! design tools and ad-hoc methods... This solution is clearly sub-optimal
//! and cannot respond to challenges such as time-to-market"* — the fix is "a
//! structured design approach that explicitly accounts for integration as a
//! specific constraint".
//!
//! Both flows search the same design space (MCU node × package style × duty
//! cycle); the sequential flow optimizes each knob in isolation with
//! integration discovered late (rework spins), while the co-design flow
//! scores complete configurations jointly.

use crate::components::SmartSystem;
use crate::iot::{average_power_mw, battery_life_days, DutyCycle};
use crate::sip::{package, PackageStyle};
use eda_tech::Node;

/// One complete design configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// MCU technology node.
    pub mcu_node: Node,
    /// Package style.
    pub package: PackageStyle,
    /// Workload duty cycle.
    pub duty: DutyCycle,
}

/// Evaluated metrics of a configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignMetrics {
    /// Unit cost: BOM + assembly, dollars.
    pub unit_cost_usd: f64,
    /// Package footprint, mm².
    pub footprint_mm2: f64,
    /// Battery life, days.
    pub battery_life_days: f64,
    /// Average power, mW.
    pub average_power_mw: f64,
    /// Development time, weeks (including integration rework).
    pub time_to_market_weeks: f64,
}

impl DesignMetrics {
    /// Scalar score (lower is better): weighted cost + size + TTM − life.
    pub fn score(&self) -> f64 {
        let life = self.battery_life_days.min(3650.0);
        self.unit_cost_usd * 10.0 + self.footprint_mm2 * 0.05
            + self.time_to_market_weeks * 0.5
            - life * 0.02
    }
}

/// The candidate space both flows explore.
pub fn candidate_space() -> (Vec<Node>, Vec<PackageStyle>, Vec<DutyCycle>) {
    (
        vec![Node::N180, Node::N130, Node::N90, Node::N65, Node::N45, Node::N28],
        vec![PackageStyle::Sip2d, PackageStyle::Stack3d],
        vec![DutyCycle::new(0.02, 0.005), DutyCycle::new(0.05, 0.01), DutyCycle::new(0.01, 0.002)],
    )
}

/// Evaluates a design point, with `rework_spins` extra integration spins
/// charged to time-to-market.
pub fn evaluate(point: &DesignPoint, rework_spins: u32) -> DesignMetrics {
    let system: SmartSystem = SmartSystem::reference_iot_node(point.mcu_node);
    let pkg = package(&system, point.package);
    let battery_mwh = 800.0;
    let life = battery_life_days(&system, &point.duty, battery_mwh, 0.0);
    let base_weeks = 20.0
        + 2.0 * system.technology_count() as f64
        + if point.package == PackageStyle::Stack3d { 6.0 } else { 0.0 };
    DesignMetrics {
        unit_cost_usd: system.bom_cost_usd() + pkg.assembly_cost_usd,
        footprint_mm2: pkg.footprint_mm2,
        battery_life_days: life,
        average_power_mw: average_power_mw(&system, &point.duty),
        time_to_market_weeks: base_weeks + 8.0 * rework_spins as f64,
    }
}

/// Result of running one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOutcome {
    /// The chosen configuration.
    pub point: DesignPoint,
    /// Its metrics.
    pub metrics: DesignMetrics,
    /// Configurations evaluated.
    pub evaluations: usize,
}

/// The sequential ad-hoc flow: each knob picked by its own specialist metric,
/// integration problems discovered afterwards as rework spins.
pub fn sequential_flow() -> FlowOutcome {
    let (nodes, packages, duties) = candidate_space();
    let mut evals = 0;
    // Digital team: picks the node with the lowest MCU active power.
    let mcu_node = nodes
        .iter()
        .copied()
        .min_by(|&a, &b| {
            evals += 2;
            crate::components::mcu_active_mw(a)
                .partial_cmp(&crate::components::mcu_active_mw(b))
                .expect("power is finite")
        })
        .expect("space non-empty");
    // Package team: picks the smallest footprint (for the node they are
    // handed late, they assumed a mid-range one).
    let package_style = packages
        .iter()
        .copied()
        .min_by(|&a, &b| {
            evals += 2;
            let sys = SmartSystem::reference_iot_node(Node::N90);
            package(&sys, a)
                .footprint_mm2
                .partial_cmp(&package(&sys, b).footprint_mm2)
                .expect("areas are finite")
        })
        .expect("space non-empty");
    // Firmware team: picks the most aggressive (most functional) duty cycle.
    let duty = duties
        .iter()
        .copied()
        .max_by(|a, b| {
            evals += 2;
            (a.active + a.transmit).partial_cmp(&(b.active + b.transmit)).expect("finite")
        })
        .expect("space non-empty");
    // Integration: the combination was never evaluated together; the panel's
    // "ad-hoc methods for transferring the non-digital domain" surface as
    // rework spins (advanced node + 3-D stack + hot firmware → 2 spins).
    let point = DesignPoint { mcu_node, package: package_style, duty };
    let spins = 2;
    FlowOutcome { point, metrics: evaluate(&point, spins), evaluations: evals }
}

/// The holistic co-design flow: full joint sweep, integration constraints in
/// the loop, no rework.
pub fn codesign_flow() -> FlowOutcome {
    let (nodes, packages, duties) = candidate_space();
    let mut best: Option<FlowOutcome> = None;
    let mut evals = 0;
    for &mcu_node in &nodes {
        for &pkg in &packages {
            for &duty in &duties {
                let point = DesignPoint { mcu_node, package: pkg, duty };
                let metrics = evaluate(&point, 0);
                evals += 1;
                let cand = FlowOutcome { point, metrics, evaluations: 0 };
                if best
                    .as_ref()
                    .is_none_or(|b| metrics.score() < b.metrics.score())
                {
                    best = Some(cand);
                }
            }
        }
    }
    let mut out = best.expect("space non-empty");
    out.evaluations = evals;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codesign_beats_sequential() {
        let seq = sequential_flow();
        let co = codesign_flow();
        assert!(
            co.metrics.score() < seq.metrics.score(),
            "co-design score {:.2} must beat sequential {:.2}",
            co.metrics.score(),
            seq.metrics.score()
        );
        assert!(
            co.metrics.time_to_market_weeks < seq.metrics.time_to_market_weeks,
            "no rework spins means faster TTM"
        );
    }

    #[test]
    fn codesign_explores_the_whole_space() {
        let co = codesign_flow();
        assert_eq!(co.evaluations, 6 * 2 * 3);
    }

    #[test]
    fn rework_spins_cost_time_only() {
        let p = DesignPoint {
            mcu_node: Node::N90,
            package: PackageStyle::Sip2d,
            duty: DutyCycle::new(0.02, 0.005),
        };
        let clean = evaluate(&p, 0);
        let reworked = evaluate(&p, 2);
        assert_eq!(clean.unit_cost_usd, reworked.unit_cost_usd);
        assert!(reworked.time_to_market_weeks - clean.time_to_market_weeks == 16.0);
    }

    #[test]
    fn metrics_are_physical() {
        let co = codesign_flow();
        assert!(co.metrics.unit_cost_usd > 0.0);
        assert!(co.metrics.footprint_mm2 > 0.0);
        assert!(co.metrics.battery_life_days > 0.0);
    }
}
