//! Heterogeneous smart-system modeling.
//!
//! Macii: smart systems are "intelligent, miniaturized devices incorporating
//! functionalities like sensing, actuation, and control... produced with very
//! different technologies and materials". A [`SmartSystem`] is a bag of such
//! [`Component`]s plus their interconnect — the object both the packaging and
//! the co-design engines operate on.

use eda_tech::Node;

/// What a component does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Application-specific sensor (MEMS, optical, chemical...).
    Sensor,
    /// Actuator / power driver.
    Actuator,
    /// Digital control + baseband computation.
    Mcu,
    /// Wireless connectivity.
    Radio,
    /// Power management (regulation, charging).
    Pmu,
    /// Energy storage.
    Battery,
    /// Energy harvester (solar, vibration, thermal).
    Harvester,
    /// Non-volatile / working memory.
    Memory,
}

/// The implementation technology of a component — Macii's point is exactly
/// that these do not share a process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Technology {
    /// Digital CMOS at a given node.
    Cmos(Node),
    /// MEMS micromachining.
    Mems,
    /// RF/analog specialty process.
    RfAnalog,
    /// Discrete/passive (battery, antenna, harvester).
    Discrete,
}

/// One component of a smart system.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Instance name.
    pub name: String,
    /// Role.
    pub kind: ComponentKind,
    /// Implementation technology.
    pub technology: Technology,
    /// Footprint in mm².
    pub area_mm2: f64,
    /// Active power in mW.
    pub active_mw: f64,
    /// Sleep power in µW.
    pub sleep_uw: f64,
    /// Unit cost in dollars.
    pub unit_cost_usd: f64,
}

/// A connection between two components (by index) with a pin count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    /// First endpoint (component index).
    pub a: usize,
    /// Second endpoint (component index).
    pub b: usize,
    /// Signal pins on the link.
    pub pins: u32,
}

/// A heterogeneous system: components plus interconnect.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SmartSystem {
    /// The components.
    pub components: Vec<Component>,
    /// Inter-component connections.
    pub connections: Vec<Connection>,
}

impl SmartSystem {
    /// Creates an empty system.
    pub fn new() -> SmartSystem {
        SmartSystem::default()
    }

    /// Adds a component, returning its index.
    pub fn add(&mut self, component: Component) -> usize {
        self.components.push(component);
        self.components.len() - 1
    }

    /// Connects two components.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `a == b`.
    pub fn connect(&mut self, a: usize, b: usize, pins: u32) {
        assert!(a < self.components.len() && b < self.components.len(), "index out of range");
        assert_ne!(a, b, "cannot connect a component to itself");
        self.connections.push(Connection { a, b, pins });
    }

    /// Total silicon/component area, mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total bill-of-materials cost, dollars.
    pub fn bom_cost_usd(&self) -> f64 {
        self.components.iter().map(|c| c.unit_cost_usd).sum()
    }

    /// Number of distinct technologies present — the integration-challenge
    /// metric of Macii's statement.
    pub fn technology_count(&self) -> usize {
        let mut kinds: Vec<&'static str> = self
            .components
            .iter()
            .map(|c| match c.technology {
                Technology::Cmos(_) => "cmos",
                Technology::Mems => "mems",
                Technology::RfAnalog => "rf",
                Technology::Discrete => "discrete",
            })
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds.len()
    }

    /// A reference IoT sensor node: the panel's "Fitbit in my pocket" class —
    /// sensor + MCU + radio + PMU + battery + harvester.
    pub fn reference_iot_node(mcu_node: Node) -> SmartSystem {
        let mut s = SmartSystem::new();
        let sensor = s.add(Component {
            name: "accel".into(),
            kind: ComponentKind::Sensor,
            technology: Technology::Mems,
            area_mm2: 4.0,
            active_mw: 0.8,
            sleep_uw: 1.5,
            unit_cost_usd: 0.9,
        });
        let mcu = s.add(Component {
            name: "mcu".into(),
            kind: ComponentKind::Mcu,
            technology: Technology::Cmos(mcu_node),
            area_mm2: mcu_area_mm2(mcu_node),
            active_mw: mcu_active_mw(mcu_node),
            sleep_uw: mcu_sleep_uw(mcu_node),
            unit_cost_usd: mcu_cost_usd(mcu_node),
        });
        let radio = s.add(Component {
            name: "ble".into(),
            kind: ComponentKind::Radio,
            technology: Technology::RfAnalog,
            area_mm2: 6.0,
            active_mw: 12.0,
            sleep_uw: 2.0,
            unit_cost_usd: 1.4,
        });
        let pmu = s.add(Component {
            name: "pmu".into(),
            kind: ComponentKind::Pmu,
            technology: Technology::Cmos(Node::N180),
            area_mm2: 3.0,
            active_mw: 0.3,
            sleep_uw: 0.8,
            unit_cost_usd: 0.5,
        });
        let battery = s.add(Component {
            name: "coin_cell".into(),
            kind: ComponentKind::Battery,
            technology: Technology::Discrete,
            area_mm2: 120.0,
            active_mw: 0.0,
            sleep_uw: 0.0,
            unit_cost_usd: 0.4,
        });
        let harvester = s.add(Component {
            name: "solar".into(),
            kind: ComponentKind::Harvester,
            technology: Technology::Discrete,
            area_mm2: 50.0,
            active_mw: 0.0,
            sleep_uw: 0.0,
            unit_cost_usd: 0.7,
        });
        s.connect(sensor, mcu, 4);
        s.connect(mcu, radio, 6);
        s.connect(pmu, mcu, 2);
        s.connect(pmu, radio, 2);
        s.connect(pmu, sensor, 2);
        s.connect(battery, pmu, 2);
        s.connect(harvester, pmu, 2);
        s
    }
}

/// MCU die area at a node for a fixed ~500k-gate IoT controller.
pub fn mcu_area_mm2(node: Node) -> f64 {
    let gates = 0.5e6;
    gates * 4.0 / (node.spec().density_mtr_per_mm2 * 1e6)
}

/// MCU active power at a node (fixed workload at fixed frequency).
pub fn mcu_active_mw(node: Node) -> f64 {
    // Energy/op ∝ C·V²; 20 MHz × 0.5 M gates × activity 0.1.
    let e_fj = node.switching_energy_fj();
    0.5e6 * 0.1 * e_fj * 1e-15 * 20e6 * 1e3
}

/// MCU sleep power at a node (leakage-dominated).
pub fn mcu_sleep_uw(node: Node) -> f64 {
    0.5e6 / 4.0 * node.spec().leakage_nw_per_gate * 1e-3 * 0.01 // power-gated to 1%
}

/// MCU unit cost at a node: die cost plus node-dependent NRE amortization.
pub fn mcu_cost_usd(node: Node) -> f64 {
    let die = eda_tech::CostModel::new(node).die_cost(mcu_area_mm2(node).max(0.3), 4).usd;
    // NRE (mask set amortized over 1M units).
    let nre = eda_tech::CostModel::new(node).mask_set_cost().usd / 1_000_000.0;
    // Small dies at advanced nodes are pad-limited: floor the effective area.
    die + nre + 0.15
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_node_has_heterogeneous_technologies() {
        let s = SmartSystem::reference_iot_node(Node::N65);
        assert!(s.technology_count() >= 4, "sensor+digital+rf+discrete");
        assert_eq!(s.components.len(), 6);
        assert!(!s.connections.is_empty());
        assert!(s.total_area_mm2() > 100.0);
        assert!(s.bom_cost_usd() > 1.0);
    }

    #[test]
    fn mcu_scales_down_with_node() {
        assert!(mcu_area_mm2(Node::N28) < mcu_area_mm2(Node::N180) / 10.0);
        assert!(mcu_active_mw(Node::N28) < mcu_active_mw(Node::N180));
    }

    #[test]
    fn advanced_node_mcu_not_automatically_cheaper() {
        // NRE amortization + emerging-node wafer cost means the IoT MCU does
        // not get cheaper forever — Sawicki's "does not require the next
        // technology node" point.
        let costs: Vec<f64> = Node::ALL.iter().map(|&n| mcu_cost_usd(n)).collect();
        let cheapest = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let at_5nm = *costs.last().unwrap();
        assert!(at_5nm > cheapest, "5nm must not be the cheapest IoT MCU");
    }

    #[test]
    #[should_panic(expected = "cannot connect")]
    fn self_connection_panics() {
        let mut s = SmartSystem::reference_iot_node(Node::N65);
        s.connect(0, 0, 1);
    }
}
