//! Power domains and UPF-style power intent.
//!
//! Two panel threads meet here. Domic: *"Literally, scores of
//! voltage/supply/shutdown domains even at 180 nanometers are common"* and
//! power intent must be "always correctly implemented and consistently
//! verified throughout the design flow". Rossi recalls the UPF/CPF dualism
//! and its multi-vendor ambiguity — the fix is a checkable, single
//! representation, which [`PowerIntent`] provides: domain definitions,
//! instance assignment, and the isolation/level-shifter rules a crossing
//! must satisfy.

use eda_netlist::{CellFunction, InstId, NetDriver, Netlist, NetlistError};
use std::collections::HashMap;

/// One power domain.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDomain {
    /// Domain name.
    pub name: String,
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Whether the domain can be shut off (power-gated).
    pub switchable: bool,
}

/// The design's power intent: domains plus an instance→domain assignment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerIntent {
    /// Domains, indexed by position.
    pub domains: Vec<PowerDomain>,
    /// Instance assignment: `assignment[instance_index] = domain index`.
    pub assignment: HashMap<usize, usize>,
    /// Default domain for unassigned instances.
    pub default_domain: usize,
}

/// A power-intent violation at a domain crossing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentViolation {
    /// A net crosses between different-voltage domains without a level
    /// shifter: `(net name, from domain, to domain)`.
    MissingLevelShifter(String, String, String),
    /// A net leaves a switchable domain without an isolation cell.
    MissingIsolation(String, String, String),
}

impl std::fmt::Display for IntentViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntentViolation::MissingLevelShifter(n, a, b) => {
                write!(f, "net `{n}` crosses {a} -> {b} without a level shifter")
            }
            IntentViolation::MissingIsolation(n, a, b) => {
                write!(f, "net `{n}` leaves switchable {a} toward {b} without isolation")
            }
        }
    }
}

impl PowerIntent {
    /// Builds an intent with one always-on default domain at `vdd_v`.
    pub fn single_domain(vdd_v: f64) -> PowerIntent {
        PowerIntent {
            domains: vec![PowerDomain { name: "AON".into(), vdd_v, switchable: false }],
            assignment: HashMap::new(),
            default_domain: 0,
        }
    }

    /// Adds a domain, returning its index.
    pub fn add_domain(&mut self, domain: PowerDomain) -> usize {
        self.domains.push(domain);
        self.domains.len() - 1
    }

    /// Assigns an instance to a domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain index is out of range.
    pub fn assign(&mut self, inst: InstId, domain: usize) {
        assert!(domain < self.domains.len(), "unknown domain index {domain}");
        self.assignment.insert(inst.index(), domain);
    }

    /// Assigns every instance of a named hierarchy block to a domain.
    pub fn assign_block(&mut self, netlist: &Netlist, block: &str, domain: usize) {
        let Some(bidx) = netlist.block_names().iter().position(|b| b == block) else {
            return;
        };
        for (id, inst) in netlist.instances() {
            if inst.block() == Some(bidx as u32) {
                self.assign(id, domain);
            }
        }
    }

    /// Domain of an instance.
    pub fn domain_of(&self, inst: InstId) -> usize {
        self.assignment.get(&inst.index()).copied().unwrap_or(self.default_domain)
    }

    /// Number of domains — the figure Domic quotes in "scores of domains".
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
}

/// Checks a netlist against an intent, reporting every unprotected crossing.
///
/// A crossing is protected if the net's *driver* path into the sink domain
/// already passes through a [`CellFunction::LevelShifter`] /
/// [`CellFunction::Isolation`] cell as required.
pub fn check(netlist: &Netlist, intent: &PowerIntent) -> Vec<IntentViolation> {
    let lib = netlist.library();
    let mut violations = Vec::new();
    for (_, net) in netlist.nets() {
        let Some(NetDriver::Instance(driver)) = net.driver() else { continue };
        let d_dom = intent.domain_of(driver);
        let d_func = lib.cell(netlist.instance(driver).cell()).function;
        for &(sink, _) in net.sinks() {
            let s_dom = intent.domain_of(sink);
            if s_dom == d_dom {
                continue;
            }
            let from = &intent.domains[d_dom];
            let to = &intent.domains[s_dom];
            // A protection cell at either end of the crossing marks the
            // protected boundary: drivers that are LS/ISO cells protect their
            // output, and a crossing terminating at an LS/ISO sink is the
            // boundary hop into that cell.
            let s_func = lib.cell(netlist.instance(sink).cell()).function;
            let sink_is_protector =
                matches!(s_func, CellFunction::LevelShifter | CellFunction::Isolation);
            let protected_ls = d_func == CellFunction::LevelShifter || sink_is_protector;
            let protected_iso = d_func == CellFunction::Isolation || sink_is_protector;
            if (from.vdd_v - to.vdd_v).abs() > 1e-9 && !protected_ls {
                violations.push(IntentViolation::MissingLevelShifter(
                    net.name().to_string(),
                    from.name.clone(),
                    to.name.clone(),
                ));
            }
            if from.switchable && !protected_iso && !protected_ls {
                violations.push(IntentViolation::MissingIsolation(
                    net.name().to_string(),
                    from.name.clone(),
                    to.name.clone(),
                ));
            }
        }
    }
    violations
}

/// Result of [`implement`].
#[derive(Debug, Clone)]
pub struct ImplementOutcome {
    /// Netlist with protection cells inserted.
    pub netlist: Netlist,
    /// Updated intent covering the new cells.
    pub intent: PowerIntent,
    /// Level shifters inserted.
    pub level_shifters: usize,
    /// Isolation cells inserted.
    pub isolation_cells: usize,
}

/// Inserts the missing protection cells so that [`check`] passes.
///
/// Isolation enables are a fresh `iso_en` primary input (active high = pass).
///
/// # Errors
///
/// Fails if the library lacks the required protection cells.
pub fn implement(netlist: &Netlist, intent: &PowerIntent) -> Result<ImplementOutcome, NetlistError> {
    let lib = netlist.library();
    let ls_cell = lib
        .find_function(CellFunction::LevelShifter)
        .ok_or_else(|| NetlistError::UnknownName("LevelShifter".into()))?;
    let iso_cell = lib
        .find_function(CellFunction::Isolation)
        .ok_or_else(|| NetlistError::UnknownName("Isolation".into()))?;
    let mut out = netlist.clone();
    let mut new_intent = intent.clone();
    let mut ls_count = 0usize;
    let mut iso_count = 0usize;
    let mut iso_en: Option<eda_netlist::NetId> = None;

    // Snapshot crossings first (the netlist mutates as we insert).
    struct Crossing {
        sink: InstId,
        pin: usize,
        needs_ls: bool,
        needs_iso: bool,
        sink_domain: usize,
    }
    let mut crossings = Vec::new();
    for (_, net) in netlist.nets() {
        let Some(NetDriver::Instance(driver)) = net.driver() else { continue };
        let d_dom = intent.domain_of(driver);
        let d_func = lib.cell(netlist.instance(driver).cell()).function;
        if matches!(d_func, CellFunction::LevelShifter | CellFunction::Isolation) {
            continue;
        }
        for &(sink, pin) in net.sinks() {
            let s_dom = intent.domain_of(sink);
            if s_dom == d_dom {
                continue;
            }
            let from = &intent.domains[d_dom];
            let to = &intent.domains[s_dom];
            let needs_ls = (from.vdd_v - to.vdd_v).abs() > 1e-9;
            let needs_iso = from.switchable;
            if needs_ls || needs_iso {
                crossings.push(Crossing { sink, pin, needs_ls, needs_iso, sink_domain: s_dom });
            }
        }
    }
    for c in crossings {
        let src = out.instance(c.sink).inputs()[c.pin];
        let mut cur = src;
        if c.needs_iso {
            let en = *iso_en.get_or_insert_with(|| out.add_input("iso_en"));
            cur = out.add_gate(format!("iso_{iso_count}"), iso_cell, &[cur, en])?;
            let inst = InstId::from_index(out.num_instances() - 1);
            new_intent.assign(inst, c.sink_domain);
            iso_count += 1;
        }
        if c.needs_ls {
            cur = out.add_gate(format!("ls_{ls_count}"), ls_cell, &[cur])?;
            let inst = InstId::from_index(out.num_instances() - 1);
            new_intent.assign(inst, c.sink_domain);
            ls_count += 1;
        }
        out.replace_input(c.sink, c.pin, cur);
    }
    Ok(ImplementOutcome {
        netlist: out,
        intent: new_intent,
        level_shifters: ls_count,
        isolation_cells: iso_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    fn two_domain_setup() -> (Netlist, PowerIntent) {
        let n = generate::hierarchical_design(2, 60, 4).unwrap();
        let mut intent = PowerIntent::single_domain(0.9);
        // blk0 exports feed blk1, so putting blk0 in a switchable low-voltage
        // domain creates crossings that need both isolation and shifting.
        let low = intent.add_domain(PowerDomain { name: "LOW".into(), vdd_v: 0.6, switchable: true });
        intent.assign_block(&n, "blk0", low);
        (n, intent)
    }

    #[test]
    fn crossings_detected() {
        let (n, intent) = two_domain_setup();
        let v = check(&n, &intent);
        assert!(!v.is_empty(), "inter-block nets must violate");
        assert!(v.iter().any(|x| matches!(x, IntentViolation::MissingLevelShifter(..))));
        assert!(v.iter().any(|x| matches!(x, IntentViolation::MissingIsolation(..))));
    }

    #[test]
    fn implement_fixes_all_violations() {
        let (n, intent) = two_domain_setup();
        let fixed = implement(&n, &intent).unwrap();
        fixed.netlist.validate().unwrap();
        assert!(fixed.level_shifters > 0);
        assert!(fixed.isolation_cells > 0);
        let v = check(&fixed.netlist, &fixed.intent);
        assert!(v.is_empty(), "still violating: {v:?}");
    }

    #[test]
    fn implement_preserves_function_with_power_on() {
        let (n, intent) = two_domain_setup();
        let fixed = implement(&n, &intent).unwrap();
        let k = n.primary_inputs().len();
        let pats: Vec<u64> =
            (0..k).map(|i| 0x243F_6A88_85A3_08D3u64.rotate_left(i as u32 * 3)).collect();
        let mut fixed_pats = pats.clone();
        // One extra PI (iso_en), active high.
        for _ in 0..fixed.netlist.primary_inputs().len() - k {
            fixed_pats.push(!0u64);
        }
        let (o1, s1) = n.simulate64(&pats, &vec![0; n.flops().len()]);
        let (o2, s2) = fixed.netlist.simulate64(&fixed_pats, &vec![0; fixed.netlist.flops().len()]);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn same_voltage_needs_no_shifter() {
        let n = generate::hierarchical_design(2, 40, 9).unwrap();
        let mut intent = PowerIntent::single_domain(0.9);
        let other =
            intent.add_domain(PowerDomain { name: "AON2".into(), vdd_v: 0.9, switchable: false });
        intent.assign_block(&n, "blk1", other);
        let v = check(&n, &intent);
        assert!(v.is_empty(), "equal-voltage always-on crossing is legal: {v:?}");
    }

    #[test]
    fn scores_of_domains_at_180nm() {
        // Domic: scores of domains even at 180nm. Build 20+ domains and
        // verify assignment bookkeeping holds up.
        let n = generate::hierarchical_design(8, 30, 2).unwrap();
        let mut intent = PowerIntent::single_domain(1.8);
        for i in 0..24 {
            intent.add_domain(PowerDomain {
                name: format!("PD{i}"),
                vdd_v: 1.8 - 0.02 * i as f64,
                switchable: i % 2 == 0,
            });
        }
        assert!(intent.domain_count() >= 20);
        intent.assign(InstId::from_index(0), 5);
        assert_eq!(intent.domain_of(InstId::from_index(0)), 5);
        assert_eq!(intent.domain_of(InstId::from_index(1)), 0);
    }

    #[test]
    #[should_panic(expected = "unknown domain")]
    fn bad_domain_assignment_panics() {
        let n = generate::parity_tree(4).unwrap();
        let mut intent = PowerIntent::single_domain(1.0);
        intent.assign(n.flops().first().copied().unwrap_or(InstId::from_index(0)), 7);
    }
}
