//! Power-density mapping, hot-spot detection, and automatic decap insertion.
//!
//! Rossi (claim C12): networking ASICs run at "switching activities in
//! excess of 5×" ordinary processors, and "the identification of the most
//! critical situations and the on-the-fly introduction of decoupling cells as
//! well as the management of power crowding should be one of the key
//! parameters the tool itself should take care of". [`PowerGrid`] finds the
//! hot spots; [`insert_decaps`] fixes them automatically.

use crate::activity::Activity;
use crate::analysis::PowerConfig;
use eda_netlist::{CellFunction, InstId, Netlist};
use eda_place::Placement;
use eda_tech::Node;

/// A power-density map over placement bins.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerGrid {
    /// Bins per side.
    pub bins: usize,
    /// Power per bin in mW.
    power_mw: Vec<f64>,
    /// Decap capacitance per bin, in fF.
    decap_ff: Vec<f64>,
    bin_area_mm2: f64,
}

impl PowerGrid {
    /// Builds the map: each instance's dynamic + leakage power lands in its
    /// placement bin.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn build(
        netlist: &Netlist,
        placement: &Placement,
        activity: &Activity,
        cfg: &PowerConfig,
        bins: usize,
    ) -> PowerGrid {
        assert!(bins > 0, "need at least one bin");
        let lib = netlist.library();
        let die = placement.die;
        let spec = cfg.node.spec();
        let ref_spec = crate::analysis::REFERENCE_NODE.spec();
        let cap_scale = spec.gate_cap_ff / ref_spec.gate_cap_ff;
        let leak_scale = spec.leakage_nw_per_gate / ref_spec.leakage_nw_per_gate;
        let f_hz = cfg.freq_mhz * 1e6;
        let mut power = vec![0.0f64; bins * bins];
        for (id, inst) in netlist.instances() {
            let def = lib.cell(inst.cell());
            // Instance dynamic power: its output net switching the load it
            // drives, plus its own internal power approximated by input cap.
            let out = inst.output();
            let c_ff = (def.input_cap_ff * (netlist.net(out).fanout().max(1)) as f64) * cap_scale;
            let p_dyn =
                0.5 * c_ff * 1e-15 * spec.vdd_v * spec.vdd_v * activity.density(out) * f_hz;
            let p_leak = def.leakage_nw * leak_scale * 1e-9;
            let pos = placement.position(id);
            let bx = ((pos.x / die.width_um * bins as f64) as usize).min(bins - 1);
            let by = ((pos.y / die.height_um * bins as f64) as usize).min(bins - 1);
            power[by * bins + bx] += (p_dyn + p_leak) * 1e3;
        }
        let bin_area_mm2 = (die.width_um * die.height_um) / (bins * bins) as f64 / 1e6;
        PowerGrid { bins, power_mw: power, decap_ff: vec![0.0; bins * bins], bin_area_mm2 }
    }

    /// Power in bin `(x, y)`, mW.
    pub fn power_at(&self, x: usize, y: usize) -> f64 {
        self.power_mw[y * self.bins + x]
    }

    /// Power density of a bin in W/cm².
    pub fn density_w_per_cm2(&self, x: usize, y: usize) -> f64 {
        self.power_at(x, y) * 1e-3 / (self.bin_area_mm2 * 1e-2)
    }

    /// Peak power density over the map, W/cm².
    pub fn peak_density(&self) -> f64 {
        (0..self.bins * self.bins)
            .map(|i| self.power_mw[i] * 1e-3 / (self.bin_area_mm2 * 1e-2))
            .fold(0.0, f64::max)
    }

    /// Supply droop estimate per bin: local switching current against the
    /// local decoupling. `droop ∝ P / (C_intrinsic + C_decap)`.
    pub fn droop_mv(&self, x: usize, y: usize, node: Node) -> f64 {
        let intrinsic_ff = 50.0; // per-bin intrinsic decoupling
        let p = self.power_at(x, y);
        let c = intrinsic_ff + self.decap_ff[y * self.bins + x];
        let vdd = node.spec().vdd_v;
        1e3 * p / (c * vdd).max(1e-9)
    }

    /// Worst droop over the whole map, mV.
    pub fn peak_droop(&self, node: Node) -> f64 {
        let mut worst = 0.0f64;
        for y in 0..self.bins {
            for x in 0..self.bins {
                worst = worst.max(self.droop_mv(x, y, node));
            }
        }
        worst
    }

    /// Bins whose droop exceeds `limit_mv`.
    pub fn hotspots(&self, node: Node, limit_mv: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for y in 0..self.bins {
            for x in 0..self.bins {
                if self.droop_mv(x, y, node) > limit_mv {
                    out.push((x, y));
                }
            }
        }
        out
    }

    /// Adds decap capacitance to a bin.
    pub fn add_decap(&mut self, x: usize, y: usize, cap_ff: f64) {
        self.decap_ff[y * self.bins + x] += cap_ff;
    }
}

/// Result of automatic decap insertion.
#[derive(Debug, Clone)]
pub struct DecapOutcome {
    /// Netlist with decap cells appended (physical-only instances).
    pub netlist: Netlist,
    /// Decap cells inserted.
    pub decaps_inserted: usize,
    /// Hotspot count before insertion.
    pub hotspots_before: usize,
    /// Hotspot count after insertion.
    pub hotspots_after: usize,
}

/// Inserts decap cells into every hotspot bin until its droop meets
/// `limit_mv` (or the per-bin budget runs out).
///
/// # Errors
///
/// Fails if the library has no decap cell.
pub fn insert_decaps(
    netlist: &Netlist,
    grid: &mut PowerGrid,
    node: Node,
    limit_mv: f64,
) -> Result<DecapOutcome, eda_netlist::NetlistError> {
    let lib = netlist.library();
    let decap = lib
        .find_function(CellFunction::Decap)
        .ok_or_else(|| eda_netlist::NetlistError::UnknownName("Decap".into()))?;
    let decap_ff_per_cell = 100.0;
    let hotspots_before = grid.hotspots(node, limit_mv).len();
    let mut out = netlist.clone();
    let mut inserted = 0usize;
    for (x, y) in grid.hotspots(node, limit_mv) {
        let mut budget = 200; // cells per bin
        while grid.droop_mv(x, y, node) > limit_mv && budget > 0 {
            grid.add_decap(x, y, decap_ff_per_cell);
            out.add_gate(format!("decap_{x}_{y}_{budget}"), decap, &[])?;
            let _ = InstId::from_index(out.num_instances() - 1);
            inserted += 1;
            budget -= 1;
        }
    }
    let hotspots_after = grid.hotspots(node, limit_mv).len();
    Ok(DecapOutcome { netlist: out, decaps_inserted: inserted, hotspots_before, hotspots_after })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityConfig;
    use eda_netlist::generate;
    use eda_place::{place_global, Die, GlobalConfig};

    fn setup() -> (Netlist, Placement, Activity) {
        let n = generate::switch_fabric(4, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let a = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        (n, p, a)
    }

    #[test]
    fn grid_conserves_nonzero_power() {
        let (n, p, a) = setup();
        let g = PowerGrid::build(&n, &p, &a, &PowerConfig::default(), 8);
        let total: f64 = (0..8).flat_map(|y| (0..8).map(move |x| (x, y)))
            .map(|(x, y)| g.power_at(x, y))
            .sum();
        assert!(total > 0.0);
        assert!(g.peak_density() > 0.0);
    }

    #[test]
    fn networking_activity_multiplies_hotspots() {
        let (n, p, a) = setup();
        let cfg = PowerConfig { freq_mhz: 1000.0, ..Default::default() };
        let base = PowerGrid::build(&n, &p, &a, &cfg, 8);
        let hot = PowerGrid::build(&n, &p, &a.scaled(5.0), &cfg, 8);
        // Pick a limit between the two peak droops.
        let lim = (base.peak_droop(Node::N28) + hot.peak_droop(Node::N28)) / 2.0;
        assert!(hot.hotspots(Node::N28, lim).len() > base.hotspots(Node::N28, lim).len());
    }

    #[test]
    fn decap_insertion_clears_hotspots() {
        let (n, p, a) = setup();
        let cfg = PowerConfig { freq_mhz: 2000.0, ..Default::default() };
        let mut g = PowerGrid::build(&n, &p, &a.scaled(5.0), &cfg, 8);
        let lim = g.peak_droop(Node::N28) * 0.3;
        let out = insert_decaps(&n, &mut g, Node::N28, lim).unwrap();
        assert!(out.hotspots_before > 0, "the scenario must start hot");
        assert!(out.decaps_inserted > 0);
        assert!(
            out.hotspots_after < out.hotspots_before,
            "decaps must clear hotspots: {} -> {}",
            out.hotspots_before,
            out.hotspots_after
        );
        out.netlist.validate().unwrap();
        assert_eq!(
            out.netlist.num_instances(),
            n.num_instances() + out.decaps_inserted
        );
    }

    #[test]
    fn droop_falls_with_decap() {
        let (n, p, a) = setup();
        let mut g = PowerGrid::build(&n, &p, &a, &PowerConfig::default(), 4);
        let before = g.droop_mv(1, 1, Node::N28);
        g.add_decap(1, 1, 500.0);
        assert!(g.droop_mv(1, 1, Node::N28) < before);
    }
}
