//! The dark-silicon model.
//!
//! Domic: *"'Design for power' was an enabler that prevented massive amounts
//! of 'dark silicon'."* Given a node, a die, and a power budget, this module
//! computes the fraction of the die that can switch simultaneously — with and
//! without the design-for-power technique stack — reproducing the utilization
//! collapse at 90/65 nm and its recovery (claim C6).

use eda_tech::Node;

/// The design-for-power technique stack, each with its modeled effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechniqueStack {
    /// Clock gating (removes idle clock toggling).
    pub clock_gating: bool,
    /// Multi-voltage domains (non-critical logic at reduced Vdd).
    pub multi_vdd: bool,
    /// Power gating / shutdown domains (removes idle leakage).
    pub power_gating: bool,
}

impl TechniqueStack {
    /// No techniques (mid-2000s strawman).
    pub fn none() -> TechniqueStack {
        TechniqueStack { clock_gating: false, multi_vdd: false, power_gating: false }
    }

    /// The full 2016 stack.
    pub fn full() -> TechniqueStack {
        TechniqueStack { clock_gating: true, multi_vdd: true, power_gating: true }
    }

    /// Dynamic-power multiplier of the stack (< 1 when techniques help).
    pub fn dynamic_factor(&self) -> f64 {
        let mut f = 1.0;
        if self.clock_gating {
            // ~35% of dynamic power is clocking; gating removes ~70% of it.
            f *= 1.0 - 0.35 * 0.7;
        }
        if self.multi_vdd {
            // Half the logic can run at 0.8× Vdd: 0.5 + 0.5·0.64.
            f *= 0.82;
        }
        f
    }

    /// Leakage multiplier of the stack.
    pub fn leakage_factor(&self) -> f64 {
        if self.power_gating {
            // Idle blocks (≈60% of area at any time) leak ~25x less.
            0.4 + 0.6 / 25.0
        } else {
            1.0
        }
    }
}

/// One row of the dark-silicon sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DarkSiliconRow {
    /// Node evaluated.
    pub node: Node,
    /// Fraction of the die usable simultaneously without techniques.
    pub usable_naive: f64,
    /// Fraction usable with the full technique stack.
    pub usable_with_techniques: f64,
}

/// Power drawn by 1 mm² of fully-active logic at a node, in watts, at the
/// given clock frequency.
fn power_per_mm2_w(node: Node, freq_mhz: f64, stack: &TechniqueStack) -> f64 {
    let spec = node.spec();
    let gates = spec.density_mtr_per_mm2 * 1e6 / 4.0; // ~4 transistors/gate
    // Dynamic: activity 0.15 toggles/cycle per gate on ~2 fF of switched cap.
    let c_sw = 2.0 * spec.gate_cap_ff * 1e-15;
    let dyn_w = gates * 0.15 * 0.5 * c_sw * spec.vdd_v * spec.vdd_v * freq_mhz * 1e6;
    let leak_w = gates * spec.leakage_nw_per_gate * 1e-9;
    dyn_w * stack.dynamic_factor() + leak_w * stack.leakage_factor()
}

/// Computes the usable-die fraction for a die and budget across all nodes.
///
/// # Panics
///
/// Panics if the die or budget is non-positive.
pub fn dark_silicon_sweep(die_mm2: f64, budget_w: f64, freq_mhz: f64) -> Vec<DarkSiliconRow> {
    assert!(die_mm2 > 0.0 && budget_w > 0.0, "die and budget must be positive");
    Node::ALL
        .iter()
        .map(|&node| {
            let naive = power_per_mm2_w(node, freq_mhz, &TechniqueStack::none());
            let full = power_per_mm2_w(node, freq_mhz, &TechniqueStack::full());
            DarkSiliconRow {
                node,
                usable_naive: (budget_w / (naive * die_mm2)).min(1.0),
                usable_with_techniques: (budget_w / (full * die_mm2)).min(1.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<DarkSiliconRow> {
        dark_silicon_sweep(80.0, 3.0, 500.0)
    }

    #[test]
    fn techniques_always_help() {
        for row in sweep() {
            assert!(
                row.usable_with_techniques >= row.usable_naive,
                "{}: techniques cannot hurt",
                row.node
            );
        }
    }

    #[test]
    fn utilization_collapses_with_scaling_without_techniques() {
        let s = sweep();
        let at = |n: Node| s.iter().find(|r| r.node == n).unwrap().usable_naive;
        assert!(at(Node::N180) > at(Node::N65));
        assert!(at(Node::N65) > at(Node::N10));
        assert!(at(Node::N10) < 0.5, "naive 10nm die must be mostly dark");
    }

    #[test]
    fn panel_claim_techniques_prevent_massive_dark_silicon() {
        let s = sweep();
        for node in [Node::N90, Node::N65, Node::N45] {
            let row = s.iter().find(|r| r.node == node).unwrap();
            let recovered = row.usable_with_techniques - row.usable_naive;
            assert!(
                recovered > 0.1 || row.usable_naive >= 0.9,
                "{node}: the stack should recover real area, got {recovered:.3}"
            );
        }
    }

    #[test]
    fn factors_bounded() {
        assert!(TechniqueStack::full().dynamic_factor() < 1.0);
        assert!(TechniqueStack::full().dynamic_factor() > 0.3);
        assert_eq!(TechniqueStack::none().dynamic_factor(), 1.0);
        assert_eq!(TechniqueStack::none().leakage_factor(), 1.0);
        assert!(TechniqueStack::full().leakage_factor() < 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_panics() {
        let _ = dark_silicon_sweep(80.0, 0.0, 500.0);
    }
}
