//! Clock-gating insertion.
//!
//! Domic: "advanced EDA has made much of 'design for power' techniques
//! automatic and part of 'standard' design". This module performs the
//! flagship such technique: grouping flops under integrated clock gates so
//! the clock tree stops toggling where no data changes.

use eda_netlist::{CellFunction, NetId, Netlist, NetlistError};

/// Result of inserting clock gates.
#[derive(Debug, Clone)]
pub struct GatingOutcome {
    /// The transformed netlist (one new `en_g<i>` primary input per group).
    pub netlist: Netlist,
    /// Number of clock-gate cells inserted.
    pub gates_inserted: usize,
    /// Number of flops now clocked through a gate.
    pub flops_gated: usize,
}

/// Groups flops (`group_size` per gate) and reroutes their CK pins through
/// [`CellFunction::ClockGate`] cells. Each group's enable is a fresh primary
/// input named `en_g<i>`, so the caller controls the gating scenario; with
/// every enable high the design behaves identically to the original.
///
/// # Errors
///
/// Returns an error if the library lacks a clock-gate cell.
///
/// # Panics
///
/// Panics if `group_size == 0`.
pub fn insert_clock_gating(netlist: &Netlist, group_size: usize) -> Result<GatingOutcome, NetlistError> {
    assert!(group_size > 0, "groups must hold at least one flop");
    let lib = netlist.library();
    let cg = lib
        .find_function(CellFunction::ClockGate)
        .ok_or_else(|| NetlistError::UnknownName("ClockGate".into()))?;
    let flops = netlist.flops();
    let mut out = netlist.clone();
    let mut gates = 0usize;
    let mut gated = 0usize;
    for (gi, group) in flops.chunks(group_size).enumerate() {
        // All flops in a group must share a clock net.
        let ck: NetId = out.instance(group[0]).inputs()[1];
        if group.iter().any(|&f| out.instance(f).inputs()[1] != ck) {
            continue;
        }
        let en = out.add_input(format!("en_g{gi}"));
        let gck = out.add_gate(format!("cg{gi}"), cg, &[ck, en])?;
        for &f in group {
            out.replace_input(f, 1, gck);
            gated += 1;
        }
        gates += 1;
    }
    Ok(GatingOutcome { netlist: out, gates_inserted: gates, flops_gated: gated })
}

/// Estimated clock-power saving factor for a gating scenario: the fraction
/// of cycles each enable is low directly removes that share of gated clock
/// toggling.
pub fn clock_saving_fraction(enable_duty: f64, gated_fraction: f64) -> f64 {
    assert!((0.0..=1.0).contains(&enable_duty), "duty must be a probability");
    assert!((0.0..=1.0).contains(&gated_fraction), "fraction must be a probability");
    gated_fraction * (1.0 - enable_duty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, ActivityConfig};
    use crate::analysis::{analyze, PowerConfig};
    use eda_netlist::generate;

    #[test]
    fn gating_preserves_function_with_enables_high() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let g = insert_clock_gating(&n, 4).unwrap();
        assert!(g.gates_inserted > 0);
        assert_eq!(g.flops_gated, n.flops().len());
        g.netlist.validate().unwrap();
        // Original inputs + one enable per gate.
        let k = n.primary_inputs().len();
        let pats: Vec<u64> =
            (0..k).map(|i| 0x0123_4567_89AB_CDEFu64.rotate_left(i as u32 * 5)).collect();
        let mut gated_pats = pats.clone();
        gated_pats.extend(std::iter::repeat(!0u64).take(g.gates_inserted)); // enables = 1
        let (o1, s1) = n.simulate64(&pats, &vec![0; n.flops().len()]);
        let (o2, s2) = g.netlist.simulate64(&gated_pats, &vec![0; g.netlist.flops().len()]);
        assert_eq!(o1, o2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn gating_cuts_clock_power_when_idle() {
        let n = generate::switch_fabric(4, 4).unwrap();
        let g = insert_clock_gating(&n, 8).unwrap();
        // Idle enables: probability 0.1 of being active.
        let base_act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        let base = analyze(&n, &base_act, &PowerConfig::default());
        let gated_act = Activity::estimate(&g.netlist, &ActivityConfig { input_prob: 0.1, ..Default::default() })
            .unwrap();
        let gated = analyze(&g.netlist, &gated_act, &PowerConfig::default());
        // The gated-clock nets toggle ~10% of the time; flop clock-pin load
        // dominates, so dynamic power must drop noticeably.
        assert!(
            gated.dynamic_mw < base.dynamic_mw,
            "gated {} must be below ungated {}",
            gated.dynamic_mw,
            base.dynamic_mw
        );
    }

    #[test]
    fn saving_formula_bounds() {
        assert_eq!(clock_saving_fraction(1.0, 1.0), 0.0);
        assert_eq!(clock_saving_fraction(0.0, 1.0), 1.0);
        assert!((clock_saving_fraction(0.25, 0.8) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one flop")]
    fn zero_group_panics() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let _ = insert_clock_gating(&n, 0);
    }
}
