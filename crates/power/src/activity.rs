//! Switching-activity estimation: static probabilities and transition
//! densities propagated through the netlist.
//!
//! Probabilities assume spatial independence of gate inputs (the classic
//! TPS approximation); densities use the Boolean-difference formulation
//! `D(y) = Σ P(∂f/∂x_i) · D(x_i)`.

use eda_netlist::{CellFunction, NetDriver, NetId, Netlist, NetlistError};

/// Per-net activity: probability of being 1 and toggles per clock cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    prob: Vec<f64>,
    density: Vec<f64>,
}

/// Source activities for primary inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityConfig {
    /// Probability a primary input is 1.
    pub input_prob: f64,
    /// Toggles per cycle on each primary input.
    pub input_density: f64,
    /// Toggles per cycle of the clock itself (2: rise + fall).
    pub clock_density: f64,
}

impl Default for ActivityConfig {
    fn default() -> Self {
        ActivityConfig { input_prob: 0.5, input_density: 0.2, clock_density: 2.0 }
    }
}

impl Activity {
    /// Propagates activities through a netlist.
    ///
    /// Clock inputs (nets named `clk`/`clock` or feeding only CK pins) carry
    /// [`ActivityConfig::clock_density`]. Flop outputs toggle at half their
    /// D-input density (a captured value changes at most once per cycle).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] on cyclic netlists.
    pub fn estimate(netlist: &Netlist, cfg: &ActivityConfig) -> Result<Activity, NetlistError> {
        let lib = netlist.library();
        let n = netlist.num_nets();
        let mut prob = vec![0.5f64; n];
        let mut density = vec![0.0f64; n];

        let clock_nets = clock_nets(netlist);
        for &pi in netlist.primary_inputs() {
            if clock_nets.contains(&pi) {
                prob[pi.index()] = 0.5;
                density[pi.index()] = cfg.clock_density;
            } else {
                prob[pi.index()] = cfg.input_prob;
                density[pi.index()] = cfg.input_density;
            }
        }
        // Flop outputs: assume steady-state probability 0.5 and density from
        // a first pass; two passes give a reasonable fixpoint approximation.
        for _pass in 0..2 {
            let order = netlist.topo_order()?;
            for id in order {
                let inst = netlist.instance(id);
                let f = lib.cell(inst.cell()).function;
                let out = inst.output().index();
                if f.is_sequential() {
                    let d_net = inst.inputs()[0].index();
                    prob[out] = prob[d_net].clamp(0.05, 0.95);
                    // A flop output toggles when the captured value differs:
                    // density = 2 p (1-p) per cycle.
                    density[out] = 2.0 * prob[d_net] * (1.0 - prob[d_net]);
                    continue;
                }
                if f.is_physical_only() {
                    continue;
                }
                if f == CellFunction::ClockGate {
                    // Gated clock: toggles only while EN is high.
                    let ck = inst.inputs()[0].index();
                    let en = inst.inputs()[1].index();
                    prob[out] = prob[ck] * prob[en];
                    density[out] = density[ck] * prob[en];
                    continue;
                }
                let ins: Vec<usize> = inst.inputs().iter().map(|x| x.index()).collect();
                let k = ins.len();
                if k == 0 {
                    prob[out] = if f == CellFunction::Const1 { 1.0 } else { 0.0 };
                    density[out] = 0.0;
                    continue;
                }
                // Enumerate the truth table (k ≤ 4).
                let mut p1 = 0.0f64;
                let mut dens = 0.0f64;
                for i in 0..k {
                    // P(∂f/∂x_i): rows where flipping x_i flips f.
                    let mut p_sensitive = 0.0;
                    for row in 0..(1usize << k) {
                        if row >> i & 1 == 1 {
                            continue;
                        }
                        let mut w = 1.0;
                        for (j, &net) in ins.iter().enumerate() {
                            if j == i {
                                continue;
                            }
                            let bit = row >> j & 1 == 1;
                            w *= if bit { prob[net] } else { 1.0 - prob[net] };
                        }
                        let a: Vec<bool> = (0..k).map(|j| row >> j & 1 == 1).collect();
                        let mut b = a.clone();
                        b[i] = true;
                        if f.eval(&a) != f.eval(&b) {
                            p_sensitive += w;
                        }
                    }
                    dens += p_sensitive * density[ins[i]];
                }
                for row in 0..(1usize << k) {
                    let a: Vec<bool> = (0..k).map(|j| row >> j & 1 == 1).collect();
                    if f.eval(&a) {
                        let mut w = 1.0;
                        for (j, &net) in ins.iter().enumerate() {
                            w *= if a[j] { prob[net] } else { 1.0 - prob[net] };
                        }
                        p1 += w;
                    }
                }
                prob[out] = p1;
                density[out] = dens;
            }
        }
        Ok(Activity { prob, density })
    }

    /// Probability that a net is logic 1.
    pub fn prob(&self, net: NetId) -> f64 {
        self.prob[net.index()]
    }

    /// Toggles per cycle on a net.
    pub fn density(&self, net: NetId) -> f64 {
        self.density[net.index()]
    }

    /// Mean toggle density over all nets (the design's "switching activity").
    pub fn mean_density(&self) -> f64 {
        if self.density.is_empty() {
            return 0.0;
        }
        self.density.iter().sum::<f64>() / self.density.len() as f64
    }

    /// Scales every density by a factor (used to model workload classes like
    /// Rossi's 5× networking traffic).
    pub fn scaled(&self, factor: f64) -> Activity {
        Activity {
            prob: self.prob.clone(),
            density: self.density.iter().map(|d| d * factor).collect(),
        }
    }
}

/// Nets that behave as clocks: primary inputs feeding CK pins of flops or
/// clock gates.
pub fn clock_nets(netlist: &Netlist) -> Vec<NetId> {
    let lib = netlist.library();
    let mut out = Vec::new();
    for (net_id, net) in netlist.nets() {
        if !matches!(net.driver(), Some(NetDriver::PrimaryInput(_))) {
            continue;
        }
        let feeds_clock = net.sinks().iter().any(|&(inst, pin)| {
            let f = lib.cell(netlist.instance(inst).cell()).function;
            match f {
                CellFunction::Dff => pin == 1,
                CellFunction::ScanDff => pin == 3,
                CellFunction::ClockGate => pin == 0,
                _ => false,
            }
        });
        if feeds_clock {
            out.push(net_id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::{generate, CellFunction, Netlist};

    #[test]
    fn inverter_preserves_density_flips_prob() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let y = n.add_gate_fn("u", CellFunction::Inv, &[a]).unwrap();
        n.add_output("y", y);
        let act = Activity::estimate(&n, &ActivityConfig { input_prob: 0.8, input_density: 0.3, clock_density: 2.0 }).unwrap();
        assert!((act.prob(y) - 0.2).abs() < 1e-9);
        assert!((act.density(y) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn and_gate_probability() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate_fn("u", CellFunction::And(2), &[a, b]).unwrap();
        n.add_output("y", y);
        let act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        assert!((act.prob(y) - 0.25).abs() < 1e-9);
        // Density: each input sensitizes with prob 0.5 => 0.5*0.2 + 0.5*0.2.
        assert!((act.density(y) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn xor_always_sensitizes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate_fn("u", CellFunction::Xor2, &[a, b]).unwrap();
        n.add_output("y", y);
        let act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        assert!((act.density(y) - 0.4).abs() < 1e-9, "XOR passes both input densities");
    }

    #[test]
    fn clock_net_detected_and_hot() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let clocks = clock_nets(&n);
        assert_eq!(clocks.len(), 1);
        let act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        assert!(act.density(clocks[0]) >= 2.0 - 1e-9, "clock toggles every cycle");
    }

    #[test]
    fn scaled_activity_multiplies_densities() {
        let n = generate::parity_tree(8).unwrap();
        let act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        let hot = act.scaled(5.0);
        assert!((hot.mean_density() - 5.0 * act.mean_density()).abs() < 1e-9);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let act = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        for (id, _) in n.nets() {
            let p = act.prob(id);
            assert!((0.0..=1.0).contains(&p), "prob {p} out of range");
            assert!(act.density(id) >= 0.0);
        }
    }
}
