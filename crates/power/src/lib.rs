//! Power analysis and optimization for the `eda` workspace.
//!
//! Implements the panel's "design for power" story end to end: switching
//! [`activity`] estimation, per-node [`analysis`] (the dynamic/static
//! crossover of claim C6), automatic clock [`gating`], UPF-style power
//! intent with checking and implementation ([`domains`], Domic's "scores of
//! voltage/supply/shutdown domains"), the [`dark`]-silicon model, and
//! power-density mapping with automatic decap insertion ([`grid`],
//! Rossi's networking-ASIC hot spots, claim C12).
//!
//! # Examples
//!
//! ```
//! use eda_netlist::generate;
//! use eda_power::{analyze, Activity, ActivityConfig, PowerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::switch_fabric(4, 4)?;
//! let activity = Activity::estimate(&design, &ActivityConfig::default())?;
//! let report = analyze(&design, &activity, &PowerConfig::default());
//! assert!(report.total_mw() > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod activity;
pub mod analysis;
pub mod dark;
pub mod domains;
pub mod gating;
pub mod grid;
pub mod irdrop;

pub use activity::{clock_nets, Activity, ActivityConfig};
pub use analysis::{analyze, node_power_sweep, NodePowerRow, PowerConfig, PowerReport};
pub use dark::{dark_silicon_sweep, DarkSiliconRow, TechniqueStack};
pub use domains::{check, implement, ImplementOutcome, IntentViolation, PowerDomain, PowerIntent};
pub use gating::{clock_saving_fraction, insert_clock_gating, GatingOutcome};
pub use grid::{insert_decaps, DecapOutcome, PowerGrid};
pub use irdrop::{solve_ir_drop, IrDropMap, MeshConfig};
