//! Power analysis: dynamic + leakage per technology node.
//!
//! Domic (claim C6): voltage scaling took off at 130 nm when "the dynamic
//! power reduction started to be offset by the static power increase", and at
//! 90/65 nm it became "virtually impossible to design an IC without
//! sophisticated power reduction techniques". [`node_power_sweep`] reproduces
//! that crossover from the [`eda_tech::Node`] parameters; [`analyze`] prices
//! a real netlist at a node.

use crate::activity::Activity;
use eda_netlist::Netlist;
use eda_tech::Node;

/// Library characterization reference node (cell caps/leakages in the
/// netlist libraries are assumed to be extracted at this node).
pub const REFERENCE_NODE: Node = Node::N90;

/// A power report in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Switching (dynamic) power, mW.
    pub dynamic_mw: f64,
    /// Leakage (static) power, mW.
    pub leakage_mw: f64,
    /// Clock-network share of the dynamic power, mW.
    pub clock_mw: f64,
}

impl PowerReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.leakage_mw
    }
}

/// Analysis knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Target technology node.
    pub node: Node,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Wire capacitance per fanout, fF (added to pin caps).
    pub wire_cap_per_fanout_ff: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig { node: Node::N28, freq_mhz: 500.0, wire_cap_per_fanout_ff: 0.5 }
    }
}

/// Prices a netlist's power at a node given activities.
pub fn analyze(netlist: &Netlist, activity: &Activity, cfg: &PowerConfig) -> PowerReport {
    let lib = netlist.library();
    let ref_spec = REFERENCE_NODE.spec();
    let spec = cfg.node.spec();
    let cap_scale = spec.gate_cap_ff / ref_spec.gate_cap_ff;
    let leak_scale = spec.leakage_nw_per_gate / ref_spec.leakage_nw_per_gate;
    let vdd = spec.vdd_v;
    let f_hz = cfg.freq_mhz * 1e6;

    let clock_nets: Vec<_> = crate::activity::clock_nets(netlist);
    let mut dynamic_w = 0.0f64;
    let mut clock_w = 0.0f64;
    for (net_id, net) in netlist.nets() {
        // Load: sink pin caps + wire cap, scaled to the node.
        let pin_cap_ff: f64 = net
            .sinks()
            .iter()
            .map(|&(s, _)| lib.cell(netlist.instance(s).cell()).input_cap_ff)
            .sum::<f64>()
            * cap_scale;
        let wire_ff = net.fanout() as f64 * cfg.wire_cap_per_fanout_ff * cap_scale;
        let c_f = (pin_cap_ff + wire_ff) * 1e-15;
        let toggles_per_s = activity.density(net_id) * f_hz;
        let p = 0.5 * c_f * vdd * vdd * toggles_per_s;
        dynamic_w += p;
        if clock_nets.contains(&net_id) {
            clock_w += p;
        }
    }
    let leakage_w: f64 = netlist
        .instances()
        .map(|(_, i)| lib.cell(i.cell()).leakage_nw * leak_scale * 1e-9)
        .sum();
    PowerReport {
        dynamic_mw: dynamic_w * 1e3,
        leakage_mw: leakage_w * 1e3,
        clock_mw: clock_w * 1e3,
    }
}

/// One row of the cross-node power sweep for a fixed design: the same gate
/// count priced at every node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePowerRow {
    /// The node.
    pub node: Node,
    /// Dynamic power, mW.
    pub dynamic_mw: f64,
    /// Static power, mW.
    pub leakage_mw: f64,
}

/// Sweeps a netlist's power across all nodes (constant frequency): the
/// dynamic/static crossover data behind claim C6.
pub fn node_power_sweep(netlist: &Netlist, activity: &Activity, freq_mhz: f64) -> Vec<NodePowerRow> {
    Node::ALL
        .iter()
        .map(|&node| {
            let r = analyze(
                netlist,
                activity,
                &PowerConfig { node, freq_mhz, ..Default::default() },
            );
            NodePowerRow { node, dynamic_mw: r.dynamic_mw, leakage_mw: r.leakage_mw }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::ActivityConfig;
    use eda_netlist::generate;

    fn setup() -> (Netlist, Activity) {
        let n = generate::switch_fabric(4, 4).unwrap();
        let a = Activity::estimate(&n, &ActivityConfig::default()).unwrap();
        (n, a)
    }

    #[test]
    fn power_is_positive_and_scales_with_frequency() {
        let (n, a) = setup();
        let p1 = analyze(&n, &a, &PowerConfig { freq_mhz: 100.0, ..Default::default() });
        let p2 = analyze(&n, &a, &PowerConfig { freq_mhz: 200.0, ..Default::default() });
        assert!(p1.dynamic_mw > 0.0 && p1.leakage_mw > 0.0);
        assert!((p2.dynamic_mw / p1.dynamic_mw - 2.0).abs() < 1e-9);
        assert_eq!(p1.leakage_mw, p2.leakage_mw, "leakage is frequency-independent");
    }

    #[test]
    fn clock_power_is_substantial_share() {
        let (n, a) = setup();
        let p = analyze(&n, &a, &PowerConfig::default());
        assert!(p.clock_mw > 0.0);
        assert!(p.clock_mw < p.dynamic_mw);
        assert!(p.clock_mw / p.dynamic_mw > 0.1, "clocks burn a real share");
    }

    #[test]
    fn panel_claim_static_overtakes_dynamic_near_90_65() {
        // At constant frequency and design, find where leakage/dynamic peaks.
        let (n, a) = setup();
        let sweep = node_power_sweep(&n, &a, 200.0);
        let ratio = |node: Node| {
            let row = sweep.iter().find(|r| r.node == node).unwrap();
            row.leakage_mw / row.dynamic_mw
        };
        // The static share rises steeply into 90/65 then is tamed (HKMG/FinFET).
        assert!(ratio(Node::N90) > 4.0 * ratio(Node::N180));
        assert!(ratio(Node::N65) > 4.0 * ratio(Node::N180));
        assert!(ratio(Node::N16) < ratio(Node::N65));
    }

    #[test]
    fn higher_activity_costs_dynamic_power() {
        let (n, a) = setup();
        let hot = a.scaled(5.0);
        let base = analyze(&n, &a, &PowerConfig::default());
        let net = analyze(&n, &hot, &PowerConfig::default());
        assert!((net.dynamic_mw / base.dynamic_mw - 5.0).abs() < 0.2);
        assert_eq!(net.leakage_mw, base.leakage_mw);
    }
}
