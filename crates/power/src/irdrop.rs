//! Static IR-drop analysis of the power delivery network.
//!
//! Complements [`crate::grid`]'s droop heuristic with a physical model:
//! the power grid is a resistive mesh over the die with voltage sources at
//! the ring (pad) nodes and per-bin current draws from the power map. The
//! node voltages solve Kirchhoff's equations, computed by Gauss–Seidel
//! relaxation. Rossi's "management of power crowding" needs exactly this
//! map: grid-strap sizing and decap placement are driven by the worst-drop
//! region.

use crate::grid::PowerGrid;
use eda_tech::Node;

/// Power-mesh parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshConfig {
    /// Resistance of one mesh segment, ohms.
    pub segment_ohm: f64,
    /// Convergence threshold on the max voltage update, volts.
    pub tolerance_v: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig { segment_ohm: 0.4, tolerance_v: 1e-7, max_iterations: 20_000 }
    }
}

impl MeshConfig {
    /// The flow supervisor's retry configuration when the Gauss–Seidel
    /// relaxation stalls at the iteration cap: a 100× looser convergence
    /// threshold and 3× the iteration budget. The resulting map is coarser
    /// but bounded — degraded, not absent.
    pub fn relaxed(&self) -> MeshConfig {
        MeshConfig {
            tolerance_v: self.tolerance_v * 100.0,
            max_iterations: self.max_iterations * 3,
            ..*self
        }
    }
}

/// The solved IR-drop map.
#[derive(Debug, Clone, PartialEq)]
pub struct IrDropMap {
    /// Bins per side (matches the power grid).
    pub bins: usize,
    /// Node voltages, row-major.
    voltages: Vec<f64>,
    /// Nominal supply, volts.
    pub vdd: f64,
    /// Gauss–Seidel iterations used.
    pub iterations: usize,
}

impl IrDropMap {
    /// Voltage at bin `(x, y)`.
    pub fn voltage_at(&self, x: usize, y: usize) -> f64 {
        self.voltages[y * self.bins + x]
    }

    /// IR drop at bin `(x, y)`, millivolts.
    pub fn drop_mv(&self, x: usize, y: usize) -> f64 {
        (self.vdd - self.voltage_at(x, y)) * 1e3
    }

    /// Worst drop over the die, millivolts.
    pub fn worst_drop_mv(&self) -> f64 {
        self.voltages
            .iter()
            .map(|&v| (self.vdd - v) * 1e3)
            .fold(0.0, f64::max)
    }

    /// Whether the relaxation converged within the iteration cap of the
    /// config it was solved under. Hitting the cap exactly is read as a
    /// stall: the voltages are still usable but not settled.
    pub fn converged(&self, cfg: &MeshConfig) -> bool {
        self.iterations < cfg.max_iterations
    }

    /// Bins exceeding a drop budget (in mV).
    pub fn violations(&self, budget_mv: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for y in 0..self.bins {
            for x in 0..self.bins {
                if self.drop_mv(x, y) > budget_mv {
                    out.push((x, y));
                }
            }
        }
        out
    }
}

/// Solves the static IR drop for a power map at a node.
///
/// Boundary bins connect to the pad ring at `vdd` through one segment; the
/// interior is a uniform mesh. Each bin draws `P_bin / vdd` amperes.
///
/// # Panics
///
/// Panics if the grid has no bins.
pub fn solve_ir_drop(power: &PowerGrid, node: Node, cfg: &MeshConfig) -> IrDropMap {
    let bins = power.bins;
    assert!(bins > 0, "power grid must have bins");
    let vdd = node.spec().vdd_v;
    let g = 1.0 / cfg.segment_ohm;
    // Current draw per bin, amps.
    let current: Vec<f64> = (0..bins * bins)
        .map(|i| {
            let (x, y) = (i % bins, i / bins);
            power.power_at(x, y) * 1e-3 / vdd
        })
        .collect();
    let mut v = vec![vdd; bins * bins];
    let mut iterations = 0;
    for it in 0..cfg.max_iterations {
        iterations = it + 1;
        let mut worst_delta = 0.0f64;
        for y in 0..bins {
            for x in 0..bins {
                let i = y * bins + x;
                // Neighbour conductances; boundary nodes see the pad ring.
                let mut gsum = 0.0;
                let mut isum = -current[i];
                let mut visit = |vn: f64| {
                    gsum += g;
                    isum += g * vn;
                };
                if x > 0 {
                    visit(v[i - 1]);
                } else {
                    visit(vdd);
                }
                if x + 1 < bins {
                    visit(v[i + 1]);
                } else {
                    visit(vdd);
                }
                if y > 0 {
                    visit(v[i - bins]);
                } else {
                    visit(vdd);
                }
                if y + 1 < bins {
                    visit(v[i + bins]);
                } else {
                    visit(vdd);
                }
                let nv = isum / gsum;
                worst_delta = worst_delta.max((nv - v[i]).abs());
                v[i] = nv;
            }
        }
        if worst_delta < cfg.tolerance_v {
            break;
        }
    }
    IrDropMap { bins, voltages: v, vdd, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::{Activity, ActivityConfig};
    use crate::analysis::PowerConfig;
    use eda_netlist::generate;
    use eda_place::{place_global, Die, GlobalConfig};

    fn power_grid(activity_scale: f64, freq: f64) -> PowerGrid {
        let n = generate::switch_fabric(4, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let a = Activity::estimate(&n, &ActivityConfig::default()).unwrap().scaled(activity_scale);
        let cfg = PowerConfig { freq_mhz: freq, ..Default::default() };
        PowerGrid::build(&n, &p, &a, &cfg, 8)
    }

    #[test]
    fn solution_converges_and_is_physical() {
        let g = power_grid(1.0, 1000.0);
        let m = solve_ir_drop(&g, Node::N28, &MeshConfig::default());
        assert!(m.iterations < MeshConfig::default().max_iterations, "must converge");
        for y in 0..m.bins {
            for x in 0..m.bins {
                let v = m.voltage_at(x, y);
                assert!(v <= m.vdd + 1e-9, "voltage cannot exceed the supply");
                assert!(v > 0.0, "voltage stays positive");
            }
        }
        assert!(m.worst_drop_mv() > 0.0);
    }

    #[test]
    fn drop_scales_with_activity() {
        let low = solve_ir_drop(&power_grid(1.0, 1000.0), Node::N28, &MeshConfig::default());
        let high = solve_ir_drop(&power_grid(5.0, 1000.0), Node::N28, &MeshConfig::default());
        assert!(
            high.worst_drop_mv() > 3.0 * low.worst_drop_mv(),
            "5x activity should multiply the drop: {:.3} vs {:.3}",
            high.worst_drop_mv(),
            low.worst_drop_mv()
        );
    }

    #[test]
    fn interior_drops_more_than_boundary() {
        let g = power_grid(3.0, 2000.0);
        let m = solve_ir_drop(&g, Node::N28, &MeshConfig::default());
        let corner = m.drop_mv(0, 0);
        let center = m.drop_mv(m.bins / 2, m.bins / 2);
        assert!(center > corner, "pads at the ring: center droops most ({center:.3} vs {corner:.3})");
    }

    #[test]
    fn stiffer_mesh_reduces_drop() {
        let g = power_grid(3.0, 2000.0);
        let weak = solve_ir_drop(&g, Node::N28, &MeshConfig { segment_ohm: 1.0, ..Default::default() });
        let stiff = solve_ir_drop(&g, Node::N28, &MeshConfig { segment_ohm: 0.1, ..Default::default() });
        assert!(stiff.worst_drop_mv() < weak.worst_drop_mv() / 2.0);
    }

    #[test]
    fn violations_match_budget() {
        let g = power_grid(5.0, 2000.0);
        let m = solve_ir_drop(&g, Node::N28, &MeshConfig::default());
        let tight = m.violations(m.worst_drop_mv() * 0.5);
        let loose = m.violations(m.worst_drop_mv() + 1.0);
        assert!(!tight.is_empty());
        assert!(loose.is_empty());
    }
}
