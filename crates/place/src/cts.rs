//! Clock-tree synthesis: recursive-bisection buffered trees.
//!
//! The panel's power story runs through the clock network (clock gating,
//! Domic's "design for power"); a believable clock network is therefore part
//! of the substrate. [`synthesize_clock_tree`] builds a balanced buffered
//! tree over the flop sinks by alternating median bisection (an H-tree
//! generalization for non-uniform sink distributions); [`star_distribution`]
//! is the naive comparison — one driver wired to every sink — with the skew
//! and capacitance penalty that implies.

use crate::floorplan::Point;
use crate::placement::Placement;
use eda_netlist::{InstId, Netlist};

/// CTS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CtsConfig {
    /// Maximum sinks (or subtrees) a buffer may drive.
    pub max_fanout: usize,
    /// Buffer intrinsic delay, ps.
    pub buffer_delay_ps: f64,
    /// Wire delay per µm, ps (lumped RC approximation).
    pub wire_delay_ps_per_um: f64,
    /// Wire capacitance per µm, fF.
    pub wire_cap_ff_per_um: f64,
}

impl Default for CtsConfig {
    fn default() -> Self {
        CtsConfig {
            max_fanout: 8,
            buffer_delay_ps: 12.0,
            wire_delay_ps_per_um: 0.05,
            wire_cap_ff_per_um: 0.2,
        }
    }
}

/// One buffer of the synthesized tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockBuffer {
    /// Buffer location.
    pub location: Point,
    /// Tree level (0 = root).
    pub level: u32,
}

/// A synthesized clock network.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockTree {
    /// Inserted buffers.
    pub buffers: Vec<ClockBuffer>,
    /// Total clock wirelength, µm.
    pub wirelength_um: f64,
    /// Insertion delay per sink, ps (same order as the sink list given).
    pub sink_delays_ps: Vec<f64>,
    /// Tree depth in buffer levels.
    pub depth: u32,
}

impl ClockTree {
    /// Clock skew: max − min sink insertion delay, ps.
    pub fn skew_ps(&self) -> f64 {
        let max = self.sink_delays_ps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = self.sink_delays_ps.iter().copied().fold(f64::INFINITY, f64::min);
        if self.sink_delays_ps.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Worst insertion delay, ps.
    pub fn insertion_delay_ps(&self) -> f64 {
        self.sink_delays_ps.iter().copied().fold(0.0, f64::max)
    }

    /// Total switched clock capacitance, fF (wire only).
    pub fn wire_cap_ff(&self, cfg: &CtsConfig) -> f64 {
        self.wirelength_um * cfg.wire_cap_ff_per_um
    }
}

/// Builds a buffered clock tree over the netlist's flops.
///
/// Returns the tree and the sink (flop) order used for `sink_delays_ps`.
pub fn synthesize_clock_tree(
    netlist: &Netlist,
    placement: &Placement,
    cfg: &CtsConfig,
) -> (ClockTree, Vec<InstId>) {
    let sinks = netlist.flops();
    let pts: Vec<Point> = sinks.iter().map(|&f| placement.position(f)).collect();
    if sinks.is_empty() {
        return (
            ClockTree { buffers: Vec::new(), wirelength_um: 0.0, sink_delays_ps: Vec::new(), depth: 0 },
            sinks,
        );
    }
    let mut buffers = Vec::new();
    let mut wirelength = 0.0;
    let mut delays = vec![0.0f64; sinks.len()];
    let indices: Vec<usize> = (0..sinks.len()).collect();
    let depth = build(
        &pts,
        indices,
        0,
        true,
        cfg,
        &mut buffers,
        &mut wirelength,
        &mut delays,
        0.0,
    );
    (
        ClockTree { buffers, wirelength_um: wirelength, sink_delays_ps: delays, depth },
        sinks,
    )
}

/// Recursively partitions `group`, placing a buffer at the centroid;
/// returns the subtree depth.
#[allow(clippy::too_many_arguments)]
fn build(
    pts: &[Point],
    group: Vec<usize>,
    level: u32,
    split_x: bool,
    cfg: &CtsConfig,
    buffers: &mut Vec<ClockBuffer>,
    wirelength: &mut f64,
    delays: &mut [f64],
    arrival_ps: f64,
) -> u32 {
    let centroid = {
        let n = group.len() as f64;
        Point::new(
            group.iter().map(|&i| pts[i].x).sum::<f64>() / n,
            group.iter().map(|&i| pts[i].y).sum::<f64>() / n,
        )
    };
    buffers.push(ClockBuffer { location: centroid, level });
    let here = arrival_ps + cfg.buffer_delay_ps;

    if group.len() <= cfg.max_fanout {
        for &i in &group {
            let d = centroid.manhattan(&pts[i]);
            *wirelength += d;
            delays[i] = here + d * cfg.wire_delay_ps_per_um;
        }
        return level + 1;
    }
    // Median split along the alternating axis.
    let mut sorted = group;
    sorted.sort_by(|&a, &b| {
        let ka = if split_x { pts[a].x } else { pts[a].y };
        let kb = if split_x { pts[b].x } else { pts[b].y };
        ka.partial_cmp(&kb).expect("coordinates are finite")
    });
    let mid = sorted.len() / 2;
    let right = sorted.split_off(mid);
    let mut depth = level + 1;
    for half in [sorted, right] {
        if half.is_empty() {
            continue;
        }
        let n = half.len() as f64;
        let child = Point::new(
            half.iter().map(|&i| pts[i].x).sum::<f64>() / n,
            half.iter().map(|&i| pts[i].y).sum::<f64>() / n,
        );
        let d = centroid.manhattan(&child);
        *wirelength += d;
        let child_arrival = here + d * cfg.wire_delay_ps_per_um;
        depth = depth.max(build(
            pts,
            half,
            level + 1,
            !split_x,
            cfg,
            buffers,
            wirelength,
            delays,
            child_arrival,
        ));
    }
    depth
}

/// The naive comparison: one root driver wired directly to every sink.
pub fn star_distribution(
    netlist: &Netlist,
    placement: &Placement,
    cfg: &CtsConfig,
) -> ClockTree {
    let sinks = netlist.flops();
    if sinks.is_empty() {
        return ClockTree {
            buffers: Vec::new(),
            wirelength_um: 0.0,
            sink_delays_ps: Vec::new(),
            depth: 0,
        };
    }
    let die = placement.die;
    let root = Point::new(die.width_um / 2.0, die.height_um / 2.0);
    let mut wirelength = 0.0;
    let mut delays = Vec::with_capacity(sinks.len());
    // A single driver sees the whole load: its delay grows with total cap.
    let total_wire: f64 = sinks
        .iter()
        .map(|&f| root.manhattan(&placement.position(f)))
        .sum();
    let driver_delay = cfg.buffer_delay_ps
        + total_wire * cfg.wire_cap_ff_per_um * 0.05; // cap-load slowdown
    for &f in &sinks {
        let d = root.manhattan(&placement.position(f));
        wirelength += d;
        delays.push(driver_delay + d * cfg.wire_delay_ps_per_um);
    }
    ClockTree {
        buffers: vec![ClockBuffer { location: root, level: 0 }],
        wirelength_um: wirelength,
        sink_delays_ps: delays,
        depth: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Die;
    use crate::global::{place_global, GlobalConfig};
    use eda_netlist::generate;

    fn placed() -> (eda_netlist::Netlist, Placement) {
        let n = generate::switch_fabric(6, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        (n, p)
    }

    #[test]
    fn tree_reaches_every_sink() {
        let (n, p) = placed();
        let (tree, sinks) = synthesize_clock_tree(&n, &p, &CtsConfig::default());
        assert_eq!(sinks.len(), n.flops().len());
        assert_eq!(tree.sink_delays_ps.len(), sinks.len());
        assert!(tree.sink_delays_ps.iter().all(|&d| d > 0.0));
        assert!(tree.wirelength_um > 0.0);
        assert!(!tree.buffers.is_empty());
    }

    #[test]
    fn tree_skew_beats_star() {
        let (n, p) = placed();
        let cfg = CtsConfig::default();
        let (tree, _) = synthesize_clock_tree(&n, &p, &cfg);
        let star = star_distribution(&n, &p, &cfg);
        assert!(
            tree.skew_ps() < star.skew_ps(),
            "balanced tree skew {:.1} must beat star {:.1}",
            tree.skew_ps(),
            star.skew_ps()
        );
    }

    #[test]
    fn fanout_bound_respected() {
        let (n, p) = placed();
        let cfg = CtsConfig { max_fanout: 4, ..Default::default() };
        let (tree, sinks) = synthesize_clock_tree(&n, &p, &cfg);
        // Leaf buffers drive at most max_fanout sinks: with 24 flops and
        // fanout 4 the tree needs at least 6 leaf buffers.
        assert!(tree.buffers.len() >= sinks.len().div_ceil(cfg.max_fanout));
        assert!(tree.depth >= 2);
    }

    #[test]
    fn deeper_trees_for_smaller_fanout() {
        let (n, p) = placed();
        let wide = synthesize_clock_tree(&n, &p, &CtsConfig { max_fanout: 16, ..Default::default() }).0;
        let narrow = synthesize_clock_tree(&n, &p, &CtsConfig { max_fanout: 2, ..Default::default() }).0;
        assert!(narrow.depth > wide.depth);
        assert!(narrow.buffers.len() > wide.buffers.len());
    }

    #[test]
    fn empty_design_yields_empty_tree() {
        let n = generate::parity_tree(8).unwrap(); // no flops
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let (tree, sinks) = synthesize_clock_tree(&n, &p, &CtsConfig::default());
        assert!(sinks.is_empty());
        assert_eq!(tree.skew_ps(), 0.0);
        assert_eq!(tree.wire_cap_ff(&CtsConfig::default()), 0.0);
    }
}
