//! The placement result: instance coordinates, I/O pin positions, and
//! wirelength metrics.

use crate::floorplan::{Die, Point};
use eda_netlist::{InstId, NetDriver, NetId, Netlist};

/// A complete placement of a netlist onto a die.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The die.
    pub die: Die,
    /// Instance positions, indexed by instance position in the netlist.
    positions: Vec<Point>,
    /// Primary-input pin positions, indexed by PI order.
    pi_pins: Vec<Point>,
    /// Primary-output pin positions, indexed by PO order.
    po_pins: Vec<Point>,
}

impl Placement {
    /// Creates a placement with every instance at the die center and I/O pins
    /// spread along the boundary.
    pub fn new(netlist: &Netlist, die: Die) -> Placement {
        let center = Point::new(die.width_um / 2.0, die.height_um / 2.0);
        let n_pi = netlist.primary_inputs().len();
        let n_po = netlist.primary_outputs().len();
        let pins = die.boundary_pins(n_pi + n_po);
        Placement {
            die,
            positions: vec![center; netlist.num_instances()],
            pi_pins: pins[..n_pi].to_vec(),
            po_pins: pins[n_pi..].to_vec(),
        }
    }

    /// Snapshots the raw geometry for checkpointing. Together with
    /// [`Placement::from_snapshot`] this round-trips a placement exactly,
    /// without re-deriving anything from a netlist (whose instance count may
    /// since have changed, e.g. after decap insertion).
    pub fn snapshot(&self) -> PlacementSnapshot {
        PlacementSnapshot {
            die: self.die,
            positions: self.positions.clone(),
            pi_pins: self.pi_pins.clone(),
            po_pins: self.po_pins.clone(),
        }
    }

    /// Rebuilds a placement from a [`snapshot`](Placement::snapshot),
    /// bit-identically.
    pub fn from_snapshot(s: PlacementSnapshot) -> Placement {
        Placement { die: s.die, positions: s.positions, pi_pins: s.pi_pins, po_pins: s.po_pins }
    }

    /// Position of an instance.
    pub fn position(&self, inst: InstId) -> Point {
        self.positions[inst.index()]
    }

    /// Moves an instance.
    pub fn set_position(&mut self, inst: InstId, p: Point) {
        self.positions[inst.index()] = p;
    }

    /// Pin position of primary input `i`.
    pub fn pi_pin(&self, i: usize) -> Point {
        self.pi_pins[i]
    }

    /// Pin position of primary output `i`.
    pub fn po_pin(&self, i: usize) -> Point {
        self.po_pins[i]
    }

    /// All the points a net touches: driver, instance sinks, and PO pins.
    pub fn net_points(&self, netlist: &Netlist, net: NetId) -> Vec<Point> {
        let mut pts = Vec::new();
        let n = netlist.net(net);
        match n.driver() {
            Some(NetDriver::PrimaryInput(k)) => pts.push(self.pi_pins[k]),
            Some(NetDriver::Instance(i)) => pts.push(self.positions[i.index()]),
            None => {}
        }
        for &(s, _) in n.sinks() {
            pts.push(self.positions[s.index()]);
        }
        for (k, &(_, po_net)) in netlist.primary_outputs().iter().enumerate() {
            if po_net == net {
                pts.push(self.po_pins[k]);
            }
        }
        pts
    }

    /// Half-perimeter wirelength of one net, µm.
    pub fn net_hpwl(&self, netlist: &Netlist, net: NetId) -> f64 {
        let pts = self.net_points(netlist, net);
        if pts.len() < 2 {
            return 0.0;
        }
        let (mut xmin, mut xmax, mut ymin, mut ymax) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for p in pts {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        (xmax - xmin) + (ymax - ymin)
    }

    /// Total half-perimeter wirelength, µm.
    pub fn total_hpwl(&self, netlist: &Netlist) -> f64 {
        netlist.nets().map(|(id, _)| self.net_hpwl(netlist, id)).sum()
    }

    /// Bounding box `(min, max)` of one net.
    pub fn net_bbox(&self, netlist: &Netlist, net: NetId) -> Option<(Point, Point)> {
        let pts = self.net_points(netlist, net);
        if pts.is_empty() {
            return None;
        }
        let (mut xmin, mut xmax, mut ymin, mut ymax) =
            (f64::INFINITY, f64::NEG_INFINITY, f64::INFINITY, f64::NEG_INFINITY);
        for p in pts {
            xmin = xmin.min(p.x);
            xmax = xmax.max(p.x);
            ymin = ymin.min(p.y);
            ymax = ymax.max(p.y);
        }
        Some((Point::new(xmin, ymin), Point::new(xmax, ymax)))
    }
}

/// The raw geometry of a [`Placement`], exposed for exact serialization in
/// flow checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementSnapshot {
    /// The die.
    pub die: Die,
    /// Instance positions in storage order.
    pub positions: Vec<Point>,
    /// Primary-input pin positions in PI order.
    pub pi_pins: Vec<Point>,
    /// Primary-output pin positions in PO order.
    pub po_pins: Vec<Point>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn initial_placement_centers_cells() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = Placement::new(&n, die);
        let c = p.position(InstId::from_index(0));
        assert!((c.x - die.width_um / 2.0).abs() < 1e-9);
    }

    #[test]
    fn hpwl_zero_when_coincident_no_io() {
        let n = generate::parity_tree(4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = Placement::new(&n, die);
        // Internal nets (between coincident cells) have zero HPWL; nets
        // touching boundary pins do not.
        let mut internal = 0;
        for (id, net) in n.nets() {
            let touches_io = matches!(net.driver(), Some(NetDriver::PrimaryInput(_)))
                || n.primary_outputs().iter().any(|&(_, o)| o == id);
            if !touches_io && net.fanout() > 0 {
                assert_eq!(p.net_hpwl(&n, id), 0.0);
                internal += 1;
            }
        }
        assert!(internal > 0);
    }

    #[test]
    fn moving_a_cell_changes_hpwl() {
        let n = generate::ripple_carry_adder(4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let mut p = Placement::new(&n, die);
        let before = p.total_hpwl(&n);
        p.set_position(InstId::from_index(0), Point::new(0.0, 0.0));
        let after = p.total_hpwl(&n);
        assert_ne!(before, after);
    }

    #[test]
    fn bbox_contains_all_points() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = Placement::new(&n, die);
        for (id, _) in n.nets() {
            if let Some((lo, hi)) = p.net_bbox(&n, id) {
                for pt in p.net_points(&n, id) {
                    assert!(pt.x >= lo.x - 1e-9 && pt.x <= hi.x + 1e-9);
                    assert!(pt.y >= lo.y - 1e-9 && pt.y <= hi.y + 1e-9);
                }
            }
        }
    }
}
