//! Die and site-grid floorplanning.

use eda_netlist::Netlist;

/// A 2-D point in micrometers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, µm.
    pub x: f64,
    /// Y coordinate, µm.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Manhattan distance to another point.
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

/// The placeable die area with a legal site grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Die {
    /// Die width in µm.
    pub width_um: f64,
    /// Die height in µm.
    pub height_um: f64,
    /// Site pitch in µm (cells snap to multiples of this).
    pub site_um: f64,
    /// Number of sites horizontally.
    pub cols: usize,
    /// Number of sites vertically (rows).
    pub rows: usize,
}

impl Die {
    /// Sizes a square die for a netlist at the given core utilization.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in (0, 1] or the netlist is empty.
    pub fn for_netlist(netlist: &Netlist, utilization: f64) -> Die {
        assert!(utilization > 0.0 && utilization <= 1.0, "utilization must be in (0, 1]");
        let area = netlist.area_um2();
        assert!(area > 0.0, "cannot floorplan an empty netlist");
        // Site sized to the average cell footprint so one site ≈ one cell.
        let avg_cell = area / netlist.num_instances() as f64;
        let site = avg_cell.sqrt();
        let side = (area / utilization).sqrt();
        let cols = (side / site).ceil().max(2.0) as usize;
        Die { width_um: cols as f64 * site, height_um: cols as f64 * site, site_um: site, cols, rows: cols }
    }

    /// Total number of legal sites.
    pub fn num_sites(&self) -> usize {
        self.cols * self.rows
    }

    /// Center of site `(col, row)`.
    ///
    /// # Panics
    ///
    /// Panics if the site is out of range.
    pub fn site_center(&self, col: usize, row: usize) -> Point {
        assert!(col < self.cols && row < self.rows, "site out of range");
        Point::new((col as f64 + 0.5) * self.site_um, (row as f64 + 0.5) * self.site_um)
    }

    /// Nearest legal site to a point (clamped to the die).
    pub fn snap(&self, p: Point) -> (usize, usize) {
        let c = ((p.x / self.site_um).floor().max(0.0) as usize).min(self.cols - 1);
        let r = ((p.y / self.site_um).floor().max(0.0) as usize).min(self.rows - 1);
        (c, r)
    }

    /// Positions for `n` I/O pins spread along the die boundary.
    pub fn boundary_pins(&self, n: usize) -> Vec<Point> {
        let perimeter = 2.0 * (self.width_um + self.height_um);
        (0..n)
            .map(|i| {
                let d = (i as f64 + 0.5) / n as f64 * perimeter;
                if d < self.width_um {
                    Point::new(d, 0.0)
                } else if d < self.width_um + self.height_um {
                    Point::new(self.width_um, d - self.width_um)
                } else if d < 2.0 * self.width_um + self.height_um {
                    Point::new(2.0 * self.width_um + self.height_um - d, self.height_um)
                } else {
                    Point::new(0.0, perimeter - d)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn die_fits_netlist() {
        let n = generate::random_logic(Default::default()).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        assert!(die.width_um * die.height_um >= n.area_um2() / 0.7 * 0.9);
        assert!(die.num_sites() >= n.num_instances());
    }

    #[test]
    fn lower_utilization_means_bigger_die() {
        let n = generate::parity_tree(64).unwrap();
        let tight = Die::for_netlist(&n, 0.9);
        let loose = Die::for_netlist(&n, 0.5);
        assert!(loose.width_um > tight.width_um);
    }

    #[test]
    fn snap_is_within_bounds() {
        let n = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        for p in [
            Point::new(-5.0, -5.0),
            Point::new(die.width_um * 2.0, die.height_um * 2.0),
            Point::new(die.width_um / 2.0, die.height_um / 2.0),
        ] {
            let (c, r) = die.snap(p);
            assert!(c < die.cols && r < die.rows);
        }
    }

    #[test]
    fn boundary_pins_on_perimeter() {
        let n = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        for p in die.boundary_pins(40) {
            let on_edge = p.x.abs() < 1e-9
                || p.y.abs() < 1e-9
                || (p.x - die.width_um).abs() < 1e-9
                || (p.y - die.height_um).abs() < 1e-9;
            assert!(on_edge, "pin {p:?} not on boundary");
        }
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Point::new(0.0, 0.0).manhattan(&Point::new(3.0, 4.0)), 7.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_panics() {
        let n = generate::parity_tree(8).unwrap();
        let _ = Die::for_netlist(&n, 1.5);
    }
}
