//! Multilevel placement for the scale tier: cluster → coarse-place → refine.
//!
//! Flat force-directed placement iterates over every net touching every
//! instance, which at 10⁵–10⁶ instances is both slow and memory-hungry. The
//! multilevel pass first contracts the netlist into hierarchy-guided
//! clusters of bounded size, seeds the much smaller cluster graph along a
//! space-filling curve and improves it with centroid-plus-spreading sweeps,
//! then expands each cluster into a compact block around its center and
//! polishes with a short serial anneal. Every
//! step is seeded and iteration order is fixed by instance/net index, so the
//! result is a pure function of `(netlist, die, config)` — the flow's
//! bit-identical-at-any-thread-count contract holds trivially.

use crate::anneal::{anneal, AnnealConfig, AnnealStats};
use crate::floorplan::{Die, Point};
use crate::global::legalize;
use crate::placement::Placement;
use eda_netlist::{InstId, NetDriver, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Nets wider than this are ignored while clustering and coarse-placing:
/// clock spines and other high-fanout trees say nothing about locality and
/// would glue unrelated logic into one giant cluster.
const MAX_CLUSTER_NET_FANOUT: usize = 48;

/// Configuration for [`place_multilevel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// Target instances per cluster (clusters never exceed this).
    pub cluster_size: usize,
    /// Centroid/spreading iterations on the coarse cluster graph.
    pub coarse_iterations: usize,
    /// Annealing moves per cell in the final refinement (0 skips it).
    pub refine_moves_per_cell: usize,
    /// RNG seed for the coarse scatter/spread and the refinement anneal.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            cluster_size: 64,
            coarse_iterations: 8,
            refine_moves_per_cell: 4,
            seed: 1,
        }
    }
}

/// The result of a multilevel placement.
#[derive(Debug, Clone)]
pub struct MultilevelOutcome {
    /// The legal placement.
    pub placement: Placement,
    /// Clusters the netlist contracted into.
    pub clusters: usize,
    /// Total HPWL after expansion/legalization, before refinement, µm.
    pub hpwl_expanded: f64,
    /// Refinement statistics (zero-move stats when refinement is skipped).
    pub refine: AnnealStats,
}

/// Places a netlist by clustering, coarse placement, expansion, and a short
/// refinement anneal. Deterministic for a fixed `(netlist, die, cfg)`.
///
/// # Panics
///
/// Panics if `cfg.cluster_size` is zero or the netlist has no instances.
pub fn place_multilevel(
    netlist: &Netlist,
    die: Die,
    cfg: &MultilevelConfig,
) -> MultilevelOutcome {
    assert!(cfg.cluster_size > 0, "cluster_size must be positive");
    let n = netlist.num_instances();
    assert!(n > 0, "cannot place an empty netlist");

    // --- Level 1: hierarchy-label clustering. -----------------------------
    // Instances sharing a hierarchy block label are pooled into the same
    // cluster (chunked at `cluster_size`) regardless of index position, so
    // a block's flops rejoin its logic cones even when the mapper emitted
    // them far apart. Unlabelled instances fall back to index chunking,
    // which still captures emission-order locality. Cluster order is
    // first-appearance order, a pure function of the netlist.
    // (Connectivity BFS was tried here and loses: it greedily leaks across
    // block seams and shreds the hierarchy into ragged fragments.)
    let mut cluster_of: Vec<u32> = vec![0; n];
    let mut clusters: Vec<Vec<InstId>> = Vec::new();
    let mut open: std::collections::HashMap<Option<u32>, usize> = std::collections::HashMap::new();
    for (i, slot) in cluster_of.iter_mut().enumerate() {
        let b = netlist.instance(InstId::from_index(i)).block();
        let ci = match open.get(&b) {
            Some(&c) if clusters[c].len() < cfg.cluster_size => c,
            _ => {
                clusters.push(Vec::new());
                open.insert(b, clusters.len() - 1);
                clusters.len() - 1
            }
        };
        *slot = ci as u32;
        clusters[ci].push(InstId::from_index(i));
    }
    let k = clusters.len();

    // Coarse nets: each netlist net contracted to the distinct clusters it
    // touches (single-cluster nets vanish — that is the point of level 1).
    let mut coarse_nets: Vec<Vec<u32>> = Vec::new();
    for (_, net) in netlist.nets() {
        if net.fanout() == 0 || net.fanout() > MAX_CLUSTER_NET_FANOUT {
            continue;
        }
        let mut cs: Vec<u32> = Vec::new();
        if let Some(NetDriver::Instance(d)) = net.driver() {
            cs.push(cluster_of[d.index()]);
        }
        for &(s, _) in net.sinks() {
            cs.push(cluster_of[s.index()]);
        }
        cs.sort_unstable();
        cs.dedup();
        if cs.len() >= 2 {
            coarse_nets.push(cs);
        }
    }

    // --- Level 2: serpentine seed, then centroid + weighted spreading. ----
    // The seed lays clusters along a boustrophedon curve in index order, so
    // hierarchy neighbours start as geometric neighbours. Each centroid +
    // spreading sweep is then scored by the real objective — the HPWL of
    // the expanded, legalized placement it induces — and only a sweep that
    // improves on the best seen so far is kept. A coarse-only proxy is not
    // good enough here: centroids happily pile clusters on top of each
    // other, which shrinks cluster-graph spans while the legalizer scatters
    // the physical overlap into worse wirelength.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let side = (k as f64).sqrt().ceil() as usize;
    let mut pos: Vec<Point> = (0..k)
        .map(|c| {
            let row = c / side;
            let col = if row.is_multiple_of(2) { c % side } else { side - 1 - c % side };
            Point::new(
                (col as f64 + 0.5) / side as f64 * die.width_um,
                (row as f64 + 0.5) / side as f64 * die.height_um,
            )
        })
        .collect();
    let weight: Vec<usize> = clusters.iter().map(Vec::len).collect();

    // --- Level 3: expand members into a block around each center. ---------
    let expand = |placement: &mut Placement, pos: &[Point]| {
        for (c, members) in clusters.iter().enumerate() {
            let block_side = (members.len() as f64).sqrt().ceil().max(1.0) as usize;
            let half = block_side as f64 / 2.0;
            for (j, &id) in members.iter().enumerate() {
                let dx = ((j % block_side) as f64 + 0.5 - half) * die.site_um;
                let dy = ((j / block_side) as f64 + 0.5 - half) * die.site_um;
                let p = Point::new(
                    (pos[c].x + dx).clamp(0.0, die.width_um),
                    (pos[c].y + dy).clamp(0.0, die.height_um),
                );
                placement.set_position(id, p);
            }
        }
        legalize(placement, netlist);
    };
    let mut placement = Placement::new(netlist, die);
    expand(&mut placement, &pos);
    let mut best_pos = pos.clone();
    let mut best_cost = placement.total_hpwl(netlist);
    for _ in 0..cfg.coarse_iterations {
        let mut sum = vec![(0.0f64, 0.0f64, 0usize); k];
        for cs in &coarse_nets {
            let cx: f64 = cs.iter().map(|&c| pos[c as usize].x).sum::<f64>() / cs.len() as f64;
            let cy: f64 = cs.iter().map(|&c| pos[c as usize].y).sum::<f64>() / cs.len() as f64;
            for &c in cs {
                let s = &mut sum[c as usize];
                s.0 += cx;
                s.1 += cy;
                s.2 += 1;
            }
        }
        for (c, &(sx, sy, m)) in sum.iter().enumerate() {
            if m > 0 {
                pos[c] = Point::new(sx / m as f64, sy / m as f64);
            }
        }
        spread_clusters(&mut pos, &weight, n, die, &mut rng);
        expand(&mut placement, &pos);
        let cost = placement.total_hpwl(netlist);
        if cost < best_cost {
            best_cost = cost;
            best_pos = pos.clone();
        }
    }
    expand(&mut placement, &best_pos);

    let hpwl_expanded = best_cost;

    // --- Refinement: short serial anneal over everything. -----------------
    let refine = if cfg.refine_moves_per_cell > 0 {
        let acfg = AnnealConfig {
            moves_per_cell: cfg.refine_moves_per_cell,
            seed: cfg.seed,
            ..Default::default()
        };
        anneal(netlist, &mut placement, &acfg, None, None)
    } else {
        AnnealStats { hpwl_before: hpwl_expanded, hpwl_after: hpwl_expanded, proposed: 0, accepted: 0 }
    };

    MultilevelOutcome { placement, clusters: k, hpwl_expanded, refine }
}

/// Pushes clusters out of overloaded coarse bins. Capacity is measured in
/// instances (clusters are weighted by member count), overflow evicts the
/// most recently binned clusters first — a pure function of cluster order
/// and the seeded RNG.
fn spread_clusters(
    pos: &mut [Point],
    weight: &[usize],
    total_instances: usize,
    die: Die,
    rng: &mut StdRng,
) {
    let k = pos.len();
    let bins = ((k as f64).sqrt().ceil() as usize).clamp(2, 64);
    let bw = die.width_um / bins as f64;
    let bh = die.height_um / bins as f64;
    let cap = (total_instances as f64 / (bins * bins) as f64).ceil() as usize + 1;
    let mut bin_members: Vec<Vec<usize>> = vec![Vec::new(); bins * bins];
    for (c, p) in pos.iter().enumerate() {
        let bx = ((p.x / bw) as usize).min(bins - 1);
        let by = ((p.y / bh) as usize).min(bins - 1);
        bin_members[by * bins + bx].push(c);
    }
    for (b, members) in bin_members.iter_mut().enumerate() {
        let mut load: usize = members.iter().map(|&c| weight[c]).sum();
        while load > cap && members.len() > 1 {
            let c = members.pop().expect("len > 1");
            load -= weight[c];
            let bx = b % bins;
            let by = b / bins;
            let nx = (bx as i64 + rng.gen_range(-1..=1)).clamp(0, bins as i64 - 1) as f64;
            let ny = (by as i64 + rng.gen_range(-1..=1)).clamp(0, bins as i64 - 1) as f64;
            pos[c] = Point::new((nx + rng.gen::<f64>()) * bw, (ny + rng.gen::<f64>()) * bh);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{place_global, GlobalConfig};
    use eda_netlist::generate;
    use std::collections::HashSet;

    fn mesh() -> Netlist {
        generate::mesh_fabric(3, 3, 120, 6, 7).unwrap()
    }

    #[test]
    fn multilevel_is_deterministic() {
        let n = mesh();
        let die = Die::for_netlist(&n, 0.7);
        let cfg = MultilevelConfig::default();
        let a = place_multilevel(&n, die, &cfg);
        let b = place_multilevel(&n, die, &cfg);
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.refine.hpwl_after, b.refine.hpwl_after);
    }

    #[test]
    fn multilevel_beats_random_scatter() {
        let n = mesh();
        let die = Die::for_netlist(&n, 0.7);
        let scatter = place_global(&n, die, &GlobalConfig { iterations: 0, seed: 9 });
        let ml = place_multilevel(&n, die, &MultilevelConfig::default());
        assert!(
            ml.placement.total_hpwl(&n) < scatter.total_hpwl(&n),
            "multilevel {} must beat scatter {}",
            ml.placement.total_hpwl(&n),
            scatter.total_hpwl(&n)
        );
    }

    #[test]
    fn placement_is_legal_and_inside_die() {
        let n = mesh();
        let die = Die::for_netlist(&n, 0.7);
        let ml = place_multilevel(&n, die, &MultilevelConfig::default());
        let mut seen = HashSet::new();
        for i in 0..n.num_instances() {
            let pos = ml.placement.position(InstId::from_index(i));
            assert!(pos.x >= 0.0 && pos.x <= die.width_um);
            assert!(pos.y >= 0.0 && pos.y <= die.height_um);
            let key = ((pos.x * 1000.0) as i64, (pos.y * 1000.0) as i64);
            assert!(seen.insert(key), "two cells share a site at {pos:?}");
        }
    }

    #[test]
    fn clusters_are_bounded_and_cover_the_netlist() {
        let n = mesh();
        let die = Die::for_netlist(&n, 0.7);
        for cluster_size in [1, 16, 256] {
            let cfg = MultilevelConfig { cluster_size, ..Default::default() };
            let ml = place_multilevel(&n, die, &cfg);
            assert!(ml.clusters >= n.num_instances().div_ceil(cluster_size));
            assert!(ml.clusters <= n.num_instances());
        }
    }

    #[test]
    fn refinement_never_hurts() {
        let n = mesh();
        let die = Die::for_netlist(&n, 0.7);
        let ml = place_multilevel(&n, die, &MultilevelConfig::default());
        assert!(ml.refine.hpwl_after <= ml.refine.hpwl_before);
        assert_eq!(ml.refine.hpwl_before, ml.hpwl_expanded);
    }
}
