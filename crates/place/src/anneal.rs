//! Simulated-annealing detailed placement on the legal site grid.

use crate::floorplan::Die;
use crate::placement::Placement;
use eda_netlist::{InstId, NetId, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Proposed moves per cell (total moves = cells × this).
    pub moves_per_cell: usize,
    /// Initial temperature as a fraction of die half-perimeter.
    pub t0_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig { moves_per_cell: 60, t0_fraction: 0.05, seed: 1 }
    }
}

/// Statistics from an annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// HPWL before, µm.
    pub hpwl_before: f64,
    /// HPWL after, µm.
    pub hpwl_after: f64,
    /// Moves proposed.
    pub proposed: usize,
    /// Moves accepted.
    pub accepted: usize,
}

/// Per-instance net adjacency used for incremental HPWL deltas.
pub(crate) fn inst_nets(netlist: &Netlist) -> Vec<Vec<NetId>> {
    let mut adj: Vec<Vec<NetId>> = vec![Vec::new(); netlist.num_instances()];
    for (net_id, net) in netlist.nets() {
        if let Some(eda_netlist::NetDriver::Instance(d)) = net.driver() {
            adj[d.index()].push(net_id);
        }
        for &(s, _) in net.sinks() {
            if !adj[s.index()].contains(&net_id) {
                adj[s.index()].push(net_id);
            }
        }
    }
    adj
}

/// A rectangular site region `[c0, c1) × [r0, r1)` restricting moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First column (inclusive).
    pub c0: usize,
    /// Last column (exclusive).
    pub c1: usize,
    /// First row (inclusive).
    pub r0: usize,
    /// Last row (exclusive).
    pub r1: usize,
}

impl Region {
    /// The whole die.
    pub fn full(die: &Die) -> Region {
        Region { c0: 0, c1: die.cols, r0: 0, r1: die.rows }
    }

    /// Whether a site lies inside the region.
    pub fn contains(&self, col: usize, row: usize) -> bool {
        col >= self.c0 && col < self.c1 && row >= self.r0 && row < self.r1
    }
}

/// Improves a legal placement by simulated annealing (swap / move-to-free
/// moves, incremental HPWL evaluation, geometric cooling).
///
/// Only instances in `movable` are touched; pass `None` to move everything.
/// Target sites are confined to `region` when given — partitioned placement
/// uses this to keep threads on disjoint sites.
pub fn anneal(
    netlist: &Netlist,
    placement: &mut Placement,
    cfg: &AnnealConfig,
    movable: Option<&[InstId]>,
    region: Option<Region>,
) -> AnnealStats {
    let die = placement.die;
    let all: Vec<InstId> = (0..netlist.num_instances()).map(InstId::from_index).collect();
    let cells: &[InstId] = movable.unwrap_or(&all);
    if cells.is_empty() {
        let h = placement.total_hpwl(netlist);
        return AnnealStats { hpwl_before: h, hpwl_after: h, proposed: 0, accepted: 0 };
    }
    let adj = inst_nets(netlist);
    let movable_mask: Option<Vec<bool>> = movable.map(|m| {
        let mut v = vec![false; netlist.num_instances()];
        for id in m {
            v[id.index()] = true;
        }
        v
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Occupancy: site slot -> instance.
    let mut occupant: Vec<Option<InstId>> = vec![None; die.num_sites()];
    let slot_of = |die: &Die, p: crate::floorplan::Point| -> usize {
        let (c, r) = die.snap(p);
        r * die.cols + c
    };
    for i in 0..netlist.num_instances() {
        let id = InstId::from_index(i);
        occupant[slot_of(&die, placement.position(id))] = Some(id);
    }

    let hpwl_before = placement.total_hpwl(netlist);
    let total_moves = cells.len() * cfg.moves_per_cell;
    let mut t = cfg.t0_fraction * (die.width_um + die.height_um);
    let t_final = t * 1e-3;
    let alpha = if total_moves > 0 {
        (t_final / t).powf(1.0 / total_moves as f64)
    } else {
        1.0
    };

    let reg = region.unwrap_or(Region::full(&die));
    assert!(reg.c1 > reg.c0 && reg.r1 > reg.r0, "region must be non-empty");
    let mut accepted = 0usize;
    for _ in 0..total_moves {
        let a = cells[rng.gen_range(0..cells.len())];
        let target_slot = {
            let c = rng.gen_range(reg.c0..reg.c1);
            let r = rng.gen_range(reg.r0..reg.r1);
            r * die.cols + c
        };
        let b = occupant[target_slot];
        if b == Some(a) {
            continue;
        }
        // Swaps must stay within the movable set.
        if let (Some(b), Some(mask)) = (b, &movable_mask) {
            if !mask[b.index()] {
                continue;
            }
        }
        let pa = placement.position(a);
        let (tc, tr) = (target_slot % die.cols, target_slot / die.cols);
        let pt = die.site_center(tc, tr);

        // Nets affected.
        let mut nets: Vec<NetId> = adj[a.index()].clone();
        if let Some(b) = b {
            for &nid in &adj[b.index()] {
                if !nets.contains(&nid) {
                    nets.push(nid);
                }
            }
        }
        let before: f64 = nets.iter().map(|&nid| placement.net_hpwl(netlist, nid)).sum();
        placement.set_position(a, pt);
        if let Some(b) = b {
            placement.set_position(b, pa);
        }
        let after: f64 = nets.iter().map(|&nid| placement.net_hpwl(netlist, nid)).sum();
        let delta = after - before;
        let accept = delta < 0.0 || (t > 0.0 && rng.gen::<f64>() < (-delta / t).exp());
        if accept {
            accepted += 1;
            let a_slot = slot_of(&die, pa);
            occupant[a_slot] = b;
            occupant[target_slot] = Some(a);
        } else {
            placement.set_position(a, pa);
            if let Some(b) = b {
                placement.set_position(b, pt);
            }
        }
        t *= alpha;
    }
    AnnealStats {
        hpwl_before,
        hpwl_after: placement.total_hpwl(netlist),
        proposed: total_moves,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{place_global, GlobalConfig};
    use eda_netlist::generate;
    use std::collections::HashSet;

    #[test]
    fn anneal_improves_hpwl() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let mut p = place_global(&n, die, &GlobalConfig { iterations: 2, seed: 7 });
        let stats = anneal(&n, &mut p, &AnnealConfig::default(), None, None);
        assert!(
            stats.hpwl_after < stats.hpwl_before,
            "annealing must improve: {} -> {}",
            stats.hpwl_before,
            stats.hpwl_after
        );
        assert!(stats.accepted > 0);
        assert!((p.total_hpwl(&n) - stats.hpwl_after).abs() < 1e-6);
    }

    #[test]
    fn anneal_keeps_placement_legal() {
        let n = generate::parity_tree(64).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let mut p = place_global(&n, die, &GlobalConfig::default());
        anneal(&n, &mut p, &AnnealConfig { moves_per_cell: 30, ..Default::default() }, None, None);
        let mut seen = HashSet::new();
        for i in 0..n.num_instances() {
            let pos = p.position(InstId::from_index(i));
            let key = ((pos.x * 1000.0) as i64, (pos.y * 1000.0) as i64);
            assert!(seen.insert(key), "overlap at {pos:?}");
        }
    }

    #[test]
    fn restricted_anneal_moves_only_movable() {
        let n = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&n, 0.6);
        let mut p = place_global(&n, die, &GlobalConfig::default());
        let frozen: Vec<_> = (0..n.num_instances() / 2).map(InstId::from_index).collect();
        let movable: Vec<_> =
            (n.num_instances() / 2..n.num_instances()).map(InstId::from_index).collect();
        let before: Vec<_> = frozen.iter().map(|&i| p.position(i)).collect();
        anneal(&n, &mut p, &AnnealConfig::default(), Some(&movable), None);
        for (i, &id) in frozen.iter().enumerate() {
            assert_eq!(p.position(id), before[i], "frozen cell moved");
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let n = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let mut p1 = place_global(&n, die, &GlobalConfig::default());
        let mut p2 = place_global(&n, die, &GlobalConfig::default());
        let s1 = anneal(&n, &mut p1, &AnnealConfig::default(), None, None);
        let s2 = anneal(&n, &mut p2, &AnnealConfig::default(), None, None);
        assert_eq!(s1.hpwl_after, s2.hpwl_after);
    }
}
