//! Hierarchical (per-block) placement, for the flat-vs-hierarchical
//! comparison of claim C7.
//!
//! Each hierarchy block gets a rectangular region of the die; its cells may
//! only move inside that region. Nets that cross block boundaries are
//! reported so the caller can charge them the mandatory boundary buffering a
//! block-based flow inserts (feedthrough + port anchor).

use crate::anneal::{anneal, AnnealConfig, Region};
use crate::floorplan::Die;
use crate::global::{legalize, place_global, GlobalConfig};
use crate::placement::Placement;
use eda_netlist::{InstId, NetDriver, Netlist};

/// Result of hierarchical placement.
#[derive(Debug, Clone, PartialEq)]
pub struct HierOutcome {
    /// The placement (cells confined to block regions).
    pub placement: Placement,
    /// Net indices that cross a block boundary.
    pub crossing_nets: Vec<usize>,
    /// Final HPWL.
    pub hpwl: f64,
}

/// Places a block-labeled netlist hierarchically.
///
/// Blocks are laid out on a near-square grid of equal regions; unlabeled
/// instances share the last region. Cells are annealed within their region
/// only.
///
/// # Panics
///
/// Panics if the netlist has no blocks.
pub fn place_hierarchical(netlist: &Netlist, die: Die, seed: u64) -> HierOutcome {
    let num_blocks = netlist.block_names().len();
    assert!(num_blocks > 0, "hierarchical placement needs block labels");
    let grid = (num_blocks as f64).sqrt().ceil() as usize;
    let rows_of_blocks = num_blocks.div_ceil(grid);

    let region_of = |blk: usize| -> Region {
        let gx = blk % grid;
        let gy = blk / grid;
        let c0 = gx * die.cols / grid;
        let c1 = ((gx + 1) * die.cols / grid).max(c0 + 1);
        let r0 = gy * die.rows / rows_of_blocks;
        let r1 = ((gy + 1) * die.rows / rows_of_blocks).max(r0 + 1);
        Region { c0, c1, r0, r1 }
    };

    // Start from a global placement, then pull every cell into its region.
    let mut placement = place_global(netlist, die, &GlobalConfig { iterations: 4, seed });
    for (id, inst) in netlist.instances() {
        let blk = inst.block().unwrap_or((num_blocks - 1) as u32) as usize;
        let reg = region_of(blk);
        let p = placement.position(id);
        let (c, r) = die.snap(p);
        if !reg.contains(c, r) {
            let cc = c.clamp(reg.c0, reg.c1 - 1);
            let rr = r.clamp(reg.r0, reg.r1 - 1);
            placement.set_position(id, die.site_center(cc, rr));
        }
    }
    legalize_within_regions(&mut placement, netlist, &region_of, num_blocks);

    // Per-block annealing.
    for blk in 0..num_blocks {
        let cells: Vec<InstId> = netlist
            .instances()
            .filter(|(_, inst)| inst.block().unwrap_or((num_blocks - 1) as u32) as usize == blk)
            .map(|(id, _)| id)
            .collect();
        if cells.is_empty() {
            continue;
        }
        anneal(
            netlist,
            &mut placement,
            &AnnealConfig { moves_per_cell: 40, seed: seed ^ (blk as u64 + 1), ..Default::default() },
            Some(&cells),
            Some(region_of(blk)),
        );
    }

    // Crossing nets: nets whose pins span more than one block.
    let mut crossing = Vec::new();
    for (net_id, net) in netlist.nets() {
        let mut blocks_seen: Option<u32> = None;
        let mut crosses = false;
        let mut visit = |inst: InstId| {
            let blk = netlist.instance(inst).block().unwrap_or((num_blocks - 1) as u32);
            match blocks_seen {
                None => blocks_seen = Some(blk),
                Some(b) if b != blk => crosses = true,
                _ => {}
            }
        };
        if let Some(NetDriver::Instance(d)) = net.driver() {
            visit(d);
        }
        for &(s, _) in net.sinks() {
            visit(s);
        }
        if crosses {
            crossing.push(net_id.index());
        }
    }

    HierOutcome { hpwl: placement.total_hpwl(netlist), placement, crossing_nets: crossing }
}

/// Legalizes cells onto free sites of their own region.
fn legalize_within_regions(
    placement: &mut Placement,
    netlist: &Netlist,
    region_of: &dyn Fn(usize) -> Region,
    num_blocks: usize,
) {
    let die = placement.die;
    let mut occupied = vec![false; die.num_sites()];
    for (id, inst) in netlist.instances() {
        let blk = inst.block().unwrap_or((num_blocks - 1) as u32) as usize;
        let reg = region_of(blk);
        let (c, r) = die.snap(placement.position(id));
        let c = c.clamp(reg.c0, reg.c1 - 1);
        let r = r.clamp(reg.r0, reg.r1 - 1);
        // Scan the region row-major from the preferred site.
        let width = reg.c1 - reg.c0;
        let height = reg.r1 - reg.r0;
        let start = (r - reg.r0) * width + (c - reg.c0);
        let total = width * height;
        let mut placed = false;
        for k in 0..total {
            let idx = (start + k) % total;
            let col = reg.c0 + idx % width;
            let row = reg.r0 + idx / width;
            let slot = row * die.cols + col;
            if !occupied[slot] {
                occupied[slot] = true;
                placement.set_position(id, die.site_center(col, row));
                placed = true;
                break;
            }
        }
        if !placed {
            // Region overfull: fall back to any free site (rare; the region
            // sizing assumes roughly balanced blocks).
            let (cc, rr) = die.snap(placement.position(id));
            let start = rr * die.cols + cc;
            for k in 0..die.num_sites() {
                let slot = (start + k) % die.num_sites();
                if !occupied[slot] {
                    occupied[slot] = true;
                    placement
                        .set_position(id, die.site_center(slot % die.cols, slot / die.cols));
                    break;
                }
            }
        }
    }
    let _ = legalize as fn(&mut Placement, &Netlist); // keep the flat helper linked
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn cells_stay_in_their_regions() {
        let n = generate::hierarchical_design(4, 80, 5).unwrap();
        let die = Die::for_netlist(&n, 0.5);
        let out = place_hierarchical(&n, die, 3);
        let grid = 2usize;
        for (id, inst) in n.instances() {
            let blk = inst.block().unwrap() as usize;
            let gx = blk % grid;
            let gy = blk / grid;
            let p = out.placement.position(id);
            let (c, r) = die.snap(p);
            let c0 = gx * die.cols / grid;
            let c1 = (gx + 1) * die.cols / grid;
            let r0 = gy * die.rows / 2;
            let r1 = (gy + 1) * die.rows / 2;
            assert!(
                c >= c0 && c < c1.max(c0 + 1) && r >= r0 && r < r1.max(r0 + 1),
                "cell of block {blk} at site ({c},{r}) outside region"
            );
        }
    }

    #[test]
    fn crossing_nets_detected() {
        let n = generate::hierarchical_design(4, 80, 5).unwrap();
        let die = Die::for_netlist(&n, 0.5);
        let out = place_hierarchical(&n, die, 3);
        assert!(
            !out.crossing_nets.is_empty(),
            "shared-bus hierarchical design must have crossing nets"
        );
    }

    #[test]
    fn hier_needs_more_buffers_than_flat() {
        // The panel's point: flat implementation saves area/power through
        // *less buffering* — block-based flows must buffer every
        // boundary-crossing net (feedthrough + port anchor), on top of any
        // length-driven repeaters.
        use crate::buffer::plan_buffers;
        let n = generate::hierarchical_design(4, 100, 8).unwrap();
        let die = Die::for_netlist(&n, 0.5);
        let hier = place_hierarchical(&n, die, 3);
        // The flat flow has no block constraints; starting from the same
        // physical state and refining without boundaries can only help.
        let mut flat = hier.placement.clone();
        anneal(&n, &mut flat, &AnnealConfig::default(), None, None);
        let max_len = die.width_um / 4.0;
        let flat_plan = plan_buffers(&n, &flat, max_len, &[]);
        let forced: Vec<(usize, u32)> =
            hier.crossing_nets.iter().map(|&i| (i, 2)).collect();
        let hier_plan = plan_buffers(&n, &hier.placement, max_len, &forced);
        assert!(
            hier_plan.total > flat_plan.total,
            "hier {} buffers should exceed flat {}",
            hier_plan.total,
            flat_plan.total
        );
        assert!(hier_plan.added_area_um2 > flat_plan.added_area_um2);
    }

    #[test]
    #[should_panic(expected = "block labels")]
    fn unlabeled_netlist_panics() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let _ = place_hierarchical(&n, die, 1);
    }
}
