//! Multi-threaded partitioned placement.
//!
//! Rossi: *"Taking (almost full) the opportunity given by the multiple cores
//! sitting in the farms, engineers can today run a place-and-route job for a
//! 5-6M instance sub-chip with a throughput approaching the 1M instance per
//! day."* This module reproduces the shape of that claim: the die is split
//! into vertical stripes, each stripe's cells are annealed on its own thread
//! against a snapshot of the rest of the design, and throughput scales with
//! the thread count (claim C9).

use crate::anneal::{anneal, AnnealConfig, Region};
use crate::floorplan::Die;
use crate::global::{place_global, GlobalConfig};
use crate::placement::Placement;
use eda_netlist::{InstId, Netlist};
use std::time::Instant;

/// CPU time consumed by the calling thread, in seconds.
fn thread_cpu_seconds() -> f64 {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime with a valid clock id and out-pointer.
    unsafe {
        libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts);
    }
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Configuration for [`place_parallel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker threads.
    pub threads: usize,
    /// Annealing moves per cell within each stripe pass.
    pub moves_per_cell: usize,
    /// Stripe passes (alternating vertical/horizontal).
    pub passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { threads: 4, moves_per_cell: 30, passes: 2, seed: 1 }
    }
}

/// Result of a parallel placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome {
    /// The final placement.
    pub placement: Placement,
    /// HPWL after global placement, before refinement.
    pub hpwl_global: f64,
    /// Final HPWL.
    pub hpwl_final: f64,
    /// Wall-clock seconds spent in the parallel refinement phase.
    pub refine_seconds: f64,
    /// Projected refinement seconds on a true multicore host: the sum over
    /// passes of the busiest worker's *CPU* time (per-thread
    /// `CLOCK_THREAD_CPUTIME_ID`). On dedicated cores a thread's wall clock
    /// equals its CPU time, so this is what a real farm would observe even
    /// when this host oversubscribes its cores.
    pub projected_refine_seconds: f64,
    /// Instances refined per second of wall clock.
    pub instances_per_second: f64,
}

impl ParallelOutcome {
    /// Throughput extrapolated to instances per day — the unit Rossi quotes.
    pub fn instances_per_day(&self) -> f64 {
        self.instances_per_second * 86_400.0
    }

    /// Projected throughput on a true multicore host, instances per second.
    pub fn projected_instances_per_second(&self, total_refined: f64) -> f64 {
        total_refined / self.projected_refine_seconds.max(1e-9)
    }
}

/// Places a netlist using multi-threaded stripe refinement.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn place_parallel(netlist: &Netlist, die: Die, cfg: &ParallelConfig) -> ParallelOutcome {
    assert!(cfg.threads > 0, "at least one thread required");
    let mut placement = place_global(netlist, die, &GlobalConfig { iterations: 6, seed: cfg.seed });
    let hpwl_global = placement.total_hpwl(netlist);
    let n = netlist.num_instances();

    let start = Instant::now();
    let mut projected = 0.0f64;
    for pass in 0..cfg.passes {
        // Partition cells into stripes by x (even pass) or y (odd pass).
        let lanes = if pass % 2 == 0 { die.cols } else { die.rows };
        let threads = cfg.threads.min(lanes);
        let mut stripes: Vec<Vec<InstId>> = vec![Vec::new(); threads];
        for i in 0..n {
            let id = InstId::from_index(i);
            let (c, r) = die.snap(placement.position(id));
            let lane = if pass % 2 == 0 { c } else { r };
            let s = (lane * threads / lanes).min(threads - 1);
            stripes[s].push(id);
        }
        let region_of = |s: usize| -> Region {
            let lo = s * lanes / threads;
            let hi = ((s + 1) * lanes / threads).max(lo + 1);
            if pass % 2 == 0 {
                Region { c0: lo, c1: hi, r0: 0, r1: die.rows }
            } else {
                Region { c0: 0, c1: die.cols, r0: lo, r1: hi }
            }
        };
        // Each thread anneals its stripe on a private copy; the owner's cell
        // positions are merged back afterwards (disjoint sets, no conflicts).
        let results: Vec<(Vec<InstId>, Placement, f64)> = std::thread::scope(|scope| {
            let placement_ref = &placement;
            let handles: Vec<_> = stripes
                .into_iter()
                .enumerate()
                .map(|(t, cells)| {
                    let region = region_of(t);
                    scope.spawn(move || {
                        let busy = thread_cpu_seconds();
                        let mut local = placement_ref.clone();
                        anneal(
                            netlist,
                            &mut local,
                            &AnnealConfig {
                                moves_per_cell: cfg.moves_per_cell,
                                seed: cfg.seed ^ (t as u64 + 1) ^ ((pass as u64) << 8),
                                ..Default::default()
                            },
                            Some(&cells),
                            Some(region),
                        );
                        (cells, local, thread_cpu_seconds() - busy)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut pass_max = 0.0f64;
        for (cells, local, busy) in results {
            pass_max = pass_max.max(busy);
            for id in cells {
                placement.set_position(id, local.position(id));
            }
        }
        projected += pass_max;
    }
    let refine_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let refined = (n * cfg.passes) as f64;
    ParallelOutcome {
        hpwl_global,
        hpwl_final: placement.total_hpwl(netlist),
        placement,
        refine_seconds,
        projected_refine_seconds: projected.max(1e-9),
        instances_per_second: refined / refine_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn parallel_refinement_improves_hpwl() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 600,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 4, ..Default::default() });
        assert!(out.hpwl_final < out.hpwl_global);
        assert!(out.instances_per_second > 0.0);
        assert!(out.instances_per_day() > out.instances_per_second);
    }

    #[test]
    fn single_thread_works() {
        let n = generate::parity_tree(64).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 1, ..Default::default() });
        assert!(out.hpwl_final <= out.hpwl_global);
    }

    #[test]
    fn stripes_merge_without_overlap_loss() {
        // After merging, every cell must still be inside the die.
        let n = generate::switch_fabric(4, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 3, ..Default::default() });
        for i in 0..n.num_instances() {
            let p = out.placement.position(InstId::from_index(i));
            assert!(p.x >= 0.0 && p.x <= die.width_um);
            assert!(p.y >= 0.0 && p.y <= die.height_um);
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let _ = place_parallel(&n, die, &ParallelConfig { threads: 0, ..Default::default() });
    }
}
