//! Multi-threaded partitioned placement.
//!
//! Rossi: *"Taking (almost full) the opportunity given by the multiple cores
//! sitting in the farms, engineers can today run a place-and-route job for a
//! 5-6M instance sub-chip with a throughput approaching the 1M instance per
//! day."* This module reproduces the shape of that claim: the die is split
//! into stripes, each stripe's cells are annealed against a snapshot of the
//! rest of the design, and throughput scales with the worker count
//! (claim C9).
//!
//! The stripe **partition** (how many stripes, which cells, which seeds) is
//! set by [`ParallelConfig::stripes`] and never by the thread count, and the
//! stripe dispatch runs through [`eda_par`], so the final placement is
//! bit-identical for any [`ParallelConfig::threads`] value — workers only
//! change how fast the same stripes are annealed.

use crate::anneal::{anneal, AnnealConfig, Region};
use crate::floorplan::Die;
use crate::global::{place_global, GlobalConfig};
use crate::floorplan::Point;
use crate::placement::Placement;
use eda_netlist::{InstId, Netlist};
use std::time::Instant;

/// Configuration for [`place_parallel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Worker threads (`0` = all available cores). Never affects the result.
    pub threads: usize,
    /// Stripe partitions per pass. This — not `threads` — determines the
    /// refinement result; workers are clamped to the stripe count.
    pub stripes: usize,
    /// Annealing moves per cell within each stripe pass.
    pub moves_per_cell: usize,
    /// Stripe passes (alternating vertical/horizontal).
    pub passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            threads: eda_par::available_threads(),
            stripes: 4,
            moves_per_cell: 30,
            passes: 2,
            seed: 1,
        }
    }
}

/// Result of a parallel placement run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelOutcome {
    /// The final placement.
    pub placement: Placement,
    /// HPWL after global placement, before refinement.
    pub hpwl_global: f64,
    /// Final HPWL.
    pub hpwl_final: f64,
    /// Wall-clock seconds spent in the parallel refinement phase.
    pub refine_seconds: f64,
    /// Projected refinement seconds on a true multicore host: the sum over
    /// passes of the busiest worker's *CPU* time (per-thread
    /// `CLOCK_THREAD_CPUTIME_ID`). On dedicated cores a thread's wall clock
    /// equals its CPU time, so this is what a real farm would observe even
    /// when this host oversubscribes its cores.
    pub projected_refine_seconds: f64,
    /// Instances refined per second of wall clock.
    pub instances_per_second: f64,
    /// Accumulated parallel-execution record across all stripe dispatches.
    pub par_stats: eda_par::ParStats,
    /// Annealing moves accepted across all stripes and passes. Each stripe
    /// anneals a private seeded copy, so the sum is thread-invariant.
    pub moves_accepted: usize,
}

impl ParallelOutcome {
    /// Throughput extrapolated to instances per day — the unit Rossi quotes.
    pub fn instances_per_day(&self) -> f64 {
        self.instances_per_second * 86_400.0
    }

    /// Projected throughput on a true multicore host, instances per second.
    pub fn projected_instances_per_second(&self, total_refined: f64) -> f64 {
        total_refined / self.projected_refine_seconds.max(1e-9)
    }
}

/// Places a netlist using multi-threaded stripe refinement.
///
/// # Panics
///
/// Panics if `stripes == 0`.
pub fn place_parallel(netlist: &Netlist, die: Die, cfg: &ParallelConfig) -> ParallelOutcome {
    assert!(cfg.stripes > 0, "at least one stripe required");
    let mut placement = place_global(netlist, die, &GlobalConfig { iterations: 6, seed: cfg.seed });
    let hpwl_global = placement.total_hpwl(netlist);
    let n = netlist.num_instances();

    let start = Instant::now();
    let mut projected = 0.0f64;
    let mut par_stats = eda_par::ParStats::empty();
    let mut moves_accepted = 0usize;
    for pass in 0..cfg.passes {
        // Partition cells into stripes by x (even pass) or y (odd pass).
        // The stripe count is input/config-determined — never thread-count-
        // determined — so the refinement result is reproducible on any host.
        let lanes = if pass % 2 == 0 { die.cols } else { die.rows };
        let stripes = cfg.stripes.min(lanes).max(1);
        let mut cells_of: Vec<Vec<InstId>> = vec![Vec::new(); stripes];
        for i in 0..n {
            let id = InstId::from_index(i);
            let (c, r) = die.snap(placement.position(id));
            let lane = if pass % 2 == 0 { c } else { r };
            let s = (lane * stripes / lanes).min(stripes - 1);
            cells_of[s].push(id);
        }
        let region_of = |s: usize| -> Region {
            let lo = s * lanes / stripes;
            let hi = ((s + 1) * lanes / stripes).max(lo + 1);
            if pass % 2 == 0 {
                Region { c0: lo, c1: hi, r0: 0, r1: die.rows }
            } else {
                Region { c0: 0, c1: die.cols, r0: lo, r1: hi }
            }
        };
        let stripe_jobs: Vec<(Vec<InstId>, Region, u64)> = cells_of
            .into_iter()
            .enumerate()
            .map(|(s, cells)| {
                (cells, region_of(s), cfg.seed ^ (s as u64 + 1) ^ ((pass as u64) << 8))
            })
            .collect();
        // Each worker anneals a stripe on a private copy; the stripe's cell
        // positions are merged back afterwards (disjoint sets, no conflicts).
        // Each stripe yields its new cell positions plus its accepted-move
        // count (summed into `ParallelOutcome::moves_accepted`).
        type StripeResult = (Vec<(InstId, Point)>, usize);
        let workers = eda_par::resolve_threads(cfg.threads).min(stripe_jobs.len());
        let (moved, stats): (Vec<StripeResult>, eda_par::ParStats) = {
            let placement_ref = &placement;
            eda_par::par_map_stats(workers, &stripe_jobs, |_, (cells, region, seed)| {
                let mut local = placement_ref.clone();
                let stripe_stats = anneal(
                    netlist,
                    &mut local,
                    &AnnealConfig {
                        moves_per_cell: cfg.moves_per_cell,
                        seed: *seed,
                        ..Default::default()
                    },
                    Some(cells),
                    Some(*region),
                );
                let positions: Vec<(InstId, Point)> =
                    cells.iter().map(|&id| (id, local.position(id))).collect();
                (positions, stripe_stats.accepted)
            })
        };
        projected += stats.projected_wall_s();
        par_stats.absorb(&stats);
        for (stripe, accepted) in moved {
            moves_accepted += accepted;
            for (id, p) in stripe {
                placement.set_position(id, p);
            }
        }
    }
    let refine_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let refined = (n * cfg.passes) as f64;
    ParallelOutcome {
        hpwl_global,
        hpwl_final: placement.total_hpwl(netlist),
        placement,
        refine_seconds,
        projected_refine_seconds: projected.max(1e-9),
        instances_per_second: refined / refine_seconds,
        par_stats,
        moves_accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn parallel_refinement_improves_hpwl() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 600,
            seed: 3,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 4, ..Default::default() });
        assert!(out.hpwl_final < out.hpwl_global);
        assert!(out.instances_per_second > 0.0);
        assert!(out.instances_per_day() > out.instances_per_second);
    }

    #[test]
    fn single_thread_works() {
        let n = generate::parity_tree(64).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 1, ..Default::default() });
        assert!(out.hpwl_final <= out.hpwl_global);
    }

    #[test]
    fn stripes_merge_without_overlap_loss() {
        // After merging, every cell must still be inside the die.
        let n = generate::switch_fabric(4, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let out = place_parallel(&n, die, &ParallelConfig { threads: 3, ..Default::default() });
        for i in 0..n.num_instances() {
            let p = out.placement.position(InstId::from_index(i));
            assert!(p.x >= 0.0 && p.x <= die.width_um);
            assert!(p.y >= 0.0 && p.y <= die.height_um);
        }
    }

    #[test]
    fn default_threads_track_available_cores() {
        let d = ParallelConfig::default();
        assert_eq!(d.threads, eda_par::available_threads());
        assert!(d.stripes >= 1);
    }

    #[test]
    fn placement_is_identical_for_any_thread_count() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let mk = |threads| {
            place_parallel(
                &n,
                die,
                &ParallelConfig { threads, stripes: 4, moves_per_cell: 10, passes: 2, seed: 9 },
            )
        };
        let one = mk(1);
        for threads in [2, 8] {
            let par = mk(threads);
            assert_eq!(one.hpwl_final.to_bits(), par.hpwl_final.to_bits(), "threads={threads}");
            for i in 0..n.num_instances() {
                let id = InstId::from_index(i);
                let a = one.placement.position(id);
                let b = par.placement.position(id);
                assert_eq!(a.x.to_bits(), b.x.to_bits());
                assert_eq!(a.y.to_bits(), b.y.to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let _ = place_parallel(&n, die, &ParallelConfig { stripes: 0, ..Default::default() });
    }
}
