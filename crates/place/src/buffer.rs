//! Buffer-insertion planning for long nets.
//!
//! Domic: *"the flat implementation of a hierarchical design can save silicon
//! real estate, and power consumption — due to the lesser amount of
//! buffering."* Claim C7 compares the buffering this module plans for a flat
//! placement against a hierarchical one of the same design.

use crate::placement::Placement;
use eda_netlist::{CellFunction, Netlist};

/// Result of buffer planning over a placed design.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferPlan {
    /// Buffers needed per net (same order as `netlist.nets()`).
    pub per_net: Vec<u32>,
    /// Total buffers.
    pub total: u32,
    /// Added cell area in µm² (reference node).
    pub added_area_um2: f64,
    /// Added leakage in nW.
    pub added_leakage_nw: f64,
}

/// Plans buffers: a net needs `ceil(hpwl / max_unbuffered_um) - 1` repeaters,
/// plus `extra_per_net` mandatory buffers on nets listed in `forced` (used
/// for hierarchical boundary feedthroughs).
///
/// # Panics
///
/// Panics if `max_unbuffered_um <= 0`.
pub fn plan_buffers(
    netlist: &Netlist,
    placement: &Placement,
    max_unbuffered_um: f64,
    forced: &[(usize, u32)],
) -> BufferPlan {
    assert!(max_unbuffered_um > 0.0, "max unbuffered length must be positive");
    let lib = netlist.library();
    let buf = lib
        .find_function(CellFunction::Buf)
        .map(|id| lib.cell(id))
        .expect("library provides a buffer cell");
    let mut per_net = Vec::with_capacity(netlist.num_nets());
    let mut total = 0u32;
    for (net_id, _) in netlist.nets() {
        let hpwl = placement.net_hpwl(netlist, net_id);
        let mut k = if hpwl > max_unbuffered_um {
            (hpwl / max_unbuffered_um).ceil() as u32 - 1
        } else {
            0
        };
        if let Some(&(_, extra)) = forced.iter().find(|&&(idx, _)| idx == net_id.index()) {
            k += extra;
        }
        total += k;
        per_net.push(k);
    }
    BufferPlan {
        per_net,
        total,
        added_area_um2: total as f64 * buf.area_um2,
        added_leakage_nw: total as f64 * buf.leakage_nw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Die;
    use crate::global::{place_global, GlobalConfig};
    use eda_netlist::generate;

    #[test]
    fn short_nets_need_no_buffers() {
        let n = generate::parity_tree(16).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let plan = plan_buffers(&n, &p, 1e9, &[]);
        assert_eq!(plan.total, 0);
        assert_eq!(plan.added_area_um2, 0.0);
    }

    #[test]
    fn tight_limit_forces_buffers() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 200,
            seed: 2,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let loose = plan_buffers(&n, &p, die.width_um * 2.0, &[]);
        let tight = plan_buffers(&n, &p, die.width_um / 8.0, &[]);
        assert!(tight.total > loose.total);
        assert!(tight.added_area_um2 > 0.0);
        assert!(tight.added_leakage_nw > 0.0);
    }

    #[test]
    fn forced_buffers_added() {
        let n = generate::parity_tree(8).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let base = plan_buffers(&n, &p, 1e9, &[]);
        let forced = plan_buffers(&n, &p, 1e9, &[(0, 2), (1, 2)]);
        assert_eq!(forced.total, base.total + 4);
    }

    #[test]
    fn per_net_sums_to_total() {
        let n = generate::switch_fabric(4, 2).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let plan = plan_buffers(&n, &p, die.width_um / 4.0, &[]);
        assert_eq!(plan.per_net.iter().sum::<u32>(), plan.total);
    }
}
