//! Bin-based routing-congestion estimation (RUDY-style).
//!
//! Used by the scan-chain reordering experiment (claim C10) and by the flow
//! report to quantify how placement decisions translate into routing demand.

use crate::placement::Placement;
use eda_netlist::Netlist;

/// A routing-demand map over a uniform bin grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    /// Bins per side.
    pub bins: usize,
    /// Demand per bin (µm of wire per µm² of bin, scaled).
    demand: Vec<f64>,
    /// Routing capacity per bin in the same unit.
    pub capacity: f64,
}

impl CongestionMap {
    /// Builds the map from a placement.
    ///
    /// Each net spreads `hpwl` of demand uniformly over the bins its bounding
    /// box overlaps. `capacity` is the per-bin supply in the same unit.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn build(netlist: &Netlist, placement: &Placement, bins: usize, capacity: f64) -> CongestionMap {
        assert!(bins > 0, "need at least one bin");
        let die = placement.die;
        let bw = die.width_um / bins as f64;
        let bh = die.height_um / bins as f64;
        let mut demand = vec![0.0f64; bins * bins];
        for (net_id, _) in netlist.nets() {
            let Some((lo, hi)) = placement.net_bbox(netlist, net_id) else { continue };
            let hpwl = (hi.x - lo.x) + (hi.y - lo.y);
            if hpwl <= 0.0 {
                continue;
            }
            let bx0 = ((lo.x / bw) as usize).min(bins - 1);
            let bx1 = ((hi.x / bw) as usize).min(bins - 1);
            let by0 = ((lo.y / bh) as usize).min(bins - 1);
            let by1 = ((hi.y / bh) as usize).min(bins - 1);
            let count = ((bx1 - bx0 + 1) * (by1 - by0 + 1)) as f64;
            let share = hpwl / count;
            for by in by0..=by1 {
                for bx in bx0..=bx1 {
                    demand[by * bins + bx] += share;
                }
            }
        }
        CongestionMap { bins, demand, capacity }
    }

    /// Demand in bin `(x, y)`.
    pub fn demand_at(&self, x: usize, y: usize) -> f64 {
        self.demand[y * self.bins + x]
    }

    /// Maximum bin demand.
    pub fn max_demand(&self) -> f64 {
        self.demand.iter().copied().fold(0.0, f64::max)
    }

    /// Mean bin demand.
    pub fn avg_demand(&self) -> f64 {
        self.demand.iter().sum::<f64>() / self.demand.len() as f64
    }

    /// Number of bins whose demand exceeds capacity.
    pub fn overflowed_bins(&self) -> usize {
        self.demand.iter().filter(|&&d| d > self.capacity).count()
    }

    /// Total demand above capacity, summed over bins.
    pub fn total_overflow(&self) -> f64 {
        self.demand.iter().map(|&d| (d - self.capacity).max(0.0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Die;
    use crate::global::{place_global, GlobalConfig};
    use eda_netlist::generate;

    fn setup() -> (eda_netlist::Netlist, Placement) {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 11,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        (n, p)
    }

    #[test]
    fn demand_is_conserved() {
        let (n, p) = setup();
        let m = CongestionMap::build(&n, &p, 8, 1e9);
        let total: f64 = (0..8).flat_map(|y| (0..8).map(move |x| (x, y)))
            .map(|(x, y)| m.demand_at(x, y))
            .sum();
        assert!((total - p.total_hpwl(&n)).abs() / total < 1e-6, "demand equals HPWL");
    }

    #[test]
    fn tighter_capacity_means_more_overflow() {
        let (n, p) = setup();
        let loose = CongestionMap::build(&n, &p, 8, 1e9);
        let tight = CongestionMap::build(&n, &p, 8, loose.avg_demand() * 0.5);
        assert_eq!(loose.overflowed_bins(), 0);
        assert!(tight.overflowed_bins() > 0);
        assert!(tight.total_overflow() > 0.0);
    }

    #[test]
    fn max_at_least_avg() {
        let (n, p) = setup();
        let m = CongestionMap::build(&n, &p, 16, 1.0);
        assert!(m.max_demand() >= m.avg_demand());
    }
}
