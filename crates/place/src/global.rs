//! Global placement: seeded scatter, force-directed iterations, grid
//! spreading, and legalization onto the site grid.

use crate::floorplan::{Die, Point};
use crate::placement::Placement;
use eda_netlist::{InstId, NetDriver, Netlist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`place_global`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalConfig {
    /// Force-directed smoothing iterations.
    pub iterations: usize,
    /// RNG seed for the initial scatter.
    pub seed: u64,
}

impl Default for GlobalConfig {
    fn default() -> Self {
        GlobalConfig { iterations: 12, seed: 1 }
    }
}

/// Produces a legal global placement: random scatter, force-directed
/// centroid iterations with overlap spreading, then site legalization.
///
/// # Examples
///
/// ```
/// use eda_netlist::generate;
/// use eda_place::{place_global, Die, GlobalConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = generate::parity_tree(32)?;
/// let die = Die::for_netlist(&n, 0.7);
/// let p = place_global(&n, die, &GlobalConfig::default());
/// assert!(p.total_hpwl(&n) > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn place_global(netlist: &Netlist, die: Die, cfg: &GlobalConfig) -> Placement {
    let mut placement = Placement::new(netlist, die);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = netlist.num_instances();
    // Random scatter.
    for i in 0..n {
        let p = Point::new(rng.gen::<f64>() * die.width_um, rng.gen::<f64>() * die.height_um);
        placement.set_position(InstId::from_index(i), p);
    }
    // Force-directed smoothing: move each cell toward the centroid of the
    // points its nets touch, then push apart overloaded bins.
    for _ in 0..cfg.iterations {
        let mut sum = vec![(0.0f64, 0.0f64, 0usize); n];
        for (net_id, net) in netlist.nets() {
            let pts = placement.net_points(netlist, net_id);
            if pts.len() < 2 {
                continue;
            }
            let cx: f64 = pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64;
            let cy: f64 = pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64;
            if let Some(NetDriver::Instance(d)) = net.driver() {
                let s = &mut sum[d.index()];
                s.0 += cx;
                s.1 += cy;
                s.2 += 1;
            }
            for &(sink, _) in net.sinks() {
                let s = &mut sum[sink.index()];
                s.0 += cx;
                s.1 += cy;
                s.2 += 1;
            }
        }
        for (i, &(sx, sy, k)) in sum.iter().enumerate() {
            if k > 0 {
                placement.set_position(
                    InstId::from_index(i),
                    Point::new(sx / k as f64, sy / k as f64),
                );
            }
        }
        spread(&mut placement, netlist, &mut rng);
    }
    legalize(&mut placement, netlist);
    placement
}

/// Pushes cells out of overloaded bins (simple density spreading).
fn spread(placement: &mut Placement, netlist: &Netlist, rng: &mut StdRng) {
    let die = placement.die;
    let bins = ((netlist.num_instances() as f64).sqrt().ceil() as usize).clamp(2, 64);
    let bw = die.width_um / bins as f64;
    let bh = die.height_um / bins as f64;
    let cap = (netlist.num_instances() as f64 / (bins * bins) as f64 * 2.0).ceil() as usize + 1;
    let mut bin_members: Vec<Vec<usize>> = vec![Vec::new(); bins * bins];
    for i in 0..netlist.num_instances() {
        let p = placement.position(InstId::from_index(i));
        let bx = ((p.x / bw) as usize).min(bins - 1);
        let by = ((p.y / bh) as usize).min(bins - 1);
        bin_members[by * bins + bx].push(i);
    }
    for (b, members) in bin_members.iter_mut().enumerate() {
        while members.len() > cap {
            let i = members.pop().expect("len > cap ≥ 1");
            // Jitter the cell to a random neighbouring bin.
            let bx = b % bins;
            let by = b / bins;
            let nx = (bx as i64 + rng.gen_range(-1..=1)).clamp(0, bins as i64 - 1) as f64;
            let ny = (by as i64 + rng.gen_range(-1..=1)).clamp(0, bins as i64 - 1) as f64;
            let p = Point::new(
                (nx + rng.gen::<f64>()) * bw,
                (ny + rng.gen::<f64>()) * bh,
            );
            placement.set_position(InstId::from_index(i), p);
        }
    }
}

/// Snaps every instance to a free site (linear probing on collisions).
pub fn legalize(placement: &mut Placement, netlist: &Netlist) {
    let die = placement.die;
    let mut occupied = vec![false; die.num_sites()];
    for i in 0..netlist.num_instances() {
        let id = InstId::from_index(i);
        let (c, r) = die.snap(placement.position(id));
        let start = r * die.cols + c;
        let mut slot = start;
        while occupied[slot] {
            slot = (slot + 1) % die.num_sites();
            if slot == start {
                // More cells than sites: stack at origin (caller sized the
                // die to avoid this; tolerate gracefully).
                break;
            }
        }
        occupied[slot] = true;
        let (col, row) = (slot % die.cols, slot / die.cols);
        placement.set_position(id, die.site_center(col, row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use std::collections::HashSet;

    #[test]
    fn global_beats_random_scatter() {
        let n = generate::random_logic(eda_netlist::generate::RandomLogicConfig {
            gates: 400,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        // Pure scatter (0 iterations).
        let scatter = place_global(&n, die, &GlobalConfig { iterations: 0, seed: 9 });
        let smoothed = place_global(&n, die, &GlobalConfig { iterations: 12, seed: 9 });
        assert!(
            smoothed.total_hpwl(&n) < scatter.total_hpwl(&n),
            "smoothing must reduce wirelength: {} vs {}",
            smoothed.total_hpwl(&n),
            scatter.total_hpwl(&n)
        );
    }

    #[test]
    fn legalized_placement_has_no_overlaps() {
        let n = generate::switch_fabric(4, 4).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        let mut seen = HashSet::new();
        for i in 0..n.num_instances() {
            let pos = p.position(InstId::from_index(i));
            let key = ((pos.x * 1000.0) as i64, (pos.y * 1000.0) as i64);
            assert!(seen.insert(key), "two cells share a site at {pos:?}");
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let n = generate::parity_tree(32).unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let a = place_global(&n, die, &GlobalConfig { iterations: 5, seed: 42 });
        let b = place_global(&n, die, &GlobalConfig { iterations: 5, seed: 42 });
        assert_eq!(a.total_hpwl(&n), b.total_hpwl(&n));
    }

    #[test]
    fn cells_inside_die() {
        let n = generate::parity_tree(64).unwrap();
        let die = Die::for_netlist(&n, 0.6);
        let p = place_global(&n, die, &GlobalConfig::default());
        for i in 0..n.num_instances() {
            let pos = p.position(InstId::from_index(i));
            assert!(pos.x >= 0.0 && pos.x <= die.width_um);
            assert!(pos.y >= 0.0 && pos.y <= die.height_um);
        }
    }
}
