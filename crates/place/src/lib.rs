//! Placement for the `eda` workspace: floorplanning, global placement,
//! simulated-annealing refinement, multi-threaded partitioned placement,
//! congestion estimation, buffer planning, and hierarchical (per-block)
//! placement.
//!
//! The crate carries three of the panel's claims: multicore P&R throughput
//! (Rossi, claim C9, [`place_parallel`]), flat-vs-hierarchical buffering
//! (Domic, claim C7, [`place_hierarchical`] + [`plan_buffers`]), and the
//! congestion substrate behind scan-chain reordering (Rossi, claim C10,
//! [`CongestionMap`]).
//!
//! # Examples
//!
//! ```
//! use eda_netlist::generate;
//! use eda_place::{anneal, place_global, AnnealConfig, Die, GlobalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(16)?;
//! let die = Die::for_netlist(&design, 0.7);
//! let mut placement = place_global(&design, die, &GlobalConfig::default());
//! let stats = anneal(&design, &mut placement, &AnnealConfig::default(), None, None);
//! assert!(stats.hpwl_after <= stats.hpwl_before);
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod buffer;
pub mod congestion;
pub mod cts;
pub mod floorplan;
pub mod global;
pub mod hier;
pub mod multilevel;
pub mod parallel;
pub mod placement;

pub use anneal::{anneal, AnnealConfig, AnnealStats, Region};
pub use buffer::{plan_buffers, BufferPlan};
pub use congestion::CongestionMap;
pub use cts::{star_distribution, synthesize_clock_tree, ClockBuffer, ClockTree, CtsConfig};
pub use floorplan::{Die, Point};
pub use global::{legalize, place_global, GlobalConfig};
pub use hier::{place_hierarchical, HierOutcome};
pub use multilevel::{place_multilevel, MultilevelConfig, MultilevelOutcome};
pub use parallel::{place_parallel, ParallelConfig, ParallelOutcome};
pub use placement::{Placement, PlacementSnapshot};
