//! Technology-node models for the `eda` workspace.
//!
//! The DATE 2016 panel *Looking Backwards and Forwards* quantifies a decade of
//! progress in terms of technology-node parameters: integration capacity,
//! supply/leakage trends, metal pitch and the patterning it forces, mask and
//! layer cost, and the distribution of design starts across nodes. This crate
//! encodes those parameters as a queryable database so that every other
//! subsystem (synthesis, routing, lithography, power) can be evaluated *per
//! node* and the panel's cross-node claims can be regenerated.
//!
//! Parameter values follow public ITRS-era scaling trends; absolute numbers
//! are representative, and every claim reproduced from the panel is a *ratio*
//! between nodes, which is what the model preserves.
//!
//! # Examples
//!
//! ```
//! use eda_tech::Node;
//!
//! // The panel's abstract: "integration capacity has increased by two
//! // orders of magnitude" between 90 nm (2006) and 10 nm (2016).
//! let growth = Node::N10.integration_capacity() / Node::N90.integration_capacity();
//! assert!(growth >= 100.0);
//! ```

pub mod cost;
pub mod node;
pub mod patterning;
pub mod starts;

pub use cost::{CostModel, DieCost, MaskSetCost};
pub use node::{Node, NodeSpec};
pub use patterning::{PatterningPlan, PatterningScheme, SINGLE_EXPOSURE_PITCH_NM};
pub use starts::DesignStartModel;

/// Error type for technology queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TechError {
    /// A node name could not be parsed (e.g. `"33nm"`).
    UnknownNode(String),
    /// A query parameter was outside the modeled range.
    OutOfRange(String),
}

impl std::fmt::Display for TechError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechError::UnknownNode(s) => write!(f, "unknown technology node `{s}`"),
            TechError::OutOfRange(s) => write!(f, "parameter out of modeled range: {s}"),
        }
    }
}

impl std::error::Error for TechError {}
