//! Manufacturing cost models.
//!
//! Two of the panel's claims are cost claims:
//!
//! * Domic: *"moving from a 6-layer 130 nm A&M/S process variant to a 4-layer
//!   slashes 15–20 % from the cost"* — captured by the per-metal-layer share
//!   of wafer cost in [`CostModel::wafer_cost_with_layers`];
//! * Sawicki / Rossi: rising mask-set and R&D cost at emerging nodes —
//!   captured by [`MaskSetCost`].

use crate::node::Node;
use crate::patterning::PatterningPlan;

/// Wafer- and die-level cost model for a node.
///
/// # Examples
///
/// ```
/// use eda_tech::{CostModel, Node};
/// let m = CostModel::new(Node::N130);
/// let six = m.wafer_cost_with_layers(6);
/// let four = m.wafer_cost_with_layers(4);
/// let saving = 1.0 - four / six;
/// assert!(saving > 0.14 && saving < 0.21); // the panel's 15–20 %
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    node: Node,
    /// Fraction of baseline wafer cost attributable to each metal layer.
    /// Each metal layer is roughly one litho + etch + CMP module; BEOL is
    /// about half the step count of a mature process.
    metal_layer_cost_fraction: f64,
}

/// Cost of one die, with yield folded in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieCost {
    /// Good-die cost in dollars.
    pub usd: f64,
    /// Gross dies per wafer before yield.
    pub dies_per_wafer: f64,
    /// Estimated yield in [0, 1].
    pub yield_fraction: f64,
}

/// Mask-set (reticle) cost for a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaskSetCost {
    /// Total mask-set cost in dollars.
    pub usd: f64,
    /// Number of mask steps, including multi-patterning splits of the
    /// critical layers.
    pub masks: u32,
}

impl CostModel {
    /// Builds the cost model for a node.
    pub fn new(node: Node) -> CostModel {
        CostModel { node, metal_layer_cost_fraction: 0.085 }
    }

    /// The node this model describes.
    pub fn node(&self) -> Node {
        self.node
    }

    /// Baseline wafer cost at the node's typical metal stack.
    pub fn wafer_cost(&self) -> f64 {
        self.node.spec().wafer_cost_usd
    }

    /// Wafer cost if the design uses `layers` metal layers instead of the
    /// node-typical stack. Each layer added/removed shifts cost by the
    /// per-layer fraction of the baseline.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is zero.
    pub fn wafer_cost_with_layers(&self, layers: u32) -> f64 {
        assert!(layers > 0, "a routable process needs at least one metal layer");
        let base = self.node.spec();
        let delta = layers as f64 - base.typical_metal_layers as f64;
        base.wafer_cost_usd * (1.0 + delta * self.metal_layer_cost_fraction)
    }

    /// Good-die cost for a die of `die_mm2` with `layers` metal layers, using
    /// a negative-binomial yield model with defect density appropriate to the
    /// node's maturity.
    pub fn die_cost(&self, die_mm2: f64, layers: u32) -> DieCost {
        assert!(die_mm2 > 0.0, "die area must be positive");
        let wafer_area = std::f64::consts::PI * 150.0_f64.powi(2); // 300mm wafer
        // Edge loss: subtract one die-width ring.
        let dies_per_wafer = (wafer_area / die_mm2) * 0.92;
        // Defect density (per cm²): emerging nodes start dirtier.
        let d0 = if self.node.is_established() { 0.08 } else { 0.25 };
        let a_cm2 = die_mm2 / 100.0;
        let alpha = 3.0;
        let yield_fraction = (1.0 + d0 * a_cm2 / alpha).powf(-alpha);
        let usd = self.wafer_cost_with_layers(layers) / (dies_per_wafer * yield_fraction);
        DieCost { usd, dies_per_wafer, yield_fraction }
    }

    /// Mask-set cost, including the extra masks multi-patterning adds on the
    /// bottom metal layers.
    pub fn mask_set_cost(&self) -> MaskSetCost {
        let spec = self.node.spec();
        let plan = PatterningPlan::for_node(self.node);
        // The two tightest metal layers carry the full multi-patterning split.
        let extra = 2 * plan.total_exposures().saturating_sub(1);
        let masks = spec.mask_count + extra;
        // Per-mask cost rises steeply with node: ~$2k at 180nm to ~$120k at 5nm.
        let per_mask = 2_000.0 * (180.0 / spec.feature_nm).powf(1.15);
        MaskSetCost { usd: masks as f64 * per_mask, masks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_claim_layer_reduction_saves_15_to_20_percent_at_130nm() {
        // Domic: 6-layer -> 4-layer at 130nm slashes 15-20% of cost.
        let m = CostModel::new(Node::N130);
        let saving = 1.0 - m.wafer_cost_with_layers(4) / m.wafer_cost_with_layers(6);
        assert!(saving >= 0.15 * 0.9 && saving <= 0.20 * 1.1, "saving = {saving:.3}");
    }

    #[test]
    fn die_cost_grows_with_area() {
        let m = CostModel::new(Node::N28);
        let small = m.die_cost(25.0, 8).usd;
        let big = m.die_cost(100.0, 8).usd;
        assert!(big > 4.0 * small, "yield loss should make big dies superlinear");
    }

    #[test]
    fn yield_is_a_probability() {
        for n in Node::ALL {
            let dc = CostModel::new(n).die_cost(80.0, n.spec().typical_metal_layers);
            assert!(dc.yield_fraction > 0.0 && dc.yield_fraction <= 1.0);
            assert!(dc.dies_per_wafer > 1.0);
        }
    }

    #[test]
    fn mask_set_cost_explodes_at_emerging_nodes() {
        let c180 = CostModel::new(Node::N180).mask_set_cost();
        let c10 = CostModel::new(Node::N10).mask_set_cost();
        assert!(c10.usd > 30.0 * c180.usd, "mask cost ratio {}", c10.usd / c180.usd);
        // Multi-patterning adds masks beyond the baseline count at 10nm.
        assert!(c10.masks > Node::N10.spec().mask_count);
        // ...but not at single-patterned 28nm.
        let c28 = CostModel::new(Node::N28).mask_set_cost();
        assert_eq!(c28.masks, Node::N28.spec().mask_count);
    }

    #[test]
    fn fewer_layers_always_cheaper() {
        for n in Node::ALL {
            let m = CostModel::new(n);
            let t = n.spec().typical_metal_layers;
            assert!(m.wafer_cost_with_layers(t - 1) < m.wafer_cost_with_layers(t));
        }
    }

    #[test]
    #[should_panic(expected = "at least one metal layer")]
    fn zero_layers_panics() {
        let _ = CostModel::new(Node::N28).wafer_cost_with_layers(0);
    }
}
