//! The technology-node database: one [`NodeSpec`] per process generation from
//! 180 nm down to 5 nm.
//!
//! Values are representative of public ITRS-era data. Each field carries its
//! unit in the name. Cross-node *ratios* (density growth, Vdd scaling,
//! leakage crossover) are the quantities the panel's claims depend on.

use crate::TechError;

/// A process technology node, 180 nm through 5 nm.
///
/// Variants are ordered newest-last so that `Node::N180 < Node::N5` in
/// chronological / scaling order.
///
/// # Examples
///
/// ```
/// use eda_tech::Node;
/// assert!(Node::N28.is_established());
/// assert!(!Node::N10.is_established());
/// assert_eq!("28nm".parse::<Node>().unwrap(), Node::N28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum Node {
    N180,
    N130,
    N90,
    N65,
    N45,
    N32,
    N28,
    N22,
    N20,
    N16,
    N14,
    N10,
    N7,
    N5,
}

/// Full parameter set for one technology node.
///
/// Constructed only from [`Node::spec`]; the table is the single source of
/// truth for every per-node quantity in the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSpec {
    /// Marketing feature size in nanometers (the node "name").
    pub feature_nm: f64,
    /// Minimum metal (Mx) pitch in nanometers.
    pub metal_pitch_nm: f64,
    /// Contacted poly pitch in nanometers.
    pub poly_pitch_nm: f64,
    /// Logic transistor density in million transistors per mm².
    pub density_mtr_per_mm2: f64,
    /// Nominal supply voltage in volts.
    pub vdd_v: f64,
    /// Gate capacitance of a minimum inverter input, in femtofarads.
    pub gate_cap_ff: f64,
    /// Per-gate subthreshold + gate leakage at nominal corner, in nanowatts,
    /// normalized to a 2-input NAND equivalent.
    pub leakage_nw_per_gate: f64,
    /// Typical intrinsic gate delay (FO4-ish) in picoseconds.
    pub gate_delay_ps: f64,
    /// Typical number of routing metal layers offered by the platform.
    pub typical_metal_layers: u32,
    /// Number of mask steps in the baseline (non-optioned) process.
    pub mask_count: u32,
    /// Wafer cost for a 300 mm wafer in dollars (200 mm equivalents scaled).
    pub wafer_cost_usd: f64,
    /// Year of volume introduction.
    pub intro_year: u32,
}

impl Node {
    /// All nodes, oldest (180 nm) first.
    pub const ALL: [Node; 14] = [
        Node::N180,
        Node::N130,
        Node::N90,
        Node::N65,
        Node::N45,
        Node::N32,
        Node::N28,
        Node::N22,
        Node::N20,
        Node::N16,
        Node::N14,
        Node::N10,
        Node::N7,
        Node::N5,
    ];

    /// The full parameter record for this node.
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_tech::Node;
    /// let s = Node::N90.spec();
    /// assert_eq!(s.feature_nm, 90.0);
    /// ```
    pub fn spec(self) -> NodeSpec {
        match self {
            Node::N180 => NodeSpec {
                feature_nm: 180.0,
                metal_pitch_nm: 460.0,
                poly_pitch_nm: 500.0,
                density_mtr_per_mm2: 0.12,
                vdd_v: 1.8,
                gate_cap_ff: 4.0,
                leakage_nw_per_gate: 0.02,
                gate_delay_ps: 80.0,
                typical_metal_layers: 6,
                mask_count: 24,
                wafer_cost_usd: 1400.0,
                intro_year: 1999,
            },
            Node::N130 => NodeSpec {
                feature_nm: 130.0,
                metal_pitch_nm: 340.0,
                poly_pitch_nm: 340.0,
                density_mtr_per_mm2: 0.24,
                vdd_v: 1.5,
                gate_cap_ff: 3.0,
                leakage_nw_per_gate: 0.12,
                gate_delay_ps: 55.0,
                typical_metal_layers: 7,
                mask_count: 27,
                wafer_cost_usd: 1800.0,
                intro_year: 2001,
            },
            Node::N90 => NodeSpec {
                feature_nm: 90.0,
                metal_pitch_nm: 240.0,
                poly_pitch_nm: 260.0,
                density_mtr_per_mm2: 0.55,
                vdd_v: 1.2,
                gate_cap_ff: 2.2,
                leakage_nw_per_gate: 1.2,
                gate_delay_ps: 40.0,
                typical_metal_layers: 8,
                mask_count: 30,
                wafer_cost_usd: 2300.0,
                intro_year: 2004,
            },
            Node::N65 => NodeSpec {
                feature_nm: 65.0,
                metal_pitch_nm: 180.0,
                poly_pitch_nm: 220.0,
                density_mtr_per_mm2: 1.1,
                vdd_v: 1.1,
                gate_cap_ff: 1.8,
                leakage_nw_per_gate: 2.4,
                gate_delay_ps: 30.0,
                typical_metal_layers: 9,
                mask_count: 33,
                wafer_cost_usd: 2700.0,
                intro_year: 2006,
            },
            Node::N45 => NodeSpec {
                feature_nm: 45.0,
                metal_pitch_nm: 140.0,
                poly_pitch_nm: 170.0,
                density_mtr_per_mm2: 2.2,
                vdd_v: 1.0,
                gate_cap_ff: 1.4,
                leakage_nw_per_gate: 2.0,
                gate_delay_ps: 22.0,
                typical_metal_layers: 10,
                mask_count: 37,
                wafer_cost_usd: 3200.0,
                intro_year: 2008,
            },
            Node::N32 => NodeSpec {
                feature_nm: 32.0,
                metal_pitch_nm: 100.0,
                poly_pitch_nm: 130.0,
                density_mtr_per_mm2: 4.1,
                vdd_v: 0.95,
                gate_cap_ff: 1.1,
                leakage_nw_per_gate: 1.7,
                gate_delay_ps: 17.0,
                typical_metal_layers: 10,
                mask_count: 40,
                wafer_cost_usd: 3700.0,
                intro_year: 2010,
            },
            Node::N28 => NodeSpec {
                feature_nm: 28.0,
                metal_pitch_nm: 90.0,
                poly_pitch_nm: 117.0,
                density_mtr_per_mm2: 5.1,
                vdd_v: 0.9,
                gate_cap_ff: 1.0,
                leakage_nw_per_gate: 1.5,
                gate_delay_ps: 15.0,
                typical_metal_layers: 10,
                mask_count: 42,
                wafer_cost_usd: 4000.0,
                intro_year: 2011,
            },
            Node::N22 => NodeSpec {
                feature_nm: 22.0,
                metal_pitch_nm: 80.0,
                poly_pitch_nm: 90.0,
                density_mtr_per_mm2: 8.7,
                vdd_v: 0.85,
                gate_cap_ff: 0.85,
                leakage_nw_per_gate: 1.0,
                gate_delay_ps: 13.0,
                typical_metal_layers: 11,
                mask_count: 46,
                wafer_cost_usd: 4700.0,
                intro_year: 2012,
            },
            Node::N20 => NodeSpec {
                feature_nm: 20.0,
                metal_pitch_nm: 64.0,
                poly_pitch_nm: 86.0,
                density_mtr_per_mm2: 10.5,
                vdd_v: 0.85,
                gate_cap_ff: 0.8,
                leakage_nw_per_gate: 1.0,
                gate_delay_ps: 12.0,
                typical_metal_layers: 11,
                mask_count: 52,
                wafer_cost_usd: 5400.0,
                intro_year: 2014,
            },
            Node::N16 => NodeSpec {
                feature_nm: 16.0,
                metal_pitch_nm: 64.0,
                poly_pitch_nm: 90.0,
                density_mtr_per_mm2: 16.0,
                vdd_v: 0.8,
                gate_cap_ff: 0.75,
                leakage_nw_per_gate: 0.35,
                gate_delay_ps: 11.0,
                typical_metal_layers: 11,
                mask_count: 56,
                wafer_cost_usd: 6000.0,
                intro_year: 2015,
            },
            Node::N14 => NodeSpec {
                feature_nm: 14.0,
                metal_pitch_nm: 52.0,
                poly_pitch_nm: 78.0,
                density_mtr_per_mm2: 18.0,
                vdd_v: 0.8,
                gate_cap_ff: 0.7,
                leakage_nw_per_gate: 0.32,
                gate_delay_ps: 10.0,
                typical_metal_layers: 12,
                mask_count: 60,
                wafer_cost_usd: 6500.0,
                intro_year: 2015,
            },
            Node::N10 => NodeSpec {
                feature_nm: 10.0,
                metal_pitch_nm: 44.0,
                poly_pitch_nm: 64.0,
                density_mtr_per_mm2: 40.0,
                vdd_v: 0.75,
                gate_cap_ff: 0.6,
                leakage_nw_per_gate: 0.28,
                gate_delay_ps: 9.0,
                typical_metal_layers: 12,
                mask_count: 70,
                wafer_cost_usd: 7800.0,
                intro_year: 2017,
            },
            Node::N7 => NodeSpec {
                feature_nm: 7.0,
                metal_pitch_nm: 36.0,
                poly_pitch_nm: 54.0,
                density_mtr_per_mm2: 66.0,
                vdd_v: 0.7,
                gate_cap_ff: 0.5,
                leakage_nw_per_gate: 0.25,
                gate_delay_ps: 8.0,
                typical_metal_layers: 13,
                mask_count: 80,
                wafer_cost_usd: 9300.0,
                intro_year: 2019,
            },
            Node::N5 => NodeSpec {
                feature_nm: 5.0,
                metal_pitch_nm: 24.0,
                poly_pitch_nm: 48.0,
                density_mtr_per_mm2: 110.0,
                vdd_v: 0.65,
                gate_cap_ff: 0.45,
                leakage_nw_per_gate: 0.22,
                gate_delay_ps: 7.0,
                typical_metal_layers: 14,
                mask_count: 90,
                wafer_cost_usd: 11000.0,
                intro_year: 2021,
            },
        }
    }

    /// Integration capacity in millions of transistors for a typical
    /// large-die SoC at this node.
    ///
    /// Die area grows modestly across generations (80 mm² at 90 nm to
    /// 120 mm² at 10 nm in this model), so capacity growth is slightly above
    /// raw density growth — this is the panel's "two orders of magnitude".
    pub fn integration_capacity(self) -> f64 {
        self.spec().density_mtr_per_mm2 * self.typical_die_mm2()
    }

    /// Typical large-die area at this node in mm² (grows slowly with time).
    pub fn typical_die_mm2(self) -> f64 {
        // 80 mm² at the 2004-era node, +2.8 mm² per year of maturity.
        let years = self.spec().intro_year.saturating_sub(1999) as f64;
        80.0 + 2.8 * years
    }

    /// Whether the panel would call this an *established* node in 2016
    /// (32/28 nm and above — where ">90% of design starts are happening").
    pub fn is_established(self) -> bool {
        self.spec().feature_nm >= 28.0
    }

    /// Dynamic energy per gate toggle in femtojoules: `C·V²`.
    pub fn switching_energy_fj(self) -> f64 {
        let s = self.spec();
        s.gate_cap_ff * s.vdd_v * s.vdd_v
    }

    /// The next newer node, if any.
    pub fn next(self) -> Option<Node> {
        let i = Node::ALL.iter().position(|&n| n == self).expect("node in table");
        Node::ALL.get(i + 1).copied()
    }

    /// The previous (older) node, if any.
    pub fn prev(self) -> Option<Node> {
        let i = Node::ALL.iter().position(|&n| n == self).expect("node in table");
        i.checked_sub(1).map(|j| Node::ALL[j])
    }

    /// Name in the customary `"<feature>nm"` form.
    pub fn name(self) -> String {
        format!("{}nm", self.spec().feature_nm as u32)
    }
}

impl std::fmt::Display for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl std::str::FromStr for Node {
    type Err = TechError;

    /// Parses `"28nm"`, `"28"`, or `"N28"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().trim_start_matches(['n', 'N']).trim_end_matches("nm");
        let v: f64 = t.parse().map_err(|_| TechError::UnknownNode(s.to_string()))?;
        Node::ALL
            .iter()
            .copied()
            .find(|n| (n.spec().feature_nm - v).abs() < 0.5)
            .ok_or_else(|| TechError::UnknownNode(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_ordered_by_shrinking_feature() {
        for w in Node::ALL.windows(2) {
            assert!(
                w[0].spec().feature_nm > w[1].spec().feature_nm,
                "{} should be larger than {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn density_monotonically_increases() {
        for w in Node::ALL.windows(2) {
            assert!(w[0].spec().density_mtr_per_mm2 < w[1].spec().density_mtr_per_mm2);
        }
    }

    #[test]
    fn vdd_monotonically_non_increasing() {
        for w in Node::ALL.windows(2) {
            assert!(w[0].spec().vdd_v >= w[1].spec().vdd_v);
        }
    }

    #[test]
    fn wafer_cost_increases_with_scaling() {
        for w in Node::ALL.windows(2) {
            assert!(w[0].spec().wafer_cost_usd < w[1].spec().wafer_cost_usd);
        }
    }

    #[test]
    fn panel_claim_two_orders_of_magnitude_90_to_10() {
        let growth = Node::N10.integration_capacity() / Node::N90.integration_capacity();
        assert!(growth >= 100.0, "got {growth}");
        assert!(growth <= 300.0, "growth implausibly large: {growth}");
    }

    #[test]
    fn leakage_peaks_around_90_65_then_tamed() {
        // The panel: power was "tamed"; leakage spiked at 90/65 then HKMG /
        // FinFET brought it back down.
        let peak = Node::N65.spec().leakage_nw_per_gate;
        assert!(peak > Node::N130.spec().leakage_nw_per_gate);
        assert!(peak > Node::N16.spec().leakage_nw_per_gate);
    }

    #[test]
    fn parse_round_trips() {
        for n in Node::ALL {
            let s = n.to_string();
            assert_eq!(s.parse::<Node>().unwrap(), n);
        }
        assert_eq!("N28".parse::<Node>().unwrap(), Node::N28);
        assert_eq!("28".parse::<Node>().unwrap(), Node::N28);
        assert!("33nm".parse::<Node>().is_err());
        assert!("".parse::<Node>().is_err());
    }

    #[test]
    fn next_prev_walk_the_table() {
        assert_eq!(Node::N180.prev(), None);
        assert_eq!(Node::N5.next(), None);
        assert_eq!(Node::N90.next(), Some(Node::N65));
        assert_eq!(Node::N65.prev(), Some(Node::N90));
    }

    #[test]
    fn established_split_matches_panel() {
        assert!(Node::N180.is_established());
        assert!(Node::N32.is_established());
        assert!(Node::N28.is_established());
        assert!(!Node::N22.is_established());
        assert!(!Node::N7.is_established());
    }

    #[test]
    fn switching_energy_shrinks_monotonically() {
        for w in Node::ALL.windows(2) {
            assert!(w[0].switching_energy_fj() >= w[1].switching_energy_fj());
        }
    }

    #[test]
    fn single_patterning_pitch_floor_is_near_22nm_node() {
        // Domic: "the minimum single-patterning pitch of approximately 80nm";
        // 22nm is the last node at/above that floor.
        assert!(Node::N22.spec().metal_pitch_nm >= 80.0);
        assert!(Node::N20.spec().metal_pitch_nm < 80.0);
    }
}
