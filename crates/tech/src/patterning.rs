//! Multi-patterning requirements per node.
//!
//! Domic's position statement: *"starting at 20 nanometers, it has become
//! impossible to draw the copper interconnects of an IC without double-,
//! triple-, or even quadruple-patterning. Without EUV, 5 nanometers could
//! require octuple-patterning; multi-patterning has allowed going beyond the
//! minimum single-patterning pitch of approximately 80 nanometers."*
//!
//! This module derives, from a node's metal pitch, the number of exposures a
//! 193 nm-immersion flow needs. The model has two parts:
//!
//! * **line multiplicity** — for 1-D gridded metal, same-mask lines must sit
//!   at least [`SINGLE_EXPOSURE_PITCH_NM`] apart, so the track pattern is
//!   split across `ceil(80 / pitch)` masks (LELE / LELELE / SAQP-equivalent);
//! * **cut masks** — below roughly a 40 nm pitch, line ends can no longer be
//!   printed in the same exposure, so each line mask acquires a companion cut
//!   mask, doubling the exposure count.
//!
//! At a 5 nm-class 28 nm pitch this yields 4 line + 4 cut = **8 exposures**,
//! i.e. the panel's octuple patterning.

use crate::node::Node;

/// Minimum pitch printable in a single 193 nm-immersion exposure, in
/// nanometers (the panel's "approximately 80 nanometers").
pub const SINGLE_EXPOSURE_PITCH_NM: f64 = 80.0;

/// Pitch below which separate cut masks are required for line ends.
pub const CUT_MASK_PITCH_NM: f64 = 40.0;

/// The named multi-patterning schemes the panel mentions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PatterningScheme {
    /// One exposure per layer.
    Single,
    /// Two exposures (LELE / SADP).
    Double,
    /// Three exposures (LELELE).
    Triple,
    /// Four exposures (SAQP / LELELELE).
    Quadruple,
    /// More than four exposures; the payload is the exposure count
    /// (e.g. 8 = the panel's "octuple-patterning").
    Higher(u32),
}

impl PatterningScheme {
    /// Total exposures implied by the scheme.
    pub fn exposures(self) -> u32 {
        match self {
            PatterningScheme::Single => 1,
            PatterningScheme::Double => 2,
            PatterningScheme::Triple => 3,
            PatterningScheme::Quadruple => 4,
            PatterningScheme::Higher(n) => n,
        }
    }

    /// Builds the scheme for a given exposure count.
    pub fn from_exposures(n: u32) -> PatterningScheme {
        match n {
            0 | 1 => PatterningScheme::Single,
            2 => PatterningScheme::Double,
            3 => PatterningScheme::Triple,
            4 => PatterningScheme::Quadruple,
            n => PatterningScheme::Higher(n),
        }
    }
}

impl std::fmt::Display for PatterningScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatterningScheme::Single => write!(f, "single"),
            PatterningScheme::Double => write!(f, "double"),
            PatterningScheme::Triple => write!(f, "triple"),
            PatterningScheme::Quadruple => write!(f, "quadruple"),
            PatterningScheme::Higher(8) => write!(f, "octuple"),
            PatterningScheme::Higher(n) => write!(f, "{n}-fold"),
        }
    }
}

/// The patterning plan for one metal layer at one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatterningPlan {
    /// The metal pitch being printed, in nanometers.
    pub pitch_nm: f64,
    /// Number of line (track) masks.
    pub line_masks: u32,
    /// Number of cut masks (0 above [`CUT_MASK_PITCH_NM`]).
    pub cut_masks: u32,
}

impl PatterningPlan {
    /// Derives the plan for an arbitrary pitch under 193i rules.
    ///
    /// # Examples
    ///
    /// ```
    /// use eda_tech::PatterningPlan;
    /// // 64nm pitch (20nm node): double patterning, no cut masks yet.
    /// assert_eq!(PatterningPlan::for_pitch(64.0).total_exposures(), 2);
    /// // 24nm pitch (5nm node without EUV): octuple.
    /// assert_eq!(PatterningPlan::for_pitch(24.0).total_exposures(), 8);
    /// ```
    pub fn for_pitch(pitch_nm: f64) -> PatterningPlan {
        assert!(pitch_nm > 0.0, "pitch must be positive");
        let line_masks = (SINGLE_EXPOSURE_PITCH_NM / pitch_nm).ceil().max(1.0) as u32;
        let cut_masks = if pitch_nm < CUT_MASK_PITCH_NM { line_masks } else { 0 };
        PatterningPlan { pitch_nm, line_masks, cut_masks }
    }

    /// Derives the plan for a node's minimum metal pitch.
    pub fn for_node(node: Node) -> PatterningPlan {
        PatterningPlan::for_pitch(node.spec().metal_pitch_nm)
    }

    /// Total exposures (line + cut masks).
    pub fn total_exposures(&self) -> u32 {
        self.line_masks + self.cut_masks
    }

    /// The named scheme for this plan.
    pub fn scheme(&self) -> PatterningScheme {
        PatterningScheme::from_exposures(self.total_exposures())
    }

    /// Whether EDA decomposition is needed at all (more than one exposure).
    pub fn needs_decomposition(&self) -> bool {
        self.total_exposures() > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_at_or_above_22_are_single_patterned() {
        for n in [Node::N180, Node::N130, Node::N90, Node::N65, Node::N45, Node::N32, Node::N28, Node::N22] {
            assert_eq!(
                PatterningPlan::for_node(n).scheme(),
                PatterningScheme::Single,
                "{n} should be single-patterned"
            );
        }
    }

    #[test]
    fn panel_claim_multi_patterning_starts_at_20nm() {
        // Domic: "starting at 20 nanometers, it has become impossible ...
        // without double-, triple-, or even quadruple-patterning".
        let p20 = PatterningPlan::for_node(Node::N20);
        assert_eq!(p20.scheme(), PatterningScheme::Double);
        let p10 = PatterningPlan::for_node(Node::N10);
        assert!(p10.total_exposures() >= 2);
        let p7 = PatterningPlan::for_node(Node::N7);
        assert!(p7.total_exposures() >= 4, "7nm needs >=4 exposures, got {}", p7.total_exposures());
    }

    #[test]
    fn panel_claim_5nm_without_euv_is_octuple() {
        let p = PatterningPlan::for_node(Node::N5);
        assert_eq!(p.total_exposures(), 8, "expected octuple patterning at 5nm");
        assert_eq!(p.scheme().to_string(), "octuple");
    }

    #[test]
    fn exposures_monotone_in_shrinking_pitch() {
        let mut last = 0;
        for pitch in (10..=100).rev().map(|p| p as f64) {
            let e = PatterningPlan::for_pitch(pitch).total_exposures();
            assert!(e >= last, "exposures must not decrease as pitch shrinks");
            last = e;
        }
    }

    #[test]
    fn scheme_roundtrip() {
        for n in 1..=10 {
            assert_eq!(PatterningScheme::from_exposures(n).exposures(), n);
        }
        assert_eq!(PatterningScheme::from_exposures(0).exposures(), 1);
    }

    #[test]
    #[should_panic(expected = "pitch must be positive")]
    fn zero_pitch_panics() {
        let _ = PatterningPlan::for_pitch(0.0);
    }
}
