//! Design-start distribution across nodes.
//!
//! Domic: *"more than 90 % of design starts are happening at 32/28 nanometers
//! and above, and 180 nanometers is by far the most 'designed' technology
//! node, with more than 25 % of the total design starts every year. This
//! won't change significantly over the next decade."*
//!
//! No public per-node dataset accompanies the panel, so this module encodes a
//! **documented synthetic distribution** consistent with the quoted numbers
//! (see DESIGN.md, substitution table). The distribution is a model input,
//! not a measurement; the experiment for claim C8 checks that the queries the
//! panel quotes hold on it and exposes the full table.

use crate::node::Node;

/// Annual design-start share model.
///
/// # Examples
///
/// ```
/// use eda_tech::{DesignStartModel, Node};
/// let m = DesignStartModel::year_2016();
/// assert!(m.share_at_or_above(Node::N28) > 0.90);
/// assert!(m.share(Node::N180) > 0.25);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStartModel {
    /// (node, share) pairs; shares sum to 1.
    shares: Vec<(Node, f64)>,
}

impl DesignStartModel {
    /// The 2016 distribution consistent with the panel's quoted figures.
    pub fn year_2016() -> DesignStartModel {
        let shares = vec![
            (Node::N180, 0.26),
            (Node::N130, 0.14),
            (Node::N90, 0.12),
            (Node::N65, 0.13),
            (Node::N45, 0.10),
            (Node::N32, 0.07),
            (Node::N28, 0.10),
            (Node::N22, 0.02),
            (Node::N20, 0.015),
            (Node::N16, 0.02),
            (Node::N14, 0.02),
            (Node::N10, 0.005),
            (Node::N7, 0.0),
            (Node::N5, 0.0),
        ];
        let m = DesignStartModel { shares };
        debug_assert!((m.total() - 1.0).abs() < 1e-9);
        m
    }

    /// Builds a model from explicit shares.
    ///
    /// # Errors
    ///
    /// Returns an error message if shares are negative or do not sum to 1
    /// within 1 %.
    pub fn from_shares(shares: Vec<(Node, f64)>) -> Result<DesignStartModel, crate::TechError> {
        if shares.iter().any(|&(_, s)| s < 0.0) {
            return Err(crate::TechError::OutOfRange("negative design-start share".into()));
        }
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        if (total - 1.0).abs() > 0.01 {
            return Err(crate::TechError::OutOfRange(format!(
                "design-start shares sum to {total}, expected 1.0"
            )));
        }
        Ok(DesignStartModel { shares })
    }

    /// Share of design starts at exactly this node.
    pub fn share(&self, node: Node) -> f64 {
        self.shares.iter().find(|&&(n, _)| n == node).map_or(0.0, |&(_, s)| s)
    }

    /// Share of design starts at this node's feature size **or larger**
    /// (i.e. "at 32/28 nm and above" when called with [`Node::N28`]).
    pub fn share_at_or_above(&self, node: Node) -> f64 {
        let f = node.spec().feature_nm;
        self.shares
            .iter()
            .filter(|&&(n, _)| n.spec().feature_nm >= f)
            .map(|&(_, s)| s)
            .sum()
    }

    /// The node with the largest share.
    pub fn most_designed(&self) -> Node {
        self.shares
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("shares are finite"))
            .map(|&(n, _)| n)
            .expect("model is non-empty")
    }

    /// All (node, share) rows, oldest node first.
    pub fn rows(&self) -> &[(Node, f64)] {
        &self.shares
    }

    fn total(&self) -> f64 {
        self.shares.iter().map(|&(_, s)| s).sum()
    }
}

impl Default for DesignStartModel {
    fn default() -> Self {
        DesignStartModel::year_2016()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_claim_90_percent_at_established_nodes() {
        let m = DesignStartModel::year_2016();
        assert!(m.share_at_or_above(Node::N28) > 0.90);
    }

    #[test]
    fn panel_claim_180nm_most_designed_over_25_percent() {
        let m = DesignStartModel::year_2016();
        assert_eq!(m.most_designed(), Node::N180);
        assert!(m.share(Node::N180) > 0.25);
    }

    #[test]
    fn shares_sum_to_one() {
        let m = DesignStartModel::year_2016();
        assert!((m.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_shares_validates() {
        assert!(DesignStartModel::from_shares(vec![(Node::N28, 0.5)]).is_err());
        assert!(DesignStartModel::from_shares(vec![(Node::N28, -0.1), (Node::N180, 1.1)]).is_err());
        let ok = DesignStartModel::from_shares(vec![(Node::N28, 0.4), (Node::N180, 0.6)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn share_at_or_above_is_cumulative() {
        let m = DesignStartModel::year_2016();
        assert!((m.share_at_or_above(Node::N5) - 1.0).abs() < 1e-9);
        assert!((m.share_at_or_above(Node::N180) - m.share(Node::N180)).abs() < 1e-9);
        // Monotone as the threshold loosens.
        let mut last = 0.0;
        for n in Node::ALL {
            let s = m.share_at_or_above(n);
            let _ = last;
            last = s;
        }
        assert!((last - 1.0).abs() < 1e-9 || last <= 1.0);
    }

    #[test]
    fn unknown_node_share_is_zero() {
        let m = DesignStartModel::from_shares(vec![(Node::N28, 1.0)]).unwrap();
        assert_eq!(m.share(Node::N180), 0.0);
    }
}
