//! Routing rule decks: how the metal stack and patterning constraints
//! translate into per-edge track capacity.
//!
//! Domic: *"more efficient 'line-search' routing algorithms have resulted in
//! much better routers under 'simpler' design rules, making it possible to
//! reduce layers at 28 nanometers and above"* — the deck distinguishes the
//! simple single-patterned regimes from multi-patterned ones, where
//! same-mask spacing eats tracks and adds via cost.

/// A simplified routing rule deck.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleDeck {
    /// Human-readable name.
    pub name: String,
    /// Number of routing metal layers.
    pub layers: u32,
    /// Routing tracks per layer per g-cell edge.
    pub tracks_per_layer: u32,
    /// Fraction of tracks usable after multi-patterning same-mask spacing
    /// and colouring constraints (1.0 for single-patterned nodes).
    pub track_derating: f64,
    /// Relative cost of a via (bend) under this deck.
    pub via_cost: f64,
}

impl RuleDeck {
    /// A simple, single-patterned deck (130/90/65 nm-class) with the given
    /// layer count.
    ///
    /// # Panics
    ///
    /// Panics if `layers < 2`.
    pub fn simple(layers: u32) -> RuleDeck {
        assert!(layers >= 2, "routing needs at least 2 layers");
        RuleDeck {
            name: format!("simple-{layers}L"),
            layers,
            tracks_per_layer: 4,
            track_derating: 1.0,
            via_cost: 1.0,
        }
    }

    /// A multi-patterned deck (≤20 nm-class): colouring constraints derate
    /// usable tracks and make vias costlier (cut masks).
    ///
    /// # Panics
    ///
    /// Panics if `layers < 2` or `exposures == 0`.
    pub fn multi_patterned(layers: u32, exposures: u32) -> RuleDeck {
        assert!(layers >= 2, "routing needs at least 2 layers");
        assert!(exposures > 0, "at least one exposure");
        // Each extra exposure costs ~12% of tracks to same-mask spacing and
        // stitch keep-outs.
        let derating = (1.0 - 0.12 * (exposures.saturating_sub(1)) as f64).max(0.4);
        RuleDeck {
            name: format!("mp{exposures}-{layers}L"),
            layers,
            tracks_per_layer: 4,
            track_derating: derating,
            via_cost: 1.0 + 0.5 * exposures.saturating_sub(1) as f64,
        }
    }

    /// Effective `(horizontal, vertical)` edge capacities: layers alternate
    /// preferred direction, with derating applied.
    pub fn edge_capacities(&self) -> (u32, u32) {
        let h_layers = self.layers.div_ceil(2);
        let v_layers = self.layers / 2;
        let cap = |l: u32| ((l * self.tracks_per_layer) as f64 * self.track_derating).floor() as u32;
        (cap(h_layers).max(1), cap(v_layers).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_scales_with_layers() {
        let four = RuleDeck::simple(4).edge_capacities();
        let six = RuleDeck::simple(6).edge_capacities();
        assert!(six.0 > four.0 && six.1 > four.1);
    }

    #[test]
    fn multipatterning_derates_capacity() {
        let sp = RuleDeck::simple(6).edge_capacities();
        let mp = RuleDeck::multi_patterned(6, 3).edge_capacities();
        assert!(mp.0 < sp.0);
        assert!(RuleDeck::multi_patterned(6, 3).via_cost > RuleDeck::simple(6).via_cost);
    }

    #[test]
    fn derating_floors_at_40_percent() {
        let extreme = RuleDeck::multi_patterned(6, 10);
        assert!((extreme.track_derating - 0.4).abs() < 1e-9);
    }

    #[test]
    fn capacities_never_zero() {
        for l in 2..=14 {
            let (h, v) = RuleDeck::multi_patterned(l, 8).edge_capacities();
            assert!(h >= 1 && v >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 layers")]
    fn single_layer_rejected() {
        let _ = RuleDeck::simple(1);
    }
}
