//! The global-routing grid: g-cells with directed edge capacities derived
//! from the metal stack and rule deck.

use crate::rules::RuleDeck;

/// A cell coordinate on the routing grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GCell {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
}

impl GCell {
    /// Creates a g-cell coordinate.
    pub fn new(x: u32, y: u32) -> GCell {
        GCell { x, y }
    }

    /// Manhattan distance between g-cells.
    pub fn manhattan(&self, other: &GCell) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// 4-neighbours of a cell on a `width × height` grid, in the fixed
/// left/right/down/up order every search expands in. Shared by the dense
/// grid and region overlays so expansion order — and therefore every
/// routed path — is identical whichever demand view a search runs
/// against.
pub fn neighbours4(width: u32, height: u32, c: GCell) -> impl Iterator<Item = GCell> {
    [
        (c.x > 0).then(|| GCell::new(c.x - 1, c.y)),
        (c.x + 1 < width).then(|| GCell::new(c.x + 1, c.y)),
        (c.y > 0).then(|| GCell::new(c.x, c.y - 1)),
        (c.y + 1 < height).then(|| GCell::new(c.x, c.y + 1)),
    ]
    .into_iter()
    .flatten()
}

/// PathFinder cost of one edge from its raw demand parts: base 1 plus
/// history and congestion penalties. Factored out so the dense grid and
/// region overlays compute bit-identical `f64` costs from the same
/// expression.
#[inline]
pub fn step_cost_from(usage: u32, cap: u32, hist: f32) -> f64 {
    let over = if usage >= cap { 1.0 + (usage - cap) as f64 } else { 0.0 };
    let density = usage as f64 / cap.max(1) as f64;
    1.0 + hist as f64 + 4.0 * over + 0.5 * density
}

/// A read-only congestion-demand view a search can cost edges against.
///
/// Implemented by [`RoutingGrid`] (the committed global picture) and by
/// the region router's private overlays (committed picture + the region's
/// uncommitted local routes). Searches are generic over this trait, and
/// both implementations derive costs from [`step_cost_from`], so a search
/// result depends only on the demand values — never on which view served
/// them.
pub trait DemandGrid: Sync {
    /// Grid width in g-cells.
    fn width(&self) -> u32;
    /// Grid height in g-cells.
    fn height(&self) -> u32;
    /// PathFinder cost of stepping between two adjacent cells.
    fn step_cost(&self, a: GCell, b: GCell) -> f64;
    /// Whether the edge between adjacent cells is at or over capacity.
    fn is_full(&self, a: GCell, b: GCell) -> bool;
}

/// The routing grid with per-edge usage tracking and PathFinder-style
/// history costs.
#[derive(Debug, Clone)]
pub struct RoutingGrid {
    /// Grid width in g-cells.
    pub width: u32,
    /// Grid height in g-cells.
    pub height: u32,
    /// Capacity of each horizontal edge (tracks).
    pub cap_h: u32,
    /// Capacity of each vertical edge (tracks).
    pub cap_v: u32,
    /// Usage of horizontal edges: index `y * (width-1) + x` for the edge
    /// between `(x, y)` and `(x+1, y)`.
    usage_h: Vec<u32>,
    /// Usage of vertical edges: index `y * width + x` for the edge between
    /// `(x, y)` and `(x, y+1)`.
    usage_v: Vec<u32>,
    /// Congestion history (same indexing, horizontal then vertical).
    history_h: Vec<f32>,
    history_v: Vec<f32>,
}

impl RoutingGrid {
    /// Builds a grid from dimensions and a rule deck.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 2.
    pub fn new(width: u32, height: u32, deck: &RuleDeck) -> RoutingGrid {
        assert!(width >= 2 && height >= 2, "grid must be at least 2x2");
        let (cap_h, cap_v) = deck.edge_capacities();
        RoutingGrid {
            width,
            height,
            cap_h,
            cap_v,
            usage_h: vec![0; ((width - 1) * height) as usize],
            usage_v: vec![0; (width * (height - 1)) as usize],
            history_h: vec![0.0; ((width - 1) * height) as usize],
            history_v: vec![0.0; (width * (height - 1)) as usize],
        }
    }

    fn h_index(&self, x: u32, y: u32) -> usize {
        (y * (self.width - 1) + x) as usize
    }

    fn v_index(&self, x: u32, y: u32) -> usize {
        (y * self.width + x) as usize
    }

    /// Usage of the horizontal edge from `(x, y)` to `(x+1, y)`.
    pub fn usage_h(&self, x: u32, y: u32) -> u32 {
        self.usage_h[self.h_index(x, y)]
    }

    /// Usage of the vertical edge from `(x, y)` to `(x, y+1)`.
    pub fn usage_v(&self, x: u32, y: u32) -> u32 {
        self.usage_v[self.v_index(x, y)]
    }

    /// Adds (or removes, `delta < 0`) usage on the edge between two adjacent
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics if the cells are not 4-neighbours or usage would underflow.
    pub fn add_usage(&mut self, a: GCell, b: GCell, delta: i32) {
        let apply = |u: &mut u32| {
            *u = u32::try_from(*u as i64 + delta as i64).expect("usage underflow");
        };
        if a.y == b.y && a.x.abs_diff(b.x) == 1 {
            let x = a.x.min(b.x);
            apply(&mut self.usage_h[(a.y * (self.width - 1) + x) as usize]);
        } else if a.x == b.x && a.y.abs_diff(b.y) == 1 {
            let y = a.y.min(b.y);
            apply(&mut self.usage_v[(y * self.width + a.x) as usize]);
        } else {
            panic!("cells {a:?} and {b:?} are not adjacent");
        }
    }

    /// Raw demand parts `(usage, capacity, history)` of the edge between
    /// two adjacent cells — what overlays add their local deltas to.
    pub fn edge_parts(&self, a: GCell, b: GCell) -> (u32, u32, f32) {
        if a.y == b.y {
            let x = a.x.min(b.x);
            (self.usage_h(x, a.y), self.cap_h, self.history_h[self.h_index(x, a.y)])
        } else {
            let y = a.y.min(b.y);
            (self.usage_v(a.x, y), self.cap_v, self.history_v[self.v_index(a.x, y)])
        }
    }

    /// PathFinder cost of stepping from `a` to adjacent `b`: base 1 plus
    /// congestion and history penalties.
    pub fn step_cost(&self, a: GCell, b: GCell) -> f64 {
        let (usage, cap, hist) = self.edge_parts(a, b);
        step_cost_from(usage, cap, hist)
    }

    /// Whether the edge between adjacent cells is at or over capacity.
    pub fn is_full(&self, a: GCell, b: GCell) -> bool {
        if a.y == b.y {
            let x = a.x.min(b.x);
            self.usage_h(x, a.y) >= self.cap_h
        } else {
            let y = a.y.min(b.y);
            self.usage_v(a.x, y) >= self.cap_v
        }
    }

    /// Whether the edge between adjacent cells is strictly over capacity.
    pub fn is_overflowed(&self, a: GCell, b: GCell) -> bool {
        if a.y == b.y {
            let x = a.x.min(b.x);
            self.usage_h(x, a.y) > self.cap_h
        } else {
            let y = a.y.min(b.y);
            self.usage_v(a.x, y) > self.cap_v
        }
    }

    /// Increments history cost on every currently-overflowed edge (called
    /// between rip-up iterations).
    pub fn bump_history(&mut self) {
        for (i, &u) in self.usage_h.iter().enumerate() {
            if u > self.cap_h {
                self.history_h[i] += 1.0;
            }
        }
        for (i, &u) in self.usage_v.iter().enumerate() {
            if u > self.cap_v {
                self.history_v[i] += 1.0;
            }
        }
    }

    /// Total edge overflow (usage above capacity, summed).
    pub fn total_overflow(&self) -> u64 {
        let h: u64 =
            self.usage_h.iter().map(|&u| u.saturating_sub(self.cap_h) as u64).sum();
        let v: u64 =
            self.usage_v.iter().map(|&u| u.saturating_sub(self.cap_v) as u64).sum();
        h + v
    }

    /// Total used track-segments (wirelength in g-cell units).
    pub fn total_usage(&self) -> u64 {
        self.usage_h.iter().map(|&u| u as u64).sum::<u64>()
            + self.usage_v.iter().map(|&u| u as u64).sum::<u64>()
    }

    /// 4-neighbours of a cell.
    pub fn neighbours(&self, c: GCell) -> impl Iterator<Item = GCell> + '_ {
        neighbours4(self.width, self.height, c)
    }
}

impl DemandGrid for RoutingGrid {
    fn width(&self) -> u32 {
        self.width
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn step_cost(&self, a: GCell, b: GCell) -> f64 {
        RoutingGrid::step_cost(self, a, b)
    }

    fn is_full(&self, a: GCell, b: GCell) -> bool {
        RoutingGrid::is_full(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleDeck;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(8, 8, &RuleDeck::simple(6))
    }

    #[test]
    fn usage_roundtrip() {
        let mut g = grid();
        let a = GCell::new(2, 3);
        let b = GCell::new(3, 3);
        assert_eq!(g.usage_h(2, 3), 0);
        g.add_usage(a, b, 1);
        assert_eq!(g.usage_h(2, 3), 1);
        g.add_usage(b, a, -1);
        assert_eq!(g.usage_h(2, 3), 0);
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn non_adjacent_panics() {
        let mut g = grid();
        g.add_usage(GCell::new(0, 0), GCell::new(2, 0), 1);
    }

    #[test]
    fn cost_rises_with_congestion() {
        let mut g = grid();
        let a = GCell::new(1, 1);
        let b = GCell::new(2, 1);
        let base = g.step_cost(a, b);
        for _ in 0..g.cap_h + 2 {
            g.add_usage(a, b, 1);
        }
        assert!(g.step_cost(a, b) > base + 4.0);
        assert!(g.is_full(a, b));
        assert!(g.total_overflow() > 0);
    }

    #[test]
    fn history_accumulates_on_overflow_only() {
        let mut g = grid();
        let a = GCell::new(1, 1);
        let b = GCell::new(2, 1);
        for _ in 0..g.cap_h + 1 {
            g.add_usage(a, b, 1);
        }
        let before = g.step_cost(a, b);
        g.bump_history();
        assert!(g.step_cost(a, b) > before);
        // Non-overflowed edge unchanged.
        let c = GCell::new(5, 5);
        let d = GCell::new(6, 5);
        let cd_before = g.step_cost(c, d);
        g.bump_history();
        assert_eq!(g.step_cost(c, d), cd_before);
    }

    #[test]
    fn neighbours_respect_bounds() {
        let g = grid();
        assert_eq!(g.neighbours(GCell::new(0, 0)).count(), 2);
        assert_eq!(g.neighbours(GCell::new(3, 3)).count(), 4);
        assert_eq!(g.neighbours(GCell::new(7, 7)).count(), 2);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(GCell::new(0, 0).manhattan(&GCell::new(3, 4)), 7);
    }
}
