//! Maze routing: Lee's breadth-first wavefront and congestion-aware A*
//! over a monotone bucket (Dial) queue.

use crate::grid::{neighbours4, DemandGrid, GCell, RoutingGrid};

/// A routed 2-pin path (sequence of adjacent g-cells).
pub type Path = Vec<GCell>;

/// Statistics from one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Cells expanded during the search.
    pub expanded: usize,
    /// Scratch cells materialized for the search: the window area the
    /// per-cell arrays (`prev`, `visited`, `best_g`, line-search `seen`
    /// bitmaps) were sized to. With a full-grid window this is
    /// `width × height`; with a bounded window it is the window area —
    /// the router's memory bar.
    pub scratch_cells: usize,
}

/// A rectangular sub-grid (inclusive bounds) that bounds one maze search.
///
/// Per-cell scratch arrays are sized to the window, not the grid, so a
/// search over a small window never materializes the full grid — the
/// bounded-memory mode the scale tier routes in. A window is always a
/// pure function of the connection (bbox plus a fixed margin), never of
/// the thread count, so windowed outcomes stay bit-identical under any
/// parallel schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchWindow {
    /// Inclusive low column.
    pub x0: u32,
    /// Inclusive low row.
    pub y0: u32,
    /// Inclusive high column.
    pub x1: u32,
    /// Inclusive high row.
    pub y1: u32,
}

impl SearchWindow {
    /// The whole grid (classic full-grid search).
    pub fn full(grid: &RoutingGrid) -> SearchWindow {
        SearchWindow { x0: 0, y0: 0, x1: grid.width - 1, y1: grid.height - 1 }
    }

    /// The bounding box of `src`/`dst` expanded by `margin` g-cells on
    /// every side, clamped to the grid.
    pub fn around(src: GCell, dst: GCell, margin: u32, grid: &RoutingGrid) -> SearchWindow {
        SearchWindow::around_dims(src, dst, margin, grid.width, grid.height)
    }

    /// [`SearchWindow::around`] from raw grid dimensions — the window is a
    /// pure function of the connection and dims, usable without a grid
    /// reference (the region scheduler computes windows before any search).
    pub fn around_dims(src: GCell, dst: GCell, margin: u32, w: u32, h: u32) -> SearchWindow {
        SearchWindow {
            x0: src.x.min(dst.x).saturating_sub(margin),
            y0: src.y.min(dst.y).saturating_sub(margin),
            x1: (src.x.max(dst.x) + margin).min(w - 1),
            y1: (src.y.max(dst.y) + margin).min(h - 1),
        }
    }

    /// Window width in g-cells.
    pub fn width(&self) -> u32 {
        self.x1 - self.x0 + 1
    }

    /// Window height in g-cells.
    pub fn height(&self) -> u32 {
        self.y1 - self.y0 + 1
    }

    /// Window area in g-cells — the scratch a windowed search allocates.
    pub fn cells(&self) -> usize {
        self.width() as usize * self.height() as usize
    }

    /// Whether the window contains `c`.
    pub fn contains(&self, c: GCell) -> bool {
        c.x >= self.x0 && c.x <= self.x1 && c.y >= self.y0 && c.y <= self.y1
    }

    /// Window-local index of a contained cell (row-major within the window).
    pub fn local_index(&self, c: GCell) -> usize {
        debug_assert!(self.contains(c));
        ((c.y - self.y0) * self.width() + (c.x - self.x0)) as usize
    }
}

/// Lee's algorithm: uniform-cost BFS ignoring congestion weights (the
/// decade-old baseline). Returns the path and expansion count, or `None` if
/// target is unreachable (cannot happen on a connected grid).
pub fn lee_bfs(grid: &RoutingGrid, src: GCell, dst: GCell) -> Option<(Path, SearchStats)> {
    lee_bfs_in(grid, src, dst, SearchWindow::full(grid))
}

/// [`lee_bfs`] restricted to a [`SearchWindow`]: scratch arrays are sized
/// to the window and the wavefront never leaves it. With
/// [`SearchWindow::full`] this is exactly the classic search. The grid has
/// no hard obstacles, so any window containing both pins always yields a
/// path — a window only trades detour room for memory.
pub fn lee_bfs_in<G: DemandGrid>(
    grid: &G,
    src: GCell,
    dst: GCell,
    win: SearchWindow,
) -> Option<(Path, SearchStats)> {
    debug_assert!(win.contains(src) && win.contains(dst));
    if src == dst {
        return Some((vec![src], SearchStats { expanded: 0, scratch_cells: 0 }));
    }
    let idx = |c: GCell| win.local_index(c);
    let scratch = win.cells();
    let mut prev: Vec<Option<GCell>> = vec![None; scratch];
    let mut visited = vec![false; scratch];
    visited[idx(src)] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    let mut expanded = 0usize;
    while let Some(c) = queue.pop_front() {
        expanded += 1;
        if c == dst {
            break;
        }
        for n in neighbours4(grid.width(), grid.height(), c) {
            if win.contains(n) && !visited[idx(n)] {
                visited[idx(n)] = true;
                prev[idx(n)] = Some(c);
                queue.push_back(n);
            }
        }
    }
    if !visited[idx(dst)] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[idx(cur)] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some((path, SearchStats { expanded, scratch_cells: scratch }))
}

/// Fixed-point scale for quantized search costs: [`RoutingGrid::step_cost`]
/// is at least 1.0, so every quantized edge weighs at least `DIAL_SCALE` and
/// the `DIAL_SCALE × manhattan` heuristic stays consistent — the frontier's
/// f-value never decreases, which is what lets a monotone bucket queue
/// replace a comparison heap.
const DIAL_SCALE: f64 = 64.0;

/// Dial's bucket queue: entries land in the bucket of their (quantized)
/// f-value and a cursor sweeps the buckets in order. With a consistent
/// heuristic the cursor never moves backwards, so push and pop are O(1) —
/// no comparisons, no sift-up/down, and far better cache behavior than a
/// binary heap on the router's hot path.
struct BucketQueue {
    buckets: Vec<Vec<(u64, GCell)>>,
    cursor: usize,
}

impl BucketQueue {
    fn new() -> BucketQueue {
        BucketQueue { buckets: Vec::new(), cursor: 0 }
    }

    fn push(&mut self, f: u64, g: u64, cell: GCell) {
        let i = f as usize;
        if i >= self.buckets.len() {
            self.buckets.resize_with(i + 1, Vec::new);
        }
        self.buckets[i].push((g, cell));
        // Monotonicity safety net: a consistent heuristic never needs this,
        // but a rewind beats a silently skipped entry if it ever breaks.
        self.cursor = self.cursor.min(i);
    }

    fn pop(&mut self) -> Option<(u64, GCell)> {
        while self.cursor < self.buckets.len() {
            if let Some(e) = self.buckets[self.cursor].pop() {
                return Some(e);
            }
            self.cursor += 1;
        }
        None
    }
}

/// Congestion-aware A*: edge costs from [`RoutingGrid::step_cost`] plus a
/// via (bend) penalty, with Manhattan-distance admissible heuristic. Costs
/// are quantized to 1/64ths onto a Dial bucket queue.
pub fn astar(
    grid: &RoutingGrid,
    src: GCell,
    dst: GCell,
    via_cost: f64,
) -> Option<(Path, SearchStats)> {
    astar_in(grid, src, dst, via_cost, SearchWindow::full(grid))
}

/// [`astar`] restricted to a [`SearchWindow`]: `best_g`/`prev` are sized to
/// the window and expansion never leaves it. With [`SearchWindow::full`]
/// this is exactly the classic search; with a bounded window the route may
/// accept congestion it cannot detour around, which rip-up negotiation then
/// repairs.
pub fn astar_in<G: DemandGrid>(
    grid: &G,
    src: GCell,
    dst: GCell,
    via_cost: f64,
    win: SearchWindow,
) -> Option<(Path, SearchStats)> {
    debug_assert!(win.contains(src) && win.contains(dst));
    if src == dst {
        return Some((vec![src], SearchStats { expanded: 0, scratch_cells: 0 }));
    }
    let n = win.cells();
    let idx = |c: GCell| win.local_index(c);
    let quant = |c: f64| (c * DIAL_SCALE).round() as u64;
    let h = |c: GCell| c.manhattan(&dst) as u64 * DIAL_SCALE as u64;
    let mut best_g = vec![u64::MAX; n];
    // prev stores the previous cell for path reconstruction.
    let mut prev: Vec<Option<GCell>> = vec![None; n];
    let mut queue = BucketQueue::new();
    best_g[idx(src)] = 0;
    queue.push(h(src), 0, src);
    let mut expanded = 0usize;
    while let Some((g, cell)) = queue.pop() {
        if g > best_g[idx(cell)] {
            continue;
        }
        expanded += 1;
        if cell == dst {
            break;
        }
        let came_from = prev[idx(cell)];
        for nb in neighbours4(grid.width(), grid.height(), cell) {
            if !win.contains(nb) {
                continue;
            }
            let mut cost = grid.step_cost(cell, nb);
            // Bend penalty: direction change relative to the incoming edge.
            if let Some(p) = came_from {
                let straight = (p.x == nb.x) || (p.y == nb.y);
                if !straight {
                    cost += via_cost;
                }
            }
            let ng = g + quant(cost);
            if ng < best_g[idx(nb)] {
                best_g[idx(nb)] = ng;
                prev[idx(nb)] = Some(cell);
                queue.push(ng + h(nb), ng, nb);
            }
        }
    }
    if best_g[idx(dst)] == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[idx(cur)] {
        path.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    path.reverse();
    Some((path, SearchStats { expanded, scratch_cells: n }))
}

/// Number of bends in a path (proxy for via count in the 2-D model).
pub fn count_bends(path: &[GCell]) -> u32 {
    if path.len() < 3 {
        return 0;
    }
    let mut bends = 0;
    for w in path.windows(3) {
        let straight = (w[0].x == w[2].x) || (w[0].y == w[2].y);
        if !straight {
            bends += 1;
        }
    }
    bends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleDeck;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(16, 16, &RuleDeck::simple(6))
    }

    #[test]
    fn bfs_finds_shortest_path() {
        let g = grid();
        let (path, _) = lee_bfs(&g, GCell::new(0, 0), GCell::new(5, 7)).unwrap();
        assert_eq!(path.len() as u32, 5 + 7 + 1, "BFS path must be shortest");
        assert_eq!(path[0], GCell::new(0, 0));
        assert_eq!(*path.last().unwrap(), GCell::new(5, 7));
    }

    #[test]
    fn astar_matches_bfs_length_on_empty_grid() {
        let g = grid();
        let (p1, _) = lee_bfs(&g, GCell::new(2, 3), GCell::new(12, 9)).unwrap();
        let (p2, _) = astar(&g, GCell::new(2, 3), GCell::new(12, 9), 0.0).unwrap();
        assert_eq!(p1.len(), p2.len());
    }

    #[test]
    fn astar_expands_fewer_cells_than_bfs() {
        let g = grid();
        let (_, s1) = lee_bfs(&g, GCell::new(0, 0), GCell::new(15, 15)).unwrap();
        let (_, s2) = astar(&g, GCell::new(0, 0), GCell::new(15, 15), 1.0).unwrap();
        assert!(s2.expanded <= s1.expanded, "A* must not expand more than BFS");
    }

    #[test]
    fn astar_avoids_congested_edges() {
        let mut g = grid();
        // Saturate the straight corridor between the pins.
        for x in 0..15 {
            for _ in 0..g.cap_h + 3 {
                g.add_usage(GCell::new(x, 8), GCell::new(x + 1, 8), 1);
            }
        }
        let (path, _) = astar(&g, GCell::new(0, 8), GCell::new(15, 8), 1.0).unwrap();
        // The route must detour off row 8 somewhere.
        assert!(path.iter().any(|c| c.y != 8), "A* should detour around congestion");
    }

    #[test]
    fn paths_are_connected() {
        let g = grid();
        let (path, _) = astar(&g, GCell::new(3, 3), GCell::new(10, 12), 1.0).unwrap();
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(&w[1]), 1, "path must step between neighbours");
        }
    }

    #[test]
    fn bend_counting() {
        let straight = vec![GCell::new(0, 0), GCell::new(1, 0), GCell::new(2, 0)];
        assert_eq!(count_bends(&straight), 0);
        let l_shape = vec![GCell::new(0, 0), GCell::new(1, 0), GCell::new(1, 1)];
        assert_eq!(count_bends(&l_shape), 1);
        let zigzag = vec![
            GCell::new(0, 0),
            GCell::new(1, 0),
            GCell::new(1, 1),
            GCell::new(2, 1),
            GCell::new(2, 2),
        ];
        assert_eq!(count_bends(&zigzag), 3);
    }

    #[test]
    fn degenerate_single_cell() {
        let g = grid();
        let (p, s) = lee_bfs(&g, GCell::new(4, 4), GCell::new(4, 4)).unwrap();
        assert_eq!(p, vec![GCell::new(4, 4)]);
        assert_eq!(s.expanded, 0);
    }

    #[test]
    fn full_window_matches_classic_search_exactly() {
        let g = grid();
        let full = SearchWindow::full(&g);
        let (p1, s1) = lee_bfs(&g, GCell::new(1, 2), GCell::new(13, 11)).unwrap();
        let (p2, s2) = lee_bfs_in(&g, GCell::new(1, 2), GCell::new(13, 11), full).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(s1, s2);
        let (p3, s3) = astar(&g, GCell::new(1, 2), GCell::new(13, 11), 1.0).unwrap();
        let (p4, s4) = astar_in(&g, GCell::new(1, 2), GCell::new(13, 11), 1.0, full).unwrap();
        assert_eq!(p3, p4);
        assert_eq!(s3, s4);
        assert_eq!(s2.scratch_cells, 16 * 16);
    }

    #[test]
    fn windowed_search_bounds_scratch_and_still_routes() {
        let g = grid();
        let src = GCell::new(2, 3);
        let dst = GCell::new(6, 5);
        let win = SearchWindow::around(src, dst, 1, &g);
        assert_eq!((win.x0, win.y0, win.x1, win.y1), (1, 2, 7, 6));
        type Search = fn(&RoutingGrid, GCell, GCell, SearchWindow) -> Option<(Path, SearchStats)>;
        let searches: [Search; 2] =
            [|g, s, d, w| lee_bfs_in(g, s, d, w), |g, s, d, w| astar_in(g, s, d, 1.0, w)];
        for f in searches {
            let (path, stats) = f(&g, src, dst, win).unwrap();
            assert_eq!(path[0], src);
            assert_eq!(*path.last().unwrap(), dst);
            assert!(path.iter().all(|&c| win.contains(c)), "path stays inside the window");
            assert_eq!(stats.scratch_cells, win.cells());
            assert!(stats.scratch_cells < (g.width * g.height) as usize);
            // Shortest path is still found: the window contains the bbox.
            assert_eq!(path.len() as u32, src.manhattan(&dst) + 1);
        }
    }

    #[test]
    fn window_clamps_to_grid_edges() {
        let g = grid();
        let win = SearchWindow::around(GCell::new(0, 0), GCell::new(15, 15), 9, &g);
        assert_eq!(win, SearchWindow::full(&g));
        assert_eq!(win.cells(), 256);
        assert!(win.contains(GCell::new(0, 15)));
        assert_eq!(win.local_index(GCell::new(0, 0)), 0);
        assert_eq!(win.local_index(GCell::new(15, 15)), 255);
    }
}
