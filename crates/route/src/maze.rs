//! Maze routing: Lee's breadth-first wavefront and congestion-aware A*
//! over a monotone bucket (Dial) queue.

use crate::grid::{GCell, RoutingGrid};

/// A routed 2-pin path (sequence of adjacent g-cells).
pub type Path = Vec<GCell>;

/// Statistics from one search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchStats {
    /// Cells expanded during the search.
    pub expanded: usize,
}

/// Lee's algorithm: uniform-cost BFS ignoring congestion weights (the
/// decade-old baseline). Returns the path and expansion count, or `None` if
/// target is unreachable (cannot happen on a connected grid).
pub fn lee_bfs(grid: &RoutingGrid, src: GCell, dst: GCell) -> Option<(Path, SearchStats)> {
    if src == dst {
        return Some((vec![src], SearchStats { expanded: 0 }));
    }
    let idx = |c: GCell| (c.y * grid.width + c.x) as usize;
    let mut prev: Vec<Option<GCell>> = vec![None; (grid.width * grid.height) as usize];
    let mut visited = vec![false; (grid.width * grid.height) as usize];
    visited[idx(src)] = true;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src);
    let mut expanded = 0usize;
    while let Some(c) = queue.pop_front() {
        expanded += 1;
        if c == dst {
            break;
        }
        for n in grid.neighbours(c) {
            if !visited[idx(n)] {
                visited[idx(n)] = true;
                prev[idx(n)] = Some(c);
                queue.push_back(n);
            }
        }
    }
    if !visited[idx(dst)] {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[idx(cur)] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some((path, SearchStats { expanded }))
}

/// Fixed-point scale for quantized search costs: [`RoutingGrid::step_cost`]
/// is at least 1.0, so every quantized edge weighs at least `DIAL_SCALE` and
/// the `DIAL_SCALE × manhattan` heuristic stays consistent — the frontier's
/// f-value never decreases, which is what lets a monotone bucket queue
/// replace a comparison heap.
const DIAL_SCALE: f64 = 64.0;

/// Dial's bucket queue: entries land in the bucket of their (quantized)
/// f-value and a cursor sweeps the buckets in order. With a consistent
/// heuristic the cursor never moves backwards, so push and pop are O(1) —
/// no comparisons, no sift-up/down, and far better cache behavior than a
/// binary heap on the router's hot path.
struct BucketQueue {
    buckets: Vec<Vec<(u64, GCell)>>,
    cursor: usize,
}

impl BucketQueue {
    fn new() -> BucketQueue {
        BucketQueue { buckets: Vec::new(), cursor: 0 }
    }

    fn push(&mut self, f: u64, g: u64, cell: GCell) {
        let i = f as usize;
        if i >= self.buckets.len() {
            self.buckets.resize_with(i + 1, Vec::new);
        }
        self.buckets[i].push((g, cell));
        // Monotonicity safety net: a consistent heuristic never needs this,
        // but a rewind beats a silently skipped entry if it ever breaks.
        self.cursor = self.cursor.min(i);
    }

    fn pop(&mut self) -> Option<(u64, GCell)> {
        while self.cursor < self.buckets.len() {
            if let Some(e) = self.buckets[self.cursor].pop() {
                return Some(e);
            }
            self.cursor += 1;
        }
        None
    }
}

/// Congestion-aware A*: edge costs from [`RoutingGrid::step_cost`] plus a
/// via (bend) penalty, with Manhattan-distance admissible heuristic. Costs
/// are quantized to 1/64ths onto a Dial bucket queue.
pub fn astar(
    grid: &RoutingGrid,
    src: GCell,
    dst: GCell,
    via_cost: f64,
) -> Option<(Path, SearchStats)> {
    if src == dst {
        return Some((vec![src], SearchStats { expanded: 0 }));
    }
    let n = (grid.width * grid.height) as usize;
    let idx = |c: GCell| (c.y * grid.width + c.x) as usize;
    let quant = |c: f64| (c * DIAL_SCALE).round() as u64;
    let h = |c: GCell| c.manhattan(&dst) as u64 * DIAL_SCALE as u64;
    let mut best_g = vec![u64::MAX; n];
    // prev stores the previous cell for path reconstruction.
    let mut prev: Vec<Option<GCell>> = vec![None; n];
    let mut queue = BucketQueue::new();
    best_g[idx(src)] = 0;
    queue.push(h(src), 0, src);
    let mut expanded = 0usize;
    while let Some((g, cell)) = queue.pop() {
        if g > best_g[idx(cell)] {
            continue;
        }
        expanded += 1;
        if cell == dst {
            break;
        }
        let came_from = prev[idx(cell)];
        for nb in grid.neighbours(cell) {
            let mut cost = grid.step_cost(cell, nb);
            // Bend penalty: direction change relative to the incoming edge.
            if let Some(p) = came_from {
                let straight = (p.x == nb.x) || (p.y == nb.y);
                if !straight {
                    cost += via_cost;
                }
            }
            let ng = g + quant(cost);
            if ng < best_g[idx(nb)] {
                best_g[idx(nb)] = ng;
                prev[idx(nb)] = Some(cell);
                queue.push(ng + h(nb), ng, nb);
            }
        }
    }
    if best_g[idx(dst)] == u64::MAX {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = prev[idx(cur)] {
        path.push(p);
        cur = p;
        if cur == src {
            break;
        }
    }
    path.reverse();
    Some((path, SearchStats { expanded }))
}

/// Number of bends in a path (proxy for via count in the 2-D model).
pub fn count_bends(path: &[GCell]) -> u32 {
    if path.len() < 3 {
        return 0;
    }
    let mut bends = 0;
    for w in path.windows(3) {
        let straight = (w[0].x == w[2].x) || (w[0].y == w[2].y);
        if !straight {
            bends += 1;
        }
    }
    bends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleDeck;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(16, 16, &RuleDeck::simple(6))
    }

    #[test]
    fn bfs_finds_shortest_path() {
        let g = grid();
        let (path, _) = lee_bfs(&g, GCell::new(0, 0), GCell::new(5, 7)).unwrap();
        assert_eq!(path.len() as u32, 5 + 7 + 1, "BFS path must be shortest");
        assert_eq!(path[0], GCell::new(0, 0));
        assert_eq!(*path.last().unwrap(), GCell::new(5, 7));
    }

    #[test]
    fn astar_matches_bfs_length_on_empty_grid() {
        let g = grid();
        let (p1, _) = lee_bfs(&g, GCell::new(2, 3), GCell::new(12, 9)).unwrap();
        let (p2, _) = astar(&g, GCell::new(2, 3), GCell::new(12, 9), 0.0).unwrap();
        assert_eq!(p1.len(), p2.len());
    }

    #[test]
    fn astar_expands_fewer_cells_than_bfs() {
        let g = grid();
        let (_, s1) = lee_bfs(&g, GCell::new(0, 0), GCell::new(15, 15)).unwrap();
        let (_, s2) = astar(&g, GCell::new(0, 0), GCell::new(15, 15), 1.0).unwrap();
        assert!(s2.expanded <= s1.expanded, "A* must not expand more than BFS");
    }

    #[test]
    fn astar_avoids_congested_edges() {
        let mut g = grid();
        // Saturate the straight corridor between the pins.
        for x in 0..15 {
            for _ in 0..g.cap_h + 3 {
                g.add_usage(GCell::new(x, 8), GCell::new(x + 1, 8), 1);
            }
        }
        let (path, _) = astar(&g, GCell::new(0, 8), GCell::new(15, 8), 1.0).unwrap();
        // The route must detour off row 8 somewhere.
        assert!(path.iter().any(|c| c.y != 8), "A* should detour around congestion");
    }

    #[test]
    fn paths_are_connected() {
        let g = grid();
        let (path, _) = astar(&g, GCell::new(3, 3), GCell::new(10, 12), 1.0).unwrap();
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(&w[1]), 1, "path must step between neighbours");
        }
    }

    #[test]
    fn bend_counting() {
        let straight = vec![GCell::new(0, 0), GCell::new(1, 0), GCell::new(2, 0)];
        assert_eq!(count_bends(&straight), 0);
        let l_shape = vec![GCell::new(0, 0), GCell::new(1, 0), GCell::new(1, 1)];
        assert_eq!(count_bends(&l_shape), 1);
        let zigzag = vec![
            GCell::new(0, 0),
            GCell::new(1, 0),
            GCell::new(1, 1),
            GCell::new(2, 1),
            GCell::new(2, 2),
        ];
        assert_eq!(count_bends(&zigzag), 3);
    }

    #[test]
    fn degenerate_single_cell() {
        let g = grid();
        let (p, s) = lee_bfs(&g, GCell::new(4, 4), GCell::new(4, 4)).unwrap();
        assert_eq!(p, vec![GCell::new(4, 4)]);
        assert_eq!(s.expanded, 0);
    }
}
