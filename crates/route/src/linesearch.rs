//! Mikami–Tabuchi line-search routing.
//!
//! Instead of flooding cells like a maze router, line search grows maximal
//! horizontal/vertical probe lines from both pins, alternating levels until
//! a source line crosses a target line. On sparse ("simpler") rule decks it
//! explores far fewer cells and produces paths with very few bends — the
//! behaviour behind Domic's claim C5.

use crate::grid::{DemandGrid, GCell};
use crate::maze::{Path, SearchStats, SearchWindow as Window};

/// One probe line in the arena.
#[derive(Debug, Clone, Copy)]
struct Line {
    /// The cell this line was spawned from.
    origin: GCell,
    /// Horizontal (varying x) or vertical.
    horizontal: bool,
    /// Inclusive low bound of the varying coordinate.
    lo: u32,
    /// Inclusive high bound of the varying coordinate.
    hi: u32,
    /// Arena index of the parent line (`None` for level-0 lines).
    parent: Option<usize>,
}

impl Line {
    fn contains(&self, c: GCell) -> bool {
        if self.horizontal {
            c.y == self.origin.y && c.x >= self.lo && c.x <= self.hi
        } else {
            c.x == self.origin.x && c.y >= self.lo && c.y <= self.hi
        }
    }

    fn cells(&self) -> Vec<GCell> {
        if self.horizontal {
            (self.lo..=self.hi).map(|x| GCell::new(x, self.origin.y)).collect()
        } else {
            (self.lo..=self.hi).map(|y| GCell::new(self.origin.x, y)).collect()
        }
    }

    /// Intersection cell with a perpendicular line, if any.
    fn crosses(&self, other: &Line) -> Option<GCell> {
        if self.horizontal == other.horizontal {
            // Parallel lines: only touch if collinear and overlapping; treat
            // the shared cell case via containment of the origin.
            return None;
        }
        let (h, v) = if self.horizontal { (self, other) } else { (other, self) };
        let x = v.origin.x;
        let y = h.origin.y;
        (x >= h.lo && x <= h.hi && y >= v.lo && y <= v.hi).then(|| GCell::new(x, y))
    }
}

/// Grows the maximal unblocked line through `origin`, clipped to `win`.
fn grow<G: DemandGrid>(grid: &G, origin: GCell, horizontal: bool, win: Window) -> Line {
    let (mut lo, mut hi) = if horizontal { (origin.x, origin.x) } else { (origin.y, origin.y) };
    if horizontal {
        while lo > win.x0 && !grid.is_full(GCell::new(lo - 1, origin.y), GCell::new(lo, origin.y)) {
            lo -= 1;
        }
        while hi < win.x1 && !grid.is_full(GCell::new(hi, origin.y), GCell::new(hi + 1, origin.y)) {
            hi += 1;
        }
    } else {
        while lo > win.y0 && !grid.is_full(GCell::new(origin.x, lo - 1), GCell::new(origin.x, lo)) {
            lo -= 1;
        }
        while hi < win.y1 && !grid.is_full(GCell::new(origin.x, hi), GCell::new(origin.x, hi + 1)) {
            hi += 1;
        }
    }
    Line { origin, horizontal, lo, hi, parent: None }
}

/// Walks from `cell` on line `li` back to the search root, emitting the path.
fn trace(arena: &[Line], mut li: usize, mut cell: GCell, out: &mut Vec<GCell>) {
    loop {
        let line = arena[li];
        // Segment from `cell` to the line's origin.
        let seg = segment(cell, line.origin);
        out.extend(seg);
        match line.parent {
            None => break,
            Some(p) => {
                cell = line.origin;
                li = p;
            }
        }
    }
}

/// Cells strictly after `from` up to and including `to`, along one axis.
fn segment(from: GCell, to: GCell) -> Vec<GCell> {
    let mut v = Vec::new();
    if from.x == to.x {
        let (a, b) = (from.y, to.y);
        if a < b {
            for y in a + 1..=b {
                v.push(GCell::new(from.x, y));
            }
        } else {
            for y in (b..a).rev() {
                v.push(GCell::new(from.x, y));
            }
        }
    } else {
        let (a, b) = (from.x, to.x);
        if a < b {
            for x in a + 1..=b {
                v.push(GCell::new(x, from.y));
            }
        } else {
            for x in (b..a).rev() {
                v.push(GCell::new(x, from.y));
            }
        }
    }
    v
}

/// Mikami–Tabuchi search between two cells.
///
/// Returns the path and the number of line-cells generated (the analogue of
/// "cells expanded"), or `None` when the expansion level limit is hit —
/// callers fall back to maze routing. Probes are clipped to a window sized
/// to the connection's own extent (margin `3 + distance/2`).
pub fn mikami_tabuchi<G: DemandGrid>(
    grid: &G,
    src: GCell,
    dst: GCell,
    max_levels: usize,
) -> Option<(Path, SearchStats)> {
    let margin = 3 + src.manhattan(&dst) / 2;
    let win = Window::around_dims(src, dst, margin, grid.width(), grid.height());
    mikami_tabuchi_in(grid, src, dst, max_levels, win)
}

/// [`mikami_tabuchi`] with an explicit clipping [`Window`](SearchWindow) —
/// the bounded-memory entry point: scratch bitmaps are sized to the window
/// and probes never leave it. A tighter window fails (returns `None`) more
/// often; callers fall back to windowed maze routing.
pub fn mikami_tabuchi_in<G: DemandGrid>(
    grid: &G,
    src: GCell,
    dst: GCell,
    max_levels: usize,
    win: Window,
) -> Option<(Path, SearchStats)> {
    if src == dst {
        return Some((vec![src], SearchStats { expanded: 0, scratch_cells: 0 }));
    }
    let mut arena: Vec<Line> = Vec::new();
    let mut src_lines: Vec<usize> = Vec::new();
    let mut dst_lines: Vec<usize> = Vec::new();
    let mut expanded = 0usize;
    // Probes are clipped to `win`, so the seen bitmaps only need the
    // window — line search never materializes the full grid.
    debug_assert!(win.contains(src) && win.contains(dst));
    let n = win.cells();
    let idx = |c: GCell| win.local_index(c);
    let mut src_seen = vec![false; n];
    let mut dst_seen = vec![false; n];

    for (lines, seen, origin) in
        [(&mut src_lines, &mut src_seen, src), (&mut dst_lines, &mut dst_seen, dst)]
    {
        for horizontal in [true, false] {
            let l = grow(grid, origin, horizontal, win);
            expanded += (l.hi - l.lo + 1) as usize;
            for c in l.cells() {
                seen[idx(c)] = true;
            }
            arena.push(l);
            lines.push(arena.len() - 1);
        }
    }

    let mut src_frontier = src_lines.clone();
    let mut dst_frontier = dst_lines.clone();

    for _level in 0..max_levels {
        // Check crossings between every source line and target line.
        for &si in &src_lines {
            for &di in &dst_lines {
                if let Some(x) = arena[si].crosses(&arena[di]) {
                    let mut fwd = Vec::new();
                    trace(&arena, si, x, &mut fwd);
                    fwd.reverse();
                    let mut path = vec![src];
                    // fwd currently runs src -> x (after reverse it starts
                    // just after src).
                    path.extend(fwd.into_iter().skip_while(|&c| c == src));
                    if *path.last().unwrap() != x {
                        path.push(x);
                    }
                    let mut bwd = Vec::new();
                    trace(&arena, di, x, &mut bwd);
                    path.extend(bwd);
                    dedup_path(&mut path);
                    return Some((path, SearchStats { expanded, scratch_cells: n }));
                }
                // A target line passing exactly through src (or vice versa).
                if arena[di].contains(src) {
                    let mut path = vec![src];
                    let mut bwd = Vec::new();
                    trace(&arena, di, src, &mut bwd);
                    path.extend(bwd);
                    dedup_path(&mut path);
                    return Some((path, SearchStats { expanded, scratch_cells: n }));
                }
                if arena[si].contains(dst) {
                    let mut fwd = Vec::new();
                    trace(&arena, si, dst, &mut fwd);
                    fwd.reverse();
                    let mut path = vec![src];
                    path.extend(fwd.into_iter().skip_while(|&c| c == src));
                    if *path.last().unwrap() != dst {
                        path.push(dst);
                    }
                    dedup_path(&mut path);
                    return Some((path, SearchStats { expanded, scratch_cells: n }));
                }
            }
        }
        // Expand: spawn perpendicular lines from every cell of the frontier.
        let spawn = |frontier: &mut Vec<usize>,
                         lines: &mut Vec<usize>,
                         seen: &mut Vec<bool>,
                         arena: &mut Vec<Line>,
                         expanded: &mut usize| {
            let mut next = Vec::new();
            for &li in frontier.iter() {
                let parent = arena[li];
                for c in parent.cells() {
                    let mut l = grow(grid, c, !parent.horizontal, win);
                    l.parent = Some(li);
                    // Skip degenerate or fully-seen lines.
                    let novel = l.cells().iter().any(|&cc| !seen[idx(cc)]);
                    if !novel {
                        continue;
                    }
                    *expanded += (l.hi - l.lo + 1) as usize;
                    for cc in l.cells() {
                        seen[idx(cc)] = true;
                    }
                    arena.push(l);
                    next.push(arena.len() - 1);
                    lines.push(arena.len() - 1);
                }
            }
            *frontier = next;
        };
        spawn(&mut src_frontier, &mut src_lines, &mut src_seen, &mut arena, &mut expanded);
        spawn(&mut dst_frontier, &mut dst_lines, &mut dst_seen, &mut arena, &mut expanded);
        if src_frontier.is_empty() && dst_frontier.is_empty() {
            break;
        }
    }
    None
}

/// Removes consecutive duplicates and immediate backtracks.
fn dedup_path(path: &mut Vec<GCell>) {
    path.dedup();
    // Remove A-B-A stutters introduced by pivot tracing.
    let mut i = 0;
    while i + 2 < path.len() {
        if path[i] == path[i + 2] {
            path.remove(i + 1);
            path.remove(i + 1);
            i = i.saturating_sub(1);
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::RoutingGrid;
    use crate::maze::count_bends;
    use crate::rules::RuleDeck;

    fn grid() -> RoutingGrid {
        RoutingGrid::new(24, 24, &RuleDeck::simple(6))
    }

    fn check_path(path: &[GCell], src: GCell, dst: GCell) {
        assert_eq!(path[0], src, "path starts at source");
        assert_eq!(*path.last().unwrap(), dst, "path ends at target");
        for w in path.windows(2) {
            assert_eq!(w[0].manhattan(&w[1]), 1, "adjacent steps: {:?} -> {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn routes_on_empty_grid_with_one_bend() {
        let g = grid();
        let src = GCell::new(2, 3);
        let dst = GCell::new(18, 15);
        let (path, stats) = mikami_tabuchi(&g, src, dst, 10).unwrap();
        check_path(&path, src, dst);
        assert!(count_bends(&path) <= 1, "level-0 crossing gives an L route");
        assert!(stats.expanded > 0);
    }

    #[test]
    fn collinear_pins_route_straight() {
        let g = grid();
        let src = GCell::new(2, 7);
        let dst = GCell::new(20, 7);
        let (path, _) = mikami_tabuchi(&g, src, dst, 10).unwrap();
        check_path(&path, src, dst);
        assert_eq!(count_bends(&path), 0);
        assert_eq!(path.len(), 19);
    }

    #[test]
    fn detours_around_blocked_wall() {
        let mut g = grid();
        // Vertical wall of full horizontal edges at x=10..11 except row 10
        // (inside the search window around the pins).
        for y in 0..24 {
            if y == 10 {
                continue;
            }
            for _ in 0..g.cap_h {
                g.add_usage(GCell::new(10, y), GCell::new(11, y), 1);
            }
        }
        let src = GCell::new(2, 3);
        let dst = GCell::new(20, 3);
        let (path, _) = mikami_tabuchi(&g, src, dst, 20).unwrap();
        check_path(&path, src, dst);
        assert!(path.iter().any(|c| c.y == 10), "must pass through the gap");
    }

    #[test]
    fn expands_fewer_cells_than_maze_on_sparse_grid() {
        let g = grid();
        let src = GCell::new(1, 1);
        let dst = GCell::new(22, 22);
        let (_, ls) = mikami_tabuchi(&g, src, dst, 10).unwrap();
        let (_, bfs) = crate::maze::lee_bfs(&g, src, dst).unwrap();
        assert!(
            ls.expanded < bfs.expanded / 2,
            "line search ({}) should explore far less than BFS ({})",
            ls.expanded,
            bfs.expanded
        );
    }

    #[test]
    fn gives_up_when_boxed_in() {
        let mut g = grid();
        // Seal off the source completely.
        let src = GCell::new(5, 5);
        for nb in [GCell::new(4, 5), GCell::new(6, 5)] {
            for _ in 0..g.cap_h {
                g.add_usage(src.min(nb), src.max(nb), 1);
            }
        }
        for nb in [GCell::new(5, 4), GCell::new(5, 6)] {
            for _ in 0..g.cap_v {
                g.add_usage(src.min(nb), src.max(nb), 1);
            }
        }
        let out = mikami_tabuchi(&g, src, GCell::new(20, 20), 8);
        assert!(out.is_none(), "boxed-in pin cannot be line-routed");
    }

    #[test]
    fn single_cell_route() {
        let g = grid();
        let (p, _) = mikami_tabuchi(&g, GCell::new(3, 3), GCell::new(3, 3), 4).unwrap();
        assert_eq!(p.len(), 1);
    }
}
