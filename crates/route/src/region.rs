//! Region-partitioned routing: grid tiling, private demand overlays, and
//! the deterministic seam-negotiation wave scheduler.
//!
//! The router tiles the grid into fixed-size regions — a pure function of
//! the grid dimensions and the `region_size` knob, never of the thread
//! count. Each connection's search window overlaps one region (an
//! *interior* connection, searched and committed against a private
//! [`OverlayGrid`] with no cross-worker synchronization) or several (a
//! *seam-crossing* connection, admitted only through the negotiation
//! protocol below).
//!
//! # Seam negotiation protocol and determinism argument
//!
//! Connections carry a **canonical rank** (the congestion-aware initial
//! order). Every region keeps a FIFO queue of the connections whose
//! windows overlap it, in rank order. A wave admits, per region scan in
//! fixed region order:
//!
//! * the maximal run of interior connections at the head of the region's
//!   queue — one batch task, routed against the region's overlay so each
//!   sees its predecessors' local commits;
//! * a seam-crossing connection only when it heads the queue of **every**
//!   region it overlaps, claimed by its lowest-numbered region — one
//!   singleton task routed against the committed global grid.
//!
//! Heads only advance after the wave's results are committed, so wave
//! composition is frozen while workers run. Two tasks in one wave never
//! share a region, and a search only touches edges whose endpoints lie in
//! its window, so tasks in a wave are edge-disjoint: any order of
//! execution yields the state the canonical serial schedule would. The
//! unfinished connection of minimal rank always heads every queue it
//! belongs to (everything queued before it has lower rank, hence is
//! done), so every wave makes progress — no deadlock. Consequently the
//! routed result is **bit-identical to routing the connections one by one
//! in canonical rank order**, for any region size and any thread count;
//! the partition shapes only the schedule, never the answer.
//!
//! # Rip-up semantics
//!
//! Rip-up rounds run the victims through the same wave machinery, with
//! one rule: a victim's old path stays committed in the shared grid until
//! the victim's own canonical commit slot, where it is swapped for the
//! new path. The re-route's search view subtracts only the victim's *own*
//! old demand (via [`OverlayGrid::uncommit`]), so every re-route still
//! sees all later victims' old paths exactly as the serial schedule
//! would. Uncommitting every victim up front instead would empty the
//! congested area wholesale and let each re-route re-take the same
//! shortest paths — the oscillation that keeps large decks from ever
//! converging. (A victim's old path lies inside its search window — the
//! window is a pure function of the connection — so the subtraction
//! always fits the overlay rectangle.)

use crate::grid::{step_cost_from, DemandGrid, GCell, RoutingGrid};
use crate::maze::{Path, SearchWindow};

/// A fixed tiling of the routing grid into square regions (clipped at the
/// high edges). Pure function of the grid dimensions and `size`.
#[derive(Debug, Clone, Copy)]
pub struct RegionMap {
    /// Grid width in g-cells.
    pub width: u32,
    /// Grid height in g-cells.
    pub height: u32,
    /// Region side length in g-cells.
    pub size: u32,
    /// Regions per row.
    pub cols: u32,
    /// Regions per column.
    pub rows: u32,
}

impl RegionMap {
    /// Tiles a `width × height` grid into `size × size` regions.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(width: u32, height: u32, size: u32) -> RegionMap {
        assert!(size > 0, "region size must be positive");
        RegionMap { width, height, size, cols: width.div_ceil(size), rows: height.div_ceil(size) }
    }

    /// Number of regions in the tiling.
    pub fn count(&self) -> usize {
        (self.cols * self.rows) as usize
    }

    /// The inclusive cell rectangle of region `r` (row-major numbering).
    pub fn rect(&self, r: u32) -> (u32, u32, u32, u32) {
        let rx = r % self.cols;
        let ry = r / self.cols;
        let x0 = rx * self.size;
        let y0 = ry * self.size;
        (x0, y0, (x0 + self.size - 1).min(self.width - 1), (y0 + self.size - 1).min(self.height - 1))
    }

    /// The inclusive region-coordinate span a search window overlaps.
    pub fn span(&self, win: &SearchWindow) -> RegionSpan {
        RegionSpan {
            rx0: (win.x0 / self.size) as u16,
            ry0: (win.y0 / self.size) as u16,
            rx1: (win.x1 / self.size) as u16,
            ry1: (win.y1 / self.size) as u16,
        }
    }
}

/// The rectangle of regions one connection's search window overlaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSpan {
    rx0: u16,
    ry0: u16,
    rx1: u16,
    ry1: u16,
}

impl RegionSpan {
    /// Whether the span covers exactly one region.
    pub fn interior(&self) -> bool {
        self.rx0 == self.rx1 && self.ry0 == self.ry1
    }

    /// Number of regions covered.
    pub fn count(&self) -> usize {
        (self.rx1 - self.rx0 + 1) as usize * (self.ry1 - self.ry0 + 1) as usize
    }

    /// Row-major region indices covered, lowest first.
    pub fn regions(&self, map: &RegionMap) -> impl Iterator<Item = u32> + '_ {
        let cols = map.cols;
        (self.ry0..=self.ry1).flat_map(move |ry| {
            (self.rx0..=self.rx1).map(move |rx| ry as u32 * cols + rx as u32)
        })
    }

    /// The lowest-numbered covered region — the seam connection's owner.
    pub fn min_region(&self, map: &RegionMap) -> u32 {
        self.ry0 as u32 * map.cols + self.rx0 as u32
    }
}

/// A region's private demand view: the committed global grid plus this
/// region's uncommitted local routes, held as per-edge deltas over the
/// region's cell rectangle. Cost and fullness come from the same
/// [`step_cost_from`] expression as [`RoutingGrid`], so a search against
/// an overlay with the deltas a serial router would already have
/// committed returns the bit-identical path.
pub struct OverlayGrid<'a> {
    base: &'a RoutingGrid,
    x0: u32,
    y0: u32,
    x1: u32,
    y1: u32,
    /// Rectangle width in cells.
    rw: u32,
    /// Delta on horizontal edge `(x, y)→(x+1, y)`, both endpoints inside
    /// the rectangle: index `(y - y0) * (rw - 1) + (x - x0)`. Signed: a
    /// rip-up victim's old demand is subtracted here before its re-route
    /// searches, so the view matches the serial schedule's grid exactly.
    dh: Vec<i32>,
    /// Delta on vertical edge `(x, y)→(x, y+1)`: `(y - y0) * rw + (x - x0)`.
    dv: Vec<i32>,
}

impl<'a> OverlayGrid<'a> {
    /// An overlay over the inclusive cell rectangle `(x0, y0, x1, y1)`.
    pub fn new(base: &'a RoutingGrid, rect: (u32, u32, u32, u32)) -> OverlayGrid<'a> {
        let (x0, y0, x1, y1) = rect;
        debug_assert!(x1 < base.width && y1 < base.height && x0 <= x1 && y0 <= y1);
        let rw = x1 - x0 + 1;
        let rh = y1 - y0 + 1;
        OverlayGrid {
            base,
            x0,
            y0,
            x1,
            y1,
            rw,
            dh: vec![0; ((rw - 1) * rh) as usize],
            dv: vec![0; (rw * (rh - 1)) as usize],
        }
    }

    /// Local delta on the edge between adjacent cells (0 outside the rect).
    fn delta(&self, a: GCell, b: GCell) -> i32 {
        if a.y == b.y {
            let x = a.x.min(b.x);
            if x >= self.x0 && x < self.x1 && a.y >= self.y0 && a.y <= self.y1 {
                return self.dh[((a.y - self.y0) * (self.rw - 1) + (x - self.x0)) as usize];
            }
        } else {
            let y = a.y.min(b.y);
            if a.x >= self.x0 && a.x <= self.x1 && y >= self.y0 && y < self.y1 {
                return self.dv[((y - self.y0) * self.rw + (a.x - self.x0)) as usize];
            }
        }
        0
    }

    /// The base usage plus this overlay's delta on one edge. Never actually
    /// negative in a legal schedule (a subtracted path was committed in the
    /// base first); the clamp keeps a corrupted schedule from wrapping.
    fn local_usage(&self, usage: u32, a: GCell, b: GCell) -> u32 {
        let v = usage as i64 + self.delta(a, b) as i64;
        debug_assert!(v >= 0, "overlay drove edge usage negative");
        v.max(0) as u32
    }

    fn apply(&mut self, path: &Path, sign: i32) {
        for w in path.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a.y == b.y {
                let x = a.x.min(b.x);
                debug_assert!(x >= self.x0 && x < self.x1 && a.y >= self.y0 && a.y <= self.y1);
                self.dh[((a.y - self.y0) * (self.rw - 1) + (x - self.x0)) as usize] += sign;
            } else {
                let y = a.y.min(b.y);
                debug_assert!(a.x >= self.x0 && a.x <= self.x1 && y >= self.y0 && y < self.y1);
                self.dv[((y - self.y0) * self.rw + (a.x - self.x0)) as usize] += sign;
            }
        }
    }

    /// Records one routed path in the overlay (every edge must lie inside
    /// the rectangle — guaranteed for interior connections, whose windows
    /// the rectangle contains).
    pub fn commit(&mut self, path: &Path) {
        self.apply(path, 1);
    }

    /// Subtracts one committed path from the view — how a rip-up victim's
    /// own old demand is hidden from its re-route while the shared grid
    /// still carries it (the swap happens at the canonical commit slot).
    pub fn uncommit(&mut self, path: &Path) {
        self.apply(path, -1);
    }
}

impl DemandGrid for OverlayGrid<'_> {
    fn width(&self) -> u32 {
        self.base.width
    }

    fn height(&self) -> u32 {
        self.base.height
    }

    fn step_cost(&self, a: GCell, b: GCell) -> f64 {
        let (usage, cap, hist) = self.base.edge_parts(a, b);
        step_cost_from(self.local_usage(usage, a, b), cap, hist)
    }

    fn is_full(&self, a: GCell, b: GCell) -> bool {
        let (usage, cap, _) = self.base.edge_parts(a, b);
        self.local_usage(usage, a, b) >= cap
    }
}

/// One unit of parallel work in a negotiation wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionTask {
    /// The run of `len` consecutive interior items starting at queue
    /// position `start` of `region`'s queue — routed against the region's
    /// private overlay, committed locally, no cross-worker sync.
    Interior { region: u32, start: u32, len: u32 },
    /// One seam-crossing item, admitted because it heads every queue it
    /// overlaps — routed against the committed global grid.
    Seam { item: u32 },
}

/// Deterministic wave scheduler over one canonical-ordered worklist.
///
/// `item` indices refer to positions in the worklist handed to
/// [`RegionScheduler::new`] (rank order). See the module docs for the
/// protocol and the determinism argument.
pub struct RegionScheduler {
    map: RegionMap,
    spans: Vec<RegionSpan>,
    /// Per-region FIFO of overlapping items, in rank order.
    queues: Vec<Vec<u32>>,
    heads: Vec<usize>,
    remaining: usize,
}

impl RegionScheduler {
    /// Builds the per-region queues for a worklist given each item's
    /// search window, in canonical rank order.
    pub fn new(map: RegionMap, windows: &[SearchWindow]) -> RegionScheduler {
        let spans: Vec<RegionSpan> = windows.iter().map(|w| map.span(w)).collect();
        let mut queues: Vec<Vec<u32>> = vec![Vec::new(); map.count()];
        for (item, span) in spans.iter().enumerate() {
            for r in span.regions(&map) {
                queues[r as usize].push(item as u32);
            }
        }
        let heads = vec![0; queues.len()];
        RegionScheduler { map, spans, queues, heads, remaining: windows.len() }
    }

    /// Items still queued.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// The rank-ordered queue of one region.
    pub fn queue(&self, region: u32) -> &[u32] {
        &self.queues[region as usize]
    }

    /// Whether `item` is at the head of every queue it belongs to.
    fn ready(&self, item: u32) -> bool {
        self.spans[item as usize].regions(&self.map).all(|r| {
            let q = &self.queues[r as usize];
            let h = self.heads[r as usize];
            h < q.len() && q[h] == item
        })
    }

    /// Computes the next wave from the frozen queue heads: pairwise
    /// region-disjoint tasks in fixed region order. Empty only when all
    /// items are done. Call [`RegionScheduler::advance`] with the executed
    /// wave before asking for the next one.
    pub fn next_wave(&self) -> Vec<RegionTask> {
        let mut wave = Vec::new();
        for r in 0..self.queues.len() {
            let q = &self.queues[r];
            let h0 = self.heads[r];
            if h0 >= q.len() {
                continue;
            }
            let head = q[h0];
            let span = self.spans[head as usize];
            if span.interior() {
                let mut h = h0 + 1;
                while h < q.len() && self.spans[q[h] as usize].interior() {
                    h += 1;
                }
                wave.push(RegionTask::Interior {
                    region: r as u32,
                    start: h0 as u32,
                    len: (h - h0) as u32,
                });
            } else if span.min_region(&self.map) == r as u32 && self.ready(head) {
                wave.push(RegionTask::Seam { item: head });
            }
        }
        debug_assert!(
            !wave.is_empty() || self.remaining == 0,
            "scheduler stalled with {} items queued",
            self.remaining
        );
        wave
    }

    /// Pops the executed wave's items off their queues.
    pub fn advance(&mut self, wave: &[RegionTask]) {
        for task in wave {
            match *task {
                RegionTask::Interior { region, len, .. } => {
                    self.heads[region as usize] += len as usize;
                    self.remaining -= len as usize;
                }
                RegionTask::Seam { item } => {
                    for r in self.spans[item as usize].regions(&self.map) {
                        self.heads[r as usize] += 1;
                    }
                    self.remaining -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleDeck;

    #[test]
    fn partition_covers_grid_exactly() {
        for (w, h, s) in [(16u32, 16u32, 4u32), (17, 13, 5), (8, 8, 64), (9, 9, 1)] {
            let map = RegionMap::new(w, h, s);
            let mut seen = vec![0u32; (w * h) as usize];
            for r in 0..map.count() as u32 {
                let (x0, y0, x1, y1) = map.rect(r);
                assert!(x1 < w && y1 < h);
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        seen[(y * w + x) as usize] += 1;
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{w}x{h}/{s} must tile exactly once");
        }
    }

    #[test]
    fn span_matches_rect_overlap() {
        let map = RegionMap::new(32, 32, 8);
        let win = SearchWindow { x0: 6, y0: 0, x1: 9, y1: 7 };
        let span = map.span(&win);
        assert!(!span.interior());
        assert_eq!(span.count(), 2);
        assert_eq!(span.regions(&map).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(span.min_region(&map), 0);
        let inner = map.span(&SearchWindow { x0: 8, y0: 8, x1: 15, y1: 15 });
        assert!(inner.interior());
        assert_eq!(inner.regions(&map).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn overlay_costs_match_committed_grid_bit_for_bit() {
        let mut grid = RoutingGrid::new(16, 16, &RuleDeck::simple(3));
        // Background congestion plus history so all cost terms are live.
        for x in 0..15 {
            for _ in 0..4 {
                grid.add_usage(GCell::new(x, 5), GCell::new(x + 1, 5), 1);
            }
        }
        grid.bump_history();
        let path: Path =
            vec![GCell::new(2, 4), GCell::new(3, 4), GCell::new(3, 5), GCell::new(4, 5)];
        // Overlay over a rect containing the path vs. committing for real.
        let mut overlay = OverlayGrid::new(&grid, (0, 0, 7, 7));
        overlay.commit(&path);
        let mut committed = grid.clone();
        for w in path.windows(2) {
            committed.add_usage(w[0], w[1], 1);
        }
        for y in 0..8u32 {
            for x in 0..8u32 {
                let c = GCell::new(x, y);
                for n in committed.neighbours(c) {
                    if n.x < 8 && n.y < 8 {
                        assert_eq!(
                            DemandGrid::step_cost(&overlay, c, n).to_bits(),
                            committed.step_cost(c, n).to_bits(),
                            "{c:?}->{n:?}"
                        );
                        assert_eq!(
                            DemandGrid::is_full(&overlay, c, n),
                            committed.is_full(c, n)
                        );
                    }
                }
            }
        }
        // Outside the rect the overlay reads the base grid.
        let a = GCell::new(12, 5);
        let b = GCell::new(13, 5);
        assert_eq!(DemandGrid::step_cost(&overlay, a, b).to_bits(), grid.step_cost(a, b).to_bits());
    }

    /// Drives the scheduler over synthetic windows and checks the
    /// protocol invariants: items complete exactly once, in an order that
    /// respects rank within every region, waves are region-disjoint, and
    /// no wave is empty before completion.
    #[test]
    fn scheduler_completes_all_items_with_region_disjoint_waves() {
        let map = RegionMap::new(32, 32, 8);
        // A mix of interior and seam-crossing windows, deliberately
        // overlapping, in "rank order".
        let windows: Vec<SearchWindow> = (0..40)
            .map(|i| {
                let x0 = (i * 7) % 24;
                let y0 = (i * 11) % 24;
                let w = 3 + (i % 9);
                SearchWindow { x0, y0, x1: (x0 + w).min(31), y1: (y0 + w / 2).min(31) }
            })
            .collect();
        let mut sched = RegionScheduler::new(map, &windows);
        let mut done = vec![false; windows.len()];
        let mut waves = 0;
        while sched.remaining() > 0 {
            let wave = sched.next_wave();
            assert!(!wave.is_empty(), "no deadlock while items remain");
            waves += 1;
            let mut touched: Vec<u32> = Vec::new();
            for task in &wave {
                let items: Vec<u32> = match *task {
                    RegionTask::Interior { region, start, len } => {
                        let q = sched.queue(region);
                        q[start as usize..(start + len) as usize].to_vec()
                    }
                    RegionTask::Seam { item } => vec![item],
                };
                for &it in &items {
                    assert!(!done[it as usize], "item {it} scheduled twice");
                    done[it as usize] = true;
                    for r in sched.spans[it as usize].regions(&map) {
                        assert!(!touched.contains(&r), "wave shares region {r}");
                    }
                }
                // All of one task's regions become off-limits to others.
                for &it in &items {
                    touched.extend(sched.spans[it as usize].regions(&map));
                }
            }
            sched.advance(&wave);
        }
        assert!(done.iter().all(|&d| d), "every item routed");
        assert!(waves > 1, "mixed windows need several waves");
        assert!(sched.next_wave().is_empty());
    }

    /// With one region covering the whole grid the schedule degenerates
    /// to a single task holding every item in rank order — the canonical
    /// serial reference the determinism argument compares against.
    #[test]
    fn single_region_degenerates_to_serial_order() {
        let map = RegionMap::new(16, 16, 64);
        assert_eq!(map.count(), 1);
        let windows: Vec<SearchWindow> =
            (0..10).map(|i| SearchWindow { x0: i, y0: i, x1: i + 4, y1: i + 3 }).collect();
        let sched = RegionScheduler::new(map, &windows);
        let wave = sched.next_wave();
        assert_eq!(wave, vec![RegionTask::Interior { region: 0, start: 0, len: 10 }]);
        assert_eq!(sched.queue(0), (0..10u32).collect::<Vec<_>>().as_slice());
    }
}
