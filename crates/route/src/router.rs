//! The global router: net decomposition, algorithm selection, and
//! PathFinder-style negotiated rip-up and re-route.

use crate::grid::{DemandGrid, GCell, RoutingGrid};
use crate::linesearch::{mikami_tabuchi, mikami_tabuchi_in};
use crate::maze::{astar_in, count_bends, lee_bfs_in, Path, SearchWindow};
use crate::region::{OverlayGrid, RegionMap, RegionScheduler, RegionTask};
use crate::rules::RuleDeck;
use eda_place::Placement;
use eda_netlist::memo::fnv1a;
use eda_netlist::{Netlist, SubstageMemo};
use std::time::Instant;

/// Routing algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteAlgorithm {
    /// Lee BFS, first-come order, no negotiation (decade-old baseline).
    LeeBfs,
    /// Congestion-aware A* with negotiation.
    AStar,
    /// Mikami–Tabuchi line search with A* fallback and negotiation.
    LineSearch,
}

/// Router configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Algorithm.
    pub algorithm: RouteAlgorithm,
    /// Rule deck (capacities, via cost).
    pub deck: RuleDeck,
    /// G-cells per side of the routing grid.
    pub grid_cells: u32,
    /// Maximum rip-up and re-route iterations.
    pub ripup_iterations: usize,
    /// Worker threads for the batched routing passes — the initial pass and
    /// every negotiated rip-up round (`0` = all cores). Batch composition
    /// never depends on this value, so outcomes are bit-identical for any
    /// thread count.
    pub threads: usize,
    /// Bounded-memory search window: `0` (the default) searches the full
    /// grid, exactly the classic behaviour. When positive, every maze
    /// search is confined to the connection's bounding box expanded by this
    /// many g-cells, so per-search scratch is proportional to the
    /// connection's extent instead of the grid area — the tiled mode the
    /// scale tier routes in. The window is a pure function of the
    /// connection, so outcomes remain bit-identical at any thread count.
    pub window_margin: u32,
    /// Region side length (g-cells) for the region-partitioned router:
    /// `0` (the default) keeps the legacy globally-batched passes. When
    /// positive (requires `window_margin > 0`), the grid is tiled into
    /// `region_size × region_size` regions and connections are scheduled
    /// through the seam-negotiation waves of [`crate::region`]:
    /// region-interior connections search *and commit* against private
    /// overlays with no cross-worker synchronization, seam-crossing
    /// connections are arbitrated in canonical order. The partition is a
    /// pure function of the grid dimensions and this knob — never of
    /// `threads` — and the result is bit-identical to the canonical
    /// serial schedule for any region size and any thread count.
    pub region_size: u32,
}

impl RouteConfig {
    /// The same configuration on a grid with half as many g-cells per side
    /// (floor 8). Coarser g-cells pool capacity across more tracks, which is
    /// the flow supervisor's recovery move when rip-up exhausts its budget
    /// with overflow remaining.
    pub fn coarsened(&self) -> RouteConfig {
        RouteConfig { grid_cells: (self.grid_cells / 2).max(8), ..self.clone() }
    }
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            algorithm: RouteAlgorithm::LineSearch,
            deck: RuleDeck::simple(6),
            grid_cells: 32,
            ripup_iterations: 6,
            threads: 1,
            window_margin: 0,
            region_size: 0,
        }
    }
}

/// The result of routing a design.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Total wirelength in g-cell edge units.
    pub wirelength: u64,
    /// Total vias (bends in the 2-D model).
    pub vias: u64,
    /// Remaining capacity overflow after the final iteration (0 = clean).
    pub overflow: u64,
    /// Two-pin connections routed.
    pub connections: usize,
    /// Connections where line search failed and fell back to maze.
    pub linesearch_fallbacks: usize,
    /// Cells expanded across all searches (work measure).
    pub cells_expanded: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Rip-up iterations actually executed.
    pub iterations: usize,
    /// Total overflow after each executed iteration (`[0]` = after the
    /// initial pass, then one entry per rip-up round). Thread-invariant:
    /// both passes batch in input order and commit in batch order, so the
    /// trajectory is identical at any thread count.
    pub ripup_overflow: Vec<u64>,
    /// Largest per-search scratch window materialized (g-cells). Equals
    /// [`RouteOutcome::dense_grid_cells`] when
    /// [`RouteConfig::window_margin`] is `0`; under tiled routing it is the
    /// bounded-memory bar the bench compares against the dense grid.
    pub peak_window_cells: u64,
    /// Scratch a full-grid search would have allocated (`width × height`) —
    /// the dense baseline bar.
    pub dense_grid_cells: u64,
    /// Regions in the partition (`0` = region routing off). Like the
    /// schedule diagnostics below, a pure function of the input and the
    /// config — identical at any thread count.
    pub regions: u32,
    /// Connections searched *and committed* region-locally against a
    /// private overlay (counted once per routing, so rip-up re-routes
    /// count again). Depends on the partition shape, never on `threads`.
    pub local_commits: u64,
    /// Seam-crossing connections arbitrated through boundary negotiation
    /// (same counting convention as [`RouteOutcome::local_commits`]).
    pub seam_conflicts: u64,
    /// Negotiation waves dispatched across all passes.
    pub negotiation_waves: u64,
}

impl RouteOutcome {
    /// Whether the route is overflow-free (manufacturable on this stack).
    pub fn is_clean(&self) -> bool {
        self.overflow == 0
    }
}

/// One 2-pin connection to route.
#[derive(Debug, Clone, Copy)]
struct TwoPin {
    src: GCell,
    dst: GCell,
    /// Distinct g-cell pins of the owning net — the fanout weight the
    /// region router's congestion-aware ordering uses.
    fanout: u32,
}

/// Decomposes every multi-pin net into a Prim MST over its g-cell pins.
///
/// Nets are independent, so the MSTs run through a `par_map` and the
/// per-net edge lists concatenate in net order — the pair list is
/// byte-identical to the serial loop at any thread count.
fn decompose(
    netlist: &Netlist,
    placement: &Placement,
    width: u32,
    height: u32,
    threads: usize,
) -> (Vec<TwoPin>, eda_par::ParStats) {
    let die = placement.die;
    let to_gcell = |p: eda_place::Point| -> GCell {
        let x = ((p.x / die.width_um * width as f64) as u32).min(width - 1);
        let y = ((p.y / die.height_um * height as f64) as u32).min(height - 1);
        GCell::new(x, y)
    };
    let ids: Vec<_> = netlist.nets().map(|(net_id, _)| net_id).collect();
    let (per_net, stats) = eda_par::par_map_stats(threads, &ids, |_, &net_id| {
        let pts = placement.net_points(netlist, net_id);
        let mut pins: Vec<GCell> = pts.into_iter().map(to_gcell).collect();
        pins.sort_unstable();
        pins.dedup();
        prim_pairs(&pins)
    });
    (per_net.into_iter().flatten().collect(), stats)
}

/// Prim MST on Manhattan distance over one net's deduplicated pin list — a
/// pure function of the pins, which is what makes per-net memoization sound.
fn prim_pairs(pins: &[GCell]) -> Vec<TwoPin> {
    let mut pairs = Vec::new();
    if pins.len() < 2 {
        return pairs;
    }
    let fanout = pins.len() as u32;
    let mut in_tree = vec![false; pins.len()];
    in_tree[0] = true;
    for _ in 1..pins.len() {
        let mut best: Option<(usize, usize, u32)> = None;
        for (i, &a) in pins.iter().enumerate() {
            if !in_tree[i] {
                continue;
            }
            for (j, &b) in pins.iter().enumerate() {
                if in_tree[j] {
                    continue;
                }
                let d = a.manhattan(&b);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((i, j, d));
                }
            }
        }
        let (i, j, _) = best.expect("tree incomplete implies a remaining pin");
        in_tree[j] = true;
        pairs.push(TwoPin { src: pins[i], dst: pins[j], fanout });
    }
    pairs
}

/// [`decompose`] with per-net memoization: each net's MST pair list is keyed
/// on its deduplicated g-cell pins, so warm runs (and other designs that
/// place a net onto the same cells) skip the O(pins²) Prim scan. Memo
/// probes and stores happen on the orchestrating thread; only the missing
/// nets fan out through `par_map`. The pair list is byte-identical to
/// [`decompose`]'s for any memo state.
fn decompose_memo(
    netlist: &Netlist,
    placement: &Placement,
    width: u32,
    height: u32,
    threads: usize,
    memo: &dyn SubstageMemo,
) -> (Vec<TwoPin>, eda_par::ParStats) {
    let die = placement.die;
    let to_gcell = |p: eda_place::Point| -> GCell {
        let x = ((p.x / die.width_um * width as f64) as u32).min(width - 1);
        let y = ((p.y / die.height_um * height as f64) as u32).min(height - 1);
        GCell::new(x, y)
    };
    let ids: Vec<_> = netlist.nets().map(|(net_id, _)| net_id).collect();
    let mut per_net: Vec<Option<Vec<TwoPin>>> = vec![None; ids.len()];
    let mut miss_at: Vec<usize> = Vec::new();
    let mut miss_pins: Vec<Vec<GCell>> = Vec::new();
    let mut miss_keys: Vec<u64> = Vec::new();
    for (i, &net_id) in ids.iter().enumerate() {
        let pts = placement.net_points(netlist, net_id);
        let mut pins: Vec<GCell> = pts.into_iter().map(to_gcell).collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            per_net[i] = Some(Vec::new());
            continue;
        }
        let key = net_pins_key(&pins);
        match memo.load(ROUTE_NET_KIND, key).and_then(|p| parse_net_pairs(&p)) {
            Some(pairs) => per_net[i] = Some(pairs),
            None => {
                miss_at.push(i);
                miss_pins.push(pins);
                miss_keys.push(key);
            }
        }
    }
    let (computed, stats) =
        eda_par::par_map_stats(threads, &miss_pins, |_, pins| prim_pairs(pins));
    for ((&i, key), pairs) in miss_at.iter().zip(miss_keys).zip(computed) {
        memo.store(ROUTE_NET_KIND, key, &net_pairs_text(&pairs));
        per_net[i] = Some(pairs);
    }
    (per_net.into_iter().flatten().flatten().collect(), stats)
}

/// Memo key for one net's MST: FNV over the deduplicated pin cells.
fn net_pins_key(pins: &[GCell]) -> u64 {
    let mut text = String::with_capacity(8 * pins.len() + 8);
    text.push_str("net|");
    for p in pins {
        text.push_str(&format!("{},{};", p.x, p.y));
    }
    fnv1a(text.bytes())
}

fn net_pairs_text(pairs: &[TwoPin]) -> String {
    let mut out = format!("netmst v1 {}\n", pairs.len());
    for tp in pairs {
        out.push_str(&format!(
            "tp {} {} {} {} {}\n",
            tp.src.x, tp.src.y, tp.dst.x, tp.dst.y, tp.fanout
        ));
    }
    out.push_str("end\n");
    out
}

fn parse_net_pairs(text: &str) -> Option<Vec<TwoPin>> {
    let mut lines = text.lines();
    let mut hf = lines.next()?.split(' ');
    if hf.next()? != "netmst" || hf.next()? != "v1" {
        return None;
    }
    let n: usize = hf.next()?.parse().ok()?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let mut f = lines.next()?.split(' ');
        if f.next()? != "tp" {
            return None;
        }
        let sx: u32 = f.next()?.parse().ok()?;
        let sy: u32 = f.next()?.parse().ok()?;
        let dx: u32 = f.next()?.parse().ok()?;
        let dy: u32 = f.next()?.parse().ok()?;
        let fanout: u32 = f.next()?.parse().ok()?;
        pairs.push(TwoPin { src: GCell::new(sx, sy), dst: GCell::new(dx, dy), fanout });
    }
    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    Some(pairs)
}

fn commit(grid: &mut RoutingGrid, path: &Path, delta: i32) {
    for w in path.windows(2) {
        grid.add_usage(w[0], w[1], delta);
    }
}

/// Pure per-connection search against an immutable demand view — the only
/// route computation, shared by the legacy batched passes, the region
/// waves (where the view is a private [`OverlayGrid`]), and the rip-up
/// re-routes. Returns `(path, linesearch_fell_back, expanded, scratch)`.
/// The result depends only on the demand values and the window, so every
/// schedule that presents the canonical demand state gets the canonical
/// path.
fn route_one_in<G: DemandGrid>(
    grid: &G,
    tp: &TwoPin,
    win: SearchWindow,
    cfg: &RouteConfig,
) -> (Path, bool, u64, u64) {
    match cfg.algorithm {
        RouteAlgorithm::LeeBfs => {
            let (p, s) = lee_bfs_in(grid, tp.src, tp.dst, win).expect("grid is connected");
            (p, false, s.expanded as u64, s.scratch_cells as u64)
        }
        RouteAlgorithm::AStar => {
            let (p, s) =
                astar_in(grid, tp.src, tp.dst, cfg.deck.via_cost, win).expect("grid is connected");
            (p, false, s.expanded as u64, s.scratch_cells as u64)
        }
        RouteAlgorithm::LineSearch => {
            // Windowed mode clips the probes to the same bounded window
            // the maze fallback searches; margin 0 keeps the classic
            // connection-extent window.
            let probe = if cfg.window_margin > 0 {
                mikami_tabuchi_in(grid, tp.src, tp.dst, 12, win)
            } else {
                mikami_tabuchi(grid, tp.src, tp.dst, 12)
            };
            match probe {
                Some((p, s)) => (p, false, s.expanded as u64, s.scratch_cells as u64),
                None => {
                    let (p, s) = astar_in(grid, tp.src, tp.dst, cfg.deck.via_cost, win)
                        .expect("grid is connected");
                    (p, true, s.expanded as u64, s.scratch_cells as u64)
                }
            }
        }
    }
}

/// Axis-aligned bounding box of a connection, expanded by `margin` g-cells
/// and clamped to the grid: `(x0, y0, x1, y1)` inclusive.
fn expanded_bbox(tp: &TwoPin, margin: u32, w: u32, h: u32) -> (u32, u32, u32, u32) {
    let x0 = tp.src.x.min(tp.dst.x).saturating_sub(margin);
    let y0 = tp.src.y.min(tp.dst.y).saturating_sub(margin);
    let x1 = (tp.src.x.max(tp.dst.x) + margin).min(w - 1);
    let y1 = (tp.src.y.max(tp.dst.y) + margin).min(h - 1);
    (x0, y0, x1, y1)
}

fn boxes_disjoint(a: &(u32, u32, u32, u32), b: &(u32, u32, u32, u32)) -> bool {
    a.2 < b.0 || b.2 < a.0 || a.3 < b.1 || b.3 < a.1
}

/// Cap on how many connections share one parallel batch, keeping the
/// congestion picture each batch routes against reasonably fresh. A fixed
/// constant: batch composition must never depend on the thread count.
const MAX_BATCH: usize = 16;

/// Routes a placed netlist.
///
/// The baseline [`RouteAlgorithm::LeeBfs`] routes each connection once in
/// arbitrary order with no congestion awareness; the advanced algorithms run
/// negotiated rip-up and re-route until clean or the iteration budget is
/// spent.
pub fn route(netlist: &Netlist, placement: &Placement, cfg: &RouteConfig) -> RouteOutcome {
    route_stats(netlist, placement, cfg).0
}

/// [`route`] returning the accumulated parallel-execution record of the
/// batched passes (for scaling reports).
///
/// Both the initial pass and every negotiated rip-up round group their
/// worklist (the distance-sorted connection list, respectively the
/// input-ordered victims of the round) into batches of pairwise
/// bbox-disjoint connections (greedy scan, fixed [`MAX_BATCH`] cap). Every
/// batch member routes against the same immutable grid snapshot and commits
/// sequentially in batch order, so batch composition and every path depend
/// only on the input — outcomes, including the `ripup_overflow` trajectory,
/// are bit-identical for any `threads`. Conflicting nets never share a
/// batch, so each still sees the other's freshly committed usage.
pub fn route_stats(
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouteConfig,
) -> (RouteOutcome, eda_par::ParStats) {
    let (outcome, stats, _) = route_stats_memo(netlist, placement, cfg, None);
    (outcome, stats)
}

/// Memo kind for per-net MST decomposition entries.
pub const ROUTE_NET_KIND: &str = "route.net";
/// Memo kind for whole-outcome route replay entries.
pub const ROUTE_OUTCOME_KIND: &str = "route.outcome";

/// [`route_stats`] with an optional sub-stage memo, at two granularities:
///
/// * **per net** ([`ROUTE_NET_KIND`]) — each net's MST decomposition, keyed
///   on its g-cell pins, replays without re-running Prim;
/// * **whole outcome** ([`ROUTE_OUTCOME_KIND`]) — the final
///   [`RouteOutcome`], keyed on the decomposed connection list plus every
///   route-relevant config field (never `threads`), replays without
///   touching the grid at all.
///
/// Paths between those granularities (per connection) are deliberately not
/// memoized: a path depends on the demand committed by every previously
/// routed connection, so replaying one out of context would break the
/// bit-identity contract. The third return value reports whether the
/// outcome was replayed (`seconds` is near-zero and the [`ParStats`] empty
/// in that case — callers skip their kernel telemetry so replayed and
/// recomputed runs stay comparable).
///
/// [`ParStats`]: eda_par::ParStats
pub fn route_stats_memo(
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouteConfig,
    memo: Option<&dyn SubstageMemo>,
) -> (RouteOutcome, eda_par::ParStats, bool) {
    let start = Instant::now();
    let w = cfg.grid_cells.max(2);
    let h = cfg.grid_cells.max(2);
    let grid = RoutingGrid::new(w, h, &cfg.deck);
    let (decomposed, decompose_stats) = match memo {
        Some(m) => decompose_memo(netlist, placement, w, h, cfg.threads, m),
        None => decompose(netlist, placement, w, h, cfg.threads),
    };
    if let Some(m) = memo {
        let key = route_outcome_key(cfg, &decomposed);
        if let Some(out) =
            m.load(ROUTE_OUTCOME_KIND, key).and_then(|p| parse_route_outcome(&p, start))
        {
            return (out, eda_par::ParStats::empty(), true);
        }
        let (outcome, stats) = route_decomposed(grid, decomposed, decompose_stats, cfg, start);
        m.store(ROUTE_OUTCOME_KIND, key, &route_outcome_text(&outcome));
        return (outcome, stats, false);
    }
    let (outcome, stats) = route_decomposed(grid, decomposed, decompose_stats, cfg, start);
    (outcome, stats, false)
}

/// Memo key for the whole-outcome entry: FNV over the route-relevant config
/// (algorithm, deck, grid, budgets, window/region shape — everything but
/// `threads`, which outcomes are invariant to) and the decomposed
/// connection list.
fn route_outcome_key(cfg: &RouteConfig, pairs: &[TwoPin]) -> u64 {
    let mut text = format!(
        "route|{:?}|{}|{}|{}|{:016x}|{:016x}|{}|{}|{}|{}\n",
        cfg.algorithm,
        cfg.deck.name,
        cfg.deck.layers,
        cfg.deck.tracks_per_layer,
        cfg.deck.track_derating.to_bits(),
        cfg.deck.via_cost.to_bits(),
        cfg.grid_cells,
        cfg.ripup_iterations,
        cfg.window_margin,
        cfg.region_size,
    );
    for tp in pairs {
        text.push_str(&format!("{} {} {} {} {}\n", tp.src.x, tp.src.y, tp.dst.x, tp.dst.y, tp.fanout));
    }
    fnv1a(text.bytes())
}

/// Serializes every deterministic [`RouteOutcome`] field (`seconds` is wall
/// clock and excluded — a replay reports its own, near-zero, elapsed time).
fn route_outcome_text(o: &RouteOutcome) -> String {
    let mut out = format!(
        "routeout v1 {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
        o.wirelength,
        o.vias,
        o.overflow,
        o.connections,
        o.linesearch_fallbacks,
        o.cells_expanded,
        o.iterations,
        o.peak_window_cells,
        o.dense_grid_cells,
        o.regions,
        o.local_commits,
        o.seam_conflicts,
        o.negotiation_waves,
    );
    out.push_str(&format!("ro {}\n", o.ripup_overflow.len()));
    for v in &o.ripup_overflow {
        out.push_str(&format!("{v}\n"));
    }
    out.push_str("end\n");
    out
}

fn parse_route_outcome(text: &str, start: Instant) -> Option<RouteOutcome> {
    let mut lines = text.lines();
    let mut f = lines.next()?.split(' ');
    if f.next()? != "routeout" || f.next()? != "v1" {
        return None;
    }
    let mut o = RouteOutcome {
        wirelength: f.next()?.parse().ok()?,
        vias: f.next()?.parse().ok()?,
        overflow: f.next()?.parse().ok()?,
        connections: f.next()?.parse().ok()?,
        linesearch_fallbacks: f.next()?.parse().ok()?,
        cells_expanded: f.next()?.parse().ok()?,
        seconds: 0.0,
        iterations: f.next()?.parse().ok()?,
        ripup_overflow: Vec::new(),
        peak_window_cells: f.next()?.parse().ok()?,
        dense_grid_cells: f.next()?.parse().ok()?,
        regions: f.next()?.parse().ok()?,
        local_commits: f.next()?.parse().ok()?,
        seam_conflicts: f.next()?.parse().ok()?,
        negotiation_waves: f.next()?.parse().ok()?,
    };
    if f.next().is_some() {
        return None;
    }
    let n: usize = lines.next()?.strip_prefix("ro ")?.parse().ok()?;
    for _ in 0..n {
        o.ripup_overflow.push(lines.next()?.parse().ok()?);
    }
    if lines.next()? != "end" || lines.next().is_some() {
        return None;
    }
    o.seconds = start.elapsed().as_secs_f64();
    Some(o)
}

/// Routes an already-decomposed connection list — the shared back half of
/// [`route_stats`] and [`route_stats_memo`].
fn route_decomposed(
    mut grid: RoutingGrid,
    decomposed: Vec<TwoPin>,
    decompose_stats: eda_par::ParStats,
    cfg: &RouteConfig,
    start: Instant,
) -> (RouteOutcome, eda_par::ParStats) {
    let w = cfg.grid_cells.max(2);
    let h = cfg.grid_cells.max(2);
    if cfg.region_size > 0 && cfg.window_margin > 0 {
        let mut stats = eda_par::ParStats::empty();
        stats.absorb(&decompose_stats);
        return route_region(grid, decomposed, cfg, start, stats);
    }
    let mut pairs = decomposed;
    // Long connections first (they need the straightest resources).
    pairs.sort_by_key(|p| std::cmp::Reverse(p.src.manhattan(&p.dst)));

    let mut paths: Vec<Option<Path>> = vec![None; pairs.len()];
    let mut fallbacks = 0usize;
    let mut expanded = 0u64;
    let mut peak_window = 0u64;
    // Legacy stats deliberately exclude the decompose dispatch so the
    // chunk counts in the pinned telemetry goldens stay what they were.
    let mut stats = eda_par::ParStats::empty();

    // The search window depends only on the connection and the config, so
    // windowed routing is as thread-invariant as full-grid routing.
    let route_one = |grid: &RoutingGrid, tp: &TwoPin| -> (Path, bool, u64, u64) {
        let win = if cfg.window_margin > 0 {
            SearchWindow::around(tp.src, tp.dst, cfg.window_margin, grid)
        } else {
            SearchWindow::full(grid)
        };
        route_one_in(grid, tp, win, cfg)
    };

    // Peels the first greedy batch of pairwise bbox-disjoint connections
    // off an ordered worklist; returns `(batch, rest)`. Pure function of
    // the worklist order — never of the thread count.
    let peel_batch = |work: &[usize]| -> (Vec<usize>, Vec<usize>) {
        let mut batch: Vec<usize> = Vec::new();
        let mut boxes: Vec<(u32, u32, u32, u32)> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for &i in work {
            let bb = expanded_bbox(&pairs[i], 1, w, h);
            if batch.len() < MAX_BATCH && boxes.iter().all(|b| boxes_disjoint(b, &bb)) {
                batch.push(i);
                boxes.push(bb);
            } else {
                rest.push(i);
            }
        }
        (batch, rest)
    };

    // Initial routing pass: fixed-size batches in distance-sorted order.
    // The grid starts empty, so intra-batch congestion feedback is worth
    // little here — full-width batches keep every worker busy through the
    // expensive long connections, and negotiation repairs any overlap the
    // batching admits. (Rip-up rounds, where freshness matters, use the
    // bbox-disjoint peeling below instead.)
    let order: Vec<usize> = (0..pairs.len()).collect();
    for batch in order.chunks(MAX_BATCH) {
        let (routed, s) = {
            let grid = &grid;
            eda_par::par_map_stats(cfg.threads, batch, |_, &i| route_one(grid, &pairs[i]))
        };
        stats.absorb(&s);
        for (&i, (p, fb, ex, sc)) in batch.iter().zip(routed) {
            fallbacks += fb as usize;
            expanded += ex;
            peak_window = peak_window.max(sc);
            commit(&mut grid, &p, 1);
            paths[i] = Some(p);
        }
    }

    let negotiate = cfg.algorithm != RouteAlgorithm::LeeBfs;
    let mut iterations = 1usize;
    let mut ripup_overflow = vec![grid.total_overflow()];
    if negotiate {
        for _ in 0..cfg.ripup_iterations {
            if grid.total_overflow() == 0 {
                break;
            }
            grid.bump_history();
            iterations += 1;
            // Victims of this round: paths traversing a congested edge, in
            // input order. Scheduling them into bbox-disjoint batches lets
            // the re-routes run in parallel while later batches still
            // observe earlier batches' freshly committed usage. The dense
            // router treats at-capacity edges as congested (aggressive, fine
            // on small grids); the windowed scale router only rips paths on
            // strictly overflowed edges — at scale most edges sit near
            // capacity and the aggressive rule churns thousands of paths per
            // residual overflow unit without converging.
            let congested = |grid: &RoutingGrid, a: GCell, b: GCell| {
                if cfg.window_margin > 0 {
                    grid.is_overflowed(a, b)
                } else {
                    grid.is_full(a, b)
                }
            };
            let mut victims: Vec<usize> = (0..pairs.len())
                .filter(|&i| {
                    paths[i]
                        .as_ref()
                        .is_some_and(|p| p.windows(2).any(|win| congested(&grid, win[0], win[1])))
                })
                .collect();
            while !victims.is_empty() {
                let (batch, rest) = peel_batch(&victims);
                for &i in &batch {
                    let old = paths[i].take().expect("path exists");
                    commit(&mut grid, &old, -1);
                }
                let (routed, s) = {
                    let grid = &grid;
                    eda_par::par_map_stats(cfg.threads, &batch, |_, &i| route_one(grid, &pairs[i]))
                };
                stats.absorb(&s);
                for (&i, (p, fb, ex, sc)) in batch.iter().zip(routed) {
                    fallbacks += fb as usize;
                    expanded += ex;
                    peak_window = peak_window.max(sc);
                    commit(&mut grid, &p, 1);
                    paths[i] = Some(p);
                }
                victims = rest;
            }
            ripup_overflow.push(grid.total_overflow());
        }
    }

    let vias: u64 = paths.iter().flatten().map(|p| count_bends(p) as u64).sum();
    let outcome = RouteOutcome {
        wirelength: grid.total_usage(),
        vias,
        overflow: grid.total_overflow(),
        connections: pairs.len(),
        linesearch_fallbacks: fallbacks,
        cells_expanded: expanded,
        seconds: start.elapsed().as_secs_f64(),
        iterations,
        ripup_overflow,
        peak_window_cells: peak_window,
        dense_grid_cells: w as u64 * h as u64,
        regions: 0,
        local_commits: 0,
        seam_conflicts: 0,
        negotiation_waves: 0,
    };
    (outcome, stats)
}

/// One task's routed connections: `(queue item, (path, used line-search
/// fallback, cells expanded, peak window cells))`, in task order.
type TaskResults = Vec<(u32, (Path, bool, u64, u64))>;

/// Running totals across all wave passes of one region-mode route.
#[derive(Default)]
struct WaveTally {
    local_commits: u64,
    seam_conflicts: u64,
    waves: u64,
    fallbacks: usize,
    expanded: u64,
    peak_window: u64,
}

/// Routes `items` (pair indices in canonical rank order) through the
/// seam-negotiation wave scheduler, committing every result into `grid`
/// and `paths`. One `eda-par` dispatch per wave: interior runs are
/// region-sized batch tasks (hundreds of window searches amortize one
/// dispatch), seam connections are singleton tasks against the committed
/// grid. See [`crate::region`] for why the outcome is bit-identical to
/// routing `items` serially in order, for any region size or thread
/// count.
#[allow(clippy::too_many_arguments)]
fn run_wave_pass(
    grid: &mut RoutingGrid,
    pairs: &[TwoPin],
    items: &[u32],
    map: RegionMap,
    cfg: &RouteConfig,
    paths: &mut [Option<Path>],
    stats: &mut eda_par::ParStats,
    tally: &mut WaveTally,
) {
    let windows: Vec<SearchWindow> = items
        .iter()
        .map(|&i| {
            let tp = &pairs[i as usize];
            SearchWindow::around_dims(tp.src, tp.dst, cfg.window_margin, grid.width, grid.height)
        })
        .collect();
    let mut sched = RegionScheduler::new(map, &windows);
    // Dispatch balancing: `par_tasks_stats_at` pins dispatch position p to
    // worker (p + offset) mod K, so the permutation and offset we dispatch
    // with decide the per-worker CPU split. Waves are small (a handful of
    // tasks) and the scheduler emits the heavy interior batches first, so
    // naive order piles every wave's big task onto worker 0. Instead we
    // keep a per-worker ledger of *measured* busy seconds, greedily hand
    // each wave's costliest task to the least-loaded worker with a free
    // stripe slot, and re-anchor the ledger to the measured per-worker
    // clocks after every wave, so cost-model error never accumulates.
    // This is pure execution placement: the commit loop below still walks
    // `wave` in canonical order, so QoR is bit-identical regardless of
    // which worker ran what.
    let workers = eda_par::resolve_threads(cfg.threads).max(1);
    // Measured busy seconds per worker slot, across all waves so far.
    let mut measured = vec![0.0f64; workers];
    // Conversion from cost-proxy units to seconds, re-fit every wave.
    let mut est_dispatched = 0u64;
    let mut busy_total = 0.0f64;
    while sched.remaining() > 0 {
        let wave = sched.next_wave();
        if wave.is_empty() {
            break;
        }
        tally.waves += 1;
        // Cost proxy per connection: window perimeter, ~ the path length a
        // successful line search walks. Window *area* (the A*-fallback
        // bound) overweights long connections quadratically and skews the
        // ledger when most connections line-search-route.
        let est = |item: u32| -> u64 {
            let w = &windows[item as usize];
            (w.width() + w.height()) as u64
        };
        let cost = |task: &RegionTask| -> u64 {
            match *task {
                RegionTask::Interior { region, start, len } => sched.queue(region)
                    [start as usize..(start + len) as usize]
                    .iter()
                    .map(|&item| est(item))
                    .sum(),
                RegionTask::Seam { item } => est(item),
            }
        };
        let n = wave.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(cost(&wave[t])));
        // Rotate the stripe so position 0 of this wave lands on the
        // least-loaded worker (small waves would otherwise always hit
        // slot 0), then greedily fill: worker w owns positions p with
        // (p + o) % K == w, a fixed slot count per wave; within that
        // constraint hand each task (costliest first) to the least-loaded
        // worker with a free slot. `load` starts from the measured clocks
        // and grows by predicted task seconds as the wave fills.
        let calib = if est_dispatched > 0 { busy_total / est_dispatched as f64 } else { 0.0 };
        let mut load = measured.clone();
        let min_slot = |load: &[f64], free: &dyn Fn(usize) -> bool| -> usize {
            let mut best = usize::MAX;
            for w in 0..workers {
                if free(w) && (best == usize::MAX || load[w] < load[best]) {
                    best = w;
                }
            }
            best
        };
        let o = min_slot(&load, &|_| true).min(workers - 1);
        let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for &t in &order {
            let w = min_slot(&load, &|w| {
                let first = (w + workers - o) % workers;
                assigned[w].len() < (n + workers - 1).saturating_sub(first) / workers
            });
            let w = if w == usize::MAX { o } else { w };
            load[w] += cost(&wave[t]) as f64 * calib;
            assigned[w].push(t);
        }
        let mut dispatch = vec![0usize; n];
        for (w, tasks) in assigned.iter().enumerate() {
            let first = (w + workers - o) % workers;
            for (q, &t) in tasks.iter().enumerate() {
                dispatch[first + q * workers] = t;
            }
        }
        est_dispatched += dispatch.iter().map(|&t| cost(&wave[t])).sum::<u64>();
        let jobs: Vec<&RegionTask> = dispatch.iter().map(|&t| &wave[t]).collect();
        let (results, s) = {
            let grid: &RoutingGrid = grid;
            let sched = &sched;
            let windows = &windows;
            // Immutable view for the workers; old paths are only swapped
            // out in the canonical commit loop after the dispatch returns.
            let paths: &[Option<Path>] = paths;
            eda_par::par_tasks_stats_at(cfg.threads, o, &jobs, |_, task| match **task {
                RegionTask::Interior { region, start, len } => {
                    let mut overlay = OverlayGrid::new(grid, map.rect(region));
                    let run = &sched.queue(region)[start as usize..(start + len) as usize];
                    let mut out = Vec::with_capacity(len as usize);
                    for &item in run {
                        let pair = items[item as usize] as usize;
                        // Rip-up victim: hide its own old demand from the
                        // view; the shared grid keeps it until commit.
                        if let Some(old) = &paths[pair] {
                            overlay.uncommit(old);
                        }
                        let r = route_one_in(&overlay, &pairs[pair], windows[item as usize], cfg);
                        overlay.commit(&r.0);
                        out.push((item, r));
                    }
                    out
                }
                RegionTask::Seam { item } => {
                    let pair = items[item as usize] as usize;
                    let win = windows[item as usize];
                    let r = if let Some(old) = &paths[pair] {
                        let mut overlay = OverlayGrid::new(grid, (win.x0, win.y0, win.x1, win.y1));
                        overlay.uncommit(old);
                        route_one_in(&overlay, &pairs[pair], win, cfg)
                    } else {
                        route_one_in(grid, &pairs[pair], win, cfg)
                    };
                    vec![(item, r)]
                }
            })
        };
        stats.absorb(&s);
        for (w, b) in s.busy_s.iter().enumerate().take(workers) {
            measured[w] += b;
            busy_total += b;
        }
        let mut by_task: Vec<Option<TaskResults>> = wave.iter().map(|_| None).collect();
        for (j, r) in results.into_iter().enumerate() {
            by_task[dispatch[j]] = Some(r);
        }
        for (task, routed) in wave.iter().zip(by_task) {
            let seam = matches!(task, RegionTask::Seam { .. });
            let routed = routed.unwrap_or_default();
            for (item, (p, fb, ex, sc)) in routed {
                tally.fallbacks += fb as usize;
                tally.expanded += ex;
                tally.peak_window = tally.peak_window.max(sc);
                if seam {
                    tally.seam_conflicts += 1;
                } else {
                    tally.local_commits += 1;
                }
                let pair = items[item as usize] as usize;
                if let Some(old) = paths[pair].take() {
                    commit(grid, &old, -1);
                }
                commit(grid, &p, 1);
                paths[pair] = Some(p);
            }
        }
        sched.advance(&wave);
    }
}

/// The region-partitioned route path: congestion-aware canonical
/// ordering, wave-scheduled initial pass, then negotiated rip-up rounds
/// whose victims (canonical order, strict-overflow rule) are uncommitted
/// up front and re-routed through the same wave machinery.
fn route_region(
    mut grid: RoutingGrid,
    pairs: Vec<TwoPin>,
    cfg: &RouteConfig,
    start: Instant,
    mut stats: eda_par::ParStats,
) -> (RouteOutcome, eda_par::ParStats) {
    let (w, h) = (grid.width, grid.height);
    let map = RegionMap::new(w, h, cfg.region_size);
    // Canonical rank order — the serial schedule every wave execution is
    // bit-identical to. Long, high-fanout connections first: they need
    // the straightest resources, and routing them into an empty grid
    // instead of a congested one is what cuts rip-up rounds.
    let mut order: Vec<u32> = (0..pairs.len() as u32).collect();
    order.sort_by_key(|&i| {
        let p = &pairs[i as usize];
        std::cmp::Reverse(p.src.manhattan(&p.dst) + 2 * p.fanout.saturating_sub(2))
    });

    let mut paths: Vec<Option<Path>> = vec![None; pairs.len()];
    let mut tally = WaveTally::default();
    run_wave_pass(&mut grid, &pairs, &order, map, cfg, &mut paths, &mut stats, &mut tally);

    let negotiate = cfg.algorithm != RouteAlgorithm::LeeBfs;
    let mut iterations = 1usize;
    let mut ripup_overflow = vec![grid.total_overflow()];
    if negotiate {
        for _ in 0..cfg.ripup_iterations {
            if grid.total_overflow() == 0 {
                break;
            }
            grid.bump_history();
            iterations += 1;
            // Victims in canonical order: every path on a strictly
            // overflowed edge (the scale rule — region mode requires a
            // positive window margin). Old paths stay committed until each
            // victim's own canonical commit slot — see the rip-up
            // semantics note in [`crate::region`]; ripping everything up
            // front lets re-routes re-take the same shortest paths and
            // never converges at scale.
            let victims: Vec<u32> = order
                .iter()
                .copied()
                .filter(|&i| {
                    paths[i as usize]
                        .as_ref()
                        .is_some_and(|p| p.windows(2).any(|e| grid.is_overflowed(e[0], e[1])))
                })
                .collect();
            run_wave_pass(&mut grid, &pairs, &victims, map, cfg, &mut paths, &mut stats, &mut tally);
            ripup_overflow.push(grid.total_overflow());
        }
    }

    let vias: u64 = paths.iter().flatten().map(|p| count_bends(p) as u64).sum();
    if std::env::var_os("EDA_ROUTE_DEBUG").is_some() {
        eprintln!(
            "route_region debug: waves={} local={} seam={} ripup_overflow={:?} busy_s={:?}",
            tally.waves, tally.local_commits, tally.seam_conflicts, ripup_overflow, stats.busy_s
        );
    }
    let outcome = RouteOutcome {
        wirelength: grid.total_usage(),
        vias,
        overflow: grid.total_overflow(),
        connections: pairs.len(),
        linesearch_fallbacks: tally.fallbacks,
        cells_expanded: tally.expanded,
        seconds: start.elapsed().as_secs_f64(),
        iterations,
        ripup_overflow,
        peak_window_cells: tally.peak_window,
        dense_grid_cells: w as u64 * h as u64,
        regions: map.count() as u32,
        local_commits: tally.local_commits,
        seam_conflicts: tally.seam_conflicts,
        negotiation_waves: tally.waves,
    };
    (outcome, stats)
}

/// Routes the same placement across a sweep of layer counts, reporting which
/// stacks close overflow-free — the data behind the 6-layer → 4-layer cost
/// claim (C5).
pub fn layer_sweep(
    netlist: &Netlist,
    placement: &Placement,
    layers: impl IntoIterator<Item = u32>,
    algorithm: RouteAlgorithm,
) -> Vec<(u32, RouteOutcome)> {
    layers
        .into_iter()
        .map(|l| {
            let cfg = RouteConfig {
                algorithm,
                deck: RuleDeck::simple(l),
                ..Default::default()
            };
            (l, route(netlist, placement, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_place::{place_global, Die, GlobalConfig};

    fn placed(gates: usize, seed: u64) -> (eda_netlist::Netlist, Placement) {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        (n, p)
    }

    struct MapMemo {
        map: std::cell::RefCell<std::collections::HashMap<(String, u64), String>>,
        hits: std::cell::Cell<usize>,
    }

    impl MapMemo {
        fn new() -> MapMemo {
            MapMemo {
                map: std::cell::RefCell::new(std::collections::HashMap::new()),
                hits: std::cell::Cell::new(0),
            }
        }
    }

    impl SubstageMemo for MapMemo {
        fn load(&self, kind: &str, key: u64) -> Option<String> {
            let hit = self.map.borrow().get(&(kind.to_string(), key)).cloned();
            if hit.is_some() {
                self.hits.set(self.hits.get() + 1);
            }
            hit
        }
        fn store(&self, kind: &str, key: u64, payload: &str) {
            self.map.borrow_mut().insert((kind.to_string(), key), payload.to_string());
        }
    }

    fn same_outcome(a: &RouteOutcome, b: &RouteOutcome) {
        assert_eq!(a.wirelength, b.wirelength);
        assert_eq!(a.vias, b.vias);
        assert_eq!(a.overflow, b.overflow);
        assert_eq!(a.connections, b.connections);
        assert_eq!(a.linesearch_fallbacks, b.linesearch_fallbacks);
        assert_eq!(a.cells_expanded, b.cells_expanded);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ripup_overflow, b.ripup_overflow);
        assert_eq!(a.peak_window_cells, b.peak_window_cells);
        assert_eq!(a.dense_grid_cells, b.dense_grid_cells);
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.local_commits, b.local_commits);
        assert_eq!(a.seam_conflicts, b.seam_conflicts);
        assert_eq!(a.negotiation_waves, b.negotiation_waves);
    }

    #[test]
    fn memoized_route_replays_bit_identically() {
        let (n, p) = placed(300, 11);
        for cfg in [
            RouteConfig::default(),
            RouteConfig { window_margin: 4, region_size: 16, ..Default::default() },
        ] {
            let (plain, _) = route_stats(&n, &p, &cfg);
            let memo = MapMemo::new();
            let (cold, _, cold_replayed) = route_stats_memo(&n, &p, &cfg, Some(&memo));
            assert!(!cold_replayed);
            same_outcome(&cold, &plain);
            assert_eq!(memo.hits.get(), 0, "cold run must not hit");
            let (warm, _, warm_replayed) = route_stats_memo(&n, &p, &cfg, Some(&memo));
            assert!(warm_replayed, "identical input replays the whole outcome");
            same_outcome(&warm, &plain);
            assert!(memo.hits.get() > n.nets().count() / 2, "per-net MSTs hit too");
        }
    }

    #[test]
    fn route_memo_misses_on_config_change() {
        let (n, p) = placed(200, 4);
        let memo = MapMemo::new();
        let cfg = RouteConfig::default();
        route_stats_memo(&n, &p, &cfg, Some(&memo));
        let edited = RouteConfig { ripup_iterations: 3, ..cfg };
        let (out, _, replayed) = route_stats_memo(&n, &p, &edited, Some(&memo));
        assert!(!replayed, "ripup budget is part of the outcome key");
        let (plain, _) = route_stats(&n, &p, &edited);
        same_outcome(&out, &plain);
    }

    #[test]
    fn all_algorithms_route_everything() {
        let (n, p) = placed(200, 4);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let out = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            assert!(out.connections > 0, "{alg:?}");
            assert!(out.wirelength > 0, "{alg:?}");
        }
    }

    #[test]
    fn negotiation_beats_baseline_on_overflow() {
        let (n, p) = placed(500, 9);
        // Small grid + few layers => heavy contention, but not so saturated
        // that negotiation has no room to move (a 2-layer 12-cell grid
        // overflows ~equally under every algorithm).
        let mk = |alg| RouteConfig {
            algorithm: alg,
            deck: RuleDeck::simple(3),
            grid_cells: 16,
            ripup_iterations: 8,
            ..Default::default()
        };
        let baseline = route(&n, &p, &mk(RouteAlgorithm::LeeBfs));
        let advanced = route(&n, &p, &mk(RouteAlgorithm::AStar));
        assert!(
            advanced.overflow < baseline.overflow,
            "negotiation {} must beat naive {}",
            advanced.overflow,
            baseline.overflow
        );
    }

    #[test]
    fn linesearch_does_less_work_than_maze_flood_on_sparse_decks() {
        // Domic's framing is line search vs classic (Lee) maze flooding: on
        // a sparse, simple deck the probes touch a sliver of the grid while
        // the wavefront floods most of it.
        let (n, p) = placed(200, 6);
        let mk = |alg| RouteConfig { algorithm: alg, grid_cells: 48, ..Default::default() };
        let maze = route(&n, &p, &mk(RouteAlgorithm::LeeBfs));
        let line = route(&n, &p, &mk(RouteAlgorithm::LineSearch));
        assert!(
            line.cells_expanded < maze.cells_expanded / 2,
            "line search {} should expand far fewer cells than Lee {}",
            line.cells_expanded,
            maze.cells_expanded
        );
    }

    #[test]
    fn more_layers_reduce_overflow() {
        let (n, p) = placed(600, 12);
        let sweep = layer_sweep(&n, &p, [2u32, 4, 8], RouteAlgorithm::AStar);
        let overflow: Vec<u64> = sweep.iter().map(|(_, o)| o.overflow).collect();
        assert!(overflow[0] >= overflow[1] && overflow[1] >= overflow[2]);
    }

    #[test]
    fn threaded_routing_matches_serial_exactly() {
        let (n, p) = placed(300, 3);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let serial = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            for threads in [2, 4, 8] {
                let cfg = RouteConfig { algorithm: alg, threads, ..Default::default() };
                let (par, stats) = route_stats(&n, &p, &cfg);
                assert_eq!(par.wirelength, serial.wirelength, "{alg:?} threads={threads}");
                assert_eq!(par.vias, serial.vias, "{alg:?} threads={threads}");
                assert_eq!(par.overflow, serial.overflow, "{alg:?} threads={threads}");
                assert_eq!(par.connections, serial.connections);
                assert_eq!(par.linesearch_fallbacks, serial.linesearch_fallbacks);
                assert_eq!(par.cells_expanded, serial.cells_expanded);
                assert_eq!(par.iterations, serial.iterations);
                assert!(stats.chunks > 0);
            }
        }
    }

    #[test]
    fn via_cost_tracked() {
        let (n, p) = placed(150, 2);
        let out = route(&n, &p, &RouteConfig::default());
        assert!(out.vias > 0);
        assert!(out.seconds >= 0.0);
    }

    #[test]
    fn region_routing_is_partition_and_thread_invariant() {
        let (n, p) = placed(300, 5);
        for alg in [RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            // Canonical serial reference: one region covering the whole
            // 32-cell grid, so the wave machinery degenerates to routing
            // the canonical order in a single task.
            let base = RouteConfig {
                algorithm: alg,
                window_margin: 4,
                region_size: 64,
                ..Default::default()
            };
            let reference = route(&n, &p, &base);
            assert_eq!(reference.regions, 1, "{alg:?}");
            assert_eq!(reference.seam_conflicts, 0, "{alg:?}");
            // Every connection routes locally at least once; rip-up
            // re-routes count again.
            assert!(reference.local_commits as usize >= reference.connections);
            for region_size in [3, 5, 8, 13, 16] {
                for threads in [1, 4] {
                    let cfg =
                        RouteConfig { region_size, threads, ..base.clone() };
                    let out = route(&n, &p, &cfg);
                    let tag = format!("{alg:?} size={region_size} threads={threads}");
                    assert_eq!(out.wirelength, reference.wirelength, "{tag}");
                    assert_eq!(out.vias, reference.vias, "{tag}");
                    assert_eq!(out.overflow, reference.overflow, "{tag}");
                    assert_eq!(out.cells_expanded, reference.cells_expanded, "{tag}");
                    assert_eq!(
                        out.linesearch_fallbacks, reference.linesearch_fallbacks,
                        "{tag}"
                    );
                    assert_eq!(out.ripup_overflow, reference.ripup_overflow, "{tag}");
                    assert_eq!(out.peak_window_cells, reference.peak_window_cells, "{tag}");
                    assert_eq!(out.iterations, reference.iterations, "{tag}");
                    assert!(out.regions > 1, "{tag}");
                    assert_eq!(
                        out.local_commits + out.seam_conflicts,
                        reference.local_commits,
                        "{tag}: every routing is local or seam-arbitrated"
                    );
                }
            }
        }
    }

    #[test]
    fn all_seam_crossing_deck_still_routes_identically() {
        // Pathological partition: 2-cell regions under an 8-cell margin
        // mean every window spans several regions — no connection is
        // interior, the whole deck goes through seam negotiation.
        let (n, p) = placed(250, 11);
        let base =
            RouteConfig { window_margin: 8, region_size: 64, ..Default::default() };
        let reference = route(&n, &p, &base);
        let cfg = RouteConfig { region_size: 2, threads: 4, ..base.clone() };
        let out = route(&n, &p, &cfg);
        assert_eq!(out.local_commits, 0, "nothing can be region-interior");
        assert!(out.seam_conflicts as usize >= out.connections);
        assert!(out.negotiation_waves > 1);
        assert_eq!(out.wirelength, reference.wirelength);
        assert_eq!(out.vias, reference.vias);
        assert_eq!(out.overflow, reference.overflow);
        assert_eq!(out.cells_expanded, reference.cells_expanded);
        assert_eq!(out.ripup_overflow, reference.ripup_overflow);
    }

    #[test]
    fn windowed_routing_bounds_memory_and_stays_deterministic() {
        let (n, p) = placed(300, 5);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let full = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            if alg == RouteAlgorithm::LineSearch {
                // Line-search probes always clip to the connection's extent.
                assert!(full.peak_window_cells <= full.dense_grid_cells, "{alg:?}");
            } else {
                assert_eq!(
                    full.peak_window_cells, full.dense_grid_cells,
                    "{alg:?}: margin 0 searches the full grid"
                );
            }
            let windowed = RouteConfig { algorithm: alg, window_margin: 4, ..Default::default() };
            let serial = route(&n, &p, &windowed);
            assert!(
                serial.peak_window_cells < serial.dense_grid_cells,
                "{alg:?}: windowed peak {} must be below dense {}",
                serial.peak_window_cells,
                serial.dense_grid_cells
            );
            assert_eq!(serial.connections, full.connections);
            assert!(serial.wirelength > 0);
            for threads in [2, 4] {
                let cfg = RouteConfig { threads, ..windowed.clone() };
                let par = route(&n, &p, &cfg);
                assert_eq!(par.wirelength, serial.wirelength, "{alg:?} threads={threads}");
                assert_eq!(par.vias, serial.vias);
                assert_eq!(par.overflow, serial.overflow);
                assert_eq!(par.cells_expanded, serial.cells_expanded);
                assert_eq!(par.peak_window_cells, serial.peak_window_cells);
                assert_eq!(par.ripup_overflow, serial.ripup_overflow);
            }
        }
    }
}
