//! The global router: net decomposition, algorithm selection, and
//! PathFinder-style negotiated rip-up and re-route.

use crate::grid::{GCell, RoutingGrid};
use crate::linesearch::{mikami_tabuchi, mikami_tabuchi_in};
use crate::maze::{astar_in, count_bends, lee_bfs_in, Path, SearchWindow};
use crate::rules::RuleDeck;
use eda_place::Placement;
use eda_netlist::Netlist;
use std::time::Instant;

/// Routing algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteAlgorithm {
    /// Lee BFS, first-come order, no negotiation (decade-old baseline).
    LeeBfs,
    /// Congestion-aware A* with negotiation.
    AStar,
    /// Mikami–Tabuchi line search with A* fallback and negotiation.
    LineSearch,
}

/// Router configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Algorithm.
    pub algorithm: RouteAlgorithm,
    /// Rule deck (capacities, via cost).
    pub deck: RuleDeck,
    /// G-cells per side of the routing grid.
    pub grid_cells: u32,
    /// Maximum rip-up and re-route iterations.
    pub ripup_iterations: usize,
    /// Worker threads for the batched routing passes — the initial pass and
    /// every negotiated rip-up round (`0` = all cores). Batch composition
    /// never depends on this value, so outcomes are bit-identical for any
    /// thread count.
    pub threads: usize,
    /// Bounded-memory search window: `0` (the default) searches the full
    /// grid, exactly the classic behaviour. When positive, every maze
    /// search is confined to the connection's bounding box expanded by this
    /// many g-cells, so per-search scratch is proportional to the
    /// connection's extent instead of the grid area — the tiled mode the
    /// scale tier routes in. The window is a pure function of the
    /// connection, so outcomes remain bit-identical at any thread count.
    pub window_margin: u32,
}

impl RouteConfig {
    /// The same configuration on a grid with half as many g-cells per side
    /// (floor 8). Coarser g-cells pool capacity across more tracks, which is
    /// the flow supervisor's recovery move when rip-up exhausts its budget
    /// with overflow remaining.
    pub fn coarsened(&self) -> RouteConfig {
        RouteConfig { grid_cells: (self.grid_cells / 2).max(8), ..self.clone() }
    }
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            algorithm: RouteAlgorithm::LineSearch,
            deck: RuleDeck::simple(6),
            grid_cells: 32,
            ripup_iterations: 6,
            threads: 1,
            window_margin: 0,
        }
    }
}

/// The result of routing a design.
#[derive(Debug, Clone)]
pub struct RouteOutcome {
    /// Total wirelength in g-cell edge units.
    pub wirelength: u64,
    /// Total vias (bends in the 2-D model).
    pub vias: u64,
    /// Remaining capacity overflow after the final iteration (0 = clean).
    pub overflow: u64,
    /// Two-pin connections routed.
    pub connections: usize,
    /// Connections where line search failed and fell back to maze.
    pub linesearch_fallbacks: usize,
    /// Cells expanded across all searches (work measure).
    pub cells_expanded: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Rip-up iterations actually executed.
    pub iterations: usize,
    /// Total overflow after each executed iteration (`[0]` = after the
    /// initial pass, then one entry per rip-up round). Thread-invariant:
    /// both passes batch in input order and commit in batch order, so the
    /// trajectory is identical at any thread count.
    pub ripup_overflow: Vec<u64>,
    /// Largest per-search scratch window materialized (g-cells). Equals
    /// [`RouteOutcome::dense_grid_cells`] when
    /// [`RouteConfig::window_margin`] is `0`; under tiled routing it is the
    /// bounded-memory bar the bench compares against the dense grid.
    pub peak_window_cells: u64,
    /// Scratch a full-grid search would have allocated (`width × height`) —
    /// the dense baseline bar.
    pub dense_grid_cells: u64,
}

impl RouteOutcome {
    /// Whether the route is overflow-free (manufacturable on this stack).
    pub fn is_clean(&self) -> bool {
        self.overflow == 0
    }
}

/// One 2-pin connection to route.
#[derive(Debug, Clone, Copy)]
struct TwoPin {
    src: GCell,
    dst: GCell,
}

/// Decomposes every multi-pin net into a Prim MST over its g-cell pins.
fn decompose(
    netlist: &Netlist,
    placement: &Placement,
    width: u32,
    height: u32,
) -> Vec<TwoPin> {
    let die = placement.die;
    let to_gcell = |p: eda_place::Point| -> GCell {
        let x = ((p.x / die.width_um * width as f64) as u32).min(width - 1);
        let y = ((p.y / die.height_um * height as f64) as u32).min(height - 1);
        GCell::new(x, y)
    };
    let mut pairs = Vec::new();
    for (net_id, _) in netlist.nets() {
        let pts = placement.net_points(netlist, net_id);
        let mut pins: Vec<GCell> = pts.into_iter().map(to_gcell).collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        // Prim MST on Manhattan distance.
        let mut in_tree = vec![false; pins.len()];
        in_tree[0] = true;
        for _ in 1..pins.len() {
            let mut best: Option<(usize, usize, u32)> = None;
            for (i, &a) in pins.iter().enumerate() {
                if !in_tree[i] {
                    continue;
                }
                for (j, &b) in pins.iter().enumerate() {
                    if in_tree[j] {
                        continue;
                    }
                    let d = a.manhattan(&b);
                    if best.is_none_or(|(_, _, bd)| d < bd) {
                        best = Some((i, j, d));
                    }
                }
            }
            let (i, j, _) = best.expect("tree incomplete implies a remaining pin");
            in_tree[j] = true;
            pairs.push(TwoPin { src: pins[i], dst: pins[j] });
        }
    }
    pairs
}

fn commit(grid: &mut RoutingGrid, path: &Path, delta: i32) {
    for w in path.windows(2) {
        grid.add_usage(w[0], w[1], delta);
    }
}

/// Axis-aligned bounding box of a connection, expanded by `margin` g-cells
/// and clamped to the grid: `(x0, y0, x1, y1)` inclusive.
fn expanded_bbox(tp: &TwoPin, margin: u32, w: u32, h: u32) -> (u32, u32, u32, u32) {
    let x0 = tp.src.x.min(tp.dst.x).saturating_sub(margin);
    let y0 = tp.src.y.min(tp.dst.y).saturating_sub(margin);
    let x1 = (tp.src.x.max(tp.dst.x) + margin).min(w - 1);
    let y1 = (tp.src.y.max(tp.dst.y) + margin).min(h - 1);
    (x0, y0, x1, y1)
}

fn boxes_disjoint(a: &(u32, u32, u32, u32), b: &(u32, u32, u32, u32)) -> bool {
    a.2 < b.0 || b.2 < a.0 || a.3 < b.1 || b.3 < a.1
}

/// Cap on how many connections share one parallel batch, keeping the
/// congestion picture each batch routes against reasonably fresh. A fixed
/// constant: batch composition must never depend on the thread count.
const MAX_BATCH: usize = 16;

/// Routes a placed netlist.
///
/// The baseline [`RouteAlgorithm::LeeBfs`] routes each connection once in
/// arbitrary order with no congestion awareness; the advanced algorithms run
/// negotiated rip-up and re-route until clean or the iteration budget is
/// spent.
pub fn route(netlist: &Netlist, placement: &Placement, cfg: &RouteConfig) -> RouteOutcome {
    route_stats(netlist, placement, cfg).0
}

/// [`route`] returning the accumulated parallel-execution record of the
/// batched passes (for scaling reports).
///
/// Both the initial pass and every negotiated rip-up round group their
/// worklist (the distance-sorted connection list, respectively the
/// input-ordered victims of the round) into batches of pairwise
/// bbox-disjoint connections (greedy scan, fixed [`MAX_BATCH`] cap). Every
/// batch member routes against the same immutable grid snapshot and commits
/// sequentially in batch order, so batch composition and every path depend
/// only on the input — outcomes, including the `ripup_overflow` trajectory,
/// are bit-identical for any `threads`. Conflicting nets never share a
/// batch, so each still sees the other's freshly committed usage.
pub fn route_stats(
    netlist: &Netlist,
    placement: &Placement,
    cfg: &RouteConfig,
) -> (RouteOutcome, eda_par::ParStats) {
    let start = Instant::now();
    let w = cfg.grid_cells.max(2);
    let h = cfg.grid_cells.max(2);
    let mut grid = RoutingGrid::new(w, h, &cfg.deck);
    let mut pairs = decompose(netlist, placement, w, h);
    // Long connections first (they need the straightest resources).
    pairs.sort_by_key(|p| std::cmp::Reverse(p.src.manhattan(&p.dst)));

    let mut paths: Vec<Option<Path>> = vec![None; pairs.len()];
    let mut fallbacks = 0usize;
    let mut expanded = 0u64;
    let mut peak_window = 0u64;
    let mut stats = eda_par::ParStats::empty();

    // Pure per-connection search against an immutable grid: the only route
    // computation, shared by the parallel batches and the serial rip-up.
    // The search window depends only on the connection and the config, so
    // windowed routing is as thread-invariant as full-grid routing.
    let route_one = |grid: &RoutingGrid, tp: &TwoPin| -> (Path, bool, u64, u64) {
        let win = if cfg.window_margin > 0 {
            SearchWindow::around(tp.src, tp.dst, cfg.window_margin, grid)
        } else {
            SearchWindow::full(grid)
        };
        match cfg.algorithm {
            RouteAlgorithm::LeeBfs => {
                let (p, s) = lee_bfs_in(grid, tp.src, tp.dst, win).expect("grid is connected");
                (p, false, s.expanded as u64, s.scratch_cells as u64)
            }
            RouteAlgorithm::AStar => {
                let (p, s) = astar_in(grid, tp.src, tp.dst, cfg.deck.via_cost, win)
                    .expect("grid is connected");
                (p, false, s.expanded as u64, s.scratch_cells as u64)
            }
            RouteAlgorithm::LineSearch => {
                // Windowed mode clips the probes to the same bounded window
                // the maze fallback searches; margin 0 keeps the classic
                // connection-extent window.
                let probe = if cfg.window_margin > 0 {
                    mikami_tabuchi_in(grid, tp.src, tp.dst, 12, win)
                } else {
                    mikami_tabuchi(grid, tp.src, tp.dst, 12)
                };
                match probe {
                    Some((p, s)) => (p, false, s.expanded as u64, s.scratch_cells as u64),
                    None => {
                        let (p, s) = astar_in(grid, tp.src, tp.dst, cfg.deck.via_cost, win)
                            .expect("grid is connected");
                        (p, true, s.expanded as u64, s.scratch_cells as u64)
                    }
                }
            }
        }
    };

    // Peels the first greedy batch of pairwise bbox-disjoint connections
    // off an ordered worklist; returns `(batch, rest)`. Pure function of
    // the worklist order — never of the thread count.
    let peel_batch = |work: &[usize]| -> (Vec<usize>, Vec<usize>) {
        let mut batch: Vec<usize> = Vec::new();
        let mut boxes: Vec<(u32, u32, u32, u32)> = Vec::new();
        let mut rest: Vec<usize> = Vec::new();
        for &i in work {
            let bb = expanded_bbox(&pairs[i], 1, w, h);
            if batch.len() < MAX_BATCH && boxes.iter().all(|b| boxes_disjoint(b, &bb)) {
                batch.push(i);
                boxes.push(bb);
            } else {
                rest.push(i);
            }
        }
        (batch, rest)
    };

    // Initial routing pass: fixed-size batches in distance-sorted order.
    // The grid starts empty, so intra-batch congestion feedback is worth
    // little here — full-width batches keep every worker busy through the
    // expensive long connections, and negotiation repairs any overlap the
    // batching admits. (Rip-up rounds, where freshness matters, use the
    // bbox-disjoint peeling below instead.)
    let order: Vec<usize> = (0..pairs.len()).collect();
    for batch in order.chunks(MAX_BATCH) {
        let (routed, s) = {
            let grid = &grid;
            eda_par::par_map_stats(cfg.threads, batch, |_, &i| route_one(grid, &pairs[i]))
        };
        stats.absorb(&s);
        for (&i, (p, fb, ex, sc)) in batch.iter().zip(routed) {
            fallbacks += fb as usize;
            expanded += ex;
            peak_window = peak_window.max(sc);
            commit(&mut grid, &p, 1);
            paths[i] = Some(p);
        }
    }

    let negotiate = cfg.algorithm != RouteAlgorithm::LeeBfs;
    let mut iterations = 1usize;
    let mut ripup_overflow = vec![grid.total_overflow()];
    if negotiate {
        for _ in 0..cfg.ripup_iterations {
            if grid.total_overflow() == 0 {
                break;
            }
            grid.bump_history();
            iterations += 1;
            // Victims of this round: paths traversing a congested edge, in
            // input order. Scheduling them into bbox-disjoint batches lets
            // the re-routes run in parallel while later batches still
            // observe earlier batches' freshly committed usage. The dense
            // router treats at-capacity edges as congested (aggressive, fine
            // on small grids); the windowed scale router only rips paths on
            // strictly overflowed edges — at scale most edges sit near
            // capacity and the aggressive rule churns thousands of paths per
            // residual overflow unit without converging.
            let congested = |grid: &RoutingGrid, a: GCell, b: GCell| {
                if cfg.window_margin > 0 {
                    grid.is_overflowed(a, b)
                } else {
                    grid.is_full(a, b)
                }
            };
            let mut victims: Vec<usize> = (0..pairs.len())
                .filter(|&i| {
                    paths[i]
                        .as_ref()
                        .is_some_and(|p| p.windows(2).any(|win| congested(&grid, win[0], win[1])))
                })
                .collect();
            while !victims.is_empty() {
                let (batch, rest) = peel_batch(&victims);
                for &i in &batch {
                    let old = paths[i].take().expect("path exists");
                    commit(&mut grid, &old, -1);
                }
                let (routed, s) = {
                    let grid = &grid;
                    eda_par::par_map_stats(cfg.threads, &batch, |_, &i| route_one(grid, &pairs[i]))
                };
                stats.absorb(&s);
                for (&i, (p, fb, ex, sc)) in batch.iter().zip(routed) {
                    fallbacks += fb as usize;
                    expanded += ex;
                    peak_window = peak_window.max(sc);
                    commit(&mut grid, &p, 1);
                    paths[i] = Some(p);
                }
                victims = rest;
            }
            ripup_overflow.push(grid.total_overflow());
        }
    }

    let vias: u64 = paths.iter().flatten().map(|p| count_bends(p) as u64).sum();
    let outcome = RouteOutcome {
        wirelength: grid.total_usage(),
        vias,
        overflow: grid.total_overflow(),
        connections: pairs.len(),
        linesearch_fallbacks: fallbacks,
        cells_expanded: expanded,
        seconds: start.elapsed().as_secs_f64(),
        iterations,
        ripup_overflow,
        peak_window_cells: peak_window,
        dense_grid_cells: w as u64 * h as u64,
    };
    (outcome, stats)
}

/// Routes the same placement across a sweep of layer counts, reporting which
/// stacks close overflow-free — the data behind the 6-layer → 4-layer cost
/// claim (C5).
pub fn layer_sweep(
    netlist: &Netlist,
    placement: &Placement,
    layers: impl IntoIterator<Item = u32>,
    algorithm: RouteAlgorithm,
) -> Vec<(u32, RouteOutcome)> {
    layers
        .into_iter()
        .map(|l| {
            let cfg = RouteConfig {
                algorithm,
                deck: RuleDeck::simple(l),
                ..Default::default()
            };
            (l, route(netlist, placement, &cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_place::{place_global, Die, GlobalConfig};

    fn placed(gates: usize, seed: u64) -> (eda_netlist::Netlist, Placement) {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed,
            ..Default::default()
        })
        .unwrap();
        let die = Die::for_netlist(&n, 0.7);
        let p = place_global(&n, die, &GlobalConfig::default());
        (n, p)
    }

    #[test]
    fn all_algorithms_route_everything() {
        let (n, p) = placed(200, 4);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let out = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            assert!(out.connections > 0, "{alg:?}");
            assert!(out.wirelength > 0, "{alg:?}");
        }
    }

    #[test]
    fn negotiation_beats_baseline_on_overflow() {
        let (n, p) = placed(500, 9);
        // Small grid + few layers => heavy contention, but not so saturated
        // that negotiation has no room to move (a 2-layer 12-cell grid
        // overflows ~equally under every algorithm).
        let mk = |alg| RouteConfig {
            algorithm: alg,
            deck: RuleDeck::simple(3),
            grid_cells: 16,
            ripup_iterations: 8,
            ..Default::default()
        };
        let baseline = route(&n, &p, &mk(RouteAlgorithm::LeeBfs));
        let advanced = route(&n, &p, &mk(RouteAlgorithm::AStar));
        assert!(
            advanced.overflow < baseline.overflow,
            "negotiation {} must beat naive {}",
            advanced.overflow,
            baseline.overflow
        );
    }

    #[test]
    fn linesearch_does_less_work_than_maze_flood_on_sparse_decks() {
        // Domic's framing is line search vs classic (Lee) maze flooding: on
        // a sparse, simple deck the probes touch a sliver of the grid while
        // the wavefront floods most of it.
        let (n, p) = placed(200, 6);
        let mk = |alg| RouteConfig { algorithm: alg, grid_cells: 48, ..Default::default() };
        let maze = route(&n, &p, &mk(RouteAlgorithm::LeeBfs));
        let line = route(&n, &p, &mk(RouteAlgorithm::LineSearch));
        assert!(
            line.cells_expanded < maze.cells_expanded / 2,
            "line search {} should expand far fewer cells than Lee {}",
            line.cells_expanded,
            maze.cells_expanded
        );
    }

    #[test]
    fn more_layers_reduce_overflow() {
        let (n, p) = placed(600, 12);
        let sweep = layer_sweep(&n, &p, [2u32, 4, 8], RouteAlgorithm::AStar);
        let overflow: Vec<u64> = sweep.iter().map(|(_, o)| o.overflow).collect();
        assert!(overflow[0] >= overflow[1] && overflow[1] >= overflow[2]);
    }

    #[test]
    fn threaded_routing_matches_serial_exactly() {
        let (n, p) = placed(300, 3);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let serial = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            for threads in [2, 4, 8] {
                let cfg = RouteConfig { algorithm: alg, threads, ..Default::default() };
                let (par, stats) = route_stats(&n, &p, &cfg);
                assert_eq!(par.wirelength, serial.wirelength, "{alg:?} threads={threads}");
                assert_eq!(par.vias, serial.vias, "{alg:?} threads={threads}");
                assert_eq!(par.overflow, serial.overflow, "{alg:?} threads={threads}");
                assert_eq!(par.connections, serial.connections);
                assert_eq!(par.linesearch_fallbacks, serial.linesearch_fallbacks);
                assert_eq!(par.cells_expanded, serial.cells_expanded);
                assert_eq!(par.iterations, serial.iterations);
                assert!(stats.chunks > 0);
            }
        }
    }

    #[test]
    fn via_cost_tracked() {
        let (n, p) = placed(150, 2);
        let out = route(&n, &p, &RouteConfig::default());
        assert!(out.vias > 0);
        assert!(out.seconds >= 0.0);
    }

    #[test]
    fn windowed_routing_bounds_memory_and_stays_deterministic() {
        let (n, p) = placed(300, 5);
        for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
            let full = route(&n, &p, &RouteConfig { algorithm: alg, ..Default::default() });
            if alg == RouteAlgorithm::LineSearch {
                // Line-search probes always clip to the connection's extent.
                assert!(full.peak_window_cells <= full.dense_grid_cells, "{alg:?}");
            } else {
                assert_eq!(
                    full.peak_window_cells, full.dense_grid_cells,
                    "{alg:?}: margin 0 searches the full grid"
                );
            }
            let windowed = RouteConfig { algorithm: alg, window_margin: 4, ..Default::default() };
            let serial = route(&n, &p, &windowed);
            assert!(
                serial.peak_window_cells < serial.dense_grid_cells,
                "{alg:?}: windowed peak {} must be below dense {}",
                serial.peak_window_cells,
                serial.dense_grid_cells
            );
            assert_eq!(serial.connections, full.connections);
            assert!(serial.wirelength > 0);
            for threads in [2, 4] {
                let cfg = RouteConfig { threads, ..windowed.clone() };
                let par = route(&n, &p, &cfg);
                assert_eq!(par.wirelength, serial.wirelength, "{alg:?} threads={threads}");
                assert_eq!(par.vias, serial.vias);
                assert_eq!(par.overflow, serial.overflow);
                assert_eq!(par.cells_expanded, serial.cells_expanded);
                assert_eq!(par.peak_window_cells, serial.peak_window_cells);
                assert_eq!(par.ripup_overflow, serial.ripup_overflow);
            }
        }
    }
}
