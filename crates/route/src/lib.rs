//! Global routing for the `eda` workspace: a capacitated g-cell grid, Lee
//! BFS and congestion-aware A* maze routing, Mikami–Tabuchi line search, and
//! PathFinder-style negotiated rip-up and re-route.
//!
//! The crate carries Domic's routing claims (C5): line-search routers doing
//! less work under simpler rule decks, negotiation closing designs on fewer
//! layers, and multi-patterned decks eating capacity ([`RuleDeck`]).
//!
//! # Examples
//!
//! ```
//! use eda_netlist::generate;
//! use eda_place::{place_global, Die, GlobalConfig};
//! use eda_route::{route, RouteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = generate::parity_tree(32)?;
//! let die = Die::for_netlist(&n, 0.7);
//! let placement = place_global(&n, die, &GlobalConfig::default());
//! let out = route(&n, &placement, &RouteConfig::default());
//! assert!(out.wirelength > 0);
//! # Ok(())
//! # }
//! ```

pub mod grid;
pub mod linesearch;
pub mod maze;
pub mod region;
pub mod router;
pub mod rules;

pub use grid::{DemandGrid, GCell, RoutingGrid};
pub use region::{OverlayGrid, RegionMap, RegionScheduler, RegionTask};
pub use linesearch::{mikami_tabuchi, mikami_tabuchi_in};
pub use maze::{astar, astar_in, count_bends, lee_bfs, lee_bfs_in, Path, SearchStats, SearchWindow};
pub use router::{
    layer_sweep, route, route_stats, route_stats_memo, RouteAlgorithm, RouteConfig, RouteOutcome,
    ROUTE_NET_KIND, ROUTE_OUTCOME_KIND,
};
pub use rules::RuleDeck;
