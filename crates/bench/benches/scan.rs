//! Criterion bench for claim C10: scan insertion and placement-aware
//! reordering cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_dft::{insert_scan, reorder_chains, scan_wirelength};
use eda_netlist::generate;
use eda_place::{place_global, Die, GlobalConfig};
use std::hint::black_box;

fn bench_scan_insertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_insert");
    for ports in [4usize, 8] {
        let design = generate::switch_fabric(ports, 4).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(design.flops().len()),
            &design,
            |b, d| b.iter(|| black_box(insert_scan(d, 2).unwrap().chains.len())),
        );
    }
    group.finish();
}

fn bench_reorder(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 800,
        flop_fraction: 0.3,
        seed: 8,
        ..Default::default()
    })
    .unwrap();
    let scanned = insert_scan(&design, 2).unwrap();
    let die = Die::for_netlist(&scanned.netlist, 0.7);
    let placement = place_global(&scanned.netlist, die, &GlobalConfig::default());
    let mut group = c.benchmark_group("scan_reorder");
    group.bench_function("nn_2opt", |b| {
        b.iter(|| {
            let chains = reorder_chains(&scanned.chains, &placement);
            black_box(scan_wirelength(&chains, &placement))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scan_insertion, bench_reorder);
criterion_main!(benches);
