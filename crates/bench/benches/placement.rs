//! Criterion bench for claim C9: placement throughput vs thread count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use eda_netlist::generate;
use eda_place::{anneal, place_global, place_parallel, AnnealConfig, Die, GlobalConfig, ParallelConfig};
use std::hint::black_box;

fn bench_parallel_placement(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 2000,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let die = Die::for_netlist(&design, 0.7);
    let mut group = c.benchmark_group("place_parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(design.num_instances() as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    place_parallel(
                        &design,
                        die,
                        &ParallelConfig {
                            threads: t,
                            stripes: 4,
                            moves_per_cell: 10,
                            passes: 1,
                            seed: 3,
                        },
                    )
                    .hpwl_final,
                )
            })
        });
    }
    group.finish();
}

fn bench_stages(c: &mut Criterion) {
    let design = generate::switch_fabric(4, 4).unwrap();
    let die = Die::for_netlist(&design, 0.7);
    let mut group = c.benchmark_group("place_stages");
    group.bench_function("global", |b| {
        b.iter(|| {
            black_box(
                place_global(&design, die, &GlobalConfig::default()).total_hpwl(&design),
            )
        })
    });
    let placed = place_global(&design, die, &GlobalConfig::default());
    group.bench_function("anneal", |b| {
        b.iter(|| {
            let mut p = placed.clone();
            black_box(
                anneal(
                    &design,
                    &mut p,
                    &AnnealConfig { moves_per_cell: 20, ..Default::default() },
                    None,
                    None,
                )
                .hpwl_after,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel_placement, bench_stages);
criterion_main!(benches);
