//! Criterion bench for claim C15: aerial-image simulation and OPC iteration
//! cost vs pattern density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_bench::{median_seconds, scaling_threads};
use eda_litho::{run_opc, run_opc_stats, OpcConfig, OpticalModel};
use std::hint::black_box;

fn grating(pitch: f64, lines: usize) -> (Vec<(f64, f64)>, f64) {
    let offset = 300.0;
    let target = (0..lines)
        .map(|i| {
            let x = offset + i as f64 * pitch;
            (x, x + pitch / 2.0)
        })
        .collect();
    (target, offset * 2.0 + pitch * lines as f64)
}

fn bench_aerial_image(c: &mut Criterion) {
    let model = OpticalModel::default();
    let mut group = c.benchmark_group("aerial_image");
    for lines in [8usize, 16, 32] {
        let (mask, extent) = grating(100.0, lines);
        group.bench_with_input(BenchmarkId::from_parameter(lines), &mask, |b, m| {
            b.iter(|| black_box(model.image(m, extent).len()))
        });
    }
    group.finish();
}

fn bench_opc(c: &mut Criterion) {
    let model = OpticalModel::default();
    let mut group = c.benchmark_group("opc");
    group.sample_size(20);
    for pitch in [120.0f64, 90.0] {
        let (target, extent) = grating(pitch, 8);
        group.bench_with_input(BenchmarkId::from_parameter(pitch as u32), &target, |b, t| {
            b.iter(|| {
                black_box(run_opc(&model, t, extent, &OpcConfig::default()).final_rms_epe())
            })
        });
    }
    group.finish();
}

/// Thread-scaling row for `scripts/bench_flow.sh`: projected wall seconds of
/// a full OPC run (convolutions + fragment corrections) at
/// `EDA_BENCH_THREADS` workers.
fn bench_opc_scaling(_c: &mut Criterion) {
    let model = OpticalModel::default();
    let (target, extent) = grating(110.0, 24);
    for threads in scaling_threads() {
        let cfg = OpcConfig { threads, ..Default::default() };
        let s = median_seconds(5, || {
            run_opc_stats(&model, &target, extent, &cfg).1.projected_wall_s()
        });
        println!("BENCHLINE opc_par/{threads} {s:.9e}");
    }
}

criterion_group!(benches, bench_aerial_image, bench_opc, bench_opc_scaling);
criterion_main!(benches);
