//! Criterion bench for claim C5: router algorithms under simple and
//! multi-patterned rule decks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_bench::{median_seconds, scaling_threads};
use eda_netlist::generate;
use eda_place::{place_global, Die, GlobalConfig};
use eda_route::{
    astar, lee_bfs, mikami_tabuchi, route, route_stats, GCell, RouteAlgorithm, RouteConfig,
    RoutingGrid, RuleDeck,
};
use std::hint::black_box;

fn bench_full_route(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 400,
        seed: 9,
        ..Default::default()
    })
    .unwrap();
    let die = Die::for_netlist(&design, 0.7);
    let placement = place_global(&design, die, &GlobalConfig::default());
    let mut group = c.benchmark_group("route_full");
    group.sample_size(10);
    for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{alg:?}")), &alg, |b, &a| {
            b.iter(|| {
                black_box(
                    route(
                        &design,
                        &placement,
                        &RouteConfig { algorithm: a, ..Default::default() },
                    )
                    .wirelength,
                )
            })
        });
    }
    group.finish();
}

fn bench_single_connection(c: &mut Criterion) {
    let grid = RoutingGrid::new(64, 64, &RuleDeck::simple(6));
    let src = GCell::new(3, 5);
    let dst = GCell::new(58, 60);
    let mut group = c.benchmark_group("route_2pin_64x64");
    group.bench_function("lee_bfs", |b| {
        b.iter(|| black_box(lee_bfs(&grid, src, dst).unwrap().0.len()))
    });
    group.bench_function("astar", |b| {
        b.iter(|| black_box(astar(&grid, src, dst, 1.0).unwrap().0.len()))
    });
    group.bench_function("mikami_tabuchi", |b| {
        b.iter(|| black_box(mikami_tabuchi(&grid, src, dst, 10).unwrap().0.len()))
    });
    group.finish();
}

/// Thread-scaling row for `scripts/bench_flow.sh`: projected wall seconds of
/// the batched initial routing pass at `EDA_BENCH_THREADS` workers (rip-up
/// stays serial, so this row is Amdahl-bound by design).
fn bench_route_scaling(_c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 800,
        seed: 9,
        ..Default::default()
    })
    .unwrap();
    let die = Die::for_netlist(&design, 0.7);
    let placement = place_global(&design, die, &GlobalConfig::default());
    for threads in scaling_threads() {
        let cfg = RouteConfig { grid_cells: 48, threads, ..Default::default() };
        let s = median_seconds(5, || {
            route_stats(&design, &placement, &cfg).1.projected_wall_s()
        });
        println!("BENCHLINE route_par/{threads} {s:.9e}");
    }
}

criterion_group!(benches, bench_full_route, bench_single_connection, bench_route_scaling);
criterion_main!(benches);
