//! Criterion bench for claim C3: baseline-2006 vs advanced-2016 synthesis
//! runtime and the underlying AIG optimization passes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_logic::{optimize_aig, synthesize, Aig, MapGoal, SynthesisEffort};
use eda_netlist::{generate, Library};
use std::hint::black_box;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    for gates in [200usize, 500, 1000] {
        let design = generate::random_logic(generate::RandomLogicConfig {
            gates,
            seed: 7,
            ..Default::default()
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("baseline2006", gates), &design, |b, d| {
            b.iter(|| {
                black_box(
                    synthesize(
                        d,
                        Library::nand_inv_2006(),
                        SynthesisEffort::Baseline2006,
                        MapGoal::Area,
                    )
                    .unwrap()
                    .area_um2,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("advanced2016", gates), &design, |b, d| {
            b.iter(|| {
                black_box(
                    synthesize(d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)
                        .unwrap()
                        .area_um2,
                )
            })
        });
    }
    group.finish();
}

fn bench_aig_passes(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 800,
        seed: 3,
        ..Default::default()
    })
    .unwrap();
    let (aig, _) = Aig::from_netlist(&design).unwrap();
    let mut group = c.benchmark_group("aig");
    group.bench_function("balance", |b| b.iter(|| black_box(aig.balance().num_ands())));
    group.bench_function("rewrite", |b| b.iter(|| black_box(aig.rewrite().num_ands())));
    group.bench_function("optimize_script", |b| b.iter(|| black_box(optimize_aig(&aig).num_ands())));
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_aig_passes);
criterion_main!(benches);
