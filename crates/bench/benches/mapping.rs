//! Criterion bench for claim C2: technology mapping onto CMOS vs
//! controlled-polarity libraries, area and delay goals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_bench::{median_seconds, scaling_threads};
use eda_logic::{map_aig, map_naive, Aig, MapGoal};
use eda_netlist::{generate, Library};
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 2,
        ..Default::default()
    })
    .unwrap();
    let (aig, bnd) = Aig::from_netlist(&design).unwrap();
    let mut group = c.benchmark_group("map");
    group.bench_function("naive_nand", |b| {
        b.iter(|| black_box(map_naive(&aig, &bnd, Library::nand_inv_2006()).unwrap().area_um2))
    });
    for (name, lib) in
        [("generic_area", Library::generic()), ("polarity_area", Library::controlled_polarity())]
    {
        let lib_ref = lib.clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &lib_ref, |b, l| {
            b.iter(|| black_box(map_aig(&aig, &bnd, l.clone(), MapGoal::Area).unwrap().area_um2))
        });
    }
    group.bench_function("generic_delay", |b| {
        b.iter(|| {
            black_box(map_aig(&aig, &bnd, Library::generic(), MapGoal::Delay).unwrap().delay_ps)
        })
    });
    group.finish();
}

fn bench_xor_rich(c: &mut Criterion) {
    let parity = generate::parity_tree(64).unwrap();
    let (aig, bnd) = Aig::from_netlist(&parity).unwrap();
    let mut group = c.benchmark_group("map_parity64");
    group.bench_function("cmos", |b| {
        b.iter(|| black_box(map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap().cells))
    });
    group.bench_function("polarity", |b| {
        b.iter(|| {
            black_box(
                map_aig(&aig, &bnd, Library::controlled_polarity(), MapGoal::Area)
                    .unwrap()
                    .cells,
            )
        })
    });
    group.finish();
}

/// Thread-scaling row for `scripts/bench_flow.sh`. Technology mapping is not
/// parallelized yet, so the row reports the same CPU time at every thread
/// count — a speedup of ~1.0 in BENCH_parallel.json marks it as the next
/// kernel to thread.
fn bench_map_scaling(_c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 2,
        ..Default::default()
    })
    .unwrap();
    let (aig, bnd) = Aig::from_netlist(&design).unwrap();
    for threads in scaling_threads() {
        let s = median_seconds(5, || {
            let t0 = eda_par::thread_cpu_seconds();
            black_box(map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap().area_um2);
            eda_par::thread_cpu_seconds() - t0
        });
        println!("BENCHLINE map_par/{threads} {s:.9e}");
    }
}

criterion_group!(benches, bench_map, bench_xor_rich, bench_map_scaling);
criterion_main!(benches);
