//! Criterion bench for claim C2: technology mapping onto CMOS vs
//! controlled-polarity libraries, area and delay goals.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_bench::{median_seconds, scaling_threads};
use eda_logic::{map_aig, map_aig_threaded, map_naive, Aig, MapGoal};
use eda_netlist::{generate, Library};
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 2,
        ..Default::default()
    })
    .unwrap();
    let (aig, bnd) = Aig::from_netlist(&design).unwrap();
    let mut group = c.benchmark_group("map");
    group.bench_function("naive_nand", |b| {
        b.iter(|| black_box(map_naive(&aig, &bnd, Library::nand_inv_2006()).unwrap().area_um2))
    });
    for (name, lib) in
        [("generic_area", Library::generic()), ("polarity_area", Library::controlled_polarity())]
    {
        let lib_ref = lib.clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &lib_ref, |b, l| {
            b.iter(|| black_box(map_aig(&aig, &bnd, l.clone(), MapGoal::Area).unwrap().area_um2))
        });
    }
    group.bench_function("generic_delay", |b| {
        b.iter(|| {
            black_box(map_aig(&aig, &bnd, Library::generic(), MapGoal::Delay).unwrap().delay_ps)
        })
    });
    group.finish();
}

fn bench_xor_rich(c: &mut Criterion) {
    let parity = generate::parity_tree(64).unwrap();
    let (aig, bnd) = Aig::from_netlist(&parity).unwrap();
    let mut group = c.benchmark_group("map_parity64");
    group.bench_function("cmos", |b| {
        b.iter(|| black_box(map_aig(&aig, &bnd, Library::generic(), MapGoal::Area).unwrap().cells))
    });
    group.bench_function("polarity", |b| {
        b.iter(|| {
            black_box(
                map_aig(&aig, &bnd, Library::controlled_polarity(), MapGoal::Area)
                    .unwrap()
                    .cells,
            )
        })
    });
    group.finish();
}

/// Thread-scaling row for `scripts/bench_flow.sh`: cut-based mapping with
/// library tabulation, cut enumeration, and match selection fanned out in
/// topological waves (`map_aig_threaded`), reported as the projected wall
/// clock of the busiest worker — the same convention as the other kernels.
fn bench_map_scaling(_c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 2,
        ..Default::default()
    })
    .unwrap();
    let (aig, bnd) = Aig::from_netlist(&design).unwrap();
    for threads in scaling_threads() {
        let s = median_seconds(5, || {
            map_aig_threaded(&aig, &bnd, Library::generic(), MapGoal::Area, threads)
                .unwrap()
                .1
                .projected_wall_s()
        });
        println!("BENCHLINE map_par/{threads} {s:.9e}");
    }
}

criterion_group!(benches, bench_map, bench_xor_rich, bench_map_scaling);
criterion_main!(benches);
