//! Criterion bench for claim C14's substrate: fault simulation and ATPG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_bench::{median_seconds, scaling_threads};
use eda_dft::{
    compressed_fault_sim, fault_list, fault_sim, fault_sim_threaded, random_patterns, run_atpg,
    AtpgConfig, CombView, TestAccess,
};
use eda_netlist::generate;
use std::hint::black_box;

fn bench_fault_sim(c: &mut Criterion) {
    let design = generate::switch_fabric(4, 4).unwrap();
    let view = CombView::new(&design).unwrap();
    let faults = fault_list(&design);
    let mut group = c.benchmark_group("fault_sim");
    for patterns in [32usize, 64, 128] {
        let pats = random_patterns(&view, patterns, 7);
        group.bench_with_input(BenchmarkId::from_parameter(patterns), &pats, |b, p| {
            b.iter(|| black_box(fault_sim(&design, &view, &faults, p).num_detected))
        });
    }
    group.finish();
}

fn bench_atpg(c: &mut Criterion) {
    let design = generate::ripple_carry_adder(8).unwrap();
    let view = CombView::new(&design).unwrap();
    let faults = fault_list(&design);
    let mut group = c.benchmark_group("atpg");
    group.sample_size(10);
    group.bench_function("adder8_full_flow", |b| {
        b.iter(|| {
            black_box(
                run_atpg(
                    &design,
                    &view,
                    &faults,
                    &AtpgConfig { random_patterns: 16, ..Default::default() },
                )
                .coverage,
            )
        })
    });
    group.finish();
}

fn bench_compression(c: &mut Criterion) {
    let design = generate::switch_fabric(4, 2).unwrap();
    let view = CombView::new(&design).unwrap();
    let faults = fault_list(&design);
    let access = TestAccess {
        scan_pins: 2,
        internal_chains: 16,
        flops: design.flops().len(),
        shift_mhz: 50.0,
    };
    c.bench_function("compressed_fault_sim_128", |b| {
        b.iter(|| {
            black_box(compressed_fault_sim(&design, &view, &faults, &access, 128, 3).coverage)
        })
    });
}

/// Thread-scaling row for `scripts/bench_flow.sh`: projected wall seconds of
/// the parallel fault simulator at `EDA_BENCH_THREADS` workers, from
/// per-worker CPU clocks (bit-identical coverage at any thread count).
fn bench_fault_sim_scaling(_c: &mut Criterion) {
    let design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 8,
        ..Default::default()
    })
    .unwrap();
    let view = CombView::new(&design).unwrap();
    let faults = fault_list(&design);
    let pats = random_patterns(&view, 128, 4);
    for threads in scaling_threads() {
        let s = median_seconds(5, || {
            fault_sim_threaded(&design, &view, &faults, &pats, threads).1.projected_wall_s()
        });
        println!("BENCHLINE fault_sim_par/{threads} {s:.9e}");
    }
}

criterion_group!(benches, bench_fault_sim, bench_atpg, bench_compression, bench_fault_sim_scaling);
criterion_main!(benches);
