//! Criterion bench for claim C4: multi-patterning decomposition cost vs
//! pitch and layout size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eda_litho::{decompose, required_masks, ConflictGraph, Layout};
use eda_tech::SINGLE_EXPOSURE_PITCH_NM;
use std::hint::black_box;

fn bench_decompose(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompose");
    for &(pitch, k) in &[(64.0f64, 2u32), (36.0, 3), (24.0, 4)] {
        let layout = Layout::line_array(24, pitch, 4000.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("pitch{pitch}_k{k}")),
            &layout,
            |b, l| {
                b.iter(|| black_box(decompose(l, k, SINGLE_EXPOSURE_PITCH_NM, 8).masks))
            },
        );
    }
    group.finish();
}

fn bench_conflict_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict_graph");
    for count in [50usize, 150, 400] {
        let layout = Layout::random_wires(count, 48.0, 6000.0, 3);
        group.bench_with_input(BenchmarkId::from_parameter(count), &layout, |b, l| {
            b.iter(|| black_box(ConflictGraph::build(l, SINGLE_EXPOSURE_PITCH_NM).num_edges()))
        });
    }
    group.finish();
}

fn bench_required_masks(c: &mut Criterion) {
    let layout = Layout::random_wires(80, 40.0, 3000.0, 5);
    c.bench_function("required_masks_random80", |b| {
        b.iter(|| black_box(required_masks(&layout, SINGLE_EXPOSURE_PITCH_NM)))
    });
}

criterion_group!(benches, bench_decompose, bench_conflict_graph, bench_required_masks);
criterion_main!(benches);
