//! Benchmark harness library: shared helpers for the Criterion benches'
//! thread-scaling rows (the experiment claims live in the `experiments`
//! binary).

/// Thread counts for the thread-scaling benches: 1 plus the
/// `EDA_BENCH_THREADS` value when it exceeds 1 (default 4). Both rows are
/// measured back-to-back in the same process so the serial/parallel ratio is
/// not polluted by machine noise between separate bench invocations;
/// `scripts/bench_flow.sh` diffs the emitted
/// `BENCHLINE <kernel>_par/<threads>` rows.
pub fn scaling_threads() -> Vec<usize> {
    let n: usize = std::env::var("EDA_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4);
    if n > 1 {
        vec![1, n]
    } else {
        vec![1]
    }
}

/// Median of `runs` samples of `f` — the same estimator the criterion
/// stand-in reports. Used for projected-wall samples, which come from
/// per-worker CPU clocks rather than the Bencher's wall clock (this host may
/// have fewer cores than workers; see eda-par).
pub fn median_seconds(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_picks_middle_sample() {
        let mut vals = [3.0, 1.0, 2.0].into_iter();
        assert_eq!(median_seconds(3, || vals.next().unwrap()), 2.0);
    }
}
