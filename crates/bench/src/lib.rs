//! Benchmark harness library (all content lives in the `experiments` binary and Criterion benches).
