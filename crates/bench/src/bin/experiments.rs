//! The experiment runner: regenerates every quantitative claim of the DATE
//! 2016 panel (see DESIGN.md §2 and EXPERIMENTS.md for the claim index).
//!
//! ```text
//! cargo run --release -p eda-bench --bin experiments run            # all claims
//! cargo run --release -p eda-bench --bin experiments run c3 c5 c9   # a subset
//! cargo run --release -p eda-bench --bin experiments run --inject smoke
//! cargo run --release -p eda-bench --bin experiments serve --batch 4 --threads 4
//! cargo run --release -p eda-bench --bin experiments incremental
//! cargo run --release -p eda-bench --bin experiments trace flow.trace.json
//! cargo run --release -p eda-bench --bin experiments daemon serve --socket /tmp/flowd.sock
//! cargo run --release -p eda-bench --bin experiments daemon submit --socket /tmp/flowd.sock --count 4 --verify
//! ```
//!
//! Subcommands (see `--help` for every option):
//!
//! * `run [CLAIMS...]` — regenerate panel claims (all of them by default).
//!   When more than one claim is selected, the independent claims run
//!   concurrently as child processes and their outputs print in claim
//!   order. With `--inject SPEC`, runs the supervised flow under a
//!   deterministic fault plan instead and checks it reproduces.
//! * `serve` — run a batch of perturbed smoke designs through one
//!   work-stealing [`FlowServer`] sharing a stage cache, compare against
//!   per-design sequential runs, and print machine-readable SERVLINE rows
//!   (throughput, cross-design cache hit rate, speedup vs. sequential).
//!   Exits nonzero unless the batch QoR is bit-identical to the serial
//!   runs.
//! * `incremental` — cold + warm smoke flow against the stage cache; exits
//!   nonzero unless the warm run skips at least 8 of the 11 stages with
//!   bit-identical QoR.
//! * `scale` — the scale-tier stress harness: a `--instances` mesh fabric
//!   through the memory-lean flow at 1 and `--threads` workers, printing
//!   SCALELINE/SCALESTAGE rows (SoA-vs-dense netlist heap, windowed-vs-dense
//!   routing scratch, per-stage wall + peak RSS, QoR bit-identity) and
//!   failing if any memory bar, the bit-identity check, or an optional
//!   `--rss-budget-mb` is missed.
//! * `trace OUT.json` — run the smoke flow once and write its telemetry
//!   (Chrome-trace JSON, flat metrics JSON, folded stacks).
//! * `daemon serve|submit|ping|shutdown` — the network-facing flow daemon
//!   (DESIGN.md §11): `serve` runs until drained and exits 0; `submit`
//!   drives a batch over the socket (with `--deadline-ms`,
//!   `--inject IDX:SPEC` per-request stage faults, `--xfault` transport
//!   sabotage, and `--verify` for the bit-identical solo-replay check);
//!   `ping` prints lifetime stats; `shutdown` asks for graceful drain.
//!   All print machine-readable DAEMONLINE rows.
//!
//! Every subcommand shares one typed `Options` struct: `--threads N` (one
//! global budget for every parallel kernel — and, under `serve`, the
//! worker/kernel split; `0` = all cores), `--store PATH` /
//! `--store-max-bytes N` (the persistent flow store: stage + sub-stage
//! cache and QoR provenance, DESIGN.md §14; the deprecated `--cache-dir
//! DIR` maps to `DIR/flow.store`), `--inject SPEC` (deterministic fault
//! plan: `smoke`, `random:N`, or `stage=fail|timeout|degrade[@invocation]`),
//! `--batch N` / `--workers W` (serve pool shape), and the `query` filters
//! (`--design`, `--stage`, `--metric`, `--last`).
//!
//! The pre-subcommand spellings (`--incremental`, `--trace OUT.json`, bare
//! `--inject SPEC`, claims with no subcommand) keep working; `--help`
//! documents the replacements.
//!
//! Any failure exits nonzero with a one-line message on stderr.

// The CLI reports failures as readable messages + nonzero exit, never a
// panic: everything fallible routes through `CliError`.
#![deny(clippy::unwrap_used)]

use eda_core::{
    run_flow, Arm, Daemon, DaemonClient, DaemonConfig, DesignSpec, Endpoint, FaultPlan,
    FlowConfig, FlowRequest, FlowServer, FlowStore, FlowTuner, QorQuery, QorRow, Query,
    QuerySpec, RejectReason, RetryPolicy, StageRow, StoreConfig, SubmitSpec, Terminal,
    TransportFaultPlan,
};
use eda_dft::{
    bypass_fault_sim, compressed_fault_sim, fault_list, insert_scan, reorder_chains, run_atpg,
    scan_wirelength, AtpgConfig, CombView, TestAccess,
};
use eda_litho::{required_masks, run_opc, Layout, OpcConfig, OpticalModel};
use eda_logic::{synthesize, MapGoal, SynthesisEffort};
use eda_netlist::{generate, Library, Netlist};
use eda_place::{
    anneal, place_global, place_hierarchical, place_parallel, plan_buffers, AnnealConfig,
    CongestionMap, Die, GlobalConfig, ParallelConfig,
};
use eda_power::{
    analyze, dark_silicon_sweep, insert_decaps, node_power_sweep, Activity, ActivityConfig,
    PowerConfig, PowerGrid,
};
use eda_route::{layer_sweep, route, RouteAlgorithm, RouteConfig};
use eda_smart::{best_iot_node, codesign_flow, node_selection_sweep, sequential_flow, DutyCycle};
use eda_sta::{TimingAnalysis, TimingConfig};
use eda_tech::{CostModel, DesignStartModel, Node, PatterningPlan};

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A CLI failure: a message for stderr, built from any underlying error.
struct CliError(String);

impl<E: std::error::Error> From<E> for CliError {
    fn from(e: E) -> Self {
        CliError(e.to_string())
    }
}

type CliResult = Result<(), CliError>;
/// A claim id paired with the function that regenerates it.
type Claim = (&'static str, fn() -> CliResult);

/// Worker threads for every parallel kernel (`0` = all cores), set once from
/// `--threads` before any claim runs.
static THREADS: AtomicUsize = AtomicUsize::new(0);

fn threads() -> usize {
    THREADS.load(Ordering::Relaxed)
}

/// Flow-store configuration from `--store` / `--cache-dir`, set once before
/// any claim runs.
static STORE: OnceLock<StoreConfig> = OnceLock::new();

/// Applies the global flow store (when given) to a flow config, so every
/// flow the claims run shares one content-addressed store.
fn with_cache(mut cfg: FlowConfig) -> FlowConfig {
    if let Some(sc) = STORE.get() {
        cfg.store = Some(sc.clone());
    }
    cfg
}

fn main() {
    if let Err(e) = run() {
        eprintln!("experiments: {}", e.0);
        std::process::exit(1);
    }
}

/// What the CLI was asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Command {
    /// Regenerate panel claims (or an injected flow with `--inject`).
    Run,
    /// Batch of perturbed smoke designs through one flow server.
    Serve,
    /// Cold + warm smoke flow against the stage cache.
    Incremental,
    /// Smoke flow once, telemetry written to disk.
    Trace,
    /// Long-lived socket daemon (`daemon serve|submit|ping|query|shutdown`).
    Daemon,
    /// Scale-tier stress run: SCALELINE/SCALESTAGE rows + self-checks.
    Scale,
    /// QoR / stage provenance history read straight from the flow store.
    Query,
}

/// One typed option set shared by every subcommand.
#[derive(Debug)]
struct Options {
    /// `--threads N`: global budget for every parallel kernel (and, under
    /// `serve`, the worker/kernel split). `0` = all cores.
    threads: usize,
    /// `--cache-dir DIR`: **deprecated** directory spelling of the flow
    /// store; behaves as `--store DIR/flow.store` when `--store` is absent.
    cache_dir: Option<String>,
    /// `--store PATH`: the persistent flow store file (stage + sub-stage
    /// cache and QoR provenance, DESIGN.md §14).
    store: Option<String>,
    /// `--store-max-bytes N`: size bound for the store (0 = default 64 MiB).
    store_max_bytes: u64,
    /// `--design NAME`: provenance filter for `query`.
    design: Option<String>,
    /// `--stage STAGE`: `query` switches to per-stage history rows.
    stage: Option<String>,
    /// `--metric M`: `query` column selector (wns|overflow|hpwl|wall|rss|all).
    metric: Option<String>,
    /// `--last N`: newest-N limit for `query` (0 = unlimited).
    last: usize,
    /// `--inject SPEC`: deterministic fault plan.
    inject: Option<String>,
    /// `trace` output path.
    trace_out: Option<String>,
    /// `--batch N`: requests per `serve` batch.
    batch: usize,
    /// `--workers W`: inter-design workers for `serve` (0 = auto split).
    workers: usize,
    /// `--child`: this process is a claim child; run selected claims inline.
    child: bool,
    /// Claim ids for `run` (empty = all).
    claims: Vec<String>,
    /// `daemon` verb: `serve`, `submit`, `ping`, or `shutdown`.
    verb: Option<String>,
    /// `--socket PATH`: the daemon's Unix socket.
    socket: Option<String>,
    /// `--tcp ADDR`: optional TCP endpoint for `daemon serve`.
    tcp: Option<String>,
    /// `--queue N`: admission high-water mark for `daemon serve`.
    queue: usize,
    /// `--count N`: requests per `daemon submit`.
    count: usize,
    /// `--deadline-ms N`: per-request deadline for `daemon submit`.
    deadline_ms: Option<u64>,
    /// `--verify`: replay each completed submit solo and compare QoR
    /// fingerprints (the end-to-end determinism check).
    verify: bool,
    /// `--xfault SPEC`: deterministic transport-fault plan applied to the
    /// `daemon submit` client itself (`conn-drop@N,frame-garbage@N,stall@N`).
    xfault: Option<String>,
    /// `--instances N`: target instance count for `scale`.
    instances: usize,
    /// `--rss-budget-mb N`: `scale` fails if peak RSS exceeds this (0 = no
    /// budget check).
    rss_budget_mb: u64,
    /// `--route-speedup-floor X`: `scale` fails if the projected route-stage
    /// speedup at `--threads` workers falls below this (0 = no gate).
    route_speedup_floor: f64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            threads: 0,
            cache_dir: None,
            store: None,
            store_max_bytes: 0,
            design: None,
            stage: None,
            metric: None,
            last: 10,
            inject: None,
            trace_out: None,
            batch: 4,
            workers: 0,
            child: false,
            claims: Vec::new(),
            verb: None,
            socket: None,
            tcp: None,
            queue: 8,
            count: 4,
            deadline_ms: None,
            verify: false,
            xfault: None,
            instances: 100_000,
            rss_budget_mb: 0,
            route_speedup_floor: 0.0,
        }
    }
}

fn print_help() {
    println!(
        "experiments — regenerate the DATE 2016 panel's claims and drive the flow

USAGE:
    experiments [SUBCOMMAND] [OPTIONS] [CLAIMS...]

SUBCOMMANDS:
    run [CLAIMS...]    regenerate panel claims (default: all); independent
                       claims run concurrently as child processes
    serve              run --batch N perturbed smoke designs through one
                       work-stealing flow server over a shared stage cache,
                       compare against sequential per-design runs, and print
                       SERVLINE rows (throughput, cross-design cache hit
                       rate, speedup vs. sequential)
    incremental        cold + warm + edited smoke flow against the flow
                       store; fails unless the warm run skips >= 8 of 11
                       stages and a one-AIG-pass edit replays >= 1 sub-stage
                       memo entry, both with bit-identical QoR
    query              read QoR / stage provenance history out of the flow
                       store (--store, with --design / --stage / --metric /
                       --last filters) and print QUERYLINE rows newest-first
    trace OUT.json     run the smoke flow once; write Chrome-trace JSON,
                       OUT.metrics.json, and OUT.folded
    scale              generate a --instances mesh fabric, run the
                       scale-tier flow serially and at --threads workers,
                       and print SCALELINE/SCALESTAGE rows (SoA vs dense
                       netlist heap, routing window vs dense grid cells,
                       per-stage wall + peak RSS, QoR bit-identity); exits
                       nonzero if any memory bar, the bit-identity check,
                       or --rss-budget-mb fails
    daemon VERB        long-lived flow daemon over a Unix socket:
                         serve      bind --socket and serve until drained
                                    (shutdown frame or SIGTERM); exits 0
                         submit     send --count requests, stream stage
                                    events, print DAEMONLINE rows
                         ping       liveness probe + lifetime stats
                         query      QoR history over the wire (answered from
                                    the daemon's store, no flow worker used)
                         shutdown   graceful drain, then print final stats

OPTIONS (shared by every subcommand):
    --threads N        global thread budget, 0 = all cores (default 0);
                       results are bit-identical for any value
    --store PATH       persistent flow store file: stage + sub-stage cache
                       and QoR provenance (DESIGN.md section 14)
    --store-max-bytes N
                       store size bound in bytes; LRU compaction keeps the
                       file under it (default 0 = 64 MiB)
    --design NAME      query: only rows for this design
    --stage STAGE      query: per-stage history rows for STAGE instead of
                       whole-run QoR rows
    --metric M         query: value column, one of wns|overflow|hpwl|wall|
                       rss|all (default all)
    --last N           query: newest N rows only (default 10, 0 = unlimited)
    --inject SPEC      deterministic fault plan: smoke, random:N, or a comma
                       list of stage=fail|timeout|degrade[@invocation]
                       (run: supervised faulted flow; trace: faulted trace;
                       serve / daemon submit: prefix with a request index,
                       e.g. `2:route=fail@1`, `;`-separated for several)
    --batch N          serve: requests per batch (default 4)
    --workers W        serve: inter-design workers, 0 = auto split (default);
                       daemon serve: flow workers (default 2)
    --socket PATH      daemon: Unix socket path (required)
    --tcp ADDR         daemon serve: also listen on this TCP address
    --queue N          daemon serve: admission high-water mark (default 8)
    --count N          daemon submit: number of requests (default 4)
    --deadline-ms N    daemon submit: per-request deadline from admission
    --verify           daemon submit: replay each completed request solo and
                       require bit-identical QoR fingerprints
    --instances N      scale: target instance count (default 100000)
    --rss-budget-mb N  scale: fail if peak RSS exceeds N MB (default 0 = off)
    --route-speedup-floor X
                       scale: fail if the projected route-stage speedup at
                       --threads workers is below X (default 0 = off)
    --xfault SPEC      daemon submit: sabotage the client deterministically
                       (conn-drop@N | frame-garbage@N | stall@N, comma list)
    -h, --help         this text

DEPRECATED (kept for compatibility, prefer the replacements):
    --cache-dir DIR    ->  --store DIR/flow.store (the old loose-directory
                           cache is now one store file; the directory
                           spelling maps to a default-sized store there)
    --incremental      ->  experiments incremental
    --trace OUT.json   ->  experiments trace OUT.json
    --inject SPEC      ->  experiments run --inject SPEC
    CLAIMS with no subcommand  ->  experiments run CLAIMS"
    );
}

/// Parses argv into `(Command, Options)`. Subcommand names and flags are
/// case-insensitive; values (paths, fault specs) are taken verbatim.
fn parse_args() -> Result<(Command, Options), CliError> {
    let mut cmd: Option<Command> = None;
    let mut opts = Options::default();
    let take = |flag: &str, v: Option<String>| -> Result<String, CliError> {
        v.ok_or(CliError(format!("{flag} needs a value")))
    };
    let count = |flag: &str, v: Option<String>| -> Result<usize, CliError> {
        v.and_then(|v| v.parse().ok())
            .ok_or(CliError(format!("{flag} needs a non-negative integer")))
    };
    let ratio = |flag: &str, v: Option<String>| -> Result<f64, CliError> {
        v.and_then(|v| v.parse::<f64>().ok())
            .filter(|x| x.is_finite() && *x >= 0.0)
            .ok_or(CliError(format!("{flag} needs a non-negative number")))
    };
    let mut args = std::env::args().skip(1);
    while let Some(raw) = args.next() {
        let a = raw.to_lowercase();
        // Flag values come from the raw argv entry: paths and fault specs
        // are case-sensitive.
        let value_of = |prefix: &str| raw[prefix.len()..].to_string();
        match a.as_str() {
            "-h" | "--help" => {
                print_help();
                std::process::exit(0);
            }
            "--threads" => opts.threads = count("--threads", args.next())?,
            _ if a.starts_with("--threads=") => {
                opts.threads = count("--threads", Some(value_of("--threads=")))?;
            }
            "--batch" => opts.batch = count("--batch", args.next())?.max(1),
            _ if a.starts_with("--batch=") => {
                opts.batch = count("--batch", Some(value_of("--batch=")))?.max(1);
            }
            "--workers" => opts.workers = count("--workers", args.next())?,
            _ if a.starts_with("--workers=") => {
                opts.workers = count("--workers", Some(value_of("--workers=")))?;
            }
            "--inject" => {
                opts.inject =
                    Some(take("--inject (try `--inject smoke`)", args.next())?);
            }
            _ if a.starts_with("--inject=") => opts.inject = Some(value_of("--inject=")),
            "--cache-dir" => opts.cache_dir = Some(take("--cache-dir", args.next())?),
            _ if a.starts_with("--cache-dir=") => {
                opts.cache_dir = Some(value_of("--cache-dir="));
            }
            "--store" => opts.store = Some(take("--store", args.next())?),
            _ if a.starts_with("--store=") => opts.store = Some(value_of("--store=")),
            "--store-max-bytes" => {
                opts.store_max_bytes = count("--store-max-bytes", args.next())? as u64;
            }
            _ if a.starts_with("--store-max-bytes=") => {
                opts.store_max_bytes =
                    count("--store-max-bytes", Some(value_of("--store-max-bytes=")))? as u64;
            }
            "--design" => opts.design = Some(take("--design", args.next())?),
            _ if a.starts_with("--design=") => opts.design = Some(value_of("--design=")),
            "--stage" => opts.stage = Some(take("--stage", args.next())?),
            _ if a.starts_with("--stage=") => opts.stage = Some(value_of("--stage=")),
            "--metric" => opts.metric = Some(take("--metric", args.next())?),
            _ if a.starts_with("--metric=") => opts.metric = Some(value_of("--metric=")),
            "--last" => opts.last = count("--last", args.next())?,
            _ if a.starts_with("--last=") => {
                opts.last = count("--last", Some(value_of("--last=")))?;
            }
            "--socket" => opts.socket = Some(take("--socket", args.next())?),
            _ if a.starts_with("--socket=") => opts.socket = Some(value_of("--socket=")),
            "--tcp" => opts.tcp = Some(take("--tcp", args.next())?),
            _ if a.starts_with("--tcp=") => opts.tcp = Some(value_of("--tcp=")),
            "--queue" => opts.queue = count("--queue", args.next())?.max(1),
            _ if a.starts_with("--queue=") => {
                opts.queue = count("--queue", Some(value_of("--queue=")))?.max(1);
            }
            "--count" => opts.count = count("--count", args.next())?.max(1),
            _ if a.starts_with("--count=") => {
                opts.count = count("--count", Some(value_of("--count=")))?.max(1);
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(count("--deadline-ms", args.next())? as u64);
            }
            _ if a.starts_with("--deadline-ms=") => {
                opts.deadline_ms =
                    Some(count("--deadline-ms", Some(value_of("--deadline-ms=")))? as u64);
            }
            "--verify" => opts.verify = true,
            "--instances" => opts.instances = count("--instances", args.next())?.max(100),
            _ if a.starts_with("--instances=") => {
                opts.instances = count("--instances", Some(value_of("--instances=")))?.max(100);
            }
            "--rss-budget-mb" => {
                opts.rss_budget_mb = count("--rss-budget-mb", args.next())? as u64;
            }
            _ if a.starts_with("--rss-budget-mb=") => {
                opts.rss_budget_mb =
                    count("--rss-budget-mb", Some(value_of("--rss-budget-mb=")))? as u64;
            }
            "--route-speedup-floor" => {
                opts.route_speedup_floor = ratio("--route-speedup-floor", args.next())?;
            }
            _ if a.starts_with("--route-speedup-floor=") => {
                opts.route_speedup_floor = ratio(
                    "--route-speedup-floor",
                    Some(value_of("--route-speedup-floor=")),
                )?;
            }
            "--xfault" => opts.xfault = Some(take("--xfault", args.next())?),
            _ if a.starts_with("--xfault=") => opts.xfault = Some(value_of("--xfault=")),
            // Deprecated mode-selector spellings (see --help).
            "--trace" => {
                opts.trace_out =
                    Some(take("--trace (try `--trace flow.trace.json`)", args.next())?);
                cmd.get_or_insert(Command::Trace);
            }
            _ if a.starts_with("--trace=") => {
                opts.trace_out = Some(value_of("--trace="));
                cmd.get_or_insert(Command::Trace);
            }
            "--incremental" => {
                cmd.get_or_insert(Command::Incremental);
            }
            "--child" => opts.child = true,
            _ if a.starts_with("--") => {
                return Err(CliError(format!("unknown flag `{a}` (see --help)")));
            }
            // First positional may name a subcommand; under `trace` the next
            // positional is the output path; everything else is a claim id.
            "run" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Run),
            "serve" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Serve),
            "incremental" if cmd.is_none() && opts.claims.is_empty() => {
                cmd = Some(Command::Incremental);
            }
            "trace" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Trace),
            "daemon" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Daemon),
            "scale" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Scale),
            "query" if cmd.is_none() && opts.claims.is_empty() => cmd = Some(Command::Query),
            _ if cmd == Some(Command::Trace) && opts.trace_out.is_none() => {
                opts.trace_out = Some(raw);
            }
            _ if cmd == Some(Command::Daemon) && opts.verb.is_none() => {
                opts.verb = Some(a.clone());
            }
            _ => opts.claims.push(a),
        }
    }
    let cmd = cmd.unwrap_or(Command::Run);
    if cmd != Command::Run && !opts.claims.is_empty() {
        return Err(CliError(format!(
            "`{}` takes no claim arguments (got: {})",
            match cmd {
                Command::Serve => "serve",
                Command::Incremental => "incremental",
                Command::Trace => "trace",
                Command::Daemon => "daemon",
                Command::Scale => "scale",
                Command::Query => "query",
                Command::Run => unreachable!("run accepts claims"),
            },
            opts.claims.join(" ")
        )));
    }
    Ok((cmd, opts))
}

/// Resolves the flow store the CLI should run against: `--store PATH`
/// (with `--store-max-bytes` applied) wins; the deprecated `--cache-dir DIR`
/// maps to a default store at `DIR/flow.store`; otherwise `None`.
fn store_config(opts: &Options) -> Option<StoreConfig> {
    let base = match (&opts.store, &opts.cache_dir) {
        (Some(path), _) => StoreConfig::at(path),
        (None, Some(dir)) => StoreConfig::at(PathBuf::from(dir).join("flow.store")),
        (None, None) => return None,
    };
    Some(if opts.store_max_bytes > 0 {
        base.with_max_bytes(opts.store_max_bytes)
    } else {
        base
    })
}

fn run() -> CliResult {
    let (cmd, opts) = parse_args()?;
    THREADS.store(opts.threads, Ordering::Relaxed);
    if let Some(sc) = store_config(&opts) {
        let _ = STORE.set(sc);
    }
    match cmd {
        Command::Incremental => incremental_demo(&opts),
        Command::Query => query_demo(&opts),
        Command::Trace => {
            let path = opts.trace_out.as_deref().ok_or(CliError(
                "trace needs an output path (try `experiments trace flow.trace.json`)".into(),
            ))?;
            trace_demo(path, opts.threads, opts.inject.as_deref())
        }
        Command::Serve => serve_demo(&opts),
        Command::Daemon => daemon_demo(&opts),
        Command::Scale => scale_demo(&opts),
        Command::Run => {
            if let Some(spec) = &opts.inject {
                return inject_demo(spec, opts.threads);
            }
            run_claims(&opts)
        }
    }
}

/// `run [CLAIMS...]`: regenerate the selected claims (all by default),
/// fanning independent claims out as concurrent child processes.
fn run_claims(opts: &Options) -> CliResult {
    let claims = &opts.claims;
    let threads_arg = opts.threads;
    let experiments: Vec<Claim> = vec![
        ("c1", c1),
        ("c2", c2),
        ("c3", c3),
        ("c4", c4),
        ("c5", c5),
        ("c6", c6),
        ("c7", c7),
        ("c8", c8),
        ("c9", c9),
        ("c10", c10),
        ("c11", c11),
        ("c12", c12),
        ("c13", c13),
        ("c14", c14),
        ("c15", c15),
        ("c16", c16),
        ("b1", b1),
        ("b2", b2),
    ];
    for id in claims {
        if !experiments.iter().any(|(known, _)| known == id) {
            let known: Vec<&str> = experiments.iter().map(|(id, _)| *id).collect();
            return Err(CliError(format!("unknown claim `{id}` (known: {})", known.join(" "))));
        }
    }
    let all = claims.is_empty();
    let want = |id: &str| all || claims.iter().any(|a| a == id);
    let selected: Vec<Claim> =
        experiments.into_iter().filter(|(id, _)| want(id)).collect();

    if opts.child || selected.len() <= 1 {
        for (id, run) in selected {
            run().map_err(|e| CliError(format!("claim {id}: {}", e.0)))?;
            println!();
        }
        return Ok(());
    }

    // Claims are independent: run each as a child process so they execute
    // concurrently, then print the captured outputs in claim order.
    let exe = std::env::current_exe()?;
    let children: Vec<(&str, std::process::Child)> = selected
        .iter()
        .map(|(id, _)| {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("run").arg("--child").arg(format!("--threads={threads_arg}"));
            if let Some(path) = &opts.store {
                cmd.arg(format!("--store={path}"));
                if opts.store_max_bytes > 0 {
                    cmd.arg(format!("--store-max-bytes={}", opts.store_max_bytes));
                }
            } else if let Some(dir) = &opts.cache_dir {
                cmd.arg(format!("--cache-dir={dir}"));
            }
            let c = cmd
                .arg(id)
                .stdout(std::process::Stdio::piped())
                .stderr(std::process::Stdio::piped())
                .spawn()?;
            Ok((*id, c))
        })
        .collect::<Result<_, CliError>>()?;
    let mut failed: Vec<String> = Vec::new();
    for (id, child) in children {
        let out = child.wait_with_output()?;
        print!("{}", String::from_utf8_lossy(&out.stdout));
        if !out.status.success() {
            eprint!("{}", String::from_utf8_lossy(&out.stderr));
            failed.push(id.to_string());
        }
    }
    if !failed.is_empty() {
        return Err(CliError(format!("claim(s) failed: {}", failed.join(" "))));
    }
    Ok(())
}

/// `incremental`: cold + warm + edited smoke flow against the flow store.
///
/// Runs the smoke flow twice against `--store` (or the deprecated
/// `--cache-dir`, or a fresh temp store), prints both wall clocks, the
/// fraction of stages replayed from the store, and the QoR comparison; then
/// re-runs with one AIG rewrite pass dropped — the sub-stage memo must
/// replay at least one per-pass entry even though the synthesis stage entry
/// itself misses. Fails unless the warm run skipped at least 8 of the 11
/// stages and the edited run's QoR matches an uncached reference,
/// bit-identically. Unreadable (poisoned) entries are recomputed and
/// counted, never fatal, so a partially damaged store still passes as long
/// as enough stages replay.
fn incremental_demo(opts: &Options) -> CliResult {
    let sc = store_config(opts).unwrap_or_else(|| {
        StoreConfig::at(
            std::env::temp_dir()
                .join(format!("eda_incremental_{}", std::process::id()))
                .join("flow.store"),
        )
    });
    let design = generate::switch_fabric(3, 3)?;
    let mut cfg = FlowConfig::advanced_2016(Node::N10);
    cfg.threads = opts.threads;
    cfg.store = Some(sc.clone());
    println!(
        "=== incremental flow: {} on {} (store at {}) ===",
        cfg.name,
        design.name(),
        sc.path.display()
    );

    let counter = |r: &eda_core::FlowReport, name: &str| -> u64 {
        match r.telemetry.metrics.get(name) {
            Some(eda_core::Metric::Counter(n)) => *n,
            _ => 0,
        }
    };

    let t = Instant::now();
    let cold = run_flow(&design, &cfg).map_err(|e| CliError(format!("cold run failed: {e}")))?;
    let cold_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = run_flow(&design, &cfg).map_err(|e| CliError(format!("warm run failed: {e}")))?;
    let warm_s = t.elapsed().as_secs_f64();

    let total = warm.stage_status.len() as u64;
    let hits = counter(&warm, "cache.hits");
    let errors = counter(&warm, "cache.errors");
    let same = cold.same_qor(&warm);
    println!("cold run: {cold_s:>8.3}s  ({} stage misses)", counter(&cold, "cache.misses"));
    println!(
        "warm run: {warm_s:>8.3}s  \
         ({hits}/{total} stages replayed, {errors} unreadable entries recomputed)"
    );
    println!("warm speedup: {:.1}x, QoR bit-identical: {same}", cold_s / warm_s.max(1e-9));

    // Edit-replay: drop one AIG rewrite pass. The synthesis stage entry
    // misses (its config fingerprint covers the pass count), but the
    // per-pass sub-stage memo replays every pass the edit didn't remove.
    // QoR is judged against an uncached run of the edited config.
    let mut edited = cfg.clone();
    edited.aig_rewrite_passes = cfg.aig_rewrite_passes.saturating_sub(1);
    let t = Instant::now();
    let edit =
        run_flow(&design, &edited).map_err(|e| CliError(format!("edited run failed: {e}")))?;
    let edit_s = t.elapsed().as_secs_f64();
    let mut uncached = edited.clone();
    uncached.store = None;
    uncached.cache_dir = None;
    let reference = run_flow(&design, &uncached)
        .map_err(|e| CliError(format!("uncached reference run failed: {e}")))?;
    let sub_hits = counter(&edit, "cache.substage_hits");
    let sub_misses = counter(&edit, "cache.substage_misses");
    let edit_hits = counter(&edit, "cache.hits");
    let edit_same = reference.same_qor(&edit);
    println!(
        "edit run: {edit_s:>8.3}s  (one rewrite pass dropped: {edit_hits} stage hits, \
         {sub_hits} sub-stage hits / {sub_misses} misses, QoR vs uncached: {edit_same})"
    );

    // Machine-readable rows for scripts/bench_flow.sh and scripts/check.sh.
    // The `cold_*` rows describe the first run of THIS invocation — against
    // a pre-filled store it hits too, and against a damaged one it reports
    // the unreadable entries it recomputed.
    println!("INCRLINE cold_s {cold_s:.6}");
    println!("INCRLINE cold_hits {}", counter(&cold, "cache.hits"));
    println!("INCRLINE cold_errors {}", counter(&cold, "cache.errors"));
    println!("INCRLINE warm_s {warm_s:.6}");
    println!("INCRLINE stages_total {total}");
    println!("INCRLINE stages_skipped {hits}");
    println!("INCRLINE cache_errors {errors}");
    println!("INCRLINE same_qor {}", same as u32);
    println!("INCRLINE edit_s {edit_s:.6}");
    println!("INCRLINE edit_stage_hits {edit_hits}");
    println!("INCRLINE edit_substage_hits {sub_hits}");
    println!("INCRLINE edit_substage_misses {sub_misses}");
    println!("INCRLINE edit_same_qor {}", edit_same as u32);
    if hits < 8 {
        return Err(CliError(format!(
            "warm run replayed only {hits}/{total} stages (expected >= 8)"
        )));
    }
    if !same {
        return Err(CliError("warm QoR diverged from the cold run".into()));
    }
    // A store pre-filled by an earlier edited run replays the whole edited
    // flow from the stage cache (never consulting the memo), so the
    // sub-stage gate only binds when synthesis actually recomputed.
    if sub_hits < 1 && edit_hits < total {
        return Err(CliError(
            "edited run replayed no sub-stage entries (expected >= 1 per-pass memo hit)".into(),
        ));
    }
    if !edit_same {
        return Err(CliError("edited QoR diverged from the uncached reference".into()));
    }
    println!(
        "incremental: warm run skipped {hits}/{total} stages, \
         edit replayed {sub_hits} sub-stage entries, QoR identical"
    );
    Ok(())
}

/// `query`: the provenance read side — QoR history (or, with `--stage`,
/// per-stage history) straight out of the flow store, newest first.
///
/// Prints a human table plus stable machine-readable rows:
///
/// * `QUERYLINE qor <seq> <design> <node> <cfg_fp> <qor_fp> <wns_ps>
///   <overflow> <hpwl_um> <wall_s> <peak_rss_bytes>` (with `--metric all`),
/// * `QUERYLINE <metric> <seq> <design> <value>` for a single metric,
/// * `QUERYLINE stage <seq> <design> <stage> <attempts> <wall_s> <outcome>`
///   with `--stage`,
/// * a trailing `QUERYLINE rows <n>` count either way.
fn query_demo(opts: &Options) -> CliResult {
    let sc = store_config(opts).ok_or(CliError(
        "query needs --store PATH (or the deprecated --cache-dir DIR)".into(),
    ))?;
    let store = FlowStore::open(&sc).map_err(|e| CliError(format!("cannot open store: {e}")))?;
    let q = QorQuery {
        design: opts.design.clone(),
        stage: opts.stage.clone(),
        last: opts.last,
    };

    if opts.stage.is_some() {
        let rows: Vec<StageRow> = store.stage_history(&q)?;
        println!("{:>5} {:<14} {:<12} {:>8} {:>9}  outcome", "seq", "design", "stage", "attempts", "wall_s");
        for row in &rows {
            println!(
                "{:>5} {:<14} {:<12} {:>8} {:>9.3}  {}",
                row.seq, row.design, row.stage, row.attempts, row.wall_s, row.outcome
            );
        }
        for row in &rows {
            println!(
                "QUERYLINE stage {} {} {} {} {:.6} {}",
                row.seq, row.design, row.stage, row.attempts, row.wall_s, row.outcome
            );
        }
        println!("QUERYLINE rows {}", rows.len());
        return Ok(());
    }

    let metric = opts.metric.as_deref().unwrap_or("all");
    let value = |row: &QorRow| -> String {
        match metric {
            "wns" => format!("{:.3}", row.wns_ps),
            "overflow" => row.overflow.to_string(),
            "hpwl" => format!("{:.3}", row.hpwl_um),
            "wall" => format!("{:.6}", row.wall_s),
            "rss" => row.peak_rss_bytes.to_string(),
            _ => String::new(),
        }
    };
    if !matches!(metric, "all" | "wns" | "overflow" | "hpwl" | "wall" | "rss") {
        return Err(CliError(format!(
            "unknown --metric `{metric}` (want wns, overflow, hpwl, wall, rss, or all)"
        )));
    }
    let rows: Vec<QorRow> = store.qor_history(&q)?;
    println!(
        "{:>5} {:<14} {:<6} {:>10} {:>6} {:>12} {:>9} {:>9}",
        "seq", "design", "node", "wns_ps", "ovfl", "hpwl_um", "wall_s", "rss_mb"
    );
    for row in &rows {
        println!(
            "{:>5} {:<14} {:<6} {:>10.1} {:>6} {:>12.1} {:>9.3} {:>9.1}",
            row.seq,
            row.design,
            row.node,
            row.wns_ps,
            row.overflow,
            row.hpwl_um,
            row.wall_s,
            row.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
    }
    for row in &rows {
        if metric == "all" {
            println!(
                "QUERYLINE qor {} {} {} {:016x} {:016x} {:.3} {} {:.3} {:.6} {}",
                row.seq,
                row.design,
                row.node,
                row.cfg_fp,
                row.qor_fp,
                row.wns_ps,
                row.overflow,
                row.hpwl_um,
                row.wall_s,
                row.peak_rss_bytes
            );
        } else {
            println!("QUERYLINE {metric} {} {} {}", row.seq, row.design, value(row));
        }
    }
    println!("QUERYLINE rows {}", rows.len());
    Ok(())
}

/// `scale`: the 10⁵-tier stress harness behind BENCH_scale.json and the
/// check.sh mini-scale gate.
///
/// Generates a [`generate::scale_mesh`] fabric at `--instances`, prints the
/// SoA-vs-dense netlist heap bar, then runs [`FlowConfig::scale_2016`] once
/// serially and once at `--threads` workers. Emits machine-readable rows:
///
/// * `SCALELINE <key> <value>` — totals: instance/net counts, heap bytes,
///   routing window peak vs dense grid cells, region-router counters,
///   serial/parallel wall clocks, peak RSS, QoR bit-identity.
/// * `SCALESTAGE <stage> <wall_s> <rss_mb>` — per stage, from the serial
///   run's telemetry. The process is fresh at that point, so the RSS column
///   shows the high-water mark ramping stage by stage (VmHWM is monotone by
///   construction).
///
/// Parallel wall clocks use the **projected** convention: each kernel
/// dispatch's measured wall is replaced by the busiest worker's CPU time
/// (the wall a one-core-per-worker host would see — the same convention
/// `ParStats::bounded_speedup` uses), because on core-starved CI hosts the
/// measured wall of a 4-thread run says nothing about the algorithm. The
/// measured wall is still emitted as `parallel_measured_s`;
/// `route_serial_s` / `route_parallel_s` / `route_speedup` isolate the
/// route stage the same way.
///
/// Exits nonzero when the SoA heap is not below the dense pointer-graph
/// baseline, when the positive window margin fails to keep routing scratch
/// below the dense grid, when the two runs' QoR differs in any bit, when
/// `--rss-budget-mb` is set and peak RSS exceeds it, or when
/// `--route-speedup-floor` is set and the route stage misses it.
fn scale_demo(opts: &Options) -> CliResult {
    use eda_core::{Metric, SpanKind, STAGES};
    use eda_netlist::{dense_heap_bytes, SoaNetlist};

    let par_threads = if opts.threads == 0 { 4 } else { opts.threads };
    let t = Instant::now();
    let design = generate::scale_mesh(opts.instances, 3)?;
    let gen_s = t.elapsed().as_secs_f64();
    let soa_bytes = SoaNetlist::from_netlist(&design).heap_bytes();
    let dense_bytes = dense_heap_bytes(&design);
    println!(
        "=== scale tier: {} instances, {} nets (generated in {gen_s:.2}s) ===",
        design.num_instances(),
        design.num_nets()
    );
    println!(
        "netlist heap: SoA {:.1} MB vs dense {:.1} MB ({:.0}% of dense)",
        soa_bytes as f64 / 1e6,
        dense_bytes as f64 / 1e6,
        100.0 * soa_bytes as f64 / dense_bytes as f64
    );

    let mut cfg = with_cache(FlowConfig::scale_2016(Node::N28, opts.instances));
    cfg.threads = 1;
    let t = Instant::now();
    let serial = run_flow(&design, &cfg)
        .map_err(|e| CliError(format!("serial scale flow failed: {e}")))?;
    let serial_s = t.elapsed().as_secs_f64();
    cfg.threads = par_threads;
    let t = Instant::now();
    let parallel = run_flow(&design, &cfg)
        .map_err(|e| CliError(format!("{par_threads}-thread scale flow failed: {e}")))?;
    let parallel_measured_s = t.elapsed().as_secs_f64();
    let same = serial.same_qor(&parallel);
    let peak_rss_mb = eda_core::read_peak_rss_bytes() / (1 << 20);

    // Per-stage wall + RSS high-water from a run's telemetry: the last Stage
    // span with each name times the attempt that produced the result.
    let stage_walls = |report: &eda_core::FlowReport| {
        let mut rows: std::collections::BTreeMap<&str, (f64, u64)> = Default::default();
        for (span, wall) in report.telemetry.spans.iter().zip(&report.telemetry.wall) {
            if span.kind == SpanKind::Stage {
                if let Some(stage) = STAGES.iter().find(|s| **s == span.name) {
                    rows.insert(stage, (wall.dur_s, wall.peak_rss_bytes >> 20));
                }
            }
        }
        rows
    };
    // Per-stage projected-wall correction: for every kernel dispatch,
    // measured wall minus the busiest worker's CPU (what a host with one
    // dedicated core per worker would observe). Subtracting it converts a
    // core-starved host's measured wall into the projected wall.
    let corrections = |report: &eda_core::FlowReport| {
        let mut by_stage: std::collections::BTreeMap<String, f64> = Default::default();
        let spans = &report.telemetry.spans;
        for (span, wall) in spans.iter().zip(&report.telemetry.wall) {
            if span.kind != SpanKind::Kernel {
                continue;
            }
            let projected = wall.busy_s.iter().cloned().fold(0.0, f64::max);
            if projected <= 0.0 {
                continue;
            }
            let mut at = span.parent;
            while let Some(p) = at {
                if spans[p].kind == SpanKind::Stage {
                    *by_stage.entry(spans[p].name.clone()).or_default() +=
                        (wall.dur_s - projected).max(0.0);
                    break;
                }
                at = spans[p].parent;
            }
        }
        by_stage
    };
    let serial_rows = stage_walls(&serial);
    let parallel_rows = stage_walls(&parallel);
    let corr = corrections(&parallel);
    let total_corr: f64 = corr.values().sum();
    let parallel_s = (parallel_measured_s - total_corr).max(1e-9);
    let route_serial_s = serial_rows.get("7_route").map_or(0.0, |(w, _)| *w);
    let route_measured_s = parallel_rows.get("7_route").map_or(0.0, |(w, _)| *w);
    let route_parallel_s =
        (route_measured_s - corr.get("7_route").copied().unwrap_or(0.0)).max(1e-9);
    let route_speedup = route_serial_s / route_parallel_s;

    let gauge = |name: &str| -> f64 {
        match serial.telemetry.metrics.get(name) {
            Some(Metric::Gauge(g)) => *g,
            _ => 0.0,
        }
    };
    let window_peak = gauge("route.window_peak_cells");
    let dense_cells = gauge("route.dense_grid_cells");

    println!(
        "flow: serial {serial_s:.2}s, {par_threads} threads {parallel_s:.2}s projected \
         ({parallel_measured_s:.2}s measured on this host), \
         QoR bit-identical: {same}, peak RSS {peak_rss_mb} MB"
    );
    println!(
        "route: serial {route_serial_s:.2}s, {par_threads} threads {route_parallel_s:.2}s \
         projected = {route_speedup:.2}x"
    );
    println!(
        "routing scratch: window peak {window_peak:.0} cells vs dense {dense_cells:.0} \
         ({:.0}% of dense)",
        100.0 * window_peak / dense_cells.max(1.0)
    );

    println!("SCALELINE instances {}", design.num_instances());
    println!("SCALELINE nets {}", design.num_nets());
    println!("SCALELINE generate_s {gen_s:.6}");
    println!("SCALELINE soa_heap_bytes {soa_bytes}");
    println!("SCALELINE dense_heap_bytes {dense_bytes}");
    println!("SCALELINE window_peak_cells {window_peak:.0}");
    println!("SCALELINE dense_grid_cells {dense_cells:.0}");
    let counter = |name: &str| -> u64 {
        match serial.telemetry.metrics.get(name) {
            Some(Metric::Counter(n)) => *n,
            _ => 0,
        }
    };
    println!("SCALELINE place_hpwl_um {:.0}", gauge("place.hpwl_final_um"));
    println!("SCALELINE route_wirelength {}", serial.routed_wirelength);
    println!("SCALELINE route_overflow {}", serial.overflow);
    println!("SCALELINE route_connections {}", counter("route.connections"));
    println!("SCALELINE route_cells_expanded {}", counter("route.cells_expanded"));
    println!("SCALELINE route_regions {:.0}", gauge("route.regions"));
    println!("SCALELINE route_local_commits {}", counter("route.local_commits"));
    println!("SCALELINE route_seam_conflicts {}", counter("route.seam_conflicts"));
    println!("SCALELINE route_negotiation_waves {}", counter("route.negotiation_waves"));
    println!("SCALELINE serial_s {serial_s:.6}");
    println!("SCALELINE parallel_s {parallel_s:.6}");
    println!("SCALELINE parallel_measured_s {parallel_measured_s:.6}");
    println!("SCALELINE route_serial_s {route_serial_s:.6}");
    println!("SCALELINE route_parallel_s {route_parallel_s:.6}");
    println!("SCALELINE route_speedup {route_speedup:.6}");
    println!("SCALELINE threads {par_threads}");
    println!("SCALELINE peak_rss_mb {peak_rss_mb}");
    println!("SCALELINE same_qor {}", same as u32);
    for stage in STAGES {
        if let Some((wall_s, rss_mb)) = serial_rows.get(stage) {
            println!("SCALESTAGE {stage} {wall_s:.6} {rss_mb}");
        }
    }

    if serial.stage_status.len() != STAGES.len() {
        return Err(CliError(format!(
            "scale flow reported {}/{} stages",
            serial.stage_status.len(),
            STAGES.len()
        )));
    }
    if soa_bytes >= dense_bytes {
        return Err(CliError(format!(
            "SoA heap ({soa_bytes} B) must stay below the dense baseline ({dense_bytes} B)"
        )));
    }
    if window_peak <= 0.0 || dense_cells <= 0.0 || window_peak >= dense_cells {
        return Err(CliError(format!(
            "windowed routing must stay below the dense grid ({window_peak:.0} vs {dense_cells:.0} cells)"
        )));
    }
    if !same {
        return Err(CliError(format!(
            "scale QoR diverged between 1 and {par_threads} threads"
        )));
    }
    if opts.rss_budget_mb > 0 && peak_rss_mb > opts.rss_budget_mb {
        return Err(CliError(format!(
            "peak RSS {peak_rss_mb} MB exceeds the {} MB budget",
            opts.rss_budget_mb
        )));
    }
    if opts.route_speedup_floor > 0.0 && route_speedup < opts.route_speedup_floor {
        return Err(CliError(format!(
            "projected route speedup {route_speedup:.2}x at {par_threads} workers is below \
             the {:.2}x floor (serial {route_serial_s:.2}s vs parallel {route_parallel_s:.2}s)",
            opts.route_speedup_floor
        )));
    }
    println!(
        "scale: {} instances through all {} stages, bit-identical at 1 and {par_threads} threads",
        design.num_instances(),
        STAGES.len()
    );
    Ok(())
}

/// `serve`: a batch of perturbed smoke designs through one flow server.
///
/// Builds `--batch` requests from `ceil(batch/2)` distinct smoke variants
/// (each submitted twice when the batch allows, the repeat at a lower
/// priority so it lands behind its primary), runs them sequentially without
/// a cache as the baseline, then through a `FlowServer` sharing one stage
/// cache, and checks that every server response is bit-identical to its
/// sequential run. At the blessed combination (`--batch 4 --threads 4`,
/// auto worker split) it also requires cross-design cache hits and >= 1.5x
/// throughput over sequential.
fn serve_demo(opts: &Options) -> CliResult {
    let batch = opts.batch;
    let distinct = batch.div_ceil(2);
    let mut requests: Vec<FlowRequest> = Vec::with_capacity(batch);
    for v in 0..distinct {
        let design = generate::switch_fabric(3 + v % 2, 3 + (v / 2) % 2)?;
        let mut cfg = FlowConfig::advanced_2016(Node::N10);
        cfg.seed = 1 + (v / 4) as u64;
        requests.push(FlowRequest::new(design, cfg).with_priority(1));
    }
    // Repeats share their primary's (design, config) exactly, so their flow
    // prefixes replay from the cache entries the primary wrote.
    for v in 0..batch - distinct {
        let primary = requests[v].clone();
        requests.push(FlowRequest::new(primary.design, primary.config).with_priority(0));
    }

    // `--inject INDEX:SPEC[;INDEX:SPEC...]`: deterministic fault plans
    // targeting individual requests of the batch.
    let injected = match &opts.inject {
        None => Vec::new(),
        Some(spec) => parse_indexed_injects(spec, batch)?,
    };
    for (idx, spec) in &injected {
        requests[*idx].config.fault_plan = Some(FaultPlan::parse(spec, 42)?);
        println!("request {idx} runs under fault plan `{spec}`");
    }
    // Keep (design, config) clones of the injected requests for the
    // reproducibility self-check after the batch.
    let injected_checks: Vec<(usize, Netlist, FlowConfig)> = injected
        .iter()
        .map(|(idx, _)| {
            let mut cfg = requests[*idx].config.clone();
            cfg.threads = opts.threads;
            (*idx, requests[*idx].design.clone(), cfg)
        })
        .collect();

    let sc = store_config(opts).unwrap_or_else(|| {
        StoreConfig::at(
            std::env::temp_dir()
                .join(format!("eda_serve_{}", std::process::id()))
                .join("flow.store"),
        )
    });
    println!(
        "=== flow server: {batch} requests ({distinct} distinct designs), store at {} ===",
        sc.path.display()
    );

    // Sequential baseline: each request cold, one after another, with the
    // whole thread budget — what a user without the server would run.
    let t = Instant::now();
    let serial: Vec<eda_core::FlowReport> = requests
        .iter()
        .map(|req| {
            let mut cfg = req.config.clone();
            cfg.threads = opts.threads;
            run_flow(&req.design, &cfg)
                .map_err(|e| CliError(format!("sequential {} failed: {e}", req.design.name())))
        })
        .collect::<Result<_, CliError>>()?;
    let serial_s = t.elapsed().as_secs_f64();

    let server = FlowServer::builder()
        .threads(opts.threads)
        .workers(opts.workers)
        .store(sc)
        .build();
    let report = server.serve(requests);

    println!(
        "{:>3}  {:<10} {:>8} {:>6} {:>6}  outcome",
        "req", "design", "wall_s", "worker", "stolen"
    );
    let mut all_ok = true;
    let mut all_same = true;
    for r in &report.responses {
        let outcome = match &r.outcome {
            Ok(rep) => {
                let same = rep.same_qor(&serial[r.index]);
                all_same &= same;
                if same { "ok, bit-identical to sequential".to_string() } else { "ok, QoR DIVERGED".to_string() }
            }
            Err(e) => {
                all_ok = false;
                format!("failed: {e}")
            }
        };
        println!(
            "{:>3}  {:<10} {:>8.3} {:>6} {:>6}  {outcome}",
            r.index, r.design, r.wall_s, r.worker, r.stolen
        );
    }
    let speedup = serial_s / report.wall_s.max(1e-9);
    println!(
        "sequential {serial_s:.3}s, server {:.3}s ({} workers x {} kernel threads): \
         {speedup:.2}x throughput, {} cross-design cache hits ({:.0}% of stages), {} steals",
        report.wall_s,
        report.workers,
        report.kernel_threads,
        report.cross_design_hits,
        report.cross_hit_rate() * 100.0,
        report.steals
    );
    // Machine-readable rows for scripts/bench_flow.sh and scripts/check.sh.
    println!("SERVLINE batch {batch}");
    println!("SERVLINE distinct {distinct}");
    println!("SERVLINE workers {}", report.workers);
    println!("SERVLINE kernel_threads {}", report.kernel_threads);
    println!("SERVLINE serial_s {serial_s:.6}");
    println!("SERVLINE server_s {:.6}", report.wall_s);
    println!("SERVLINE speedup {speedup:.3}");
    println!("SERVLINE throughput_per_s {:.3}", report.throughput_per_s());
    println!("SERVLINE steals {}", report.steals);
    println!("SERVLINE cross_design_hits {}", report.cross_design_hits);
    println!("SERVLINE cross_hit_rate {:.4}", report.cross_hit_rate());
    println!("SERVLINE failed {}", report.failed());
    println!("SERVLINE same_qor {}", all_same as u32);
    println!("SERVLINE injected {}", injected.len());

    if !all_ok {
        return Err(CliError(format!("{} request(s) failed", report.failed())));
    }
    if !all_same {
        return Err(CliError("server QoR diverged from sequential per-design runs".into()));
    }
    // Reproducibility self-check, as `run --inject` does: a third run of
    // each faulted request must match its sequential baseline bit-for-bit —
    // the injection layer is keyed on (stage, invocation), never wall clock.
    for (idx, design, cfg) in &injected_checks {
        let again = run_flow(design, cfg)
            .map_err(|e| CliError(format!("injected request {idx} replay failed: {e}")))?;
        if !again.same_qor(&serial[*idx]) {
            return Err(CliError(format!(
                "injected request {idx} is not reproducible (QoR drifted between identical runs)"
            )));
        }
    }
    if !injected_checks.is_empty() {
        println!("{} injected request(s) reproduce bit-identically", injected_checks.len());
    }
    // Repeats are guaranteed to land on the same worker as their primary
    // (hence run warm, sequentially after it) only when the primaries deal
    // round-robin without wrapping unevenly; gate the throughput and
    // cache-hit requirements on that combination so odd --batch/--workers
    // explorations still print rows without failing.
    // Fault plans disable the stage cache for their request and add retry
    // work, so the throughput/cache thresholds only apply to clean batches.
    let blessed =
        batch > distinct && distinct.is_multiple_of(report.workers) && injected.is_empty();
    if blessed {
        if report.cross_design_hits == 0 {
            return Err(CliError(
                "expected cross-design cache hits (repeated requests replayed nothing)".into(),
            ));
        }
        if speedup < 1.5 {
            return Err(CliError(format!(
                "server throughput {speedup:.2}x over sequential is below the 1.5x bar"
            )));
        }
        println!(
            "serve: {speedup:.2}x over sequential with {} cross-design cache hits",
            report.cross_design_hits
        );
    } else {
        println!("serve: non-blessed batch/worker combination, thresholds not enforced");
    }
    Ok(())
}

/// Parses `--inject` entries of the form `INDEX:SPEC` (`;`-separated, since
/// SPEC itself may contain commas) into per-request fault specs, validating
/// each SPEC against the fault grammar up front.
fn parse_indexed_injects(spec: &str, batch: usize) -> Result<Vec<(usize, String)>, CliError> {
    let mut out = Vec::new();
    for entry in spec.split(';').map(str::trim).filter(|e| !e.is_empty()) {
        let (idx, plan) = entry.split_once(':').ok_or_else(|| {
            CliError(format!(
                "per-request inject wants INDEX:SPEC (e.g. `2:route=fail@1`), got `{entry}`"
            ))
        })?;
        let idx: usize = idx
            .trim()
            .parse()
            .map_err(|_| CliError(format!("bad request index in `{entry}`")))?;
        if idx >= batch {
            return Err(CliError(format!(
                "inject index {idx} out of range (batch of {batch})"
            )));
        }
        let plan = plan.trim();
        FaultPlan::parse(plan, 42)?;
        out.push((idx, plan.to_string()));
    }
    Ok(out)
}

/// `daemon VERB`: the network-facing flow daemon (DESIGN.md §11).
fn daemon_demo(opts: &Options) -> CliResult {
    let verb = opts.verb.as_deref().ok_or(CliError(
        "daemon needs a verb: serve, submit, ping, or shutdown (see --help)".into(),
    ))?;
    let socket = opts.socket.as_deref().ok_or(CliError(
        "daemon needs --socket PATH (e.g. --socket /tmp/flowd.sock)".into(),
    ))?;
    match verb {
        "serve" => daemon_serve(opts, socket),
        "submit" => daemon_submit(opts, socket),
        "ping" => daemon_ping(socket),
        "query" => daemon_query(opts, socket),
        "shutdown" => daemon_shutdown(socket),
        other => Err(CliError(format!(
            "unknown daemon verb `{other}` (want serve, submit, ping, query, or shutdown)"
        ))),
    }
}

fn print_daemon_stats(stats: &eda_core::DaemonStats) {
    println!("DAEMONLINE accepted {}", stats.accepted);
    println!("DAEMONLINE rejected {}", stats.rejected());
    println!("DAEMONLINE rejected_full {}", stats.rejected_full);
    println!("DAEMONLINE rejected_draining {}", stats.rejected_draining);
    println!("DAEMONLINE rejected_bad {}", stats.rejected_bad);
    println!("DAEMONLINE completed {}", stats.completed);
    println!("DAEMONLINE failed {}", stats.failed);
    println!("DAEMONLINE protocol_errors {}", stats.protocol_errors);
    println!("DAEMONLINE disconnects {}", stats.disconnects);
}

/// `daemon serve`: bind the socket(s) and serve until drained (a `shutdown`
/// frame or SIGTERM), then print lifetime stats and exit 0.
fn daemon_serve(opts: &Options, socket: &str) -> CliResult {
    let mut cfg = DaemonConfig::new(socket);
    cfg.tcp = opts.tcp.clone();
    cfg.workers = if opts.workers == 0 { 2 } else { opts.workers };
    cfg.threads = opts.threads;
    cfg.queue_high_water = opts.queue;
    cfg.store = store_config(opts);
    cfg.handle_sigterm = true;
    let workers = cfg.workers;
    let daemon = Daemon::bind(cfg)?;
    println!(
        "=== flow daemon on {socket} ({workers} workers, queue high water {}) ===",
        opts.queue
    );
    if let Some(addr) = daemon.tcp_addr() {
        println!("tcp endpoint: {addr}");
    }
    // Scripts wait for this marker (and the socket file) before submitting.
    println!("DAEMONLINE ready 1");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = daemon.run()?;
    print_daemon_stats(&stats);
    println!("daemon drained cleanly");
    Ok(())
}

/// `daemon submit`: send `--count` requests over one connection, stream the
/// per-stage events, and print per-request rows plus DAEMONLINE metrics.
/// With `--verify`, every completed request is replayed solo and must match
/// its wire QoR fingerprint bit-for-bit. With `--xfault`, this client
/// sabotages its own transport deterministically (hostile-client mode) and
/// a dropped connection counts as the expected outcome.
fn daemon_submit(opts: &Options, socket: &str) -> CliResult {
    let endpoint = Endpoint::Unix(PathBuf::from(socket));
    let policy = RetryPolicy::default();
    let mut client = DaemonClient::connect_retry(&endpoint, &policy)
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let hostile = opts.xfault.is_some();
    if let Some(spec) = &opts.xfault {
        client = client.with_faults(TransportFaultPlan::parse(spec)?);
    }

    let designs = ["fabric:3x3", "fabric:4x3", "parity:32", "fabric:3x4"];
    let injects = match &opts.inject {
        None => Vec::new(),
        Some(spec) => parse_indexed_injects(spec, opts.count)?,
    };
    let mut specs = Vec::with_capacity(opts.count);
    for i in 0..opts.count {
        let mut spec = SubmitSpec::new((i + 1) as u64, designs[i % designs.len()]);
        spec.deadline_ms = opts.deadline_ms;
        if let Some((_, inj)) = injects.iter().find(|(idx, _)| *idx == i) {
            spec.inject = Some(inj.clone());
        }
        specs.push(spec);
    }

    println!("=== daemon submit: {} request(s) to {socket} ===", opts.count);
    let t = Instant::now();
    let outcomes = match client.drive(&specs) {
        Ok(o) => o,
        Err(e) if hostile => {
            // A sabotaged transport is expected to die; the daemon's health
            // after the abuse is what the scripts check.
            println!("hostile client lost its connection as planned: {e}");
            println!("DAEMONLINE dropped 1");
            return Ok(());
        }
        Err(e) => return Err(CliError(e.to_string())),
    };
    let wall_s = t.elapsed().as_secs_f64();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut rejected_full = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    println!("{:>3}  {:<10} {:>8}  outcome", "req", "design", "lat_s");
    for (spec, out) in specs.iter().zip(&outcomes) {
        accepted += u64::from(out.accepted);
        let text = match &out.terminal {
            Terminal::Done { ok: true, qor_fp, stages, .. } => {
                completed += 1;
                latencies.push(out.latency_s);
                format!(
                    "ok, {stages} stages, qor_fp {}",
                    qor_fp.map_or("?".to_string(), |fp| format!("{fp:016x}"))
                )
            }
            Terminal::Done { ok: false, error, stages, .. } => {
                failed += 1;
                format!(
                    "failed after {stages} stage(s): {}",
                    error.as_deref().unwrap_or("unknown")
                )
            }
            Terminal::Rejected { reason, detail } => {
                rejected += 1;
                rejected_full += u64::from(*reason == RejectReason::QueueFull);
                format!("rejected ({reason}): {detail}")
            }
        };
        println!("{:>3}  {:<10} {:>8.3}  {text}", spec.id, spec.design, out.latency_s);
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = (p * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank.min(latencies.len() - 1)]
    };
    println!("DAEMONLINE submitted {}", opts.count);
    println!("DAEMONLINE client_accepted {accepted}");
    println!("DAEMONLINE client_rejected {rejected}");
    println!("DAEMONLINE client_rejected_full {rejected_full}");
    println!("DAEMONLINE client_completed {completed}");
    println!("DAEMONLINE client_failed {failed}");
    println!("DAEMONLINE wall_s {wall_s:.6}");
    println!("DAEMONLINE throughput_per_s {:.3}", completed as f64 / wall_s.max(1e-9));
    println!("DAEMONLINE p50_s {:.6}", pct(0.50));
    println!("DAEMONLINE p95_s {:.6}", pct(0.95));

    if opts.verify {
        // End-to-end determinism: replay each completed request solo, from
        // the same wire spec, and require the identical QoR fingerprint.
        for (spec, out) in specs.iter().zip(&outcomes) {
            let Some(wire_fp) = out.qor_fp() else { continue };
            let design: DesignSpec = spec.design.parse()?;
            let netlist = design.build()?;
            let cfg = eda_core::flow_config_for(spec, opts.threads.max(1), None, None)?;
            let report = run_flow(&netlist, &cfg)
                .map_err(|e| CliError(format!("solo replay of request {} failed: {e}", spec.id)))?;
            if report.qor_fingerprint() != wire_fp {
                return Err(CliError(format!(
                    "request {} QoR diverged: wire {wire_fp:016x} vs solo {:016x}",
                    spec.id,
                    report.qor_fingerprint()
                )));
            }
        }
        println!("DAEMONLINE verified 1");
        println!("every completed request matches its solo replay bit-for-bit");
    }
    Ok(())
}

/// `daemon query`: QoR provenance history over the wire. The daemon answers
/// from its flow store on the connection's reader thread — no flow worker is
/// occupied, so this works even while the queue is full.
fn daemon_query(opts: &Options, socket: &str) -> CliResult {
    let endpoint = Endpoint::Unix(PathBuf::from(socket));
    let mut client = DaemonClient::connect_retry(&endpoint, &RetryPolicy::default())
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let spec = QuerySpec { design: opts.design.clone(), last: opts.last as u64 };
    let rows = client.query(&spec).map_err(|e| CliError(e.to_string()))?;
    println!(
        "{:>5} {:<14} {:<6} {:>10} {:>6} {:>12} {:>9}",
        "seq", "design", "node", "wns_ps", "ovfl", "hpwl_um", "wall_s"
    );
    for row in &rows {
        println!(
            "{:>5} {:<14} {:<6} {:>10.1} {:>6} {:>12.1} {:>9.3}",
            row.seq, row.design, row.node, row.wns_ps, row.overflow, row.hpwl_um, row.wall_s
        );
    }
    for row in &rows {
        println!(
            "QUERYLINE qor {} {} {} {:016x} {:016x} {:.3} {} {:.3} {:.6} {}",
            row.seq,
            row.design,
            row.node,
            row.cfg_fp,
            row.qor_fp,
            row.wns_ps,
            row.overflow,
            row.hpwl_um,
            row.wall_s,
            row.peak_rss_bytes
        );
    }
    println!("QUERYLINE rows {}", rows.len());
    Ok(())
}

/// `daemon ping`: liveness probe; prints the daemon's lifetime stats.
fn daemon_ping(socket: &str) -> CliResult {
    let endpoint = Endpoint::Unix(PathBuf::from(socket));
    let mut client = DaemonClient::connect_retry(&endpoint, &RetryPolicy::default())
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let stats = client.ping().map_err(|e| CliError(e.to_string()))?;
    print_daemon_stats(&stats);
    Ok(())
}

/// `daemon shutdown`: ask for graceful drain and wait for the final ack.
fn daemon_shutdown(socket: &str) -> CliResult {
    let endpoint = Endpoint::Unix(PathBuf::from(socket));
    let mut client = DaemonClient::connect_retry(&endpoint, &RetryPolicy::default())
        .map_err(|e| CliError(format!("cannot reach daemon at {socket}: {e}")))?;
    let stats = client.shutdown().map_err(|e| CliError(e.to_string()))?;
    println!("DAEMONLINE drained 1");
    print_daemon_stats(&stats);
    Ok(())
}

/// `--inject SPEC`: the supervised flow under a deterministic fault plan.
///
/// Runs the advanced flow at 10nm (so every stage, including decomposition +
/// OPC, is exercised) with the parsed plan, prints the typed outcome of every
/// stage, then repeats the faulted run and checks bit-identical QoR — the
/// injection layer is keyed on `(stage, invocation)`, never on wall clock.
fn inject_demo(spec: &str, threads_arg: usize) -> CliResult {
    let plan = FaultPlan::parse(spec, 42)?;
    println!("=== fault injection: `{spec}` ===");
    let design = generate::switch_fabric(3, 3)?;
    let mut cfg = with_cache(FlowConfig::advanced_2016(Node::N10));
    cfg.threads = threads_arg;
    // `run_flow` ignores the stage cache while a fault plan is active.
    cfg.fault_plan = Some(plan);
    let report = run_flow(&design, &cfg)
        .map_err(|e| CliError(format!("supervised flow did not survive the plan: {e}")))?;
    println!("{:<16} {:>8}  outcome", "stage", "attempts");
    for (stage, status) in &report.stage_status {
        println!("{:<16} {:>8}  {}", stage, status.attempts, status.outcome);
    }
    let again = run_flow(&design, &cfg)
        .map_err(|e| CliError(format!("second faulted run failed: {e}")))?;
    if !report.same_qor(&again) {
        return Err(CliError("faulted run is not reproducible (QoR drifted between two identical runs)".into()));
    }
    println!("faulted run reproduces bit-identically at threads={threads_arg}");
    Ok(())
}

/// `--trace OUT.json`: run the smoke flow once and write its telemetry.
///
/// Emits three files: Chrome-trace JSON at the given path (open in
/// `chrome://tracing` or Perfetto), a flat metrics JSON next to it, and a
/// folded-stack text file for `flamegraph.pl`. With `--inject SPEC` the flow
/// runs under that fault plan, so retries and degradations show up as tagged
/// attempt spans in the trace.
fn trace_demo(path: &str, threads_arg: usize, inject: Option<&str>) -> CliResult {
    let design = generate::switch_fabric(3, 3)?;
    let mut cfg = with_cache(FlowConfig::advanced_2016(Node::N10));
    cfg.threads = threads_arg;
    if let Some(spec) = inject {
        cfg.fault_plan = Some(FaultPlan::parse(spec, 42)?);
    }
    let report = run_flow(&design, &cfg)
        .map_err(|e| CliError(format!("traced flow failed: {e}")))?;
    let tel = &report.telemetry;

    let stem = path.strip_suffix(".json").unwrap_or(path);
    let metrics_path = format!("{stem}.metrics.json");
    let folded_path = format!("{stem}.folded");
    std::fs::write(path, tel.chrome_trace_json())?;
    std::fs::write(&metrics_path, tel.metrics_json())?;
    std::fs::write(&folded_path, tel.folded_stacks())?;

    println!("=== flow trace: {} on {} at {:?} ===", cfg.name, design.name(), cfg.node);
    println!("spans   {:>6}  -> {path} (chrome://tracing / Perfetto)", tel.spans.len());
    println!("metrics {:>6}  -> {metrics_path}", tel.metrics.len());
    println!("stacks          -> {folded_path} (flamegraph.pl)");
    Ok(())
}

fn header(id: &str, claim: &str) {
    println!("=== {} ===", id.to_uppercase());
    println!("claim: {claim}");
}

/// B1 — the format-dualism overhead (UPF/CPF, CCS/ECSM) and its remedy.
fn b1() -> CliResult {
    use eda_logic::{check_equivalence, EcVerdict};
    use eda_netlist::liberty;
    header("b1", "format dualism (UPF/CPF, CCS-ECSM) duplicated IP delivery effort (Rossi)");
    let lib = Library::generic();
    let as_liberty = liberty::write_liberty(&lib);
    let as_clf = liberty::write_clf(&lib);
    let converted = liberty::clf_to_liberty(&as_clf)?;
    println!(
        "deliveries: liberty {} B, clf {} B; clf->liberty conversion identical: {}",
        as_liberty.len(),
        as_clf.len(),
        as_liberty == converted
    );
    let design = generate::alu(4)?;
    let a = synthesize(
        &design,
        liberty::parse_liberty(&as_liberty)?,
        SynthesisEffort::Advanced2016,
        MapGoal::Area,
    )?;
    let b = synthesize(
        &design,
        liberty::parse_clf(&as_clf)?,
        SynthesisEffort::Advanced2016,
        MapGoal::Area,
    )?;
    let ec = check_equivalence(&design, &a.netlist, &[], &[], 1 << 20)?;
    println!(
        "same QoR from either delivery ({:.1} vs {:.1} um2); formal EC: {}",
        a.area_um2,
        b.area_um2,
        matches!(ec, EcVerdict::Equivalent)
    );
    Ok(())
}

/// B2 — decomposition clears printability hotspots.
fn b2() -> CliResult {
    use eda_litho::{decompose, find_hotspots, find_hotspots_per_mask, Hotspot, HotspotConfig, Rect};
    header("b2", "multi-patterning makes sub-pitch layouts printable (Domic/Sawicki, C4+C15)");
    let model = OpticalModel::default();
    let mut layout = Layout::new();
    for i in 0..8 {
        let x = i as f64 * 50.0;
        layout.features.push(Rect::new(x, 0.0, x + 34.0, 2000.0));
    }
    let single = find_hotspots(&layout, &model, &HotspotConfig::default());
    let bridges =
        single.iter().filter(|h| matches!(h, Hotspot::Bridge { .. })).count();
    let deco = decompose(&layout, 2, eda_tech::SINGLE_EXPOSURE_PITCH_NM, 0);
    let after: usize = find_hotspots_per_mask(&deco, &model, &HotspotConfig::default())
        .iter()
        .flatten()
        .filter(|h| matches!(h, Hotspot::Bridge { .. }))
        .count();
    println!(
        "34nm lines / 16nm spaces: {bridges} bridge hotspots single-exposure -> {after} after double patterning ({} masks, legal={})",
        deco.masks, deco.legal
    );
    Ok(())
}

/// C1 — integration capacity: two orders of magnitude in a decade.
fn c1() -> CliResult {
    header("c1", "integration capacity +2 orders of magnitude, 90nm (2006) -> 10nm (2016)");
    println!("{:>7} {:>10} {:>12}", "node", "MTr/mm2", "capacity");
    for node in
        [Node::N90, Node::N65, Node::N45, Node::N32, Node::N28, Node::N20, Node::N14, Node::N10]
    {
        println!(
            "{:>7} {:>10.2} {:>11.0}M",
            node.to_string(),
            node.spec().density_mtr_per_mm2,
            node.integration_capacity()
        );
    }
    let growth = Node::N10.integration_capacity() / Node::N90.integration_capacity();
    println!("measured: {growth:.0}x  (paper: \"two orders of magnitude\")");
    Ok(())
}

/// C2 — functionality-enhanced devices favour XOR-rich logic.
fn c2() -> CliResult {
    header("c2", "controlled-polarity SiNW/CNT devices need new logic abstractions (De Micheli)");
    let designs: Vec<(&str, Netlist)> = vec![
        ("parity16", generate::parity_tree(16)?),
        ("adder8", generate::ripple_carry_adder(8)?),
        ("comparator8", generate::equality_comparator(8)?),
        (
            "random",
            generate::random_logic(generate::RandomLogicConfig {
                gates: 300,
                seed: 2,
                ..Default::default()
            })?,
        ),
    ];
    println!("{:>12} {:>12} {:>14} {:>8}", "design", "CMOS um2", "polarity um2", "gain");
    for (name, d) in &designs {
        let cmos =
            synthesize(d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)?;
        let pol = synthesize(
            d,
            Library::controlled_polarity(),
            SynthesisEffort::Advanced2016,
            MapGoal::Area,
        )?;
        println!(
            "{:>12} {:>12.1} {:>14.1} {:>7.1}%",
            name,
            cmos.area_um2,
            pol.area_um2,
            100.0 * (1.0 - pol.area_um2 / cmos.area_um2)
        );
    }
    println!("shape: XOR-rich functions gain most on polarity devices");
    Ok(())
}

/// C3 — a decade of synthesis: ~30% area (and perf, power) improvement.
fn c3() -> CliResult {
    header("c3", "advanced RTL synthesis improved area ~30% in ten years (Domic)");
    let designs: Vec<(&str, Netlist)> = vec![
        ("adder16", generate::ripple_carry_adder(16)?),
        ("mult4", generate::array_multiplier(4)?),
        ("parity32", generate::parity_tree(32)?),
        (
            "rand500",
            generate::random_logic(generate::RandomLogicConfig {
                gates: 500,
                seed: 7,
                ..Default::default()
            })?,
        ),
        ("fabric", generate::switch_fabric(4, 4)?),
    ];
    println!(
        "{:>9} {:>11} {:>11} {:>7} {:>9} {:>9} {:>7}",
        "design", "2006 um2", "2016 um2", "area", "2006 ps", "2016 ps", "perf"
    );
    let (mut a06, mut a16, mut p06, mut p16, mut w06, mut w16) = (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    for (name, d) in &designs {
        let base = synthesize(
            d,
            Library::nand_inv_2006(),
            SynthesisEffort::Baseline2006,
            MapGoal::Area,
        )?;
        let adv =
            synthesize(d, Library::generic(), SynthesisEffort::Advanced2016, MapGoal::Area)?;
        let tb = TimingAnalysis::run(&base.netlist, &TimingConfig::default())?;
        let ta = TimingAnalysis::run(&adv.netlist, &TimingConfig::default())?;
        let act = ActivityConfig::default();
        let pb = analyze(
            &base.netlist,
            &Activity::estimate(&base.netlist, &act)?,
            &PowerConfig::default(),
        );
        let pa = analyze(
            &adv.netlist,
            &Activity::estimate(&adv.netlist, &act)?,
            &PowerConfig::default(),
        );
        println!(
            "{:>9} {:>11.0} {:>11.0} {:>6.1}% {:>9.0} {:>9.0} {:>6.1}%",
            name,
            base.area_um2,
            adv.area_um2,
            100.0 * (1.0 - adv.area_um2 / base.area_um2),
            tb.critical_path_ps,
            ta.critical_path_ps,
            100.0 * (1.0 - ta.critical_path_ps / tb.critical_path_ps),
        );
        a06 += base.area_um2;
        a16 += adv.area_um2;
        p06 += tb.critical_path_ps;
        p16 += ta.critical_path_ps;
        w06 += pb.total_mw();
        w16 += pa.total_mw();
    }
    println!(
        "suite: area -{:.1}%, delay -{:.1}%, power -{:.1}%   (paper: ~30% each)",
        100.0 * (1.0 - a16 / a06),
        100.0 * (1.0 - p16 / p06),
        100.0 * (1.0 - w16 / w06)
    );
    Ok(())
}

/// C4 — the multi-patterning ladder.
fn c4() -> CliResult {
    header(
        "c4",
        "80nm single-exposure pitch floor; double/triple/quad from 20nm; octuple at 5nm (Domic)",
    );
    println!("{:>7} {:>10} {:>15} {:>15}", "node", "pitch nm", "model masks", "measured masks");
    for node in [Node::N28, Node::N22, Node::N20, Node::N14, Node::N10, Node::N7, Node::N5] {
        let plan = PatterningPlan::for_node(node);
        // Empirical: colour a dense line array at the node pitch.
        let layout = Layout::line_array(14, node.spec().metal_pitch_nm, 3000.0);
        let measured = required_masks(&layout, eda_tech::SINGLE_EXPOSURE_PITCH_NM);
        println!(
            "{:>7} {:>10.0} {:>6} ({:>8}) {:>13}",
            node.to_string(),
            node.spec().metal_pitch_nm,
            plan.total_exposures(),
            plan.scheme().to_string(),
            measured
        );
    }
    println!("shape: measured line-mask count matches the model's line-multiplicity term");
    Ok(())
}

/// C5 — routers: line search vs maze, and the 6->4 layer cost lever.
fn c5() -> CliResult {
    header(
        "c5",
        "line-search routers win under simpler rules; 6->4 layers slashes 15-20% cost (Domic)",
    );
    let d = generate::random_logic(generate::RandomLogicConfig {
        gates: 500,
        seed: 9,
        ..Default::default()
    })?;
    let die = Die::for_netlist(&d, 0.7);
    let placement = place_global(&d, die, &GlobalConfig::default());
    println!(
        "{:>11} {:>10} {:>8} {:>10} {:>10} {:>9}",
        "algorithm", "wl", "vias", "overflow", "expanded", "sec"
    );
    for alg in [RouteAlgorithm::LeeBfs, RouteAlgorithm::AStar, RouteAlgorithm::LineSearch] {
        let out = route(
            &d,
            &placement,
            &RouteConfig { algorithm: alg, grid_cells: 48, threads: threads(), ..Default::default() },
        );
        println!(
            "{:>11} {:>10} {:>8} {:>10} {:>10} {:>9.3}",
            format!("{alg:?}"),
            out.wirelength,
            out.vias,
            out.overflow,
            out.cells_expanded,
            out.seconds
        );
    }
    // Layer reduction: a lighter A&M/S-class digital block at 130nm. The
    // question is which router still closes as layers come off.
    let amsd = generate::random_logic(generate::RandomLogicConfig {
        gates: 250,
        seed: 4,
        ..Default::default()
    })?;
    let ams_die = Die::for_netlist(&amsd, 0.7);
    let ams_place = place_global(&amsd, ams_die, &GlobalConfig::default());
    println!("\nlayer sweep (baseline vs negotiated) with the 130nm cost model:");
    let m = CostModel::new(Node::N130);
    println!(
        "{:>7} {:>14} {:>14} {:>13} {:>9}",
        "layers", "Lee overflow", "A* overflow", "wafer cost $", "vs 6L"
    );
    let mut min_clean = None;
    for layers in [6u32, 5, 4, 3] {
        let lee = layer_sweep(&amsd, &ams_place, [layers], RouteAlgorithm::LeeBfs)
            .pop()
            .ok_or(CliError("layer_sweep returned no entry".into()))?
            .1;
        let adv = layer_sweep(&amsd, &ams_place, [layers], RouteAlgorithm::AStar)
            .pop()
            .ok_or(CliError("layer_sweep returned no entry".into()))?
            .1;
        if adv.overflow == 0 {
            min_clean = Some(layers);
        }
        let cost = m.wafer_cost_with_layers(layers);
        println!(
            "{:>7} {:>14} {:>14} {:>13.0} {:>8.1}%",
            layers,
            lee.overflow,
            adv.overflow,
            cost,
            100.0 * (1.0 - cost / m.wafer_cost_with_layers(6))
        );
    }
    match min_clean {
        Some(l) if l <= 4 => println!(
            "measured: the negotiated router closes at {l} layers ({:.1}% cheaper than 6L)",
            100.0 * (1.0 - m.wafer_cost_with_layers(l) / m.wafer_cost_with_layers(6))
        ),
        _ => println!("measured: this block needs more than 4 layers at this utilization"),
    }
    Ok(())
}

/// C6 — power: the static crossover and design-for-power vs dark silicon.
fn c6() -> CliResult {
    header(
        "c6",
        "voltage scaling from 130nm; static overtakes dynamic at 90/65; techniques prevent dark silicon (Domic)",
    );
    let d = generate::switch_fabric(4, 4)?;
    let act = Activity::estimate(&d, &ActivityConfig::default())?;
    println!("{:>7} {:>12} {:>12} {:>10}", "node", "dynamic mW", "static mW", "static %");
    for row in node_power_sweep(&d, &act, 200.0) {
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>9.1}%",
            row.node.to_string(),
            row.dynamic_mw,
            row.leakage_mw,
            100.0 * row.leakage_mw / (row.dynamic_mw + row.leakage_mw)
        );
    }
    println!("\ndark silicon (80mm2 die, 3W budget, 500MHz):");
    println!("{:>7} {:>12} {:>16}", "node", "naive usable", "with techniques");
    for row in dark_silicon_sweep(80.0, 3.0, 500.0) {
        println!(
            "{:>7} {:>11.0}% {:>15.0}%",
            row.node.to_string(),
            100.0 * row.usable_naive,
            100.0 * row.usable_with_techniques
        );
    }
    Ok(())
}

/// C7 — flat vs hierarchical implementation: buffering.
fn c7() -> CliResult {
    header("c7", "flat implementation saves area & power through less buffering (Domic)");
    let d = generate::hierarchical_design(4, 150, 11)?;
    let die = Die::for_netlist(&d, 0.5);
    let hier = place_hierarchical(&d, die, 3);
    let mut flat = hier.placement.clone();
    anneal(&d, &mut flat, &AnnealConfig::default(), None, None);
    let max_len = die.width_um / 4.0;
    let flat_plan = plan_buffers(&d, &flat, max_len, &[]);
    let forced: Vec<(usize, u32)> = hier.crossing_nets.iter().map(|&i| (i, 2)).collect();
    let hier_plan = plan_buffers(&d, &hier.placement, max_len, &forced);
    println!("{:>14} {:>10} {:>12} {:>12}", "flow", "buffers", "buf um2", "leak nW");
    println!(
        "{:>14} {:>10} {:>12.1} {:>12.1}",
        "hierarchical", hier_plan.total, hier_plan.added_area_um2, hier_plan.added_leakage_nw
    );
    println!(
        "{:>14} {:>10} {:>12.1} {:>12.1}",
        "flat", flat_plan.total, flat_plan.added_area_um2, flat_plan.added_leakage_nw
    );
    println!(
        "measured: flat saves {:.0}% of buffers ({} boundary-crossing nets)",
        100.0 * (1.0 - flat_plan.total as f64 / hier_plan.total.max(1) as f64),
        hier.crossing_nets.len()
    );
    Ok(())
}

/// C8 — design-start distribution.
fn c8() -> CliResult {
    header("c8", ">90% of design starts at 32/28nm and above; 180nm >25% (Domic)");
    let m = DesignStartModel::year_2016();
    println!("{:>7} {:>9}", "node", "share");
    for &(node, share) in m.rows() {
        println!("{:>7} {:>8.1}%", node.to_string(), share * 100.0);
    }
    println!(
        "at/above 32/28nm: {:.0}%   most designed: {} ({:.0}%)",
        100.0 * m.share_at_or_above(Node::N28),
        m.most_designed(),
        100.0 * m.share(m.most_designed())
    );
    Ok(())
}

/// C9 — multicore P&R throughput, and the deterministic parallel kernels.
fn c9() -> CliResult {
    use eda_dft::{fault_sim_threaded, random_patterns};
    use eda_litho::run_opc_stats;
    use eda_route::route_stats;

    header("c9", "P&R throughput ~1M instances/day on multicore farms (Rossi)");
    // Scale-tier mesh, not the old 3k-gate random design: per-stripe refine
    // passes at this size run well past the 1 µs clock floor, so the
    // projected speedups are measurement, not noise.
    let d = generate::scale_mesh(20_000, 5)?;
    let die = Die::for_netlist(&d, 0.7);
    println!("design: {} instances", d.num_instances());
    println!(
        "{:>8} {:>12} {:>14} {:>16} {:>10}",
        "threads", "core-sec", "inst/sec", "inst/day", "hpwl"
    );
    // Projected timing: every kernel measures each worker's busy time and
    // takes the per-dispatch maximum, i.e. the wall clock a real multicore
    // farm would see (this host may have fewer cores than workers). The
    // stripe partition is fixed at 8, so the placement itself is identical
    // on every row — only the worker count changes.
    let refined = (d.num_instances() * 2) as f64;
    let mut t1 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let out = place_parallel(
            &d,
            die,
            &ParallelConfig { threads, stripes: 8, moves_per_cell: 20, passes: 2, seed: 3 },
        );
        if threads == 1 {
            t1 = out.projected_refine_seconds;
        }
        let ips = out.projected_instances_per_second(refined);
        println!(
            "{:>8} {:>12.2} {:>14.0} {:>16.2e} {:>10.0}  (speedup {:.2}x)",
            threads,
            out.projected_refine_seconds,
            ips,
            ips * 86_400.0,
            out.hpwl_final,
            t1 / out.projected_refine_seconds
        );
    }
    println!("shape: throughput scales with cores; absolute numbers reflect the simulator substrate");

    // Per-kernel scaling of the other deterministic parallel kernels: the
    // same work dispatched at 1/2/4/8 workers, with bit-identical outputs.
    println!("\nper-kernel scaling (projected wall from per-worker CPU clocks):");
    println!("{:>10} {:>8} {:>12} {:>9} {:>18}", "kernel", "threads", "proj wall s", "speedup", "output");

    // Fault simulation: collapsed fault list partitioned across workers.
    let dft_design = generate::random_logic(generate::RandomLogicConfig {
        gates: 600,
        seed: 8,
        ..Default::default()
    })?;
    let view = CombView::new(&dft_design)?;
    let faults = fault_list(&dft_design);
    let pats = random_patterns(&view, 128, 4);
    let mut wall1 = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let (out, stats) = fault_sim_threaded(&dft_design, &view, &faults, &pats, threads);
        let wall = stats.projected_wall_s();
        if threads == 1 {
            wall1 = wall;
        }
        println!(
            "{:>10} {:>8} {:>12.3} {:>8.2}x {:>17}",
            "fault-sim",
            threads,
            wall,
            wall1 / wall,
            format!("{}/{} detected", out.num_detected, out.total)
        );
    }

    // OPC: row-chunked convolution + per-fragment correction.
    let model = OpticalModel::default();
    let pitch = 110.0;
    let lines = 24;
    let target: Vec<(f64, f64)> = (0..lines)
        .map(|i| {
            let x = 300.0 + i as f64 * pitch;
            (x, x + pitch / 2.0)
        })
        .collect();
    let extent = 600.0 + pitch * lines as f64;
    for threads in [1usize, 2, 4, 8] {
        let cfg = OpcConfig { threads, ..Default::default() };
        let (out, stats) = run_opc_stats(&model, &target, extent, &cfg);
        let wall = stats.projected_wall_s();
        if threads == 1 {
            wall1 = wall;
        }
        println!(
            "{:>10} {:>8} {:>12.3} {:>8.2}x {:>17}",
            "opc",
            threads,
            wall,
            wall1 / wall,
            format!("{:.2}nm rms epe", out.final_rms_epe())
        );
    }

    // Routing: bbox-disjoint nets batched across workers (rip-up serial).
    let route_design = generate::random_logic(generate::RandomLogicConfig {
        gates: 800,
        seed: 9,
        ..Default::default()
    })?;
    let rdie = Die::for_netlist(&route_design, 0.7);
    let rplace = place_global(&route_design, rdie, &GlobalConfig::default());
    for threads in [1usize, 2, 4, 8] {
        let cfg = RouteConfig { grid_cells: 48, threads, ..Default::default() };
        let (out, stats) = route_stats(&route_design, &rplace, &cfg);
        let wall = stats.projected_wall_s();
        if threads == 1 {
            wall1 = wall;
        }
        println!(
            "{:>10} {:>8} {:>12.3} {:>8.2}x {:>17}",
            "route",
            threads,
            wall,
            wall1 / wall,
            format!("wl {} ovfl {}", out.wirelength, out.overflow)
        );
    }
    println!("every row's QoR output is bit-identical across thread counts (eda-par contract)");
    Ok(())
}

/// C10 — scan-chain reordering during implementation.
fn c10() -> CliResult {
    header("c10", "scan reordering during implementation relieves congestion/wirelength (Rossi)");
    println!(
        "{:>10} {:>12} {:>12} {:>8} {:>12}",
        "design", "fe-order um", "reorder um", "gain", "peak demand"
    );
    for (name, d) in [
        ("fabric8", generate::switch_fabric(8, 4)?),
        (
            "rand",
            generate::random_logic(generate::RandomLogicConfig {
                gates: 600,
                flop_fraction: 0.25,
                seed: 8,
                ..Default::default()
            })?,
        ),
    ] {
        let s = insert_scan(&d, 2)?;
        let die = Die::for_netlist(&s.netlist, 0.7);
        let p = place_global(&s.netlist, die, &GlobalConfig::default());
        let before = scan_wirelength(&s.chains, &p);
        let reordered = reorder_chains(&s.chains, &p);
        let after = scan_wirelength(&reordered, &p);
        let cong = CongestionMap::build(&s.netlist, &p, 8, 1e9);
        println!(
            "{:>10} {:>12.0} {:>12.0} {:>7.0}% {:>12.0}",
            name,
            before,
            after,
            100.0 * (1.0 - after / before),
            cong.max_demand()
        );
    }
    Ok(())
}

/// C11 — the self-learning implementation engine.
fn c11() -> CliResult {
    header("c11", "a built-in self-learning engine exploiting previous runs (Rossi)");
    let d = generate::random_logic(generate::RandomLogicConfig {
        gates: 300,
        seed: 21,
        ..Default::default()
    })?;
    let mut base_cfg = with_cache(FlowConfig::advanced_2016(Node::N28));
    base_cfg.threads = threads();
    let mut tuner = FlowTuner::new(7);
    println!("{:>5} {:>10} {:>12} {:>12}", "run", "arm", "score", "best-so-far");
    let mut best = f64::INFINITY;
    for run in 0..10 {
        let i = tuner.suggest();
        let arm: Arm = tuner.arms()[i].clone();
        let cfg = arm.apply(&base_cfg);
        let report = run_flow(&d, &cfg)?;
        let score = report.score();
        tuner.record(i, score);
        best = best.min(score);
        println!("{:>5} {:>10} {:>12.1} {:>12.1}", run + 1, arm.name, score, best);
    }
    let learned = &tuner.arms()[tuner.best_arm()];
    println!("learned arm: `{}` — subsequent runs start from the best-known recipe", learned.name);
    Ok(())
}

/// C12 — networking activity, hot spots, automatic decap.
fn c12() -> CliResult {
    header(
        "c12",
        "networking ASICs at >5x switching activity need automatic hot-spot/decap handling (Rossi)",
    );
    let d = generate::switch_fabric(8, 4)?;
    let die = Die::for_netlist(&d, 0.7);
    let p = place_global(&d, die, &GlobalConfig::default());
    let base = Activity::estimate(&d, &ActivityConfig::default())?;
    let pcfg = PowerConfig { node: Node::N28, freq_mhz: 1000.0, ..Default::default() };
    let limit = {
        let g1 = PowerGrid::build(&d, &p, &base, &pcfg, 8);
        g1.peak_droop(Node::N28) * 1.2
    };
    println!("{:>10} {:>12} {:>10} {:>9} {:>8}", "activity", "power mW", "hotspots", "decaps", "after");
    for factor in [1.0, 3.0, 5.0, 8.0] {
        let act = base.scaled(factor);
        let power = analyze(&d, &act, &pcfg);
        let mut grid = PowerGrid::build(&d, &p, &act, &pcfg, 8);
        let before = grid.hotspots(Node::N28, limit).len();
        let out = insert_decaps(&d, &mut grid, Node::N28, limit)?;
        println!(
            "{:>9.0}x {:>12.2} {:>10} {:>9} {:>8}",
            factor,
            power.total_mw(),
            before,
            out.decaps_inserted,
            out.hotspots_after
        );
    }
    Ok(())
}

/// C13 — holistic co-design vs sequential ad-hoc.
fn c13() -> CliResult {
    header("c13", "holistic smart-system co-design beats separate ad-hoc flows (Macii)");
    let seq = sequential_flow();
    let co = codesign_flow();
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "flow", "$ / unit", "mm2", "battery d", "TTM wks", "score"
    );
    for (name, f) in [("sequential", seq), ("codesign", co)] {
        println!(
            "{:>12} {:>10.2} {:>10.0} {:>12.0} {:>10.0} {:>8.1}",
            name,
            f.metrics.unit_cost_usd,
            f.metrics.footprint_mm2,
            f.metrics.battery_life_days,
            f.metrics.time_to_market_weeks,
            f.metrics.score()
        );
    }
    Ok(())
}

/// C14 — test compression retargeted at low-pin-count test.
fn c14() -> CliResult {
    header(
        "c14",
        "high-compression DFT retargets to low-pin-count test -> cheaper packages (Sawicki)",
    );
    let d = generate::switch_fabric(4, 4)?;
    let view = CombView::new(&d)?;
    let faults = fault_list(&d);
    let flops = d.flops().len();
    println!("{:>6} {:>8} {:>11} {:>12} {:>12}", "pins", "chains", "coverage", "test ms", "ratio");
    for (pins, chains) in [(16usize, 16usize), (8, 16), (4, 16), (2, 16), (2, 32)] {
        let access = TestAccess { scan_pins: pins, internal_chains: chains, flops, shift_mhz: 50.0 };
        let out = compressed_fault_sim(&d, &view, &faults, &access, 256, 5);
        println!(
            "{:>6} {:>8} {:>10.1}% {:>12.3} {:>11.1}x",
            pins,
            chains,
            100.0 * out.coverage,
            1e3 * out.test_time_s,
            access.compression_ratio()
        );
    }
    let bypass = bypass_fault_sim(
        &d,
        &view,
        &faults,
        &TestAccess { scan_pins: 2, internal_chains: 2, flops, shift_mhz: 50.0 },
        256,
        5,
    );
    println!(
        "bypass (2 pins, no compression): coverage {:.1}%, test {:.3} ms",
        100.0 * bypass.coverage,
        1e3 * bypass.test_time_s
    );
    let atpg = run_atpg(&d, &view, &faults, &AtpgConfig::default());
    println!(
        "ATPG reference coverage: {:.1}% with {} patterns",
        100.0 * atpg.coverage,
        atpg.patterns.len()
    );
    Ok(())
}

/// C15 — computational lithography: OPC vs feature size.
fn c15() -> CliResult {
    header("c15", "computational lithography (OPC) enables scaling without EUV (Sawicki)");
    let model = OpticalModel::default();
    println!("{:>10} {:>12} {:>12} {:>12}", "pitch nm", "no-OPC EPE", "OPC EPE", "iterations");
    for pitch in [160.0, 120.0, 100.0, 90.0, 80.0, 64.0] {
        let lines = 8;
        let offset = 300.0;
        let target: Vec<(f64, f64)> = (0..lines)
            .map(|i| {
                let x = offset + i as f64 * pitch;
                (x, x + pitch / 2.0)
            })
            .collect();
        let extent = offset * 2.0 + pitch * lines as f64;
        let cfg = OpcConfig { threads: threads(), ..Default::default() };
        let out = run_opc(&model, &target, extent, &cfg);
        println!(
            "{:>10.0} {:>12.2} {:>12.2} {:>12}",
            pitch,
            out.rms_epe_history[0],
            out.final_rms_epe(),
            cfg.iterations
        );
    }
    println!("shape: OPC recovers EPE down to the single-exposure pitch, then multi-patterning must take over (C4)");
    println!(
        "grating contrast: 120nm {:.2}, 80nm {:.2}, 50nm {:.2}",
        model.grating_contrast(120.0),
        model.grating_contrast(80.0),
        model.grating_contrast(50.0)
    );
    Ok(())
}

/// C16 — IoT node selection and energy autonomy.
fn c16() -> CliResult {
    header(
        "c16",
        "IoT leverages established-node variants; energy autonomy is the constraint (Sawicki)",
    );
    let duty = DutyCycle::new(0.01, 0.002);
    println!("{:>7} {:>10} {:>12} {:>8} {:>9}", "node", "MCU $", "battery d", "perf", "merit");
    let points = node_selection_sweep(&duty, 800.0, 0.0);
    for p in &points {
        println!(
            "{:>7} {:>10.2} {:>12.0} {:>8.1} {:>9.1}",
            p.node.to_string(),
            p.mcu_cost_usd,
            p.battery_life_days,
            p.performance,
            p.merit
        );
    }
    let best = best_iot_node(&points);
    println!("best IoT merit: {best} (established: {})", best.is_established());
    Ok(())
}
