//! Deterministic parallel execution for the eda workspace.
//!
//! Every hot kernel in the flow — fault simulation, OPC, routing, the
//! partitioned placer, the experiments harness — funnels its parallelism
//! through this crate so that one `threads` knob controls the whole flow and
//! every kernel is **bit-identical for any thread count**.
//!
//! The determinism contract rests on two rules:
//!
//! 1. **Chunk boundaries are a function of the input only.** Work is split
//!    into fixed-size chunks whose size never depends on the thread count;
//!    workers take chunks round-robin (worker `w` gets chunks `w`, `w + K`,
//!    `w + 2K`, …), and which worker computes a chunk cannot affect its
//!    result.
//! 2. **Reductions run in input order.** Chunk results are reassembled (or
//!    folded) sequentially by chunk index, so floating-point reduction trees
//!    are identical at `threads = 1` and `threads = N`.
//!
//! Per DESIGN.md §3 the layer is built directly on [`std::thread::scope`] —
//! no rayon, no extra runtime. Each dispatch also records per-worker CPU time
//! ([`ParStats`]) so oversubscribed hosts (this workspace is developed on a
//! single-core machine) can report the wall clock a real multicore farm
//! would observe — the same convention the C9 placer established.

use std::ops::Range;
use std::sync::Mutex;
use std::time::Instant;

/// Number of hardware threads available to this process.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a user-facing `threads` knob: `0` means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_threads()
    } else {
        requested
    }
}

/// CPU time consumed by the calling thread, in seconds.
pub fn thread_cpu_seconds() -> f64 {
    let mut ts = libc::timespec { tv_sec: 0, tv_nsec: 0 };
    // SAFETY: clock_gettime with a valid clock id and out-pointer.
    unsafe {
        libc::clock_gettime(libc::CLOCK_THREAD_CPUTIME_ID, &mut ts);
    }
    ts.tv_sec as f64 + ts.tv_nsec as f64 * 1e-9
}

/// Execution record of one parallel dispatch.
///
/// `chunks` is a pure function of the input size, so it is identical at any
/// thread count; `threads`, `wall_s`, and `busy_s` describe how this host
/// happened to execute the dispatch. The flow's telemetry layer
/// (`eda_core::telemetry`) records each dispatch as a kernel span along the
/// same split: the chunk count lands in the deterministic section, the
/// worker timings in the wall section.
#[derive(Debug, Clone, PartialEq)]
pub struct ParStats {
    /// Workers actually spawned.
    pub threads: usize,
    /// Chunks processed.
    pub chunks: usize,
    /// Wall-clock seconds for the dispatch on this host.
    pub wall_s: f64,
    /// Per-worker busy CPU seconds (`CLOCK_THREAD_CPUTIME_ID`).
    pub busy_s: Vec<f64>,
}

impl ParStats {
    /// An empty record, ready to [`absorb`](Self::absorb) dispatches.
    pub fn empty() -> ParStats {
        ParStats { threads: 1, chunks: 0, wall_s: 0.0, busy_s: Vec::new() }
    }

    /// Accumulates another dispatch's record into this one — for kernels that
    /// issue many dispatches per run (e.g. one per OPC iteration). Wall time
    /// adds; per-worker busy time adds slot-wise, so the projected wall of
    /// the combined record is the sum of the busiest workers.
    pub fn absorb(&mut self, other: &ParStats) {
        self.threads = self.threads.max(other.threads);
        self.chunks += other.chunks;
        self.wall_s += other.wall_s;
        if self.busy_s.len() < other.busy_s.len() {
            self.busy_s.resize(other.busy_s.len(), 0.0);
        }
        for (a, b) in self.busy_s.iter_mut().zip(&other.busy_s) {
            *a += b;
        }
    }

    /// Total CPU seconds burned across workers — the serial-equivalent cost.
    pub fn total_cpu_s(&self) -> f64 {
        self.busy_s.iter().sum()
    }

    /// Wall clock a host with one dedicated core per worker would observe:
    /// the busiest worker's CPU time.
    pub fn projected_wall_s(&self) -> f64 {
        self.busy_s.iter().cloned().fold(0.0, f64::max).max(1e-12)
    }

    /// Projected speedup over running the same work serially.
    pub fn projected_speedup(&self) -> f64 {
        self.total_cpu_s() / self.projected_wall_s()
    }

    /// [`projected_speedup`](Self::projected_speedup) clamped to what the
    /// measured wall clocks can actually support.
    ///
    /// On tiny dispatches the per-thread CPU clock under-ticks: workers
    /// finish below the clock's resolution, the busiest-worker denominator
    /// collapses toward the `1e-12` floor, and the raw ratio reports
    /// super-unity per-worker speedups that no hardware produced (the
    /// placer artifact at 8+ workers on tiny designs). Two bounds restore
    /// physical meaning:
    ///
    /// * a dispatch over `threads` workers cannot beat `threads`× — the
    ///   per-worker speedup is capped at 1;
    /// * when the busiest worker burned less CPU than the clock can
    ///   credibly resolve (`< 1 µs`), the measurement carries no evidence
    ///   of parallel speedup at all, so the projection falls back to 1.0.
    pub fn bounded_speedup(&self) -> f64 {
        const MIN_MEASURABLE_BUSY_S: f64 = 1e-6;
        if self.projected_wall_s() < MIN_MEASURABLE_BUSY_S {
            return 1.0;
        }
        self.projected_speedup().clamp(1.0, self.threads.max(1) as f64)
    }
}

/// Picks a chunk size from the input length alone (never the thread count),
/// aiming for enough chunks to balance load while keeping per-chunk overhead
/// negligible.
pub fn default_chunk(len: usize) -> usize {
    // ~64 chunks across the input, at least 1 item each.
    (len / 64).max(1)
}

/// Splits `len` items into contiguous chunks of `chunk` items (the last may
/// be short). The partition depends only on `len` and `chunk`.
pub fn chunk_ranges(len: usize, chunk: usize) -> Vec<Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    (0..len.div_ceil(chunk))
        .map(|c| c * chunk..((c + 1) * chunk).min(len))
        .collect()
}

/// Applies `f` to every fixed-size chunk of `0..len`, returning the chunk
/// results **in chunk order** together with execution stats.
///
/// This is the layer's core primitive: `f` sees a contiguous index range and
/// must depend only on that range (plus captured shared state), never on
/// which worker runs it. Chunks are assigned round-robin so each worker's
/// measured busy time reflects its share of the work even when the host has
/// fewer cores than workers (dynamic stealing would let one time-sliced
/// worker drain a short dispatch and skew the projection).
pub fn par_chunks_stats<R, F>(
    threads: usize,
    len: usize,
    chunk: usize,
    f: F,
) -> (Vec<R>, ParStats)
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, chunk);
    let workers = resolve_threads(threads).min(ranges.len()).max(1);
    let t0 = Instant::now();

    if workers == 1 || ranges.len() == 1 {
        // Serial fast path: same chunking, same order, no thread overhead.
        let busy0 = thread_cpu_seconds();
        let out: Vec<R> = ranges.iter().cloned().map(&f).collect();
        let stats = ParStats {
            threads: 1,
            chunks: out.len(),
            wall_s: t0.elapsed().as_secs_f64(),
            busy_s: vec![thread_cpu_seconds() - busy0],
        };
        return (out, stats);
    }

    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(ranges.len()));
    let busy: Mutex<Vec<f64>> = Mutex::new(vec![0.0; workers]);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (f, ranges, results, busy) = (&f, &ranges, &results, &busy);
            scope.spawn(move || {
                let b0 = thread_cpu_seconds();
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut c = w;
                while c < ranges.len() {
                    local.push((c, f(ranges[c].clone())));
                    c += workers;
                }
                let spent = thread_cpu_seconds() - b0;
                results.lock().expect("no poisoned worker").extend(local);
                busy.lock().expect("no poisoned worker")[w] = spent;
            });
        }
    });

    let mut tagged = results.into_inner().expect("workers joined");
    tagged.sort_unstable_by_key(|&(c, _)| c);
    let out: Vec<R> = tagged.into_iter().map(|(_, r)| r).collect();
    let stats = ParStats {
        threads: workers,
        chunks: out.len(),
        wall_s: t0.elapsed().as_secs_f64(),
        busy_s: busy.into_inner().expect("workers joined"),
    };
    (out, stats)
}

/// [`par_chunks_stats`] without the stats.
pub fn par_chunks<R, F>(threads: usize, len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    par_chunks_stats(threads, len, chunk, f).0
}

/// Parallel map over a slice: `out[i] == f(i, &items[i])` for every `i`,
/// in input order, for any thread count.
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_stats(threads, items, f).0
}

/// [`par_map`] with execution stats.
pub fn par_map_stats<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let chunk = default_chunk(items.len());
    let (chunks, stats) = par_chunks_stats(threads, items.len(), chunk, |range| {
        range.map(|i| f(i, &items[i])).collect::<Vec<R>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for c in chunks {
        out.extend(c);
    }
    (out, stats)
}

/// Parallel map over **coarse, uneven tasks**: one chunk per task, so a
/// heavy task never serializes the light tasks that the default `len/64`
/// chunking would glue onto it. This is the region router's dispatch
/// shape — one routing wave is a handful of region-sized batches of
/// wildly different weight. Determinism is inherited from
/// [`par_chunks_stats`]: task results come back in input order for any
/// thread count, and workers own tasks round-robin (worker `w` takes
/// tasks `w`, `w + K`, `w + 2K`, …).
pub fn par_tasks_stats<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_chunks_stats(threads, items.len(), 1, |range| f(range.start, &items[range.start]))
}

/// [`par_tasks_stats`] with a rotating stripe offset: task `c` is owned by
/// worker `(c + offset) % K` instead of `c % K`, and the returned `busy_s`
/// always spans the full resolved worker count (idle slots read 0.0).
///
/// This exists for callers that issue **many tiny dispatches** and
/// [`absorb`](ParStats::absorb) them into one record. Plain round-robin
/// pins task 0 of every dispatch to worker 0, so a stream of one- and
/// two-task dispatches piles its entire CPU bill onto the low worker
/// slots and the busiest-worker projection collapses. Rotating the offset
/// across dispatches (the caller picks it — e.g. the least-loaded slot of
/// a running ledger) spreads that stream evenly. Results still come back
/// in input order and each task's output is independent of which worker
/// ran it, so determinism is unaffected.
pub fn par_tasks_stats_at<T, R, F>(
    threads: usize,
    offset: usize,
    items: &[T],
    f: F,
) -> (Vec<R>, ParStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_threads(threads).max(1);
    let off = offset % workers;
    let n = items.len();
    let t0 = Instant::now();

    if workers == 1 || n <= 1 {
        // Inline fast path: no spawn, busy credited to the offset slot.
        let busy0 = thread_cpu_seconds();
        let out: Vec<R> = items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        let mut busy = vec![0.0; workers];
        busy[off] = thread_cpu_seconds() - busy0;
        let stats = ParStats {
            threads: workers,
            chunks: n,
            wall_s: t0.elapsed().as_secs_f64(),
            busy_s: busy,
        };
        return (out, stats);
    }

    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let busy: Mutex<Vec<f64>> = Mutex::new(vec![0.0; workers]);
    std::thread::scope(|scope| {
        for w in 0..workers {
            // Worker w owns tasks c with (c + off) % workers == w.
            let first = (w + workers - off) % workers;
            if first >= n {
                continue; // no tasks for this slot — skip the spawn
            }
            let (f, results, busy) = (&f, &results, &busy);
            scope.spawn(move || {
                let b0 = thread_cpu_seconds();
                let mut local: Vec<(usize, R)> = Vec::new();
                let mut c = first;
                while c < n {
                    local.push((c, f(c, &items[c])));
                    c += workers;
                }
                let spent = thread_cpu_seconds() - b0;
                results.lock().expect("no poisoned worker").extend(local);
                busy.lock().expect("no poisoned worker")[w] = spent;
            });
        }
    });

    let mut tagged = results.into_inner().expect("workers joined");
    tagged.sort_unstable_by_key(|&(c, _)| c);
    let out: Vec<R> = tagged.into_iter().map(|(_, r)| r).collect();
    let stats = ParStats {
        threads: workers,
        chunks: n,
        wall_s: t0.elapsed().as_secs_f64(),
        busy_s: busy.into_inner().expect("workers joined"),
    };
    (out, stats)
}

/// Parallel fold with an input-order reduction: maps every item through
/// `fold` within fixed chunks, then merges the per-chunk accumulators
/// **sequentially in chunk order**, so the reduction tree — and therefore
/// any floating-point result — is independent of the thread count.
pub fn par_reduce<T, A, F, M>(
    threads: usize,
    items: &[T],
    init: A,
    fold: F,
    merge: M,
) -> A
where
    T: Sync,
    A: Send + Clone + Sync,
    F: Fn(A, usize, &T) -> A + Sync,
    M: Fn(A, A) -> A,
{
    let chunk = default_chunk(items.len());
    let chunks = par_chunks(threads, items.len(), chunk, |range| {
        range.fold(init.clone(), |acc, i| fold(acc, i, &items[i]))
    });
    chunks.into_iter().fold(init, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = par_map(threads, &items, |i, &v| v * 2 + i as u64);
            assert_eq!(out.len(), items.len());
            for (i, &v) in out.iter().enumerate() {
                assert_eq!(v, items[i] * 2 + i as u64);
            }
        }
    }

    #[test]
    fn offset_tasks_preserve_order_and_credit_rotated_slots() {
        let items: Vec<u64> = (0..37).collect();
        let want: Vec<u64> = items.iter().map(|&v| v * 3 + 1).collect();
        for threads in [1usize, 2, 4, 8] {
            for offset in [0usize, 1, 3, 7] {
                let (out, stats) =
                    par_tasks_stats_at(threads, offset, &items, |_, &v| v * 3 + 1);
                assert_eq!(out, want, "threads={threads} offset={offset}");
                assert_eq!(stats.busy_s.len(), threads, "busy spans all slots");
            }
        }
        // A single-task dispatch must credit the offset slot, not slot 0 —
        // that crediting is what lets a stream of tiny dispatches rotate
        // its CPU bill across workers.
        let one = [42u64];
        let (_, stats) = par_tasks_stats_at(4, 2, &one, |_, &v| {
            std::hint::black_box((0..20_000u64).fold(v, |a, x| a.wrapping_mul(31) ^ x))
        });
        assert_eq!(stats.busy_s.len(), 4);
        let hot: Vec<usize> = (0..4).filter(|&w| stats.busy_s[w] > 0.0).collect();
        assert_eq!(hot, vec![2], "busy credited to the rotated slot");
    }

    #[test]
    fn float_reduction_is_bit_identical_across_thread_counts() {
        // A sum designed to be order-sensitive in f64.
        let items: Vec<f64> = (0..4096).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reduce = |threads| {
            par_reduce(threads, &items, 0.0f64, |a, _, &x| a + x * x, |a, b| a + b)
        };
        let r1 = reduce(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(r1.to_bits(), reduce(threads).to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_partition_ignores_thread_count() {
        let a = chunk_ranges(1000, default_chunk(1000));
        assert!(a.len() > 1);
        assert_eq!(a.first().unwrap().start, 0);
        assert_eq!(a.last().unwrap().end, 1000);
        for w in a.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn stats_account_all_workers() {
        let items: Vec<u64> = (0..8192).collect();
        let (out, stats) = par_map_stats(4, &items, |_, &v| {
            // Enough work per item for the CPU clock to tick.
            (0..50).fold(v, |a, x| a.wrapping_mul(31).wrapping_add(x))
        });
        assert_eq!(out.len(), items.len());
        assert!(stats.threads >= 1 && stats.threads <= 4);
        assert_eq!(stats.busy_s.len(), stats.threads);
        assert!(stats.wall_s >= 0.0);
        assert!(stats.projected_wall_s() > 0.0);
        assert!(stats.projected_speedup() >= 0.5);
    }

    #[test]
    fn bounded_speedup_stays_within_wall_clock_bounds() {
        // Under-resolution busy clocks: no evidence of parallelism → 1.0.
        let tiny = ParStats { threads: 8, chunks: 8, wall_s: 0.0, busy_s: vec![1e-9; 8] };
        assert!(tiny.projected_speedup() > 1.0, "raw projection over-reports");
        assert_eq!(tiny.bounded_speedup(), 1.0);

        // All-zero busy clocks (raw projection reads 0.0) also fall back.
        let zero = ParStats { threads: 8, chunks: 8, wall_s: 0.0, busy_s: vec![0.0; 8] };
        assert_eq!(zero.bounded_speedup(), 1.0);

        // A healthy dispatch passes through unchanged…
        let good = ParStats { threads: 4, chunks: 64, wall_s: 0.1, busy_s: vec![0.1; 4] };
        assert!((good.bounded_speedup() - good.projected_speedup()).abs() < 1e-12);

        // …and per-worker speedup never exceeds 1 even if absorbed records
        // skew the slot accounting.
        let mut skew = ParStats { threads: 2, chunks: 4, wall_s: 0.1, busy_s: vec![0.05, 0.05] };
        skew.absorb(&ParStats { threads: 8, chunks: 8, wall_s: 0.1, busy_s: vec![0.01; 8] });
        assert!(skew.bounded_speedup() <= skew.threads as f64);
        assert!(skew.bounded_speedup() >= 1.0);
    }

    #[test]
    fn tasks_dispatch_one_chunk_per_item_in_order() {
        let items: Vec<usize> = (0..37).collect();
        let serial: Vec<usize> = items.iter().map(|&v| v * 3).collect();
        for threads in [1, 2, 4, 8] {
            let (out, stats) = par_tasks_stats(threads, &items, |i, &v| {
                assert_eq!(i, v);
                v * 3
            });
            assert_eq!(out, serial, "threads={threads}");
            assert_eq!(stats.chunks, items.len());
        }
        let (empty, stats) = par_tasks_stats(4, &[] as &[u32], |_, &v| v);
        assert!(empty.is_empty());
        assert_eq!(stats.chunks, 0);
    }

    #[test]
    fn zero_threads_means_available() {
        assert_eq!(resolve_threads(0), available_threads());
        assert_eq!(resolve_threads(3), 3);
        let out = par_map(0, &[1, 2, 3], |_, &v| v + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(4, &[] as &[u32], |_, &v| v);
        assert!(out.is_empty());
        let r = par_reduce(4, &[] as &[u32], 7u32, |a, _, _| a, |a, _| a);
        assert_eq!(r, 7);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        let _ = chunk_ranges(10, 0);
    }
}
