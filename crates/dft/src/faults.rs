//! Stuck-at fault model and bit-parallel fault simulation over the full-scan
//! combinational view.
//!
//! Under full scan every flop is controllable/observable, so test generation
//! and fault simulation work on the combinational core: inputs are the
//! primary inputs plus flop outputs, outputs are the primary outputs plus
//! flop D pins.

use eda_netlist::{CellFunction, InstId, NetDriver, NetId, Netlist, NetlistError};

/// A single stuck-at fault on a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// The faulty net.
    pub net: NetId,
    /// Stuck-at value: `true` = SA1, `false` = SA0.
    pub stuck_at: bool,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "net#{} SA{}", self.net.index(), self.stuck_at as u8)
    }
}

/// The full-scan combinational view of a netlist.
#[derive(Debug, Clone)]
pub struct CombView {
    order: Vec<InstId>,
    /// Controllable nets: primary inputs then flop outputs.
    pub inputs: Vec<NetId>,
    /// Observable nets: primary outputs then flop D nets.
    pub outputs: Vec<NetId>,
}

impl CombView {
    /// Builds the view.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] for cyclic netlists.
    pub fn new(netlist: &Netlist) -> Result<CombView, NetlistError> {
        let order = netlist.topo_order()?;
        let mut inputs: Vec<NetId> = netlist.primary_inputs().to_vec();
        let mut outputs: Vec<NetId> =
            netlist.primary_outputs().iter().map(|&(_, n)| n).collect();
        for f in netlist.flops() {
            let inst = netlist.instance(f);
            inputs.push(inst.output());
            outputs.push(inst.inputs()[0]);
        }
        Ok(CombView { order, inputs, outputs })
    }

    /// Topological order of the combinational instances.
    pub fn order(&self) -> &[InstId] {
        &self.order
    }

    /// Evaluates the combinational core on 64 parallel patterns, optionally
    /// forcing one net to a constant lane value (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != self.inputs.len()`.
    pub fn eval64(
        &self,
        netlist: &Netlist,
        pattern: &[u64],
        force: Option<(NetId, u64)>,
    ) -> Vec<u64> {
        assert_eq!(pattern.len(), self.inputs.len(), "pattern width mismatch");
        let lib = netlist.library();
        let mut value = vec![0u64; netlist.num_nets()];
        for (i, &net) in self.inputs.iter().enumerate() {
            value[net.index()] = pattern[i];
        }
        if let Some((net, v)) = force {
            value[net.index()] = v;
        }
        for &id in &self.order {
            let inst = netlist.instance(id);
            let f = lib.cell(inst.cell()).function;
            if f.is_sequential() || f.is_physical_only() {
                continue;
            }
            let ins: Vec<u64> = inst.inputs().iter().map(|n| value[n.index()]).collect();
            let out = inst.output();
            if let Some((fnet, v)) = force {
                if fnet == out {
                    value[out.index()] = v;
                    continue;
                }
            }
            value[out.index()] = f.eval64(&ins);
        }
        self.outputs.iter().map(|n| value[n.index()]).collect()
    }
}

/// Enumerates the full stuck-at fault list: SA0 and SA1 on every logic net
/// (clock nets excluded — they are exercised structurally, not logically).
pub fn fault_list(netlist: &Netlist) -> Vec<Fault> {
    let lib = netlist.library();
    let mut clockish = vec![false; netlist.num_nets()];
    for (net_id, net) in netlist.nets() {
        let all_clock_pins = !net.sinks().is_empty()
            && net.sinks().iter().all(|&(inst, pin)| {
                let f = lib.cell(netlist.instance(inst).cell()).function;
                match f {
                    CellFunction::Dff => pin == 1,
                    CellFunction::ScanDff => pin == 3,
                    CellFunction::ClockGate => pin == 0,
                    _ => false,
                }
            });
        if all_clock_pins {
            clockish[net_id.index()] = true;
        }
    }
    let mut faults = Vec::new();
    for (net_id, net) in netlist.nets() {
        if clockish[net_id.index()] {
            continue;
        }
        if net.driver().is_none() && net.sinks().is_empty() {
            continue;
        }
        // Physical-only drivers (decaps) carry no testable logic.
        if let Some(NetDriver::Instance(d)) = net.driver() {
            if lib.cell(netlist.instance(d).cell()).function.is_physical_only() {
                continue;
            }
        }
        faults.push(Fault { net: net_id, stuck_at: false });
        faults.push(Fault { net: net_id, stuck_at: true });
    }
    faults
}

/// Outcome of fault-simulating a pattern set.
#[derive(Debug, Clone)]
pub struct FaultSimOutcome {
    /// Faults detected, in fault-list order.
    pub detected: Vec<bool>,
    /// Number detected.
    pub num_detected: usize,
    /// Total faults.
    pub total: usize,
    /// 64-lane packed pattern blocks simulated (`ceil(patterns / 64)`).
    pub pattern_blocks: usize,
}

impl FaultSimOutcome {
    /// Fault coverage in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.num_detected as f64 / self.total as f64
    }
}

/// One packed 64-pattern block with its good-circuit response.
struct PatternBlock {
    packed: Vec<u64>,
    lanes_mask: u64,
    good: Vec<u64>,
}

/// Packs `patterns` into 64-lane blocks and simulates the good circuit once
/// per block. The blocks are shared read-only across fault-sim workers.
fn pattern_blocks(netlist: &Netlist, view: &CombView, patterns: &[Vec<bool>]) -> Vec<PatternBlock> {
    patterns
        .chunks(64)
        .map(|chunk| {
            let mut packed = vec![0u64; view.inputs.len()];
            for (lane, pat) in chunk.iter().enumerate() {
                for (i, &b) in pat.iter().enumerate() {
                    if b {
                        packed[i] |= 1 << lane;
                    }
                }
            }
            let lanes_mask: u64 =
                if chunk.len() == 64 { !0 } else { (1u64 << chunk.len()) - 1 };
            let good = view.eval64(netlist, &packed, None);
            PatternBlock { packed, lanes_mask, good }
        })
        .collect()
}

/// Whether `fault` is detected by any of the pattern blocks (early exit on
/// first detection — the bit-parallel analogue of fault dropping).
fn detects(netlist: &Netlist, view: &CombView, fault: &Fault, blocks: &[PatternBlock]) -> bool {
    let forced = if fault.stuck_at { !0u64 } else { 0u64 };
    blocks.iter().any(|blk| {
        let bad = view.eval64(netlist, &blk.packed, Some((fault.net, forced)));
        let diff = blk
            .good
            .iter()
            .zip(&bad)
            .fold(0u64, |acc, (&g, &b)| acc | (g ^ b))
            & blk.lanes_mask;
        diff != 0
    })
}

/// Bit-parallel fault simulation: each test pattern occupies a lane; faults
/// are dropped once detected.
///
/// `patterns[k]` is one test: a vector of bits per [`CombView::inputs`]
/// position.
pub fn fault_sim(
    netlist: &Netlist,
    view: &CombView,
    faults: &[Fault],
    patterns: &[Vec<bool>],
) -> FaultSimOutcome {
    fault_sim_threaded(netlist, view, faults, patterns, 1).0
}

/// [`fault_sim`] with the collapsed fault list partitioned across `threads`
/// workers (`0` = all cores). Pattern blocks and good-circuit responses are
/// computed once and shared; each fault is an independent detection query, so
/// the `detected` map is **bit-identical for any thread count** — detections
/// merge as an order-independent union reassembled in fault-list order.
pub fn fault_sim_threaded(
    netlist: &Netlist,
    view: &CombView,
    faults: &[Fault],
    patterns: &[Vec<bool>],
    threads: usize,
) -> (FaultSimOutcome, eda_par::ParStats) {
    let blocks = pattern_blocks(netlist, view, patterns);
    let (detected, stats) =
        eda_par::par_map_stats(threads, faults, |_, f| detects(netlist, view, f, &blocks));
    let num_detected = detected.iter().filter(|&&d| d).count();
    let outcome = FaultSimOutcome {
        detected,
        num_detected,
        total: faults.len(),
        pattern_blocks: blocks.len(),
    };
    (outcome, stats)
}

/// Generates `count` seeded random patterns for a view.
pub fn random_patterns(view: &CombView, count: usize, seed: u64) -> Vec<Vec<bool>> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..view.inputs.len()).map(|_| rng.gen_bool(0.5)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;

    #[test]
    fn comb_view_matches_netlist_simulation() {
        let n = generate::ripple_carry_adder(6).unwrap();
        let view = CombView::new(&n).unwrap();
        let pats: Vec<u64> =
            (0..view.inputs.len()).map(|i| 0x6C62_272E_07BB_0142u64.rotate_left(i as u32)).collect();
        let from_view = view.eval64(&n, &pats, None);
        let (outs, _) = n.simulate64(&pats, &[]);
        assert_eq!(&from_view[..outs.len()], &outs[..]);
    }

    #[test]
    fn fault_injection_changes_outputs() {
        let n = generate::parity_tree(8).unwrap();
        let view = CombView::new(&n).unwrap();
        let pats = vec![0u64; view.inputs.len()];
        let good = view.eval64(&n, &pats, None);
        // Force the output net of the first XOR to 1.
        let victim = n.instances().next().unwrap().1.output();
        let bad = view.eval64(&n, &pats, Some((victim, !0)));
        assert_ne!(good, bad, "parity tree propagates any internal flip");
    }

    #[test]
    fn random_patterns_reach_high_coverage_on_parity() {
        let n = generate::parity_tree(16).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let pats = random_patterns(&view, 64, 11);
        let out = fault_sim(&n, &view, &faults, &pats);
        assert!(
            out.coverage() > 0.99,
            "XOR trees are random-testable, got {:.3}",
            out.coverage()
        );
    }

    #[test]
    fn coverage_monotone_in_patterns() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 200,
            seed: 8,
            ..Default::default()
        })
        .unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let few = fault_sim(&n, &view, &faults, &random_patterns(&view, 8, 4));
        let many = fault_sim(&n, &view, &faults, &random_patterns(&view, 128, 4));
        assert!(many.num_detected >= few.num_detected);
        assert!(many.coverage() > 0.5);
    }

    #[test]
    fn threaded_fault_sim_matches_serial_exactly() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 150,
            seed: 5,
            ..Default::default()
        })
        .unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let pats = random_patterns(&view, 96, 3);
        let serial = fault_sim(&n, &view, &faults, &pats);
        for threads in [2, 4, 8] {
            let (par, stats) = fault_sim_threaded(&n, &view, &faults, &pats, threads);
            assert_eq!(par.detected, serial.detected, "threads={threads}");
            assert_eq!(par.num_detected, serial.num_detected);
            assert!(stats.threads >= 1);
        }
    }

    #[test]
    fn clock_nets_carry_no_faults() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let faults = fault_list(&n);
        let clk = n.primary_inputs()[0];
        assert!(faults.iter().all(|f| f.net != clk), "clock must not be in the fault list");
    }

    #[test]
    fn sequential_view_exposes_flops() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let view = CombView::new(&n).unwrap();
        assert_eq!(view.inputs.len(), n.primary_inputs().len() + n.flops().len());
        assert_eq!(view.outputs.len(), n.primary_outputs().len() + n.flops().len());
    }
}
