//! Design-for-test for the `eda` workspace: scan insertion, placement-aware
//! scan-chain reordering, stuck-at fault simulation, PODEM ATPG, and
//! EDT-style test compression for low-pin-count test.
//!
//! Carries two panel claims: Rossi's scan-chain reordering during physical
//! implementation (claim C10, [`reorder_chains`]) and Sawicki's retargeting
//! of high-compression DFT at low-pin-count test for cheap IoT packages
//! (claim C14, [`compress`]).
//!
//! # Examples
//!
//! ```
//! use eda_dft::{fault_list, run_atpg, AtpgConfig, CombView};
//! use eda_netlist::generate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(4)?;
//! let view = CombView::new(&design)?;
//! let faults = fault_list(&design);
//! let out = run_atpg(&design, &view, &faults, &AtpgConfig::default());
//! assert!(out.coverage > 0.95);
//! # Ok(())
//! # }
//! ```

pub mod atpg;
pub mod collapse;
pub mod compress;
pub mod faults;
pub mod scan;

pub use atpg::{generate_test, run_atpg, AtpgConfig, AtpgOutcome, AtpgResult};
pub use collapse::{collapse_faults, CollapseOutcome};
pub use compress::{
    bypass_fault_sim, compact, compressed_fault_sim, spread, CompressionOutcome, TestAccess,
};
pub use faults::{
    fault_list, fault_sim, fault_sim_threaded, random_patterns, CombView, Fault, FaultSimOutcome,
};
pub use scan::{insert_scan, reorder_chains, scan_wirelength, ScanOutcome};
