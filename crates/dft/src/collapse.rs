//! Structural fault collapsing.
//!
//! Equivalence rules for the classic gate set shrink the fault list before
//! simulation/ATPG: a fault on a gate input is equivalent to a fault on its
//! output when the input value forces the output (the controlling-value
//! rules), and inverter/buffer faults map 1:1 through.
//!
//! * AND/NAND: any input SA0 ≡ output SA0 (AND) / SA1 (NAND)
//! * OR/NOR:   any input SA1 ≡ output SA1 (OR) / SA0 (NOR)
//! * INV:      input SA0 ≡ output SA1, input SA1 ≡ output SA0
//! * BUF:      input faults ≡ output faults
//!
//! Collapsing is applied to stem faults only (a fanout-free input is the
//! stem of its net): faults on nets with fanout > 1 must stay, since each
//! branch can behave differently.

use crate::faults::Fault;
use eda_netlist::{CellFunction, NetDriver, Netlist};
use std::collections::HashSet;

/// Result of collapsing a fault list.
#[derive(Debug, Clone)]
pub struct CollapseOutcome {
    /// The representative faults to target.
    pub faults: Vec<Fault>,
    /// Faults in the input list.
    pub before: usize,
    /// Faults kept.
    pub after: usize,
}

impl CollapseOutcome {
    /// Collapse ratio (< 1 when anything merged).
    pub fn ratio(&self) -> f64 {
        if self.before == 0 {
            1.0
        } else {
            self.after as f64 / self.before as f64
        }
    }
}

/// Collapses a stuck-at fault list by gate-local equivalence.
///
/// A fault `(net, v)` on the single-fanout input of a gate is replaced by
/// its equivalent output fault; chains collapse transitively. Detection of
/// the representative implies detection of the entire equivalence class, so
/// coverage numbers computed on the collapsed list are valid for the full
/// list.
pub fn collapse_faults(netlist: &Netlist, faults: &[Fault]) -> CollapseOutcome {
    let lib = netlist.library();
    let po_nets: HashSet<usize> =
        netlist.primary_outputs().iter().map(|&(_, n)| n.index()).collect();
    // Map each (net, value) to its representative via iterated gate rules.
    let canonical = |mut net: eda_netlist::NetId, mut value: bool| -> (usize, bool) {
        // Follow equivalence through single-fanout sinks; a primary-output
        // net is directly observable and must keep its own faults.
        for _ in 0..netlist.num_nets() {
            if po_nets.contains(&net.index()) {
                break;
            }
            let n = netlist.net(net);
            if n.fanout() != 1 {
                break;
            }
            let (sink, _pin) = n.sinks()[0];
            let f = lib.cell(netlist.instance(sink).cell()).function;
            let out = netlist.instance(sink).output();
            let next = match f {
                CellFunction::Buf | CellFunction::LevelShifter => Some((out, value)),
                CellFunction::Inv => Some((out, !value)),
                CellFunction::And(_) if !value => Some((out, false)),
                CellFunction::Nand(_) if !value => Some((out, true)),
                CellFunction::Or(_) if value => Some((out, true)),
                CellFunction::Nor(_) if value => Some((out, false)),
                _ => None,
            };
            match next {
                Some((n2, v2)) => {
                    net = n2;
                    value = v2;
                }
                None => break,
            }
        }
        (net.index(), value)
    };

    let mut seen: HashSet<(usize, bool)> = HashSet::new();
    let mut kept = Vec::new();
    for &f in faults {
        // Primary-input-driven nets with fanout 1 still collapse forward;
        // everything hinges on the canonical map.
        let key = canonical(f.net, f.stuck_at);
        if seen.insert(key) {
            kept.push(f);
        }
    }
    CollapseOutcome { before: faults.len(), after: kept.len(), faults: kept }
}

/// Audits the equivalence rules against ground truth: two faults collapsed
/// into the same class must have identical detection status under any
/// pattern set. Returns `false` (with the audit failing) if a class is
/// inconsistent — i.e. the collapse rules merged non-equivalent faults.
pub fn audit_equivalence(
    netlist: &Netlist,
    view: &crate::faults::CombView,
    original: &[Fault],
    patterns: &[Vec<bool>],
) -> bool {
    use std::collections::HashMap;
    let lib = netlist.library();
    let po_nets: HashSet<usize> =
        netlist.primary_outputs().iter().map(|&(_, n)| n.index()).collect();
    let canonical = |mut net: eda_netlist::NetId, mut value: bool| -> (usize, bool) {
        for _ in 0..netlist.num_nets() {
            if po_nets.contains(&net.index()) {
                break;
            }
            let n = netlist.net(net);
            if n.fanout() != 1 {
                break;
            }
            let (sink, _pin) = n.sinks()[0];
            let f = lib.cell(netlist.instance(sink).cell()).function;
            let out = netlist.instance(sink).output();
            let next = match f {
                CellFunction::Buf | CellFunction::LevelShifter => Some((out, value)),
                CellFunction::Inv => Some((out, !value)),
                CellFunction::And(_) if !value => Some((out, false)),
                CellFunction::Nand(_) if !value => Some((out, true)),
                CellFunction::Or(_) if value => Some((out, true)),
                CellFunction::Nor(_) if value => Some((out, false)),
                _ => None,
            };
            match next {
                Some((n2, v2)) => {
                    net = n2;
                    value = v2;
                }
                None => break,
            }
        }
        (net.index(), value)
    };
    let sim = crate::faults::fault_sim(netlist, view, original, patterns);
    let mut class_status: HashMap<(usize, bool), bool> = HashMap::new();
    for (i, &f) in original.iter().enumerate() {
        let key = canonical(f.net, f.stuck_at);
        match class_status.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if *e.get() != sim.detected[i] {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(sim.detected[i]);
            }
        }
    }
    true
}

/// Convenience: drivers of a net, used in audits and debugging.
pub fn driver_function(netlist: &Netlist, net: eda_netlist::NetId) -> Option<CellFunction> {
    match netlist.net(net).driver() {
        Some(NetDriver::Instance(d)) => {
            Some(netlist.library().cell(netlist.instance(d).cell()).function)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{fault_list, fault_sim, random_patterns, CombView};
    use eda_netlist::generate;

    #[test]
    fn collapsing_shrinks_the_list() {
        // A NAND/NOR/INV-rich netlist (XOR-heavy designs barely collapse —
        // XOR has no controlling value).
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 300,
            seed: 12,
            ..Default::default()
        })
        .unwrap();
        let faults = fault_list(&n);
        let out = collapse_faults(&n, &faults);
        assert!(out.after < out.before, "{} -> {}", out.before, out.after);
        // Shared fanout limits collapsing on this generator (stems survive);
        // a useful reduction is still required.
        assert!(out.ratio() <= 0.92, "expect meaningful reduction, got {:.2}", out.ratio());
    }

    #[test]
    fn collapsed_coverage_is_consistent() {
        let n = generate::random_logic(generate::RandomLogicConfig {
            gates: 200,
            seed: 6,
            ..Default::default()
        })
        .unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let pats = random_patterns(&view, 64, 2);
        assert!(audit_equivalence(&n, &view, &faults, &pats));
    }

    #[test]
    fn detecting_representative_detects_class() {
        // Chain: a -> INV -> INV -> y. Input SA0 of the first inverter is
        // equivalent to y SA0 (two inversions), and any pattern pair
        // detecting one detects the other.
        use eda_netlist::{CellFunction, Netlist};
        let mut n = Netlist::new("chain");
        let a = n.add_input("a");
        let m = n.add_gate_fn("i1", CellFunction::Inv, &[a]).unwrap();
        let y = n.add_gate_fn("i2", CellFunction::Inv, &[m]).unwrap();
        n.add_output("y", y);
        let faults = fault_list(&n);
        let collapsed = collapse_faults(&n, &faults);
        // 3 nets × 2 polarities = 6 faults collapse to just the output pair.
        assert_eq!(collapsed.after, 2, "a chain collapses to its output faults");
        let view = CombView::new(&n).unwrap();
        let pats = vec![vec![false], vec![true]];
        let full = fault_sim(&n, &view, &faults, &pats);
        let repr = fault_sim(&n, &view, &collapsed.faults, &pats);
        assert_eq!(full.coverage(), 1.0);
        assert_eq!(repr.coverage(), 1.0);
    }

    #[test]
    fn fanout_stems_not_collapsed() {
        // a drives two AND gates: a's faults must survive (each branch can
        // matter separately).
        use eda_netlist::{CellFunction, Netlist};
        let mut n = Netlist::new("fan");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let y1 = n.add_gate_fn("g1", CellFunction::And(2), &[a, b]).unwrap();
        let y2 = n.add_gate_fn("g2", CellFunction::And(2), &[a, c]).unwrap();
        n.add_output("y1", y1);
        n.add_output("y2", y2);
        let faults = fault_list(&n);
        let collapsed = collapse_faults(&n, &faults);
        assert!(
            collapsed.faults.iter().any(|f| f.net == a),
            "the fanout stem keeps its faults"
        );
    }

    #[test]
    fn atpg_on_collapsed_list_is_cheaper_same_quality() {
        let n = generate::equality_comparator(8).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let collapsed = collapse_faults(&n, &faults);
        let cfg = crate::atpg::AtpgConfig { random_patterns: 8, ..Default::default() };
        let full = crate::atpg::run_atpg(&n, &view, &faults, &cfg);
        let fast = crate::atpg::run_atpg(&n, &view, &collapsed.faults, &cfg);
        assert!(fast.patterns.len() <= full.patterns.len());
        // Patterns from the collapsed run still cover the full list well.
        let recheck = fault_sim(&n, &view, &faults, &fast.patterns);
        assert!(recheck.coverage() > 0.9, "got {:.3}", recheck.coverage());
    }
}
