//! Scan insertion and placement-aware scan-chain reordering.
//!
//! Rossi (claim C10): *"Why is it needed to perform, later during the
//! implementation, the scan chain reordering to alleviate the congestion...?
//! a radical change in the approach is required."* The mechanics he
//! complains about are implemented here: [`insert_scan`] stitches chains in
//! front-end (netlist) order, and [`reorder_chains`] redoes the stitching
//! from placement, cutting scan wirelength and congestion.

use eda_netlist::{CellFunction, InstId, NetId, Netlist, NetlistError};
use eda_place::{Placement, Point};

/// A scan-inserted design.
#[derive(Debug, Clone)]
pub struct ScanOutcome {
    /// The netlist with scan flops and stitched chains.
    pub netlist: Netlist,
    /// The chains: ordered flop instance ids (into the *new* netlist).
    pub chains: Vec<Vec<InstId>>,
    /// Scan-enable primary input net.
    pub scan_enable: NetId,
    /// Scan-in nets, one per chain.
    pub scan_ins: Vec<NetId>,
}

/// Replaces every D flop with a scan flop and stitches `num_chains` chains
/// in instance order (the "front-end" order Rossi criticizes).
///
/// # Errors
///
/// Fails if the library lacks a scan flop, or the netlist is invalid.
///
/// # Panics
///
/// Panics if `num_chains == 0`.
pub fn insert_scan(netlist: &Netlist, num_chains: usize) -> Result<ScanOutcome, NetlistError> {
    assert!(num_chains > 0, "need at least one chain");
    netlist.validate()?;
    let lib = netlist.library();
    let sdff = lib
        .find_function(CellFunction::ScanDff)
        .ok_or_else(|| NetlistError::UnknownName("ScanDff".into()))?;

    // Rebuild the netlist with scan flops.
    let mut out = Netlist::with_library(format!("{}_scan", netlist.name()), lib.clone());
    let mut net_map: Vec<Option<NetId>> = vec![None; netlist.num_nets()];
    for &pi in netlist.primary_inputs() {
        net_map[pi.index()] = Some(out.add_input(netlist.net(pi).name()));
    }
    let scan_enable = out.add_input("scan_en");
    let scan_ins: Vec<NetId> =
        (0..num_chains).map(|c| out.add_input(format!("scan_in{c}"))).collect();
    // Pre-create all remaining nets by name so wiring is order-independent.
    for (id, net) in netlist.nets() {
        if net_map[id.index()].is_none() {
            net_map[id.index()] = Some(out.add_net(net.name()));
        }
    }
    let m = |id: NetId, map: &[Option<NetId>]| map[id.index()].expect("net pre-created");

    // Chain assignment: flops in instance order, round-robin blocks.
    let flops = netlist.flops();
    let per_chain = flops.len().div_ceil(num_chains.max(1)).max(1);
    let mut chains: Vec<Vec<InstId>> = vec![Vec::new(); num_chains];
    let mut chain_of = vec![0usize; netlist.num_instances()];
    let mut pos_in_chain = vec![0usize; netlist.num_instances()];
    for (k, &f) in flops.iter().enumerate() {
        let c = (k / per_chain).min(num_chains - 1);
        chain_of[f.index()] = c;
        pos_in_chain[f.index()] = chains[c].len();
        chains[c].push(f); // old ids for now; rebuilt below
    }

    // SI source for chain position p: scan_in (p=0) or previous flop's Q.
    let mut new_ids: Vec<Option<InstId>> = vec![None; netlist.num_instances()];
    for (id, inst) in netlist.instances() {
        let func = lib.cell(inst.cell()).function;
        if func == CellFunction::Dff {
            let c = chain_of[id.index()];
            let p = pos_in_chain[id.index()];
            let si = if p == 0 {
                scan_ins[c]
            } else {
                let prev_old = chains[c][p - 1];
                m(netlist.instance(prev_old).output(), &net_map)
            };
            let d = m(inst.inputs()[0], &net_map);
            let ck = m(inst.inputs()[1], &net_map);
            let q = m(inst.output(), &net_map);
            let new_id =
                out.add_gate_with_output(inst.name(), sdff, &[d, si, scan_enable, ck], q)?;
            new_ids[id.index()] = Some(new_id);
        } else {
            let ins: Vec<NetId> = inst.inputs().iter().map(|&n| m(n, &net_map)).collect();
            let o = m(inst.output(), &net_map);
            let new_id = out.add_gate_with_output(inst.name(), inst.cell(), &ins, o)?;
            new_ids[id.index()] = Some(new_id);
        }
    }
    for (name, net) in netlist.primary_outputs() {
        out.add_output(name.clone(), m(*net, &net_map));
    }
    // Scan-out per chain: last flop's Q.
    let new_chains: Vec<Vec<InstId>> = chains
        .iter()
        .map(|c| c.iter().map(|&old| new_ids[old.index()].expect("flop rebuilt")).collect())
        .collect();
    for (ci, chain) in new_chains.iter().enumerate() {
        if let Some(&last) = chain.last() {
            out.add_output(format!("scan_out{ci}"), out.instance(last).output());
        }
    }
    out.validate()?;
    Ok(ScanOutcome { netlist: out, chains: new_chains, scan_enable, scan_ins })
}

/// Total scan-stitch wirelength of the chains under a placement (Manhattan
/// hop distance along each chain).
pub fn scan_wirelength(chains: &[Vec<InstId>], placement: &Placement) -> f64 {
    chains
        .iter()
        .map(|chain| {
            chain
                .windows(2)
                .map(|w| placement.position(w[0]).manhattan(&placement.position(w[1])))
                .sum::<f64>()
        })
        .sum()
}

/// Reorders each chain by placement: greedy nearest-neighbour from the flop
/// closest to the die origin, then 2-opt until no improving swap remains.
/// Returns the new chain orders; membership per chain is preserved.
pub fn reorder_chains(chains: &[Vec<InstId>], placement: &Placement) -> Vec<Vec<InstId>> {
    chains
        .iter()
        .map(|chain| {
            if chain.len() < 3 {
                return chain.clone();
            }
            // Nearest-neighbour construction.
            let start = chain
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let pa = placement.position(a);
                    let pb = placement.position(b);
                    (pa.x + pa.y).total_cmp(&(pb.x + pb.y))
                })
                .expect("chain non-empty");
            let mut remaining: Vec<InstId> = chain.iter().copied().filter(|&f| f != start).collect();
            let mut order = vec![start];
            while !remaining.is_empty() {
                let cur = placement.position(*order.last().expect("non-empty"));
                let (k, _) = remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        cur.manhattan(&placement.position(a))
                            .total_cmp(&cur.manhattan(&placement.position(b)))
                    })
                    .expect("remaining non-empty");
                order.push(remaining.swap_remove(k));
            }
            // 2-opt refinement.
            let pos = |f: InstId| -> Point { placement.position(f) };
            let mut improved = true;
            while improved {
                improved = false;
                for i in 0..order.len() - 2 {
                    for j in i + 2..order.len() {
                        let a = pos(order[i]);
                        let b = pos(order[i + 1]);
                        let c = pos(order[j]);
                        let d_next = if j + 1 < order.len() { Some(pos(order[j + 1])) } else { None };
                        let before = a.manhattan(&b)
                            + d_next.map_or(0.0, |d| c.manhattan(&d));
                        let after = a.manhattan(&c)
                            + d_next.map_or(0.0, |d| b.manhattan(&d));
                        if after + 1e-12 < before {
                            order[i + 1..=j].reverse();
                            improved = true;
                        }
                    }
                }
            }
            order
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_place::{place_global, Die, GlobalConfig};

    fn scan_design() -> (Netlist, ScanOutcome) {
        let n = generate::switch_fabric(4, 4).unwrap();
        let s = insert_scan(&n, 2).unwrap();
        (n, s)
    }

    #[test]
    fn scan_insertion_preserves_mission_mode() {
        let (n, s) = scan_design();
        let k = n.primary_inputs().len();
        let pats: Vec<u64> =
            (0..k).map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 2)).collect();
        // Scan design: +1 scan_en (0 = mission mode) +2 scan_in.
        let mut spats = pats.clone();
        spats.push(0); // scan_en low
        spats.push(0);
        spats.push(0);
        let (o1, s1) = n.simulate64(&pats, &vec![0; n.flops().len()]);
        let (o2, s2raw) = s.netlist.simulate64(&spats, &vec![0; s.netlist.flops().len()]);
        // The scan design appends one scan_out PO per chain.
        assert_eq!(o1[..], o2[..o1.len()]);
        // Flop order may differ (rebuild preserves instance order).
        assert_eq!(s1.len(), s2raw.len());
        assert_eq!(s1, s2raw);
    }

    #[test]
    fn shift_mode_forms_a_shift_register() {
        let (_, s) = scan_design();
        let nl = &s.netlist;
        let flop_count = nl.flops().len();
        // scan_en = 1: state shifts along chains.
        let k = nl.primary_inputs().len();
        let mut pats = vec![0u64; k];
        // scan_en is the PI right after the originals; find by name.
        let names: Vec<String> =
            nl.primary_inputs().iter().map(|&n| nl.net(n).name().to_string()).collect();
        let se_idx = names.iter().position(|n| n == "scan_en").unwrap();
        let si0_idx = names.iter().position(|n| n == "scan_in0").unwrap();
        pats[se_idx] = !0;
        pats[si0_idx] = !0; // shift ones into chain 0 only
        let state = vec![0u64; flop_count];
        let (_, next) = nl.simulate64(&pats, &state);
        // Exactly chain 0's head captured the scan-in one; everything else
        // shifted the zero state.
        let ones = next.iter().filter(|&&v| v == !0u64).count();
        assert_eq!(ones, 1, "only the driven chain head captures a 1");
    }

    #[test]
    fn reordering_cuts_scan_wirelength() {
        let (_, s) = scan_design();
        let die = Die::for_netlist(&s.netlist, 0.7);
        let placement = place_global(&s.netlist, die, &GlobalConfig::default());
        let before = scan_wirelength(&s.chains, &placement);
        let reordered = reorder_chains(&s.chains, &placement);
        let after = scan_wirelength(&reordered, &placement);
        assert!(
            after < before * 0.8,
            "placement-aware reorder should cut stitch length: {before:.1} -> {after:.1}"
        );
        // Membership preserved.
        for (a, b) in s.chains.iter().zip(&reordered) {
            let mut x = a.clone();
            let mut y = b.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn chain_count_respected() {
        let n = generate::switch_fabric(4, 2).unwrap();
        let s = insert_scan(&n, 3).unwrap();
        assert_eq!(s.chains.len(), 3);
        let total: usize = s.chains.iter().map(|c| c.len()).sum();
        assert_eq!(total, n.flops().len());
        assert_eq!(s.scan_ins.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn zero_chains_panics() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let _ = insert_scan(&n, 0);
    }
}
