//! Test-data compression and low-pin-count test.
//!
//! Sawicki (claim C14): *"high-compression DFT technologies will be targeted
//! at low-pin-count test, helping to enable lower cost packaging."* The
//! scheme modeled is EDT-like: an LFSR-seeded XOR spreader expands a few
//! scan-in pins onto many short internal chains, and an XOR compactor folds
//! the chain outputs onto few scan-out pins. Fewer pins + shorter chains =
//! less tester time per pattern — the cheap-package enabler.

use crate::faults::{fault_sim, CombView, Fault, FaultSimOutcome};
use eda_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A test-access configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestAccess {
    /// External scan pins available (in + out pairs).
    pub scan_pins: usize,
    /// Internal scan chains driven through the decompressor.
    pub internal_chains: usize,
    /// Flops in the design.
    pub flops: usize,
    /// Shift clock in MHz.
    pub shift_mhz: f64,
}

impl TestAccess {
    /// Longest internal chain length.
    pub fn chain_length(&self) -> usize {
        self.flops.div_ceil(self.internal_chains.max(1))
    }

    /// Compression ratio: internal chains per external pin.
    pub fn compression_ratio(&self) -> f64 {
        self.internal_chains as f64 / self.scan_pins.max(1) as f64
    }

    /// Tester seconds to apply `patterns` tests (shift-dominated).
    pub fn test_time_s(&self, patterns: usize) -> f64 {
        let cycles = (patterns as f64 + 1.0) * self.chain_length() as f64;
        cycles / (self.shift_mhz * 1e6)
    }
}

/// The XOR spreader: expands `pins` seed bits into `chains` chain heads.
/// Chain `c` receives the XOR of seed bits `{c, c + 1, 2c} mod pins` — a
/// fixed, invertible-enough phase-shifter network.
pub fn spread(seed_bits: &[bool], chains: usize) -> Vec<bool> {
    let pins = seed_bits.len().max(1);
    (0..chains)
        .map(|c| {
            seed_bits[c % pins] ^ seed_bits[(c + 1) % pins] ^ seed_bits[(2 * c) % pins]
        })
        .collect()
}

/// The XOR compactor: folds `chains` observed bits onto `pins` outputs.
pub fn compact(chain_bits: &[bool], pins: usize) -> Vec<bool> {
    let pins = pins.max(1);
    let mut out = vec![false; pins];
    for (c, &b) in chain_bits.iter().enumerate() {
        out[c % pins] ^= b;
    }
    out
}

/// Outcome of a compressed-test fault simulation.
#[derive(Debug, Clone)]
pub struct CompressionOutcome {
    /// Coverage with compression (compactor-observed detection).
    pub coverage: f64,
    /// Patterns applied.
    pub patterns: usize,
    /// Tester time for this access config, seconds.
    pub test_time_s: f64,
    /// The access configuration evaluated.
    pub access: TestAccess,
}

/// Fault-simulates a compressed random test.
///
/// Stimuli model the decompressor's output as pseudo-random per scan cell
/// (an LFSR-fed spreader is statistically random, which is why EDT keeps
/// stimulus quality); responses are folded onto `pins` outputs by the XOR
/// compactor, so detection requires surviving *aliasing* — a fault counts
/// only if it flips a compacted output on some pattern.
pub fn compressed_fault_sim(
    netlist: &Netlist,
    view: &CombView,
    faults: &[Fault],
    access: &TestAccess,
    num_patterns: usize,
    seed: u64,
) -> CompressionOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let width = view.inputs.len();
    let mut detected = vec![false; faults.len()];
    let pins = access.scan_pins.max(1);
    for _ in 0..num_patterns {
        let pattern: Vec<u64> =
            (0..width).map(|_| if rng.gen_bool(0.5) { !0u64 } else { 0 }).collect();
        let good = view.eval64(netlist, &pattern, None);
        let good_bits: Vec<bool> = good.iter().map(|&v| v & 1 == 1).collect();
        let good_compact = compact(&good_bits, pins);
        for (fi, fault) in faults.iter().enumerate() {
            if detected[fi] {
                continue;
            }
            let forced = if fault.stuck_at { !0u64 } else { 0u64 };
            let bad = view.eval64(netlist, &pattern, Some((fault.net, forced)));
            let bad_bits: Vec<bool> = bad.iter().map(|&v| v & 1 == 1).collect();
            if compact(&bad_bits, pins) != good_compact {
                detected[fi] = true;
            }
        }
    }
    let num = detected.iter().filter(|&&d| d).count();
    CompressionOutcome {
        coverage: num as f64 / faults.len().max(1) as f64,
        patterns: num_patterns,
        test_time_s: access.test_time_s(num_patterns),
        access: *access,
    }
}

/// Uncompressed (bypass) fault simulation with the same pattern budget:
/// every scan bit is directly tester-controlled and observed.
pub fn bypass_fault_sim(
    netlist: &Netlist,
    view: &CombView,
    faults: &[Fault],
    access: &TestAccess,
    num_patterns: usize,
    seed: u64,
) -> CompressionOutcome {
    let pats = crate::faults::random_patterns(view, num_patterns, seed);
    let out: FaultSimOutcome = fault_sim(netlist, view, faults, &pats);
    // Bypass: the whole register is one chain per pin pair.
    let serial = TestAccess {
        scan_pins: access.scan_pins,
        internal_chains: access.scan_pins,
        flops: access.flops,
        shift_mhz: access.shift_mhz,
    };
    CompressionOutcome {
        coverage: out.coverage(),
        patterns: num_patterns,
        test_time_s: serial.test_time_s(num_patterns),
        access: serial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::fault_list;
    use eda_netlist::generate;

    fn setup() -> (Netlist, CombView, Vec<Fault>) {
        let n = generate::switch_fabric(4, 2).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        (n, view, faults)
    }

    #[test]
    fn spreader_and_compactor_shapes() {
        let s = spread(&[true, false, true], 8);
        assert_eq!(s.len(), 8);
        let c = compact(&s, 3);
        assert_eq!(c.len(), 3);
        // Compaction XOR-folds: parity preserved.
        let parity_in = s.iter().fold(false, |a, &b| a ^ b);
        let parity_out = c.iter().fold(false, |a, &b| a ^ b);
        assert_eq!(parity_in, parity_out);
    }

    #[test]
    fn compression_keeps_most_coverage() {
        let (n, view, faults) = setup();
        let access = TestAccess {
            scan_pins: 4,
            internal_chains: 16,
            flops: n.flops().len(),
            shift_mhz: 50.0,
        };
        let comp = compressed_fault_sim(&n, &view, &faults, &access, 256, 9);
        let byp = bypass_fault_sim(&n, &view, &faults, &access, 256, 9);
        assert!(comp.coverage > 0.85, "compressed coverage {:.3}", comp.coverage);
        assert!(
            comp.coverage > byp.coverage - 0.08,
            "aliasing loss should be small: {:.3} vs {:.3}",
            comp.coverage,
            byp.coverage
        );
    }

    #[test]
    fn compression_slashes_test_time() {
        // Production-scale flop count; the access math needs no netlist.
        let flops = 40_000;
        let comp = TestAccess { scan_pins: 4, internal_chains: 32, flops, shift_mhz: 50.0 };
        let serial = TestAccess { scan_pins: 4, internal_chains: 4, flops, shift_mhz: 50.0 };
        assert!(comp.test_time_s(1000) < serial.test_time_s(1000) / 4.0);
        assert!(comp.compression_ratio() >= 8.0);
    }

    #[test]
    fn low_pin_count_still_tests() {
        // 2 pins: the Fitbit-class package of Sawicki's IoT point.
        let (n, view, faults) = setup();
        let access =
            TestAccess { scan_pins: 2, internal_chains: 16, flops: n.flops().len(), shift_mhz: 25.0 };
        let out = compressed_fault_sim(&n, &view, &faults, &access, 512, 3);
        assert!(out.coverage > 0.7, "2-pin coverage {:.3}", out.coverage);
    }

    #[test]
    fn chain_length_math() {
        let a = TestAccess { scan_pins: 2, internal_chains: 10, flops: 95, shift_mhz: 50.0 };
        assert_eq!(a.chain_length(), 10);
        let b = TestAccess { scan_pins: 2, internal_chains: 1, flops: 95, shift_mhz: 50.0 };
        assert_eq!(b.chain_length(), 95);
    }
}
