//! PODEM-style deterministic test-pattern generation.
//!
//! Classic two-phase flow: random patterns first (cheap coverage), then
//! path-oriented decision making for the survivors. The PODEM here uses
//! good/faulty three-valued pair simulation, objective/backtrace on primary
//! inputs, and a backtrack budget per fault.

use crate::faults::{fault_sim, random_patterns, CombView, Fault, FaultSimOutcome};
use eda_netlist::{NetDriver, NetId, Netlist};
use std::collections::HashMap;

/// Three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V {
    Zero,
    One,
    X,
}

impl V {
    fn known(self) -> bool {
        self != V::X
    }

    fn from_bool(b: bool) -> V {
        if b {
            V::One
        } else {
            V::Zero
        }
    }
}

/// Result of ATPG for one fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtpgResult {
    /// A test was found (assignment per [`CombView::inputs`] position; `None`
    /// entries are don't-care).
    Test(Vec<Option<bool>>),
    /// Proven untestable within the search (redundant fault).
    Untestable,
    /// Backtrack budget exhausted.
    Aborted,
}

/// ATPG configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtpgConfig {
    /// Random patterns applied before deterministic search.
    pub random_patterns: usize,
    /// Backtrack limit per fault.
    pub backtrack_limit: usize,
    /// Seed for random-phase patterns and X-fill.
    pub seed: u64,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig { random_patterns: 64, backtrack_limit: 2000, seed: 1 }
    }
}

/// Complete ATPG outcome over a fault list.
#[derive(Debug, Clone)]
pub struct AtpgOutcome {
    /// The generated test set (including the random phase's useful patterns).
    pub patterns: Vec<Vec<bool>>,
    /// Coverage after the full flow.
    pub coverage: f64,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults aborted.
    pub aborted: usize,
}

struct Podem<'a> {
    netlist: &'a Netlist,
    view: &'a CombView,
    /// net -> position in view.inputs (for controllable nets).
    input_pos: HashMap<usize, usize>,
    good: Vec<V>,
    faulty: Vec<V>,
    backtracks: usize,
    limit: usize,
}

impl<'a> Podem<'a> {
    fn new(netlist: &'a Netlist, view: &'a CombView, limit: usize) -> Podem<'a> {
        let input_pos =
            view.inputs.iter().enumerate().map(|(i, n)| (n.index(), i)).collect();
        Podem {
            netlist,
            view,
            input_pos,
            good: vec![V::X; netlist.num_nets()],
            faulty: vec![V::X; netlist.num_nets()],
            backtracks: 0,
            limit,
        }
    }

    /// Forward three-valued simulation of both machines from the current
    /// input assignment.
    fn simulate(&mut self, assignment: &[Option<bool>], fault: Fault) {
        let lib = self.netlist.library();
        for v in self.good.iter_mut() {
            *v = V::X;
        }
        for v in self.faulty.iter_mut() {
            *v = V::X;
        }
        for (i, &net) in self.view.inputs.iter().enumerate() {
            let v = assignment[i].map_or(V::X, V::from_bool);
            self.good[net.index()] = v;
            self.faulty[net.index()] = v;
        }
        self.faulty[fault.net.index()] = V::from_bool(fault.stuck_at);
        // If the fault site is an input, it is already overridden above.
        for &id in self.view.order() {
            let inst = self.netlist.instance(id);
            let f = lib.cell(inst.cell()).function;
            if f.is_sequential() || f.is_physical_only() {
                continue;
            }
            let out = inst.output().index();
            let eval = |values: &[V]| -> V {
                // Three-valued evaluation by trying both completions when few
                // X inputs; with many X inputs, sample: if all completions of
                // X agree the value is known. Arity ≤ 4 so enumerate.
                let ins: Vec<V> = inst.inputs().iter().map(|n| values[n.index()]).collect();
                let x_positions: Vec<usize> =
                    (0..ins.len()).filter(|&i| ins[i] == V::X).collect();
                if x_positions.len() > 4 {
                    return V::X;
                }
                let mut seen0 = false;
                let mut seen1 = false;
                for fill in 0..(1usize << x_positions.len()) {
                    let concrete: Vec<bool> = ins
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| match v {
                            V::One => true,
                            V::Zero => false,
                            V::X => {
                                let k = x_positions.iter().position(|&p| p == i).expect("x pos");
                                fill >> k & 1 == 1
                            }
                        })
                        .collect();
                    if f.eval(&concrete) {
                        seen1 = true;
                    } else {
                        seen0 = true;
                    }
                    if seen0 && seen1 {
                        return V::X;
                    }
                }
                if seen1 {
                    V::One
                } else {
                    V::Zero
                }
            };
            let g = eval(&self.good);
            self.good[out] = g;
            if out == fault.net.index() {
                self.faulty[out] = V::from_bool(fault.stuck_at);
            } else {
                self.faulty[out] = eval(&self.faulty);
            }
        }
    }

    /// Whether the fault effect reaches an observable output.
    fn detected(&self) -> bool {
        self.view.outputs.iter().any(|n| {
            let g = self.good[n.index()];
            let f = self.faulty[n.index()];
            g.known() && f.known() && g != f
        })
    }

    /// The D-frontier: instances whose output is X in either machine but
    /// with a propagating difference on some input.
    fn d_frontier(&self) -> Vec<NetId> {
        let lib = self.netlist.library();
        let mut frontier = Vec::new();
        for (_, inst) in self.netlist.instances() {
            let f = lib.cell(inst.cell()).function;
            if f.is_sequential() || f.is_physical_only() {
                continue;
            }
            let out = inst.output();
            let out_x = !self.good[out.index()].known() || !self.faulty[out.index()].known();
            if !out_x {
                continue;
            }
            let has_d = inst.inputs().iter().any(|n| {
                let g = self.good[n.index()];
                let fv = self.faulty[n.index()];
                g.known() && fv.known() && g != fv
            });
            if has_d {
                frontier.push(out);
            }
        }
        frontier
    }

    /// Backtrace an objective `(net, value)` to an unassigned primary input,
    /// returning `(input position, value)`.
    fn backtrace(&self, mut net: NetId, mut value: bool, assignment: &[Option<bool>]) -> Option<(usize, bool)> {
        let lib = self.netlist.library();
        for _ in 0..10_000 {
            if let Some(&pos) = self.input_pos.get(&net.index()) {
                if assignment[pos].is_none() {
                    return Some((pos, value));
                }
                return None;
            }
            let driver = match self.netlist.net(net).driver() {
                Some(NetDriver::Instance(d)) => d,
                _ => return None,
            };
            let inst = self.netlist.instance(driver);
            let f = lib.cell(inst.cell()).function;
            use eda_netlist::CellFunction as CF;
            // Choose an input to pursue and the value it should take.
            let (pick, v) = match f {
                CF::Inv => (0, !value),
                CF::Buf | CF::LevelShifter => (0, value),
                CF::And(_) | CF::Nand(_) | CF::Or(_) | CF::Nor(_) => {
                    // For AND/OR families the objective value for the chosen
                    // input equals the (de-inverted) output goal: AND needs
                    // all-1 for 1 and any-0 for 0; OR needs any-1 for 1 and
                    // all-0 for 0.
                    let inverted = matches!(f, CF::Nand(_) | CF::Nor(_));
                    let goal = if inverted { !value } else { value };
                    let xi = inst
                        .inputs()
                        .iter()
                        .position(|n| !self.good[n.index()].known())
                        .unwrap_or(0);
                    (xi, goal)
                }
                CF::Xor2 | CF::Xnor2 => {
                    let xi = inst
                        .inputs()
                        .iter()
                        .position(|n| !self.good[n.index()].known())
                        .unwrap_or(0);
                    (xi, value)
                }
                _ => {
                    let xi = inst
                        .inputs()
                        .iter()
                        .position(|n| !self.good[n.index()].known())
                        .unwrap_or(0);
                    (xi, value)
                }
            };
            net = inst.inputs()[pick];
            value = v;
        }
        None
    }

    /// The PODEM decision loop.
    fn run(&mut self, fault: Fault, assignment: &mut Vec<Option<bool>>) -> AtpgResult {
        self.simulate(assignment, fault);
        if self.detected() {
            return AtpgResult::Test(assignment.clone());
        }
        if self.backtracks > self.limit {
            return AtpgResult::Aborted;
        }
        // Objective.
        let objective = {
            let g = self.good[fault.net.index()];
            if !g.known() {
                // Activate: drive the net opposite the stuck value.
                Some((fault.net, !fault.stuck_at))
            } else if g == V::from_bool(fault.stuck_at) {
                // Good value equals stuck value: fault cannot be activated
                // under this assignment.
                None
            } else {
                // Propagate: pick a D-frontier gate output and push it to a
                // known value via a side objective (set output "away from X").
                self.d_frontier().first().map(|&out| (out, true))
            }
        };
        let Some((obj_net, obj_val)) = objective else {
            return AtpgResult::Untestable;
        };
        let Some((pos, val)) = self.backtrace(obj_net, obj_val, assignment) else {
            return AtpgResult::Untestable;
        };
        for try_val in [val, !val] {
            assignment[pos] = Some(try_val);
            match self.run(fault, assignment) {
                AtpgResult::Test(t) => return AtpgResult::Test(t),
                AtpgResult::Aborted => return AtpgResult::Aborted,
                AtpgResult::Untestable => {
                    self.backtracks += 1;
                    if self.backtracks > self.limit {
                        assignment[pos] = None;
                        return AtpgResult::Aborted;
                    }
                }
            }
        }
        assignment[pos] = None;
        AtpgResult::Untestable
    }
}

/// Generates a test for one fault.
pub fn generate_test(
    netlist: &Netlist,
    view: &CombView,
    fault: Fault,
    cfg: &AtpgConfig,
) -> AtpgResult {
    let mut podem = Podem::new(netlist, view, cfg.backtrack_limit);
    let mut assignment = vec![None; view.inputs.len()];
    podem.run(fault, &mut assignment)
}

/// Runs the full two-phase ATPG flow over the fault list.
pub fn run_atpg(netlist: &Netlist, view: &CombView, faults: &[Fault], cfg: &AtpgConfig) -> AtpgOutcome {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD1F7);
    let mut patterns = random_patterns(view, cfg.random_patterns, cfg.seed);
    let sim: FaultSimOutcome = fault_sim(netlist, view, faults, &patterns);
    let mut detected = sim.detected;
    let mut untestable = 0usize;
    let mut aborted = 0usize;
    for (fi, &fault) in faults.iter().enumerate() {
        if detected[fi] {
            continue;
        }
        match generate_test(netlist, view, fault, cfg) {
            AtpgResult::Test(t) => {
                // X-fill randomly, then fault-simulate the new pattern against
                // all remaining faults (test compaction for free).
                let pattern: Vec<bool> =
                    t.iter().map(|b| b.unwrap_or_else(|| rng.gen_bool(0.5))).collect();
                let remaining: Vec<(usize, Fault)> = faults
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !detected[i])
                    .map(|(i, &f)| (i, f))
                    .collect();
                let rem_faults: Vec<Fault> = remaining.iter().map(|&(_, f)| f).collect();
                let out = fault_sim(netlist, view, &rem_faults, std::slice::from_ref(&pattern));
                for (k, &(orig, _)) in remaining.iter().enumerate() {
                    if out.detected[k] {
                        detected[orig] = true;
                    }
                }
                detected[fi] = true; // PODEM found it even if X-fill sim missed
                patterns.push(pattern);
            }
            AtpgResult::Untestable => untestable += 1,
            AtpgResult::Aborted => aborted += 1,
        }
    }
    let num = detected.iter().filter(|&&d| d).count();
    AtpgOutcome {
        patterns,
        coverage: num as f64 / faults.len().max(1) as f64,
        untestable,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::fault_list;
    use eda_netlist::{generate, CellFunction, Netlist};

    #[test]
    fn podem_finds_test_for_simple_and() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate_fn("u", CellFunction::And(2), &[a, b]).unwrap();
        n.add_output("y", y);
        let view = CombView::new(&n).unwrap();
        // SA0 on the output: need a=b=1.
        let r = generate_test(&n, &view, Fault { net: y, stuck_at: false }, &AtpgConfig::default());
        match r {
            AtpgResult::Test(t) => {
                assert_eq!(t[0], Some(true));
                assert_eq!(t[1], Some(true));
            }
            other => panic!("expected a test, got {other:?}"),
        }
    }

    #[test]
    fn redundant_fault_is_untestable() {
        // y = a | (a & b): the inner AND output SA0 is redundant.
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let ab = n.add_gate_fn("u1", CellFunction::And(2), &[a, b]).unwrap();
        let y = n.add_gate_fn("u2", CellFunction::Or(2), &[a, ab]).unwrap();
        n.add_output("y", y);
        let view = CombView::new(&n).unwrap();
        let r = generate_test(&n, &view, Fault { net: ab, stuck_at: false }, &AtpgConfig::default());
        assert_eq!(r, AtpgResult::Untestable, "a|(a&b) = a, the AND is redundant");
    }

    #[test]
    fn full_flow_reaches_high_coverage() {
        let n = generate::ripple_carry_adder(6).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let out = run_atpg(&n, &view, &faults, &AtpgConfig { random_patterns: 16, ..Default::default() });
        assert!(out.coverage > 0.95, "adders are fully testable, got {:.3}", out.coverage);
    }

    #[test]
    fn deterministic_phase_beats_random_alone() {
        let n = generate::equality_comparator(10).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let rand_only = fault_sim(&n, &view, &faults, &random_patterns(&view, 16, 1));
        let full = run_atpg(&n, &view, &faults, &AtpgConfig { random_patterns: 16, ..Default::default() });
        assert!(
            full.coverage > rand_only.coverage(),
            "PODEM should top up random coverage: {:.3} vs {:.3}",
            full.coverage,
            rand_only.coverage()
        );
    }

    #[test]
    fn sequential_design_tested_through_scan_view() {
        let n = generate::switch_fabric(3, 2).unwrap();
        let view = CombView::new(&n).unwrap();
        let faults = fault_list(&n);
        let out = run_atpg(&n, &view, &faults, &AtpgConfig::default());
        assert!(out.coverage > 0.9, "full-scan fabric coverage {:.3}", out.coverage);
    }
}
