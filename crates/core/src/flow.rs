//! The integrated RTL-to-layout flow: the panel's "advanced EDA solution"
//! as one callable pipeline.
//!
//! Stages: synthesis → clock gating → scan insertion → placement →
//! scan reordering → timing → routing → lithography decomposition → power
//! analysis → power-grid signoff → test-coverage estimation. Every stage is
//! timed and summarized into a [`FlowReport`](crate::report::FlowReport).

use crate::config::FlowConfig;
use crate::report::FlowReport;
use eda_dft::{fault_list, fault_sim_threaded, insert_scan, random_patterns, reorder_chains, scan_wirelength, CombView};
use eda_litho::{decompose, Layout};
use eda_logic::{check_equivalence, synthesize, EcVerdict};
use eda_netlist::{Netlist, NetlistStats};
use eda_place::{anneal, place_global, plan_buffers, synthesize_clock_tree, AnnealConfig, CtsConfig, Die, GlobalConfig, ParallelConfig};
use eda_power::{analyze, insert_clock_gating, insert_decaps, solve_ir_drop, Activity, ActivityConfig, MeshConfig, PowerConfig, PowerGrid};
use eda_route::{route_stats, RouteConfig, RuleDeck};
use eda_sta::{TimingAnalysis, TimingConfig};
use eda_tech::PatterningPlan;
use std::collections::BTreeMap;
use std::time::Instant;

/// Errors surfaced by the flow.
#[derive(Debug)]
pub enum FlowError {
    /// Synthesis failed.
    Synthesis(eda_logic::SynthesisError),
    /// A netlist transformation failed.
    Netlist(eda_netlist::NetlistError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Synthesis(e) => write!(f, "synthesis stage failed: {e}"),
            FlowError::Netlist(e) => write!(f, "netlist transform failed: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<eda_logic::SynthesisError> for FlowError {
    fn from(e: eda_logic::SynthesisError) -> Self {
        FlowError::Synthesis(e)
    }
}

impl From<eda_netlist::NetlistError> for FlowError {
    fn from(e: eda_netlist::NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

/// Runs the full flow on a design.
///
/// # Errors
///
/// Returns a [`FlowError`] if synthesis or a netlist transformation fails
/// (e.g. the input contains non-synthesizable cells).
pub fn run_flow(design: &Netlist, cfg: &FlowConfig) -> Result<FlowReport, FlowError> {
    let mut stage_seconds: BTreeMap<String, f64> = BTreeMap::new();
    let mut stage_threads: BTreeMap<String, usize> = BTreeMap::new();
    let mut stage_speedup: BTreeMap<String, f64> = BTreeMap::new();
    let threads = cfg.threads;
    let mut timer = Timer::new();

    // ---- synthesis ----
    let lib = cfg.library.library();
    let synth = synthesize(design, lib.clone(), cfg.synthesis, cfg.map_goal)?;
    let mut netlist = synth.netlist;
    let mut synthesis_verified = None;
    if cfg.verify_synthesis {
        synthesis_verified = match check_equivalence(design, &netlist, &[], &[], 1 << 19) {
            Ok(EcVerdict::Equivalent) => Some(true),
            Ok(EcVerdict::Counterexample(_)) => Some(false),
            Ok(EcVerdict::Inconclusive) | Err(_) => None,
        };
    }
    stage_seconds.insert("1_synthesis".into(), timer.lap());

    // ---- clock gating (before scan so gates see plain flops) ----
    if cfg.power.clock_gating_group > 0 {
        if let Ok(g) = insert_clock_gating(&netlist, cfg.power.clock_gating_group) {
            netlist = g.netlist;
        }
    }
    stage_seconds.insert("2_clock_gating".into(), timer.lap());

    // ---- scan insertion ----
    let mut chains = Vec::new();
    if let Some(scan) = cfg.scan {
        let s = insert_scan(&netlist, scan.chains)?;
        netlist = s.netlist;
        chains = s.chains;
    }
    stage_seconds.insert("3_scan".into(), timer.lap());

    let stats = NetlistStats::of(&netlist);

    // ---- placement ----
    let die = Die::for_netlist(&netlist, cfg.utilization);
    let mut placement = if cfg.place.stripes > 1 {
        let out = eda_place::place_parallel(
            &netlist,
            die,
            &ParallelConfig {
                threads,
                stripes: cfg.place.stripes,
                moves_per_cell: cfg.place.anneal_moves_per_cell,
                passes: 2,
                seed: cfg.seed,
            },
        );
        stage_threads.insert("4_place".into(), out.par_stats.threads);
        stage_speedup.insert("4_place".into(), out.par_stats.projected_speedup());
        out.placement
    } else {
        let mut p = place_global(
            &netlist,
            die,
            &GlobalConfig { iterations: cfg.place.global_iterations, seed: cfg.seed },
        );
        anneal(
            &netlist,
            &mut p,
            &AnnealConfig {
                moves_per_cell: cfg.place.anneal_moves_per_cell,
                seed: cfg.seed,
                ..Default::default()
            },
            None,
            None,
        );
        p
    };
    stage_seconds.insert("4_place".into(), timer.lap());

    // ---- scan reordering (placement-aware) ----
    if let Some(scan) = cfg.scan {
        if scan.placement_aware_reorder && !chains.is_empty() {
            chains = reorder_chains(&chains, &placement);
        }
    }
    let scan_wl = scan_wirelength(&chains, &placement);
    stage_seconds.insert("5_scan_reorder".into(), timer.lap());

    // ---- clock-tree synthesis ----
    let (clock_tree, _sinks) = synthesize_clock_tree(&netlist, &placement, &CtsConfig::default());
    stage_seconds.insert("6_cts".into(), timer.lap());

    // ---- timing (setup at nominal, hold at the fast corner) ----
    let tcfg = TimingConfig {
        clock_period_ps: 1e6 / cfg.clock_mhz,
        ..Default::default()
    };
    let timing = TimingAnalysis::run(&netlist, &tcfg)?;
    stage_seconds.insert("6_sta".into(), timer.lap());

    // ---- routing ----
    let plan = PatterningPlan::for_node(cfg.node);
    let deck = if plan.needs_decomposition() {
        RuleDeck::multi_patterned(cfg.layers, plan.total_exposures())
    } else {
        RuleDeck::simple(cfg.layers)
    };
    let (routed, route_par) = route_stats(
        &netlist,
        &placement,
        &RouteConfig {
            algorithm: cfg.router,
            deck,
            grid_cells: 32,
            ripup_iterations: cfg.ripup_iterations,
            threads,
        },
    );
    stage_threads.insert("7_route".into(), route_par.threads);
    stage_speedup.insert("7_route".into(), route_par.projected_speedup());
    stage_seconds.insert("7_route".into(), timer.lap());

    // ---- lithography decomposition of the critical layer ----
    // Single-patterned nodes print the layer in one exposure — nothing to
    // decompose. Below the single-exposure pitch, the critical-layer
    // geometry is modeled as a wire population whose count tracks routed
    // wirelength at the node's minimum pitch (see DESIGN.md).
    let (masks, stitches, litho_legal) = if plan.needs_decomposition() {
        let pitch = cfg.node.spec().metal_pitch_nm;
        let wires = (routed.wirelength / 4).clamp(24, 160) as usize;
        let layout = Layout::random_wires(wires, pitch, pitch * 40.0, cfg.seed);
        let deco = decompose(
            &layout,
            plan.total_exposures(),
            eda_tech::SINGLE_EXPOSURE_PITCH_NM,
            wires / 2,
        );
        (deco.masks, deco.stitches, deco.legal)
    } else {
        (1, 0, true)
    };
    stage_seconds.insert("8_litho".into(), timer.lap());

    // ---- power ----
    let activity = Activity::estimate(&netlist, &ActivityConfig::default())?;
    let pcfg = PowerConfig { node: cfg.node, freq_mhz: cfg.clock_mhz, ..Default::default() };
    let power = analyze(&netlist, &activity, &pcfg);
    let mut decaps = 0usize;
    let mut hotspots = 0usize;
    if let Some(limit) = cfg.power.decap_droop_limit_mv {
        let mut grid = PowerGrid::build(&netlist, &placement, &activity, &pcfg, 8);
        if let Ok(out) = insert_decaps(&netlist, &mut grid, cfg.node, limit) {
            decaps = out.decaps_inserted;
            hotspots = out.hotspots_after;
            netlist = out.netlist;
        }
    }
    // Static IR drop of the final power map.
    let ir_grid = PowerGrid::build(&netlist, &placement, &activity, &pcfg, 8);
    let ir = solve_ir_drop(&ir_grid, cfg.node, &MeshConfig::default());
    stage_seconds.insert("9_power".into(), timer.lap());

    // ---- test coverage (random-pattern estimate) ----
    let mut coverage = 0.0;
    if cfg.scan.is_some() {
        let view = CombView::new(&netlist)?;
        let faults = fault_list(&netlist);
        let pats = random_patterns(&view, 96, cfg.seed);
        let (sim, dft_par) = fault_sim_threaded(&netlist, &view, &faults, &pats, threads);
        coverage = sim.coverage();
        stage_threads.insert("10_dft".into(), dft_par.threads);
        stage_speedup.insert("10_dft".into(), dft_par.projected_speedup());
    }
    stage_seconds.insert("10_dft".into(), timer.lap());

    // Long-net buffering is part of area accounting.
    let buffers = plan_buffers(&netlist, &placement, die.width_um / 2.0, &[]);
    let _ = &mut placement;

    Ok(FlowReport {
        flow: cfg.name.clone(),
        design: design.name().to_string(),
        node: cfg.node.to_string(),
        cell_area_um2: netlist.area_um2() + buffers.added_area_um2,
        cells: stats.combinational,
        flops: stats.flops,
        wns_ps: timing.wns_ps,
        critical_path_ps: timing.critical_path_ps,
        hpwl_um: placement.total_hpwl(&netlist),
        routed_wirelength: routed.wirelength,
        vias: routed.vias,
        overflow: routed.overflow,
        masks,
        stitches,
        litho_legal,
        dynamic_mw: power.dynamic_mw,
        leakage_mw: power.leakage_mw,
        test_coverage: coverage,
        scan_wirelength_um: scan_wl,
        decaps,
        hotspots,
        clock_skew_ps: clock_tree.skew_ps(),
        clock_tree_um: clock_tree.wirelength_um,
        ir_drop_mv: ir.worst_drop_mv(),
        hold_violations: timing.hold_violations,
        synthesis_verified,
        stage_seconds,
        stage_threads,
        stage_speedup,
    })
}

struct Timer {
    last: Instant,
}

impl Timer {
    fn new() -> Timer {
        Timer { last: Instant::now() }
    }

    fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_tech::Node;

    #[test]
    fn advanced_flow_runs_end_to_end() {
        let design = generate::switch_fabric(3, 3).unwrap();
        let report = run_flow(&design, &FlowConfig::advanced_2016(Node::N28)).unwrap();
        assert!(report.cell_area_um2 > 0.0);
        assert!(report.hpwl_um > 0.0);
        assert!(report.routed_wirelength > 0);
        assert!(report.test_coverage > 0.5);
        assert!(report.dynamic_mw > 0.0);
        assert!(!report.stage_seconds.is_empty());
    }

    #[test]
    fn basic_flow_runs_end_to_end() {
        let design = generate::ripple_carry_adder(8).unwrap();
        let report = run_flow(&design, &FlowConfig::basic_2006(Node::N90)).unwrap();
        assert!(report.cell_area_um2 > 0.0);
        assert_eq!(report.decaps, 0, "2006 flow has no auto-decap");
    }

    #[test]
    fn advanced_beats_basic_on_score() {
        let design = generate::random_logic(generate::RandomLogicConfig {
            gates: 250,
            seed: 6,
            ..Default::default()
        })
        .unwrap();
        let basic = run_flow(&design, &FlowConfig::basic_2006(Node::N90)).unwrap();
        let advanced = run_flow(&design, &FlowConfig::advanced_2016(Node::N90)).unwrap();
        assert!(
            advanced.cell_area_um2 < basic.cell_area_um2,
            "advanced area {:.0} must beat basic {:.0}",
            advanced.cell_area_um2,
            basic.cell_area_um2
        );
        assert!(advanced.score() < basic.score());
    }

    #[test]
    fn multipatterned_node_reports_masks() {
        let design = generate::parity_tree(16).unwrap();
        let report = run_flow(&design, &FlowConfig::advanced_2016(Node::N10)).unwrap();
        assert!(report.masks >= 2, "10nm critical layer needs multiple masks");
    }
}
