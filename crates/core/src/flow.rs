//! The integrated RTL-to-layout flow: the panel's "advanced EDA solution"
//! as one callable pipeline, executed under a supervising harness.
//!
//! Stages: synthesis → clock gating → scan insertion → placement →
//! scan reordering → clock-tree synthesis → timing → routing → lithography
//! decomposition + OPC → power analysis → test-coverage estimation. Every
//! stage runs inside the [`harness`](crate::harness) supervisor: it gets a
//! budget, a typed [`StageStatus`](crate::harness::StageStatus) in the
//! report, and a recovery policy (see DESIGN.md §7 for the full table):
//!
//! * an inconclusive equivalence check escalates the simulation budget once
//!   (2²² nodes), then records `Degraded` instead of silently reporting
//!   "not verified";
//! * routing that still overflows after its rip-up budget retries once on a
//!   coarser grid and keeps the better result, degrading to partial routes;
//! * a decomposition that stays illegal or an OPC pass that misses its EPE
//!   target retries with a doubled stitch budget and a halved OPC gain;
//! * an IR-drop solve that stalls at the iteration cap retries with a
//!   relaxed tolerance;
//! * clock gating that fails keeps the ungated netlist and degrades.
//!
//! With `FlowConfig::checkpoint_dir` set, the supervisor serializes the full
//! flow state after every stage; a killed flow rerun with `resume: true`
//! restarts from the first incomplete stage and produces bit-identical QoR
//! ([`FlowReport::same_qor`]).

use crate::cache::{self, CacheError, StageCache};
use crate::checkpoint::{self, FlowState, LoadError};
use crate::config::FlowConfig;
use crate::harness::{StageCtx, StageStatus, StageTry, Supervisor};
use crate::report::FlowReport;
use crate::store::{FlowStore, Lookup, QorRow, StageRow, Store, Table};
use crate::telemetry::{SpanKind, Telemetry};
use eda_dft::{fault_list, fault_sim_threaded, insert_scan, random_patterns, reorder_chains, scan_wirelength, CombView};
use eda_litho::{decompose, run_opc_stats, Layout, OpcConfig, OpticalModel};
use eda_logic::{check_equivalence, synthesize_threaded_memo, EcVerdict};
use eda_netlist::memo::fnv1a;
use eda_netlist::{Netlist, NetlistStats, SubstageMemo};
use eda_place::{anneal, place_global, place_multilevel, plan_buffers, synthesize_clock_tree, AnnealConfig, CtsConfig, Die, GlobalConfig, MultilevelConfig, ParallelConfig};
use eda_power::{analyze, insert_clock_gating, insert_decaps, solve_ir_drop, Activity, ActivityConfig, MeshConfig, PowerConfig, PowerGrid};
use eda_route::{route_stats_memo, RouteConfig, RuleDeck};
use eda_sta::{TimingAnalysis, TimingConfig};
use eda_tech::PatterningPlan;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Every stage the supervisor runs, in execution order. Each key appears in
/// [`FlowReport::stage_status`] after any successful run.
pub const STAGES: [&str; 11] = [
    "1_synthesis",
    "2_clock_gating",
    "3_scan",
    "4_place",
    "5_scan_reorder",
    "6_cts",
    "6_sta",
    "7_route",
    "8_litho",
    "9_power",
    "10_dft",
];

/// RMS edge-placement error below which the flow's OPC pass counts as
/// converged, nm.
const OPC_RMS_EPE_LIMIT_NM: f64 = 4.0;

/// Simulation budgets for the synthesis equivalence check: the first
/// attempt, and the escalated retry after an inconclusive verdict.
const EC_BUDGET: usize = 1 << 19;
const EC_BUDGET_ESCALATED: usize = 1 << 22;

/// A hard failure inside one stage that no recovery policy can absorb.
#[derive(Debug)]
pub enum StageFailure {
    /// Synthesis failed.
    Synthesis(eda_logic::SynthesisError),
    /// A netlist transformation or traversal failed.
    Netlist(eda_netlist::NetlistError),
}

impl std::fmt::Display for StageFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageFailure::Synthesis(e) => write!(f, "{e}"),
            StageFailure::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StageFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageFailure::Synthesis(e) => Some(e),
            StageFailure::Netlist(e) => Some(e),
        }
    }
}

impl From<eda_logic::SynthesisError> for StageFailure {
    fn from(e: eda_logic::SynthesisError) -> Self {
        StageFailure::Synthesis(e)
    }
}

impl From<eda_netlist::NetlistError> for StageFailure {
    fn from(e: eda_netlist::NetlistError) -> Self {
        StageFailure::Netlist(e)
    }
}

/// Salvageable state carried by a flow error: everything completed before
/// the failure.
#[derive(Debug, Clone)]
pub struct PartialFlow {
    /// Statuses of every stage that finished (or was skipped) before the
    /// failure, keyed by stage name.
    pub statuses: BTreeMap<String, StageStatus>,
    /// The checkpoint holding the last good stage's state, when
    /// checkpointing is enabled — rerunning with `resume: true` continues
    /// from here.
    pub checkpoint: Option<PathBuf>,
}

/// Errors surfaced by the flow, carrying the failing stage and salvageable
/// partial state.
#[derive(Debug)]
pub enum FlowError {
    /// A stage hit a hard failure.
    Stage {
        /// The failing stage.
        stage: &'static str,
        /// The underlying failure.
        source: StageFailure,
        /// Everything completed before the failure.
        partial: Box<PartialFlow>,
    },
    /// A stage ran out of attempts (or blew its soft deadline) without
    /// producing an acceptable or salvageable result.
    BudgetExhausted {
        /// The exhausted stage.
        stage: &'static str,
        /// Attempts consumed.
        attempts: usize,
        /// Why the last attempt was rejected.
        reason: String,
        /// Everything completed before the failure.
        partial: Box<PartialFlow>,
    },
    /// Writing a checkpoint failed.
    Checkpoint {
        /// The stage whose state could not be saved.
        stage: &'static str,
        /// The I/O problem.
        reason: String,
    },
    /// The flow blew its wall-clock deadline
    /// ([`FlowConfig::deadline_s`](crate::config::FlowConfig::deadline_s)).
    /// Raised at a stage boundary — a running attempt always finishes, so a
    /// worker is never left hung — and carries everything completed before
    /// the deadline, including any checkpoint to resume from.
    DeadlineExceeded {
        /// The stage that was about to start when the deadline tripped.
        stage: &'static str,
        /// Wall-clock seconds the flow had consumed.
        elapsed_s: f64,
        /// The configured deadline.
        deadline_s: f64,
        /// Everything completed before the deadline.
        partial: Box<PartialFlow>,
    },
    /// `resume: true` found a checkpoint written under a different design
    /// or config.
    ResumeMismatch {
        /// The fingerprint mismatch details.
        reason: String,
    },
    /// `resume: true` found a checkpoint that does not parse.
    ResumeCorrupt {
        /// The parse problem.
        reason: String,
    },
}

impl FlowError {
    /// The stage the error is attributed to, if any.
    pub fn stage(&self) -> Option<&'static str> {
        match self {
            FlowError::Stage { stage, .. }
            | FlowError::BudgetExhausted { stage, .. }
            | FlowError::Checkpoint { stage, .. }
            | FlowError::DeadlineExceeded { stage, .. } => Some(stage),
            FlowError::ResumeMismatch { .. } | FlowError::ResumeCorrupt { .. } => None,
        }
    }

    /// The salvageable partial state, if the flow got far enough to have any.
    pub fn partial(&self) -> Option<&PartialFlow> {
        match self {
            FlowError::Stage { partial, .. }
            | FlowError::BudgetExhausted { partial, .. }
            | FlowError::DeadlineExceeded { partial, .. } => Some(partial),
            _ => None,
        }
    }
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Stage { stage, source, partial } => {
                write!(f, "stage `{stage}` failed after {} completed stage(s): {source}", partial.statuses.len())
            }
            FlowError::BudgetExhausted { stage, attempts, reason, .. } => {
                write!(f, "stage `{stage}` exhausted its budget after {attempts} attempt(s): {reason}")
            }
            FlowError::Checkpoint { stage, reason } => {
                write!(f, "failed to checkpoint stage `{stage}`: {reason}")
            }
            FlowError::DeadlineExceeded { stage, elapsed_s, deadline_s, partial } => {
                write!(
                    f,
                    "flow deadline exceeded before stage `{stage}`: {elapsed_s:.3} s elapsed against a {deadline_s:.3} s deadline, {} stage(s) completed",
                    partial.statuses.len()
                )
            }
            FlowError::ResumeMismatch { reason } => write!(f, "cannot resume: {reason}"),
            FlowError::ResumeCorrupt { reason } => write!(f, "cannot resume: corrupt checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::Stage { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Runs the full flow on a design under the stage supervisor.
///
/// # Errors
///
/// Returns a [`FlowError`] when a stage hard-fails ([`FlowError::Stage`]),
/// exhausts its attempt budget without a salvageable result
/// ([`FlowError::BudgetExhausted`]), or when checkpointing/resuming goes
/// wrong. Stage errors carry a [`PartialFlow`] with everything completed
/// before the failure.
pub fn run_flow(design: &Netlist, cfg: &FlowConfig) -> Result<FlowReport, FlowError> {
    run_flow_observed(design, cfg, None)
}

/// [`run_flow`] with an optional live per-stage progress observer: the
/// callback fires `(stage, outcome, attempts)` the moment each stage's
/// status is recorded, while the flow is still running. Observation-only —
/// installing an observer can never change the QoR. The flow daemon uses
/// this to stream stage events to clients mid-request.
pub fn run_flow_observed(
    design: &Netlist,
    cfg: &FlowConfig,
    observer: Option<crate::telemetry::ProgressFn>,
) -> Result<FlowReport, FlowError> {
    run_flow_shared(design, cfg, observer, None)
}

/// [`run_flow_observed`] with an optionally pre-opened flow store. The
/// server and daemon open the store once and pass the same `Arc` to every
/// worker, so concurrent requests share one index instead of each re-opening
/// (and re-scanning) the file; `None` resolves the store from
/// [`FlowConfig::effective_store`] per run.
pub(crate) fn run_flow_shared(
    design: &Netlist,
    cfg: &FlowConfig,
    observer: Option<crate::telemetry::ProgressFn>,
    shared_store: Option<Arc<FlowStore>>,
) -> Result<FlowReport, FlowError> {
    let threads = cfg.threads;
    let fp = checkpoint::fingerprint(design, cfg);
    // Telemetry collects for this run only: a resumed flow records spans
    // and metrics for the stages it actually reruns (checkpoints carry QoR
    // state, not telemetry), which is why `same_qor` ignores the snapshot.
    let tel = Telemetry::new();
    if let Some(obs) = observer {
        tel.set_observer(obs);
    }
    let mut sup = Supervisor::new(cfg.fault_plan.as_ref(), cfg.budgets.clone(), &tel, cfg.deadline_s);
    let mut st = FlowState::fresh();

    if let Some(dir) = &cfg.checkpoint_dir {
        if cfg.resume {
            match checkpoint::load(dir, design.name(), fp) {
                Ok(Some(loaded)) => {
                    sup.statuses = loaded.statuses.clone();
                    sup.checkpoint = Some(checkpoint::path_for(dir, design.name(), fp));
                    st = loaded;
                }
                Ok(None) => {}
                Err(LoadError::Mismatch(reason)) => return Err(FlowError::ResumeMismatch { reason }),
                Err(LoadError::Corrupt(reason)) => return Err(FlowError::ResumeCorrupt { reason }),
            }
        }
    }

    // The persistent flow store (DESIGN.md §14): stage cache, sub-stage
    // cache, and QoR provenance in one file. Disabled while a fault plan is
    // active: injected faults must exercise the real stage bodies, not
    // replay cached results. An unopenable store downgrades to an uncached
    // run (counted, never fatal).
    let store: Option<Arc<FlowStore>> = if cfg.fault_plan.is_some() {
        None
    } else {
        shared_store.or_else(|| {
            cfg.effective_store().and_then(|sc| match FlowStore::open(&sc) {
                Ok(s) => Some(Arc::new(s)),
                Err(_) => {
                    tel.count("cache.open_errors", 1);
                    None
                }
            })
        })
    };
    let memo = StageMemo {
        cache: store.as_ref().map(|s| StageCache::new(s.clone())),
        cfg,
        design,
        fp,
    };
    // The sub-stage memo: per-AIG-pass and per-net entries that survive
    // edits which invalidate a whole stage. Probed only from this
    // (orchestrating) thread; misses still fan out to the parallel kernels.
    let sub = store.as_ref().map(|s| SubMemo::new(s.clone()));

    let mut timer = Timer::new();
    let lib = cfg.library.library();
    let flow_span = tel.span(SpanKind::Flow, "flow");
    flow_span.tag("flow", &cfg.name);
    flow_span.tag("design", design.name());
    flow_span.tag("node", cfg.node);

    // ---- 1: synthesis (+ optional equivalence check) ----
    let key = memo.begin("1_synthesis", 1, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 1 {
        let stage = "1_synthesis";
        let (netlist, verified, par) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            let (synth, par) = synthesize_threaded_memo(
                design,
                lib.clone(),
                cfg.synthesis,
                cfg.map_goal,
                cfg.threads,
                cfg.aig_rewrite_passes,
                sub.as_ref().map(|s| s as &dyn SubstageMemo),
            )
            .map_err(StageFailure::Synthesis)?;
            ctx.tel.count("synth.aig_nodes_before", synth.aig_nodes_before as u64);
            ctx.tel.count("synth.aig_nodes_after", synth.aig_nodes_after as u64);
            ctx.tel.count("synth.cells", synth.cells as u64);
            for pass in &synth.passes {
                let span = ctx.tel.span(SpanKind::Kernel, &format!("aig:{}", pass.name));
                span.tag("nodes_before", pass.nodes_before);
                span.tag("nodes_after", pass.nodes_after);
                span.tag("kept", pass.kept);
            }
            // The 2006 baseline maps serially and dispatches nothing.
            if par.chunks > 0 {
                ctx.tel.kernel("map:waves", &par);
            }
            let netlist = synth.netlist;
            if !cfg.verify_synthesis {
                return Ok(StageTry::Done((netlist, None, par)));
            }
            let budget = if ctx.adapt == 0 { EC_BUDGET } else { EC_BUDGET_ESCALATED };
            ctx.tel.count("synth.ec_sim_budget", budget as u64);
            match check_equivalence(design, &netlist, &[], &[], budget) {
                Ok(EcVerdict::Equivalent) => Ok(StageTry::Done((netlist, Some(true), par))),
                Ok(EcVerdict::Counterexample(_)) => Ok(StageTry::Degraded(
                    (netlist, Some(false), par),
                    "equivalence counterexample found against the input design".into(),
                )),
                Ok(EcVerdict::Inconclusive) => {
                    if ctx.adapt == 0 {
                        Ok(StageTry::Retry {
                            reason: format!("equivalence inconclusive at the {budget}-node budget"),
                            salvage: Some((
                                (netlist, None, par),
                                "equivalence unresolved".to_string(),
                            )),
                        })
                    } else {
                        Ok(StageTry::Degraded(
                            (netlist, None, par),
                            "equivalence still inconclusive after budget escalation".into(),
                        ))
                    }
                }
                Err(e) => Ok(StageTry::Degraded(
                    (netlist, None, par),
                    format!("equivalence check failed: {e}"),
                )),
            }
        })?;
        if par.chunks > 0 {
            st.stage_threads.insert(stage.into(), par.threads);
            st.stage_speedup.insert(stage.into(), par.bounded_speedup());
        }
        st.netlist = Some(netlist);
        st.synthesis_verified = verified;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 1;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 2: clock gating (before scan so gates see plain flops) ----
    let key = memo.begin("2_clock_gating", 2, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 2 {
        let stage = "2_clock_gating";
        let cur = current_netlist(&st);
        let gated = if cfg.power.clock_gating_group == 0 {
            sup.skip(stage, "clock gating disabled", cur.clone())
        } else {
            sup.run_stage(stage, |ctx: StageCtx<'_>| {
                match insert_clock_gating(cur, cfg.power.clock_gating_group) {
                    Ok(g) => {
                        ctx.tel.count("gating.gates_inserted", g.gates_inserted as u64);
                        ctx.tel.count("gating.flops_gated", g.flops_gated as u64);
                        Ok(StageTry::Done(g.netlist))
                    }
                    Err(e) => Ok(StageTry::Degraded(
                        cur.clone(),
                        format!("clock gating failed, keeping the ungated netlist: {e}"),
                    )),
                }
            })?
        };
        st.netlist = Some(gated);
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 2;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 3: scan insertion ----
    let key = memo.begin("3_scan", 3, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 3 {
        let stage = "3_scan";
        let cur = current_netlist(&st);
        let (scanned, chains) = match cfg.scan {
            Some(scan) => sup.run_stage(stage, |ctx: StageCtx<'_>| {
                let s = insert_scan(cur, scan.chains).map_err(StageFailure::Netlist)?;
                ctx.tel.count("scan.chains", s.chains.len() as u64);
                ctx.tel
                    .count("scan.flops_stitched", s.chains.iter().map(|c| c.len() as u64).sum());
                Ok(StageTry::Done((s.netlist, s.chains)))
            })?,
            None => sup.skip(stage, "scan insertion disabled", (cur.clone(), Vec::new())),
        };
        let stats = NetlistStats::of(&scanned);
        st.cells = stats.combinational;
        st.flops = stats.flops;
        st.netlist = Some(scanned);
        st.chains = chains;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 3;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 4: placement ----
    let key = memo.begin("4_place", 4, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 4 {
        let stage = "4_place";
        let cur = current_netlist(&st);
        let die = Die::for_netlist(cur, cfg.utilization);
        let (placement, par) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            if cfg.place.cluster_gates > 0 {
                // Scale tier: multilevel cluster → coarse-place → refine.
                // Serial by construction, so thread-invariance is trivial.
                let out = place_multilevel(
                    cur,
                    die,
                    &MultilevelConfig {
                        cluster_size: cfg.place.cluster_gates,
                        coarse_iterations: cfg.place.global_iterations,
                        refine_moves_per_cell: cfg.place.anneal_moves_per_cell,
                        seed: cfg.seed,
                    },
                );
                ctx.tel.count("place.clusters", out.clusters as u64);
                ctx.tel.count("place.moves_proposed", out.refine.proposed as u64);
                ctx.tel.count("place.moves_accepted", out.refine.accepted as u64);
                ctx.tel.gauge("place.hpwl_global_um", out.hpwl_expanded);
                ctx.tel.gauge("place.hpwl_final_um", out.refine.hpwl_after);
                Ok(StageTry::Done((out.placement, None)))
            } else if cfg.place.stripes > 1 {
                let out = eda_place::place_parallel(
                    cur,
                    die,
                    &ParallelConfig {
                        threads,
                        stripes: cfg.place.stripes,
                        moves_per_cell: cfg.place.anneal_moves_per_cell,
                        passes: 2,
                        seed: cfg.seed,
                    },
                );
                ctx.tel.kernel("place:stripe_refine", &out.par_stats);
                ctx.tel.count("place.moves_accepted", out.moves_accepted as u64);
                ctx.tel.gauge("place.hpwl_global_um", out.hpwl_global);
                ctx.tel.gauge("place.hpwl_final_um", out.hpwl_final);
                Ok(StageTry::Done((out.placement, Some(out.par_stats))))
            } else {
                let mut p = place_global(
                    cur,
                    die,
                    &GlobalConfig { iterations: cfg.place.global_iterations, seed: cfg.seed },
                );
                let stats = anneal(
                    cur,
                    &mut p,
                    &AnnealConfig {
                        moves_per_cell: cfg.place.anneal_moves_per_cell,
                        seed: cfg.seed,
                        ..Default::default()
                    },
                    None,
                    None,
                );
                ctx.tel.count("place.moves_proposed", stats.proposed as u64);
                ctx.tel.count("place.moves_accepted", stats.accepted as u64);
                ctx.tel.gauge("place.hpwl_global_um", stats.hpwl_before);
                ctx.tel.gauge("place.hpwl_final_um", stats.hpwl_after);
                Ok(StageTry::Done((p, None)))
            }
        })?;
        if let Some(par) = par {
            st.stage_threads.insert(stage.into(), par.threads);
            st.stage_speedup.insert(stage.into(), par.bounded_speedup());
        }
        st.placement = Some(placement);
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 4;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 5: scan reordering (placement-aware) ----
    let key = memo.begin("5_scan_reorder", 5, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 5 {
        let stage = "5_scan_reorder";
        let placement = current_placement(&st);
        let reorder_on = cfg.scan.is_some_and(|s| s.placement_aware_reorder);
        let (chains, scan_wl) = if reorder_on && !st.chains.is_empty() {
            let chains0 = st.chains.clone();
            sup.run_stage(stage, |ctx: StageCtx<'_>| {
                let before = scan_wirelength(&chains0, placement);
                let reordered = reorder_chains(&chains0, placement);
                let wl = scan_wirelength(&reordered, placement);
                ctx.tel.gauge("scan.wirelength_before_um", before);
                ctx.tel.gauge("scan.wirelength_um", wl);
                Ok(StageTry::Done((reordered, wl)))
            })?
        } else {
            let cause = if st.chains.is_empty() { "no scan chains to reorder" } else { "placement-aware reorder disabled" };
            let wl = scan_wirelength(&st.chains, placement);
            sup.skip(stage, cause, (st.chains.clone(), wl))
        };
        st.chains = chains;
        st.scan_wirelength_um = scan_wl;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 5;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 6: clock-tree synthesis ----
    let key = memo.begin("6_cts", 6, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 6 {
        let stage = "6_cts";
        let cur = current_netlist(&st);
        let placement = current_placement(&st);
        let (skew_ps, tree_um) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            let (tree, sinks) = synthesize_clock_tree(cur, placement, &CtsConfig::default());
            ctx.tel.count("cts.sinks", sinks.len() as u64);
            ctx.tel.gauge("cts.skew_ps", tree.skew_ps());
            ctx.tel.gauge("cts.wirelength_um", tree.wirelength_um);
            Ok(StageTry::Done((tree.skew_ps(), tree.wirelength_um)))
        })?;
        st.clock_skew_ps = skew_ps;
        st.clock_tree_um = tree_um;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 6;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 7: timing (setup at nominal, hold at the fast corner) ----
    let key = memo.begin("6_sta", 7, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 7 {
        let stage = "6_sta";
        let cur = current_netlist(&st);
        let tcfg = TimingConfig { clock_period_ps: 1e6 / cfg.clock_mhz, ..Default::default() };
        let (wns, cp, holds) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            let timing = TimingAnalysis::run(cur, &tcfg).map_err(StageFailure::Netlist)?;
            ctx.tel.count("sta.arcs_timed", timing.arcs_timed as u64);
            ctx.tel.count("sta.endpoints", timing.endpoints as u64);
            ctx.tel.count("sta.failing_endpoints", timing.failing_endpoints as u64);
            ctx.tel.count("sta.hold_violations", timing.hold_violations as u64);
            ctx.tel.gauge("sta.wns_ps", timing.wns_ps);
            ctx.tel.gauge("sta.tns_ps", timing.tns_ps);
            Ok(StageTry::Done((timing.wns_ps, timing.critical_path_ps, timing.hold_violations)))
        })?;
        st.wns_ps = wns;
        st.critical_path_ps = cp;
        st.hold_violations = holds;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 7;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    let plan = PatterningPlan::for_node(cfg.node);

    // ---- 8: routing ----
    let key = memo.begin("7_route", 8, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 8 {
        let stage = "7_route";
        let cur = current_netlist(&st);
        let placement = current_placement(&st);
        let deck = if plan.needs_decomposition() {
            RuleDeck::multi_patterned(cfg.layers, plan.total_exposures())
        } else {
            RuleDeck::simple(cfg.layers)
        };
        // Recovery: if negotiated rip-up exhausts its budget with overflow
        // remaining, retry once on a coarser grid (pooling capacity across
        // more tracks) and keep whichever result overflows less.
        let mut first: Option<(eda_route::RouteOutcome, eda_par::ParStats)> = None;
        let (routed, par) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            let rcfg = RouteConfig {
                algorithm: cfg.router,
                deck: deck.clone(),
                grid_cells: cfg.route_grid_cells,
                ripup_iterations: cfg.ripup_iterations,
                threads,
                window_margin: cfg.route_window_margin,
                region_size: cfg.route_region_size,
            };
            let rcfg = if ctx.adapt == 0 { rcfg } else { rcfg.coarsened() };
            let (out, stats, replayed) =
                route_stats_memo(cur, placement, &rcfg, sub.as_ref().map(|s| s as &dyn SubstageMemo));
            if rcfg.region_size > 0 {
                // Region-partitioned mode gets its own kernel span name so the
                // legacy path's golden telemetry stays byte-stable.
                if !replayed {
                    ctx.tel.kernel("route:regions", &stats);
                }
                ctx.tel.gauge("route.regions", out.regions as f64);
                ctx.tel.count("route.local_commits", out.local_commits);
                ctx.tel.count("route.seam_conflicts", out.seam_conflicts);
                ctx.tel.count("route.negotiation_waves", out.negotiation_waves);
            } else if !replayed {
                // A replayed outcome ran no parallel kernel: no kernel span,
                // exactly like a stage-cache hit records no attempt spans.
                ctx.tel.kernel("route:batches", &stats);
            }
            ctx.tel.count("route.ripup_iterations", out.iterations as u64);
            ctx.tel.count("route.connections", out.connections as u64);
            ctx.tel.count("route.cells_expanded", out.cells_expanded);
            ctx.tel.count("route.linesearch_fallbacks", out.linesearch_fallbacks as u64);
            if cfg.route_window_margin > 0 {
                // Scale tier only: recorded conditionally so the default
                // path's golden snapshot stays byte-stable. Both values are
                // pure functions of the netlist and config, never of the
                // thread count.
                ctx.tel.gauge("route.window_peak_cells", out.peak_window_cells as f64);
                ctx.tel.gauge("route.dense_grid_cells", out.dense_grid_cells as f64);
            }
            for &overflow in &out.ripup_overflow {
                ctx.tel.observe(
                    "route.ripup_overflow",
                    &[0.0, 2.0, 8.0, 32.0, 128.0, 512.0],
                    overflow as f64,
                );
            }
            let (out, stats) = match first.take() {
                Some((o0, s0)) if (o0.overflow, o0.wirelength) <= (out.overflow, out.wirelength) => (o0, s0),
                _ => (out, stats),
            };
            if out.is_clean() || cfg.ripup_iterations == 0 {
                return Ok(StageTry::Done((out, stats)));
            }
            let overflow = out.overflow;
            if cfg.route_window_margin > 0 {
                // Scale tier: per-edge demand grows as the grid coarsens
                // (the same wires cross fewer, fatter edges), so the
                // coarse-grid retry can only make congestion worse. Accept
                // the negotiated result instead of doubling the route time.
                return Ok(StageTry::Degraded(
                    (out, stats),
                    format!("partial routes ({overflow} overflow)"),
                ));
            }
            if ctx.adapt == 0 {
                first = Some((out.clone(), stats.clone()));
                Ok(StageTry::Retry {
                    reason: format!("{overflow} overflow after the rip-up budget"),
                    salvage: Some((
                        (out, stats),
                        format!("partial routes ({overflow} overflow)"),
                    )),
                })
            } else {
                Ok(StageTry::Degraded(
                    (out, stats),
                    format!("partial routes after coarse-grid retry ({overflow} overflow)"),
                ))
            }
        })?;
        st.routed_wirelength = routed.wirelength;
        st.routed_vias = routed.vias;
        st.routed_overflow = routed.overflow;
        // A sub-stage replay dispatched no parallel work; like the other
        // stages, worker accounting only exists where workers ran.
        if par.chunks > 0 {
            st.stage_threads.insert(stage.into(), par.threads);
            st.stage_speedup.insert(stage.into(), par.bounded_speedup());
        }
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 8;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 9: lithography decomposition + OPC of the critical layer ----
    // Single-patterned nodes print the layer in one exposure — nothing to
    // decompose or correct. Below the single-exposure pitch, the
    // critical-layer geometry is modeled as a wire population whose count
    // tracks routed wirelength at the node's minimum pitch (see DESIGN.md).
    let key = memo.begin("8_litho", 9, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 9 {
        let stage = "8_litho";
        if !plan.needs_decomposition() {
            let (masks, stitches, legal, epe) =
                sup.skip(stage, "single-patterned node needs no decomposition or OPC", (1u32, 0usize, true, 0.0f64));
            st.masks = masks;
            st.stitches = stitches;
            st.litho_legal = legal;
            st.opc_rms_epe_nm = epe;
        } else {
            let pitch = cfg.node.spec().metal_pitch_nm;
            let wires = (st.routed_wirelength / 4).clamp(24, 160) as usize;
            let layout = Layout::random_wires(wires, pitch, pitch * 40.0, cfg.seed);
            let model = OpticalModel::default();
            // After decomposition each mask prints at the relaxed pitch.
            let relaxed_pitch = pitch * plan.total_exposures() as f64;
            let (masks, stitches, legal, epe) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
                // Recovery: double the stitch budget and halve the OPC gain.
                let stitch_budget = if ctx.adapt == 0 { wires / 2 } else { wires };
                let deco = decompose(&layout, plan.total_exposures(), eda_tech::SINGLE_EXPOSURE_PITCH_NM, stitch_budget);
                ctx.tel.count("litho.masks", u64::from(deco.masks));
                ctx.tel.count("litho.stitches", deco.stitches as u64);
                let ocfg = OpcConfig { threads, ..Default::default() };
                let ocfg = if ctx.adapt == 0 { ocfg } else { ocfg.backoff() };
                let target: Vec<(f64, f64)> = (0..6)
                    .map(|i| {
                        let x = 200.0 + i as f64 * relaxed_pitch;
                        (x, x + relaxed_pitch / 2.0)
                    })
                    .collect();
                let extent = 400.0 + relaxed_pitch * 6.0;
                let (opc, opc_par) = run_opc_stats(&model, &target, extent, &ocfg);
                ctx.tel.kernel("opc:fragments", &opc_par);
                ctx.tel.count("opc.fragment_moves", opc.fragment_moves as u64);
                ctx.tel
                    .count("opc.iterations", opc.rms_epe_history.len().saturating_sub(1) as u64);
                for &epe_nm in &opc.rms_epe_history {
                    ctx.tel.observe(
                        "opc.rms_epe_nm",
                        &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
                        epe_nm,
                    );
                }
                let epe = opc.final_rms_epe();
                let converged = opc.converged(OPC_RMS_EPE_LIMIT_NM);
                let value = (deco.masks, deco.stitches, deco.legal, epe);
                if deco.legal && converged {
                    return Ok(StageTry::Done(value));
                }
                let mut reasons = Vec::new();
                if !deco.legal {
                    reasons.push(format!("decomposition illegal within a {stitch_budget}-stitch budget"));
                }
                if !converged {
                    reasons.push(format!("OPC unconverged at {epe:.2} nm rms EPE"));
                }
                let reason = reasons.join("; ");
                if ctx.adapt == 0 {
                    Ok(StageTry::Retry {
                        reason: reason.clone(),
                        salvage: Some((value, format!("best-effort masks ({reason})"))),
                    })
                } else {
                    Ok(StageTry::Degraded(value, format!("{reason} (after stitch-budget and OPC-gain retry)")))
                }
            })?;
            st.masks = masks;
            st.stitches = stitches;
            st.litho_legal = legal;
            st.opc_rms_epe_nm = epe;
        }
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 9;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 10: power analysis, decap insertion, IR signoff ----
    let key = memo.begin("9_power", 10, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 10 {
        let stage = "9_power";
        let cur = current_netlist(&st);
        let placement = current_placement(&st);
        let pcfg = PowerConfig { node: cfg.node, freq_mhz: cfg.clock_mhz, ..Default::default() };
        let (powered, dynamic_mw, leakage_mw, decaps, hotspots, ir_mv) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
            let activity = Activity::estimate(cur, &ActivityConfig::default()).map_err(StageFailure::Netlist)?;
            let power = analyze(cur, &activity, &pcfg);
            let mut netlist = cur.clone();
            let mut decaps = 0usize;
            let mut hotspots = 0usize;
            let mut notes: Vec<String> = Vec::new();
            if let Some(limit) = cfg.power.decap_droop_limit_mv {
                let mut grid = PowerGrid::build(cur, placement, &activity, &pcfg, 8);
                match insert_decaps(cur, &mut grid, cfg.node, limit) {
                    Ok(out) => {
                        decaps = out.decaps_inserted;
                        hotspots = out.hotspots_after;
                        netlist = out.netlist;
                    }
                    Err(e) => notes.push(format!("decap insertion failed, continuing without decaps: {e}")),
                }
            }
            // Static IR drop of the final power map. Recovery: a stalled
            // Gauss–Seidel relaxation retries with a relaxed tolerance.
            let ir_grid = PowerGrid::build(&netlist, placement, &activity, &pcfg, 8);
            let mesh = if ctx.adapt == 0 { MeshConfig::default() } else { MeshConfig::default().relaxed() };
            let ir = solve_ir_drop(&ir_grid, cfg.node, &mesh);
            let converged = ir.converged(&mesh);
            ctx.tel.count("power.decaps_inserted", decaps as u64);
            ctx.tel.count("power.hotspots_after", hotspots as u64);
            ctx.tel.count("power.ir_iterations", ir.iterations as u64);
            ctx.tel.gauge("power.dynamic_mw", power.dynamic_mw);
            ctx.tel.gauge("power.leakage_mw", power.leakage_mw);
            ctx.tel.gauge("power.ir_drop_mv", ir.worst_drop_mv());
            let value = (netlist, power.dynamic_mw, power.leakage_mw, decaps, hotspots, ir.worst_drop_mv());
            if converged {
                if notes.is_empty() {
                    Ok(StageTry::Done(value))
                } else {
                    Ok(StageTry::Degraded(value, notes.join("; ")))
                }
            } else if ctx.adapt == 0 {
                notes.push(format!("IR solver stalled at the {}-iteration cap", mesh.max_iterations));
                let reason = notes.join("; ");
                Ok(StageTry::Retry {
                    reason: reason.clone(),
                    salvage: Some((value, "unconverged IR solution".to_string())),
                })
            } else {
                notes.push("IR solver unconverged even with relaxed tolerance".into());
                Ok(StageTry::Degraded(value, notes.join("; ")))
            }
        })?;
        st.netlist = Some(powered);
        st.dynamic_mw = dynamic_mw;
        st.leakage_mw = leakage_mw;
        st.decaps = decaps;
        st.hotspots = hotspots;
        st.ir_drop_mv = ir_mv;
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 10;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // ---- 11: test coverage (random-pattern estimate) ----
    let key = memo.begin("10_dft", 11, &mut st, &mut sup, &mut timer)?;
    if st.cursor < 11 {
        let stage = "10_dft";
        if cfg.scan.is_none() {
            st.test_coverage = sup.skip(stage, "scan insertion disabled", 0.0);
        } else {
            let cur = current_netlist(&st);
            let (coverage, par) = sup.run_stage(stage, |ctx: StageCtx<'_>| {
                let view = CombView::new(cur).map_err(StageFailure::Netlist)?;
                let faults = fault_list(cur);
                let pats = random_patterns(&view, 96, cfg.seed);
                let (sim, dft_par) = fault_sim_threaded(cur, &view, &faults, &pats, threads);
                ctx.tel.kernel("fault_sim:faults", &dft_par);
                ctx.tel.count("dft.faults", sim.total as u64);
                ctx.tel.count("dft.detected", sim.num_detected as u64);
                ctx.tel.count("dft.pattern_blocks", sim.pattern_blocks as u64);
                ctx.tel.gauge("dft.coverage", sim.coverage());
                Ok(StageTry::Done((sim.coverage(), dft_par)))
            })?;
            st.test_coverage = coverage;
            st.stage_threads.insert(stage.into(), par.threads);
            st.stage_speedup.insert(stage.into(), par.bounded_speedup());
        }
        st.stage_seconds.insert(stage.into(), timer.lap());
        st.cursor = 11;
        memo.finish(key, stage, &mut st, &mut sup);
        save_checkpoint(cfg, design.name(), fp, &mut st, &mut sup, stage)?;
    }

    // Long-net buffering is part of area accounting.
    let netlist = current_netlist(&st);
    let placement = current_placement(&st);
    let buffers = plan_buffers(netlist, placement, placement.die.width_um / 2.0, &[]);

    // Sub-stage traffic lands in the metric registry only when a store is
    // enabled, so the storeless golden snapshot stays byte-stable.
    if let Some(sub) = &sub {
        tel.count("cache.substage_hits", sub.hits.get());
        tel.count("cache.substage_misses", sub.misses.get());
        if sub.errors.get() > 0 {
            tel.count("cache.errors", sub.errors.get());
        }
    }

    drop(flow_span);
    let report = FlowReport {
        flow: cfg.name.clone(),
        design: design.name().to_string(),
        node: cfg.node.to_string(),
        cell_area_um2: netlist.area_um2() + buffers.added_area_um2,
        cells: st.cells,
        flops: st.flops,
        wns_ps: st.wns_ps,
        critical_path_ps: st.critical_path_ps,
        hpwl_um: placement.total_hpwl(netlist),
        routed_wirelength: st.routed_wirelength,
        vias: st.routed_vias,
        overflow: st.routed_overflow,
        masks: st.masks,
        stitches: st.stitches,
        litho_legal: st.litho_legal,
        opc_rms_epe_nm: st.opc_rms_epe_nm,
        dynamic_mw: st.dynamic_mw,
        leakage_mw: st.leakage_mw,
        test_coverage: st.test_coverage,
        scan_wirelength_um: st.scan_wirelength_um,
        decaps: st.decaps,
        hotspots: st.hotspots,
        clock_skew_ps: st.clock_skew_ps,
        clock_tree_um: st.clock_tree_um,
        ir_drop_mv: st.ir_drop_mv,
        hold_violations: st.hold_violations,
        synthesis_verified: st.synthesis_verified,
        stage_status: sup.statuses.clone(),
        stage_seconds: st.stage_seconds.clone(),
        stage_threads: st.stage_threads.clone(),
        stage_speedup: st.stage_speedup.clone(),
        telemetry: tel.snapshot(),
    };
    if let Some(store) = &store {
        if store.config().provenance {
            record_provenance(store, &report, fp);
        }
    }
    Ok(report)
}

/// Appends one `qor` row plus per-stage `qstage` rows for a completed flow,
/// feeding `experiments query`. Best-effort by design: a full or locked
/// store must never fail a flow that already produced its report.
fn record_provenance(store: &FlowStore, report: &FlowReport, cfg_fp: u64) {
    let wall_s: f64 = report.stage_seconds.values().sum();
    let row = QorRow {
        seq: 0,
        design: report.design.clone(),
        node: report.node.clone(),
        cfg_fp,
        qor_fp: report.qor_fingerprint(),
        wns_ps: report.wns_ps,
        overflow: report.overflow,
        hpwl_um: report.hpwl_um,
        wall_s,
        peak_rss_bytes: crate::telemetry::read_peak_rss_bytes(),
    };
    let _ = store.append(Table::Qor, &row.to_payload());
    for (stage, status) in &report.stage_status {
        let srow = StageRow {
            seq: 0,
            design: report.design.clone(),
            stage: stage.clone(),
            outcome: status.outcome.to_string(),
            attempts: status.attempts as u32,
            wall_s: report.stage_seconds.get(stage).copied().unwrap_or(0.0),
        };
        let _ = store.append(Table::QStage, &srow.to_payload());
    }
}

/// Adapter exposing the store's sub-stage table through the engine crates'
/// [`SubstageMemo`] trait. The store key folds the kind into the engine's
/// key so `aig.rw` and `route.net` entries can never collide. Counters are
/// interior-mutable `Cell`s because the memo contract is single-threaded:
/// probes and stores happen only on the orchestrating thread.
struct SubMemo {
    inner: Arc<FlowStore>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    errors: Cell<u64>,
}

impl SubMemo {
    fn new(inner: Arc<FlowStore>) -> SubMemo {
        SubMemo { inner, hits: Cell::new(0), misses: Cell::new(0), errors: Cell::new(0) }
    }

    fn store_key(kind: &str, key: u64) -> u64 {
        fnv1a(format!("{kind}|{key:016x}").bytes())
    }
}

impl SubstageMemo for SubMemo {
    fn load(&self, kind: &str, key: u64) -> Option<String> {
        match self.inner.get(Table::Sub, Self::store_key(kind, key)) {
            Lookup::Hit(payload) => {
                self.hits.set(self.hits.get() + 1);
                Some(payload)
            }
            // Evicted and cold are the same to a memo: recompute. The
            // engine-side parsers reject any payload that does not match
            // their versioned format, so Corrupt cannot replay either.
            Lookup::Miss | Lookup::Evicted => {
                self.misses.set(self.misses.get() + 1);
                None
            }
            Lookup::Corrupt(_) => {
                self.errors.set(self.errors.get() + 1);
                None
            }
        }
    }

    fn store(&self, kind: &str, key: u64, payload: &str) {
        if self.inner.put(Table::Sub, Self::store_key(kind, key), payload).is_err() {
            self.errors.set(self.errors.get() + 1);
        }
    }
}

/// The netlist as of the last completed stage. Internal invariant: every
/// stage past `1_synthesis` has one.
fn current_netlist(st: &FlowState) -> &Netlist {
    st.netlist.as_ref().expect("netlist exists after synthesis")
}

/// The placement as of the last completed stage. Internal invariant: every
/// stage past `4_place` has one.
fn current_placement(st: &FlowState) -> &eda_place::Placement {
    st.placement.as_ref().expect("placement exists after the place stage")
}

/// The per-stage cache hooks of the incremental engine: [`begin`] runs
/// before a stage's `if st.cursor < n` guard and, on a cache hit, advances
/// the cursor past the stage so the body never executes; [`finish`] stores
/// the just-computed post-stage state on the cold path.
///
/// [`begin`]: StageMemo::begin
/// [`finish`]: StageMemo::finish
struct StageMemo<'a> {
    /// `None` = caching off (no store, or a fault plan is active).
    cache: Option<StageCache>,
    cfg: &'a FlowConfig,
    design: &'a Netlist,
    fp: u64,
}

impl StageMemo<'_> {
    /// Tries to replay `stage` from the cache. On a hit the cached
    /// post-stage state replaces `st` wholesale — the content address covers
    /// the serialized pre-stage state including the status prefix, so the
    /// cached state agrees with the current run on everything before this
    /// stage — and `Ok(None)` is returned with `st.cursor == done_cursor`,
    /// which skips the stage body. A miss, an evicted entry, or an
    /// unreadable entry counts its metric and returns the key for
    /// [`finish`](Self::finish) to store under after the recompute.
    ///
    /// The key's config component is the *per-stage* fingerprint
    /// ([`cache::stage_fp`]), not the whole-config one: a knob change
    /// invalidates exactly the stages that read the knob, and the unchanged
    /// prefix keeps hitting.
    fn begin(
        &self,
        stage: &'static str,
        done_cursor: usize,
        st: &mut FlowState,
        sup: &mut Supervisor<'_>,
        timer: &mut Timer,
    ) -> Result<Option<u64>, FlowError> {
        if st.cursor >= done_cursor {
            return Ok(None); // Already past this stage (resume).
        }
        let Some(cache) = &self.cache else {
            return Ok(None);
        };
        let sfp = cache::stage_fp(stage, self.design, self.cfg);
        let key = cache::entry_key(stage, sfp, cache::state_hash(st));
        match cache.load(stage, key) {
            Ok(Some(cached)) if cached.cursor == done_cursor => {
                sup.cache_hit(stage, &cached.statuses);
                *st = cached;
                st.stage_seconds.insert(stage.into(), timer.lap());
                save_checkpoint(self.cfg, self.design.name(), self.fp, st, sup, stage)?;
                Ok(None)
            }
            Ok(Some(_)) => {
                // Parses but stopped at the wrong cursor: replaying it would
                // derail the stage sequence, so treat it as unreadable.
                sup.cache_unreadable();
                Ok(Some(key))
            }
            Ok(None) => {
                sup.cache_miss();
                Ok(Some(key))
            }
            Err(CacheError::Evicted) => {
                sup.cache_evicted();
                Ok(Some(key))
            }
            Err(_) => {
                sup.cache_unreadable();
                Ok(Some(key))
            }
        }
    }

    /// Stores the just-computed post-stage state under `key`. A failed
    /// store never fails the flow: it counts into `cache.errors` and moves
    /// on.
    fn finish(&self, key: Option<u64>, stage: &str, st: &mut FlowState, sup: &mut Supervisor<'_>) {
        let (Some(cache), Some(key)) = (&self.cache, key) else {
            return;
        };
        st.statuses = sup.statuses.clone();
        if cache.store(stage, key, st).is_err() {
            sup.telemetry().count("cache.errors", 1);
        }
    }
}

fn save_checkpoint(
    cfg: &FlowConfig,
    design: &str,
    fp: u64,
    st: &mut FlowState,
    sup: &mut Supervisor<'_>,
    stage: &'static str,
) -> Result<(), FlowError> {
    let Some(dir) = &cfg.checkpoint_dir else {
        return Ok(());
    };
    st.statuses = sup.statuses.clone();
    match checkpoint::save(dir, design, fp, st) {
        Ok(path) => {
            sup.checkpoint = Some(path);
            Ok(())
        }
        Err(reason) => Err(FlowError::Checkpoint { stage, reason }),
    }
}

struct Timer {
    last: Instant,
}

impl Timer {
    fn new() -> Timer {
        Timer { last: Instant::now() }
    }

    fn lap(&mut self) -> f64 {
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::StageOutcome;
    use eda_netlist::generate;
    use eda_tech::Node;

    #[test]
    fn advanced_flow_runs_end_to_end() {
        let design = generate::switch_fabric(3, 3).unwrap();
        let report = run_flow(&design, &FlowConfig::advanced_2016(Node::N28)).unwrap();
        assert!(report.cell_area_um2 > 0.0);
        assert!(report.hpwl_um > 0.0);
        assert!(report.routed_wirelength > 0);
        assert!(report.test_coverage > 0.5);
        assert!(report.dynamic_mw > 0.0);
        assert!(!report.stage_seconds.is_empty());
    }

    #[test]
    fn basic_flow_runs_end_to_end() {
        let design = generate::ripple_carry_adder(8).unwrap();
        let report = run_flow(&design, &FlowConfig::basic_2006(Node::N90)).unwrap();
        assert!(report.cell_area_um2 > 0.0);
        assert_eq!(report.decaps, 0, "2006 flow has no auto-decap");
    }

    #[test]
    fn advanced_beats_basic_on_score() {
        let design = generate::random_logic(generate::RandomLogicConfig {
            gates: 250,
            seed: 6,
            ..Default::default()
        })
        .unwrap();
        let basic = run_flow(&design, &FlowConfig::basic_2006(Node::N90)).unwrap();
        let advanced = run_flow(&design, &FlowConfig::advanced_2016(Node::N90)).unwrap();
        assert!(
            advanced.cell_area_um2 < basic.cell_area_um2,
            "advanced area {:.0} must beat basic {:.0}",
            advanced.cell_area_um2,
            basic.cell_area_um2
        );
        assert!(advanced.score() < basic.score());
    }

    #[test]
    fn multipatterned_node_reports_masks() {
        let design = generate::parity_tree(16).unwrap();
        let report = run_flow(&design, &FlowConfig::advanced_2016(Node::N10)).unwrap();
        assert!(report.masks >= 2, "10nm critical layer needs multiple masks");
        let litho = &report.stage_status["8_litho"];
        assert!(
            !matches!(litho.outcome, StageOutcome::Skipped { .. }),
            "multi-patterned flow must run decomposition + OPC, got {}",
            litho.outcome
        );
        assert!(
            report.opc_rms_epe_nm <= super::OPC_RMS_EPE_LIMIT_NM,
            "OPC must converge at the decomposed pitch, got {:.2} nm",
            report.opc_rms_epe_nm
        );
    }

    #[test]
    fn every_stage_reports_a_status() {
        let design = generate::switch_fabric(3, 3).unwrap();
        for cfg in [FlowConfig::advanced_2016(Node::N28), FlowConfig::basic_2006(Node::N90)] {
            let report = run_flow(&design, &cfg).unwrap();
            assert_eq!(report.stage_status.len(), STAGES.len(), "flow {}", cfg.name);
            for stage in STAGES {
                assert!(report.stage_status.contains_key(stage), "missing status for {stage}");
            }
        }
    }

    #[test]
    fn basic_flow_skips_what_it_lacks() {
        let design = generate::ripple_carry_adder(8).unwrap();
        let report = run_flow(&design, &FlowConfig::basic_2006(Node::N90)).unwrap();
        let skipped = |stage: &str| {
            matches!(
                report.stage_status[stage].outcome,
                StageOutcome::Skipped { .. }
            )
        };
        assert!(skipped("2_clock_gating"), "basic flow has no clock gating");
        assert!(skipped("8_litho"), "90nm is single-patterned");
        assert!(report.stage_status["1_synthesis"].is_clean());
    }
}
