//! The embedded flow store: one schema'd, append-friendly file holding the
//! stage cache, the sub-stage memo entries, and the QoR provenance history
//! (DESIGN.md §14).
//!
//! The store replaces the loose directory of `.stage` files the PR-4 cache
//! wrote: a single file of length-framed, checksummed records over four
//! typed tables ([`Table`]), with size-bounded LRU compaction and
//! corruption-always-downgrades-to-recompute semantics. Two trait surfaces
//! expose it:
//!
//! * [`Store`] — typed key-value access for cache layers (stage entries,
//!   sub-stage memo payloads) plus append-only provenance rows;
//! * [`Query`] — the read side `experiments query` and the daemon `query`
//!   frame answer from: QoR history per design, stage history per run.
//!
//! [`StoreConfig`] is the user-facing knob bundle ([`crate::FlowConfig`]
//! threads it through the flow, server, and daemon); [`FlowStore`] is the
//! file-backed implementation.
//!
//! # Examples
//!
//! ```
//! use eda_core::store::{FlowStore, Query, QorQuery, Store, StoreConfig, Table};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("eda-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let cfg = StoreConfig::at(dir.join("flow.store"));
//! let store = FlowStore::open(&cfg)?;
//! store.put(Table::Sub, 7, "payload")?;
//! assert_eq!(store.get(Table::Sub, 7).into_payload().as_deref(), Some("payload"));
//! store.append(Table::Qor, "run demo generic 0 0 0 0 0 0 0")?;
//! let rows = store.qor_history(&QorQuery { design: Some("demo".into()), ..Default::default() })?;
//! assert_eq!(rows.len(), 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

mod file;

pub use file::FlowStore;

use std::path::PathBuf;

/// Default size bound for a store file (64 MiB).
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// What to do when the store file outgrows [`StoreConfig::max_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Compact the file, dropping least-recently-touched cache entries
    /// until it fits. Provenance rows are never evicted.
    Lru,
    /// Never evict; writes that would exceed the bound are rejected with
    /// [`StoreError::TooLarge`] (callers treat that as "not cached").
    Never,
}

/// Typed configuration for the embedded flow store — the replacement for
/// the bare `cache_dir` knob. Construct with [`StoreConfig::at`] and adjust
/// fields (or use the `with_*` helpers); thread through
/// [`crate::FlowConfig::builder`], [`crate::FlowServerBuilder`], or the
/// daemon config.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreConfig {
    /// The store file. Parent directory is created on open.
    pub path: PathBuf,
    /// Size bound in bytes; the eviction policy keeps the file under it.
    pub max_bytes: u64,
    /// Eviction policy for cache tables when the bound is hit.
    pub eviction: EvictionPolicy,
    /// Whether completed runs append QoR provenance rows.
    pub provenance: bool,
}

impl StoreConfig {
    /// A store at `path` with defaults: 64 MiB bound, LRU eviction,
    /// provenance on.
    pub fn at(path: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            path: path.into(),
            max_bytes: DEFAULT_MAX_BYTES,
            eviction: EvictionPolicy::Lru,
            provenance: true,
        }
    }

    /// Same config with a different size bound.
    pub fn with_max_bytes(mut self, max_bytes: u64) -> StoreConfig {
        self.max_bytes = max_bytes;
        self
    }

    /// Same config with a different eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> StoreConfig {
        self.eviction = eviction;
        self
    }

    /// Same config with provenance recording switched on or off.
    pub fn with_provenance(mut self, provenance: bool) -> StoreConfig {
        self.provenance = provenance;
        self
    }
}

/// The store's tables. Cache tables ([`Table::Stage`], [`Table::Sub`]) hold
/// content-addressed entries and are subject to eviction; provenance tables
/// ([`Table::Qor`], [`Table::QStage`]) are append-only sequences and never
/// evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Table {
    /// Whole-stage cache entries: serialized post-stage flow state.
    Stage,
    /// Sub-stage memo entries: per-AIG-pass and per-net/route payloads.
    Sub,
    /// One row per completed flow run (QoR + config fingerprints).
    Qor,
    /// One row per executed stage of a completed run.
    QStage,
}

impl Table {
    /// The token recorded in the file framing.
    pub fn as_str(self) -> &'static str {
        match self {
            Table::Stage => "stage",
            Table::Sub => "sub",
            Table::Qor => "qor",
            Table::QStage => "qstage",
        }
    }

    pub(crate) fn parse(s: &str) -> Option<Table> {
        match s {
            "stage" => Some(Table::Stage),
            "sub" => Some(Table::Sub),
            "qor" => Some(Table::Qor),
            "qstage" => Some(Table::QStage),
            _ => None,
        }
    }

    /// Whether rows in this table survive compaction unconditionally.
    pub fn is_provenance(self) -> bool {
        matches!(self, Table::Qor | Table::QStage)
    }
}

/// The outcome of a point lookup. Every non-`Hit` variant downgrades to a
/// recompute in cache layers — the distinctions exist for telemetry
/// (`cache.misses` vs `cache.evicted_miss` vs `cache.errors`).
#[derive(Debug, Clone, PartialEq)]
pub enum Lookup {
    /// The entry's payload, checksum-verified.
    Hit(String),
    /// No such entry.
    Miss,
    /// The entry was indexed but gone by read time — evicted (or the file
    /// compacted) between probe and read. The PR-4 cache surfaced this
    /// window as an I/O error; it is an expected race, not a fault.
    Evicted,
    /// The entry's bytes are present but fail validation (checksum or
    /// framing). The reason string feeds diagnostics, never control flow.
    Corrupt(String),
}

impl Lookup {
    /// The payload if this is a hit.
    pub fn into_payload(self) -> Option<String> {
        match self {
            Lookup::Hit(p) => Some(p),
            _ => None,
        }
    }
}

/// Errors from store operations. Cache layers treat every one of these as
/// "not cached" — the flow never fails because its store did.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Underlying I/O failure (message carries the `std::io::Error`).
    Io(String),
    /// The cross-process lock could not be acquired in time.
    LockTimeout(PathBuf),
    /// A record would push the file past `max_bytes` and the policy forbids
    /// (or compaction cannot make) room.
    TooLarge {
        /// Bytes the record needs.
        need: u64,
        /// The configured bound.
        max: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store i/o: {m}"),
            StoreError::LockTimeout(p) => {
                write!(f, "store lock timeout: {}", p.display())
            }
            StoreError::TooLarge { need, max } => {
                write!(f, "record needs {need} B but the store is bounded at {max} B")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Typed write/read surface over the store's tables.
pub trait Store {
    /// Writes `payload` under `(table, key)`, replacing any prior entry.
    ///
    /// # Errors
    ///
    /// Fails on I/O, lock timeout, or when the record cannot fit under the
    /// size bound.
    fn put(&self, table: Table, key: u64, payload: &str) -> Result<(), StoreError>;

    /// Point lookup of `(table, key)`.
    fn get(&self, table: Table, key: u64) -> Lookup;

    /// Appends a row to a sequence table and returns its sequence number
    /// (keys are assigned monotonically per table).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Store::put`].
    fn append(&self, table: Table, payload: &str) -> Result<u64, StoreError>;

    /// Current store file size in bytes.
    fn len_bytes(&self) -> u64;
}

/// Filters for provenance queries. `None` fields match everything;
/// `last = 0` means unlimited.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QorQuery {
    /// Match rows of this design only.
    pub design: Option<String>,
    /// Match stage rows of this stage only (ignored by [`Query::qor_history`]).
    pub stage: Option<String>,
    /// Keep only the newest N rows (after filtering).
    pub last: usize,
}

/// One whole-run provenance row (table [`Table::Qor`]), newest runs last in
/// the file, returned newest-first by queries.
#[derive(Debug, Clone, PartialEq)]
pub struct QorRow {
    /// Sequence number (monotonic per store file).
    pub seq: u64,
    /// Design name.
    pub design: String,
    /// Process node label.
    pub node: String,
    /// Config fingerprint the run executed under.
    pub cfg_fp: u64,
    /// Fingerprint of the run's deterministic QoR serialization.
    pub qor_fp: u64,
    /// Worst negative slack in picoseconds.
    pub wns_ps: f64,
    /// Routing overflow after the final iteration.
    pub overflow: u64,
    /// Total half-perimeter wirelength in µm.
    pub hpwl_um: f64,
    /// Wall-clock seconds for the run.
    pub wall_s: f64,
    /// Peak resident set in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
}

/// One per-stage provenance row (table [`Table::QStage`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Sequence number (monotonic per store file).
    pub seq: u64,
    /// Design name.
    pub design: String,
    /// Stage name (for example `7_route`).
    pub stage: String,
    /// Final stage status (`ok`, `degraded:<policy>`, `cached`, ...).
    pub outcome: String,
    /// Attempts the supervisor spent.
    pub attempts: u32,
    /// Stage wall-clock seconds.
    pub wall_s: f64,
}

/// Read surface over the provenance tables.
pub trait Query {
    /// Whole-run QoR history matching `q`, newest first.
    ///
    /// # Errors
    ///
    /// Fails only on I/O; malformed rows are skipped, never fatal.
    fn qor_history(&self, q: &QorQuery) -> Result<Vec<QorRow>, StoreError>;

    /// Per-stage history matching `q` (design and stage filters), newest
    /// first.
    ///
    /// # Errors
    ///
    /// Fails only on I/O; malformed rows are skipped, never fatal.
    fn stage_history(&self, q: &QorQuery) -> Result<Vec<StageRow>, StoreError>;
}

impl QorRow {
    /// Serializes to the store's `qor` row payload.
    pub fn to_payload(&self) -> String {
        format!(
            "run {} {} {:016x} {:016x} {:016x} {} {:016x} {:016x} {}",
            file::escape_token(&self.design),
            file::escape_token(&self.node),
            self.cfg_fp,
            self.qor_fp,
            self.wns_ps.to_bits(),
            self.overflow,
            self.hpwl_um.to_bits(),
            self.wall_s.to_bits(),
            self.peak_rss_bytes,
        )
    }

    /// Parses a `qor` row payload (the sequence number comes from the
    /// record key). `None` on malformed rows — queries skip them.
    pub fn parse(seq: u64, payload: &str) -> Option<QorRow> {
        let mut f = payload.split(' ');
        if f.next()? != "run" {
            return None;
        }
        let row = QorRow {
            seq,
            design: file::unescape_token(f.next()?)?,
            node: file::unescape_token(f.next()?)?,
            cfg_fp: u64::from_str_radix(f.next()?, 16).ok()?,
            qor_fp: u64::from_str_radix(f.next()?, 16).ok()?,
            wns_ps: f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?),
            overflow: f.next()?.parse().ok()?,
            hpwl_um: f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?),
            wall_s: f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?),
            peak_rss_bytes: f.next()?.parse().ok()?,
        };
        if f.next().is_some() {
            return None;
        }
        Some(row)
    }
}

impl StageRow {
    /// Serializes to the store's `qstage` row payload.
    pub fn to_payload(&self) -> String {
        format!(
            "stage {} {} {} {} {:016x}",
            file::escape_token(&self.design),
            file::escape_token(&self.stage),
            file::escape_token(&self.outcome),
            self.attempts,
            self.wall_s.to_bits(),
        )
    }

    /// Parses a `qstage` row payload; `None` on malformed rows.
    pub fn parse(seq: u64, payload: &str) -> Option<StageRow> {
        let mut f = payload.split(' ');
        if f.next()? != "stage" {
            return None;
        }
        let row = StageRow {
            seq,
            design: file::unescape_token(f.next()?)?,
            stage: file::unescape_token(f.next()?)?,
            outcome: file::unescape_token(f.next()?)?,
            attempts: f.next()?.parse().ok()?,
            wall_s: f64::from_bits(u64::from_str_radix(f.next()?, 16).ok()?),
        };
        if f.next().is_some() {
            return None;
        }
        Some(row)
    }
}
