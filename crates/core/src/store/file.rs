//! [`FlowStore`]: the single-file, schema'd store behind the flow cache and
//! provenance tables.
//!
//! ## On-disk format
//!
//! ```text
//! eda-store v1\n
//! %rec <table> <key:016x> <payload_len> <fnv:016x>\n
//! <payload bytes>\n
//! %rec ...
//! ```
//!
//! Records are length-framed and checksummed (FNV-1a over the payload);
//! writes append under a sidecar file lock, so the file is valid at every
//! record boundary. A crashed writer leaves at worst a broken tail, which
//! the scanner skips (lost entries read as misses — recompute, never
//! failure). Re-`put`ting a key appends a newer record; the scan's
//! later-wins rule keeps point lookups on the newest version and
//! compaction drops the dead bytes.
//!
//! ## Eviction
//!
//! When an append would push the file past [`StoreConfig::max_bytes`]
//! under [`EvictionPolicy::Lru`], the store compacts: provenance rows
//! ([`Table::is_provenance`]) are always kept, cache entries are kept
//! newest-touched-first while they fit, and the survivors are rewritten
//! through a temp file + atomic rename. A reader holding a stale index
//! entry across a compaction observes [`Lookup::Evicted`] — an expected
//! race that downgrades to recompute, not an I/O error.

use super::{
    EvictionPolicy, Lookup, QorQuery, QorRow, Query, StageRow, Store, StoreConfig, StoreError,
    Table,
};
use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::os::unix::fs::MetadataExt;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const HEADER: &[u8] = b"eda-store v1\n";
const REC_MAGIC: &[u8] = b"%rec ";

/// FNV-1a, the store's record checksum (same constants as the cache keys).
fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// %-escapes spaces, `%` and control bytes so a value stays one token on a
/// space-split row.
pub(crate) fn escape_token(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b == b' ' || b == b'%' || b < 0x20 || b == 0x7f {
            out.push_str(&format!("%{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    if out.is_empty() {
        out.push_str("%00");
    }
    out
}

/// Inverse of [`escape_token`]; `None` on malformed escapes.
pub(crate) fn unescape_token(s: &str) -> Option<String> {
    if s == "%00" {
        return Some(String::new());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

fn encode_header(table: Table, key: u64, payload_len: usize, sum: u64) -> String {
    format!("%rec {} {key:016x} {payload_len} {sum:016x}\n", table.as_str())
}

/// One indexed record.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Byte offset of the record header line in the file.
    offset: u64,
    header_len: u32,
    payload_len: u32,
    /// FNV-1a of the payload, as claimed by the header (verified on read).
    sum: u64,
    /// LRU clock value of the last hit (or the scan order on open).
    touched: u64,
}

impl Entry {
    fn record_len(&self) -> u64 {
        self.header_len as u64 + self.payload_len as u64 + 1
    }
}

#[derive(Debug, Default)]
struct Inner {
    /// Inode of the file the index was built against (0 = unknown).
    ino: u64,
    /// File size as of the last scan — where the next append lands.
    file_len: u64,
    /// Monotonic LRU clock.
    touch: u64,
    index: HashMap<(Table, u64), Entry>,
    next_qor: u64,
    next_qstage: u64,
}

/// Why a point read at an indexed offset did not produce a payload.
enum ReadFail {
    /// The bytes at the offset are not the expected record: the file was
    /// compacted or replaced under us.
    Stale,
    /// The record is where the index says, but its content fails
    /// validation.
    Corrupt(String),
}

/// Sidecar lock guarding cross-process writes. Dropping releases it.
struct FileLock {
    path: PathBuf,
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn acquire_lock(path: &Path) -> Result<FileLock, StoreError> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match OpenOptions::new().write(true).create_new(true).open(path) {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Ok(FileLock { path: path.to_path_buf() });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // A lock abandoned by a dead writer goes stale after 30 s.
                let stale = fs::metadata(path)
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|m| m.elapsed().ok())
                    .is_some_and(|age| age > Duration::from_secs(30));
                if stale {
                    let _ = fs::remove_file(path);
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(StoreError::LockTimeout(path.to_path_buf()));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e.into()),
        }
    }
}

/// The file-backed flow store. Cheap to share: in-process callers clone an
/// `Arc<FlowStore>`; separate processes open the same path and coordinate
/// through the sidecar write lock and stale-tolerant reads.
#[derive(Debug)]
pub struct FlowStore {
    cfg: StoreConfig,
    lock_path: PathBuf,
    inner: Mutex<Inner>,
}

impl FlowStore {
    /// Opens (creating if absent) the store file described by `cfg` and
    /// indexes its records. A file with a broken tail or embedded garbage
    /// opens fine — unreadable records are simply not indexed.
    ///
    /// # Errors
    ///
    /// Fails only when the file (or its parent directory) cannot be
    /// created or read at all.
    pub fn open(cfg: &StoreConfig) -> Result<FlowStore, StoreError> {
        if let Some(parent) = cfg.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let mut lock_name = cfg.path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
        lock_name.push(".lock");
        let lock_path = cfg.path.with_file_name(lock_name);
        let store = FlowStore { cfg: cfg.clone(), lock_path, inner: Mutex::new(Inner::default()) };
        {
            let mut inner = store.lock_inner();
            if fs::metadata(&store.cfg.path).is_err() {
                fs::write(&store.cfg.path, HEADER)?;
            }
            store.rescan(&mut inner)?;
        }
        Ok(store)
    }

    /// The store file path.
    pub fn path(&self) -> &Path {
        &self.cfg.path
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn stat(&self) -> Option<(u64, u64)> {
        fs::metadata(&self.cfg.path).ok().map(|m| (m.ino(), m.len()))
    }

    /// Rebuilds the index from the file (full scan).
    fn rescan(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let bytes = fs::read(&self.cfg.path)?;
        let (ino, _) = self.stat().unwrap_or((0, 0));
        inner.ino = ino;
        inner.index.clear();
        inner.next_qor = 0;
        inner.next_qstage = 0;
        Self::scan(inner, &bytes, 0);
        inner.file_len = bytes.len() as u64;
        Ok(())
    }

    /// Brings the index up to date if the file changed since the last scan:
    /// appended-to files are scanned incrementally, replaced or shrunk
    /// files from scratch. Missing files are recreated empty.
    fn refresh(&self, inner: &mut Inner) -> Result<(), StoreError> {
        match self.stat() {
            None => {
                fs::write(&self.cfg.path, HEADER)?;
                self.rescan(inner)
            }
            Some((ino, len)) => {
                if ino != inner.ino || len < inner.file_len {
                    self.rescan(inner)
                } else if len > inner.file_len {
                    let mut f = fs::File::open(&self.cfg.path)?;
                    f.seek(SeekFrom::Start(inner.file_len))?;
                    let mut bytes = Vec::with_capacity((len - inner.file_len) as usize);
                    f.read_to_end(&mut bytes)?;
                    let base = inner.file_len;
                    Self::scan(inner, &bytes, base);
                    inner.file_len = base + bytes.len() as u64;
                    Ok(())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Indexes every parseable record in `bytes` (positioned at `base` in
    /// the file), later records winning duplicate keys. Garbage resyncs to
    /// the next `\n%rec `; a truncated tail is dropped.
    fn scan(inner: &mut Inner, bytes: &[u8], base: u64) {
        let mut pos = 0usize;
        if base == 0 && bytes.starts_with(HEADER) {
            pos = HEADER.len();
        }
        while pos < bytes.len() {
            if !bytes[pos..].starts_with(REC_MAGIC) {
                match bytes[pos..].windows(6).position(|w| w == b"\n%rec ") {
                    Some(i) => {
                        pos += i + 1;
                        continue;
                    }
                    None => break,
                }
            }
            // Header lines are short; a missing newline within the bound
            // means a truncated or corrupted header.
            let bound = (pos + 160).min(bytes.len());
            let Some(nl) = bytes[pos..bound].iter().position(|&b| b == b'\n') else {
                break;
            };
            let parsed = std::str::from_utf8(&bytes[pos + REC_MAGIC.len()..pos + nl])
                .ok()
                .and_then(|line| {
                    let mut f = line.split(' ');
                    let table = Table::parse(f.next()?)?;
                    let key = u64::from_str_radix(f.next()?, 16).ok()?;
                    let len: usize = f.next()?.parse().ok()?;
                    let sum = u64::from_str_radix(f.next()?, 16).ok()?;
                    if f.next().is_some() {
                        return None;
                    }
                    Some((table, key, len, sum))
                });
            let Some((table, key, len, sum)) = parsed else {
                pos += 1;
                continue;
            };
            let payload_off = pos + nl + 1;
            if payload_off + len + 1 > bytes.len() {
                break; // truncated tail: entries past here are lost
            }
            if bytes[payload_off + len] != b'\n' {
                pos += 1;
                continue;
            }
            inner.touch += 1;
            inner.index.insert(
                (table, key),
                Entry {
                    offset: base + pos as u64,
                    header_len: (nl + 1) as u32,
                    payload_len: len as u32,
                    sum,
                    touched: inner.touch,
                },
            );
            match table {
                Table::Qor => inner.next_qor = inner.next_qor.max(key + 1),
                Table::QStage => inner.next_qstage = inner.next_qstage.max(key + 1),
                _ => {}
            }
            pos = payload_off + len + 1;
        }
    }

    /// Reads and validates one record at its indexed location.
    fn read_entry(&self, table: Table, key: u64, e: &Entry) -> Result<String, ReadFail> {
        let expected = encode_header(table, key, e.payload_len as usize, e.sum);
        let total = e.record_len() as usize;
        let mut buf = vec![0u8; total];
        let read = fs::File::open(&self.cfg.path)
            .and_then(|mut f| {
                f.seek(SeekFrom::Start(e.offset))?;
                f.read_exact(&mut buf)
            });
        if read.is_err() {
            return Err(ReadFail::Stale);
        }
        if &buf[..e.header_len as usize] != expected.as_bytes() {
            return Err(ReadFail::Stale);
        }
        let payload = &buf[e.header_len as usize..total - 1];
        if buf[total - 1] != b'\n' {
            return Err(ReadFail::Corrupt("record framing".to_string()));
        }
        if fnv(payload) != e.sum {
            return Err(ReadFail::Corrupt("checksum mismatch".to_string()));
        }
        String::from_utf8(payload.to_vec())
            .map_err(|_| ReadFail::Corrupt("non-utf8 payload".to_string()))
    }

    /// Appends one record under the already-held write lock.
    fn append_record(
        &self,
        inner: &mut Inner,
        table: Table,
        key: u64,
        payload: &str,
    ) -> Result<(), StoreError> {
        self.refresh(inner)?;
        let sum = fnv(payload.as_bytes());
        let header = encode_header(table, key, payload.len(), sum);
        let rec_len = header.len() as u64 + payload.len() as u64 + 1;
        if inner.file_len + rec_len > self.cfg.max_bytes {
            match self.cfg.eviction {
                EvictionPolicy::Never => {
                    return Err(StoreError::TooLarge { need: rec_len, max: self.cfg.max_bytes })
                }
                EvictionPolicy::Lru => self.compact(inner, rec_len)?,
            }
        }
        let mut f = OpenOptions::new().append(true).open(&self.cfg.path)?;
        f.write_all(header.as_bytes())?;
        f.write_all(payload.as_bytes())?;
        f.write_all(b"\n")?;
        inner.touch += 1;
        inner.index.insert(
            (table, key),
            Entry {
                offset: inner.file_len,
                header_len: header.len() as u32,
                payload_len: payload.len() as u32,
                sum,
                touched: inner.touch,
            },
        );
        inner.file_len += rec_len;
        Ok(())
    }

    /// Rewrites the file keeping all provenance rows plus the
    /// most-recently-touched cache entries that fit under
    /// `max_bytes - reserve`, through a temp file and atomic rename.
    fn compact(&self, inner: &mut Inner, reserve: u64) -> Result<(), StoreError> {
        let bytes = fs::read(&self.cfg.path)?;
        let budget = self.cfg.max_bytes.saturating_sub(reserve);
        let in_file = |e: &Entry| (e.offset + e.record_len()) as usize <= bytes.len();
        let payload_ok = |e: &Entry| {
            let start = (e.offset + e.header_len as u64) as usize;
            fnv(&bytes[start..start + e.payload_len as usize]) == e.sum
        };

        let mut kept: Vec<((Table, u64), Entry)> = Vec::new();
        let mut used = HEADER.len() as u64;
        for (&k, e) in inner.index.iter().filter(|((t, _), e)| t.is_provenance() && in_file(e)) {
            used += e.record_len();
            kept.push((k, *e));
        }
        if used > budget {
            return Err(StoreError::TooLarge { need: reserve, max: self.cfg.max_bytes });
        }
        let mut cache: Vec<((Table, u64), Entry)> = inner
            .index
            .iter()
            .filter(|((t, _), e)| !t.is_provenance() && in_file(e) && payload_ok(e))
            .map(|(&k, e)| (k, *e))
            .collect();
        cache.sort_by_key(|(_, e)| std::cmp::Reverse(e.touched));
        for (k, e) in cache {
            if used + e.record_len() <= budget {
                used += e.record_len();
                kept.push((k, e));
            }
        }
        // Rewrite in original offset order so append ordering survives.
        kept.sort_by_key(|(_, e)| e.offset);
        let tmp = self.cfg.path.with_extension(format!("tmp.{}", std::process::id()));
        let mut out = Vec::with_capacity(used as usize);
        out.extend_from_slice(HEADER);
        let mut new_index: HashMap<(Table, u64), Entry> = HashMap::new();
        for (k, e) in kept {
            let new_offset = out.len() as u64;
            let start = e.offset as usize;
            out.extend_from_slice(&bytes[start..start + e.record_len() as usize]);
            new_index.insert(k, Entry { offset: new_offset, ..e });
        }
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, &self.cfg.path)?;
        inner.index = new_index;
        inner.file_len = out.len() as u64;
        inner.ino = self.stat().map(|(ino, _)| ino).unwrap_or(0);
        Ok(())
    }

    /// Newest-first sequence rows of `table`, parsed by `parse`, filtered
    /// by `keep`, truncated to `last` (0 = all). Malformed or unreadable
    /// rows are skipped.
    fn history<R>(
        &self,
        table: Table,
        last: usize,
        parse: impl Fn(u64, &str) -> Option<R>,
        keep: impl Fn(&R) -> bool,
    ) -> Result<Vec<R>, StoreError> {
        let mut inner = self.lock_inner();
        self.refresh(&mut inner)?;
        let mut keys: Vec<u64> =
            inner.index.keys().filter(|(t, _)| *t == table).map(|&(_, k)| k).collect();
        keys.sort_unstable_by_key(|&k| std::cmp::Reverse(k));
        let mut rows = Vec::new();
        for k in keys {
            let Some(e) = inner.index.get(&(table, k)).copied() else { continue };
            let Ok(payload) = self.read_entry(table, k, &e) else { continue };
            if let Some(row) = parse(k, &payload) {
                if keep(&row) {
                    rows.push(row);
                    if last > 0 && rows.len() == last {
                        break;
                    }
                }
            }
        }
        Ok(rows)
    }
}

impl Store for FlowStore {
    fn put(&self, table: Table, key: u64, payload: &str) -> Result<(), StoreError> {
        let _lk = acquire_lock(&self.lock_path)?;
        let mut inner = self.lock_inner();
        self.append_record(&mut inner, table, key, payload)
    }

    fn get(&self, table: Table, key: u64) -> Lookup {
        let mut inner = self.lock_inner();
        let mut entry = inner.index.get(&(table, key)).copied();
        if entry.is_none() {
            // Another process may have appended since our last scan; a miss
            // is the cheap moment to find out.
            if self.refresh(&mut inner).is_err() {
                return Lookup::Miss;
            }
            entry = inner.index.get(&(table, key)).copied();
        }
        let Some(e) = entry else {
            return Lookup::Miss;
        };
        match self.read_entry(table, key, &e) {
            Ok(p) => {
                inner.touch += 1;
                let now = inner.touch;
                if let Some(slot) = inner.index.get_mut(&(table, key)) {
                    slot.touched = now;
                }
                Lookup::Hit(p)
            }
            Err(ReadFail::Corrupt(reason)) => Lookup::Corrupt(reason),
            Err(ReadFail::Stale) => {
                // The file was compacted or replaced between probe and
                // read. Rebuild the index and try once more; a key that is
                // gone was evicted — an expected race, not an error.
                if self.rescan(&mut inner).is_err() {
                    return Lookup::Evicted;
                }
                match inner.index.get(&(table, key)).copied() {
                    None => Lookup::Evicted,
                    Some(e2) => match self.read_entry(table, key, &e2) {
                        Ok(p) => {
                            inner.touch += 1;
                            let now = inner.touch;
                            if let Some(slot) = inner.index.get_mut(&(table, key)) {
                                slot.touched = now;
                            }
                            Lookup::Hit(p)
                        }
                        Err(ReadFail::Corrupt(reason)) => Lookup::Corrupt(reason),
                        Err(ReadFail::Stale) => Lookup::Evicted,
                    },
                }
            }
        }
    }

    fn append(&self, table: Table, payload: &str) -> Result<u64, StoreError> {
        let _lk = acquire_lock(&self.lock_path)?;
        let mut inner = self.lock_inner();
        self.refresh(&mut inner)?;
        let key = match table {
            Table::Qor => inner.next_qor,
            Table::QStage => inner.next_qstage,
            // Sequence semantics only exist on the provenance tables;
            // cache tables get explicit content-addressed keys via `put`.
            Table::Stage | Table::Sub => inner.index.len() as u64,
        };
        self.append_record(&mut inner, table, key, payload)?;
        match table {
            Table::Qor => inner.next_qor = key + 1,
            Table::QStage => inner.next_qstage = key + 1,
            _ => {}
        }
        Ok(key)
    }

    fn len_bytes(&self) -> u64 {
        self.stat().map(|(_, len)| len).unwrap_or(0)
    }
}

impl Query for FlowStore {
    fn qor_history(&self, q: &QorQuery) -> Result<Vec<QorRow>, StoreError> {
        let design = q.design.clone();
        self.history(Table::Qor, q.last, QorRow::parse, move |r: &QorRow| {
            design.as_deref().is_none_or(|d| d == r.design)
        })
    }

    fn stage_history(&self, q: &QorQuery) -> Result<Vec<StageRow>, StoreError> {
        let design = q.design.clone();
        let stage = q.stage.clone();
        self.history(Table::QStage, q.last, StageRow::parse, move |r: &StageRow| {
            design.as_deref().is_none_or(|d| d == r.design)
                && stage.as_deref().is_none_or(|s| s == r.stage)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("eda-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join("flow.store")
    }

    #[test]
    fn put_get_roundtrip_and_replacement() {
        let cfg = StoreConfig::at(scratch("roundtrip"));
        let s = FlowStore::open(&cfg).unwrap();
        assert_eq!(s.get(Table::Stage, 1), Lookup::Miss);
        s.put(Table::Stage, 1, "first").unwrap();
        s.put(Table::Sub, 1, "other table, same key").unwrap();
        assert_eq!(s.get(Table::Stage, 1), Lookup::Hit("first".into()));
        s.put(Table::Stage, 1, "second").unwrap();
        assert_eq!(s.get(Table::Stage, 1), Lookup::Hit("second".into()));
        assert_eq!(s.get(Table::Sub, 1), Lookup::Hit("other table, same key".into()));
    }

    #[test]
    fn reopen_rebuilds_the_index() {
        let cfg = StoreConfig::at(scratch("reopen"));
        {
            let s = FlowStore::open(&cfg).unwrap();
            s.put(Table::Stage, 7, "persisted").unwrap();
            s.append(Table::Qor, "run d generic 0 0 0 0 0 0 0").unwrap();
        }
        let s = FlowStore::open(&cfg).unwrap();
        assert_eq!(s.get(Table::Stage, 7), Lookup::Hit("persisted".into()));
        // Sequence numbering continues where the prior process stopped.
        assert_eq!(s.append(Table::Qor, "run d generic 0 0 0 0 0 0 0").unwrap(), 1);
    }

    #[test]
    fn corrupted_payload_reads_corrupt_and_broken_tail_is_lost() {
        let cfg = StoreConfig::at(scratch("corrupt"));
        let s = FlowStore::open(&cfg).unwrap();
        s.put(Table::Stage, 1, "aaaaaaaa").unwrap();
        s.put(Table::Stage, 2, "bbbbbbbb").unwrap();
        drop(s);
        // Flip one payload byte of entry 1.
        let mut bytes = fs::read(&cfg.path).unwrap();
        let at = bytes.windows(8).position(|w| w == b"aaaaaaaa").unwrap();
        bytes[at] = b'Z';
        // Truncate mid-way through the last record.
        let keep = bytes.len() - 3;
        fs::write(&cfg.path, &bytes[..keep]).unwrap();
        let s = FlowStore::open(&cfg).unwrap();
        assert!(matches!(s.get(Table::Stage, 1), Lookup::Corrupt(_)));
        assert_eq!(s.get(Table::Stage, 2), Lookup::Miss, "truncated tail is lost, not fatal");
        // The store keeps working.
        s.put(Table::Stage, 3, "cccc").unwrap();
        assert_eq!(s.get(Table::Stage, 3), Lookup::Hit("cccc".into()));
    }

    #[test]
    fn lru_compaction_keeps_provenance_and_newest_entries() {
        let path = scratch("lru");
        let cfg = StoreConfig::at(path).with_max_bytes(4096);
        let s = FlowStore::open(&cfg).unwrap();
        let seq = s.append(Table::Qor, "run d generic 0 0 0 0 0 0 0").unwrap();
        let blob = "x".repeat(900);
        for k in 0..20u64 {
            s.put(Table::Stage, k, &blob).unwrap();
            assert!(s.len_bytes() <= 4096, "store stays under max_bytes after put {k}");
        }
        // Provenance survived every compaction.
        let rows = s.qor_history(&QorQuery::default()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].seq, seq);
        // The newest cache entry survived; the oldest did not.
        assert_eq!(s.get(Table::Stage, 19), Lookup::Hit(blob.clone()));
        assert_eq!(s.get(Table::Stage, 0), Lookup::Miss);
    }

    #[test]
    fn never_policy_rejects_oversized_growth() {
        let path = scratch("never");
        let cfg = StoreConfig::at(path)
            .with_max_bytes(1024)
            .with_eviction(EvictionPolicy::Never);
        let s = FlowStore::open(&cfg).unwrap();
        let blob = "y".repeat(600);
        s.put(Table::Stage, 1, &blob).unwrap();
        let err = s.put(Table::Stage, 2, &blob).unwrap_err();
        assert!(matches!(err, StoreError::TooLarge { .. }));
        assert_eq!(s.get(Table::Stage, 1), Lookup::Hit(blob), "existing entries untouched");
    }

    #[test]
    fn stale_reader_sees_evicted_not_an_error() {
        let path = scratch("evicted");
        let cfg = StoreConfig::at(path).with_max_bytes(4096);
        let writer = FlowStore::open(&cfg).unwrap();
        let blob = "z".repeat(900);
        writer.put(Table::Stage, 1, &blob).unwrap();
        // A second handle (stands in for another process) indexes entry 1.
        let reader = FlowStore::open(&cfg).unwrap();
        assert_eq!(reader.get(Table::Stage, 1), Lookup::Hit(blob.clone()));
        // The writer pushes entry 1 out through LRU compaction.
        for k in 2..20u64 {
            writer.put(Table::Stage, k, &blob).unwrap();
        }
        assert_eq!(writer.get(Table::Stage, 1), Lookup::Miss);
        // The reader's index still points at the pre-compaction offset: the
        // probe-then-read race resolves to Evicted, never an I/O error.
        assert_eq!(reader.get(Table::Stage, 1), Lookup::Evicted);
        // And the reader recovers fully for live keys.
        assert_eq!(reader.get(Table::Stage, 19), Lookup::Hit(blob));
    }

    #[test]
    fn cross_handle_appends_become_visible() {
        let cfg = StoreConfig::at(scratch("shared"));
        let a = FlowStore::open(&cfg).unwrap();
        let b = FlowStore::open(&cfg).unwrap();
        a.put(Table::Sub, 11, "from a").unwrap();
        assert_eq!(b.get(Table::Sub, 11), Lookup::Hit("from a".into()));
        b.put(Table::Sub, 12, "from b").unwrap();
        assert_eq!(a.get(Table::Sub, 12), Lookup::Hit("from b".into()));
    }

    #[test]
    fn history_filters_and_orders_newest_first() {
        let cfg = StoreConfig::at(scratch("history"));
        let s = FlowStore::open(&cfg).unwrap();
        for i in 0..5 {
            let row = QorRow {
                seq: 0,
                design: if i % 2 == 0 { "even".into() } else { "odd".into() },
                node: "generic".into(),
                cfg_fp: i,
                qor_fp: i,
                wns_ps: -(i as f64),
                overflow: i,
                hpwl_um: 10.0 * i as f64,
                wall_s: 0.5,
                peak_rss_bytes: 0,
            };
            s.append(Table::Qor, &row.to_payload()).unwrap();
        }
        let all = s.qor_history(&QorQuery::default()).unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].seq > w[1].seq), "newest first");
        let even = s
            .qor_history(&QorQuery { design: Some("even".into()), last: 2, ..Default::default() })
            .unwrap();
        assert_eq!(even.len(), 2);
        assert_eq!(even[0].cfg_fp, 4);
        assert_eq!(even[1].cfg_fp, 2);
        let row = &all[0];
        assert_eq!(QorRow::parse(row.seq, &row.to_payload()).as_ref(), Some(row));
    }

    #[test]
    fn stage_history_roundtrip() {
        let cfg = StoreConfig::at(scratch("qstage"));
        let s = FlowStore::open(&cfg).unwrap();
        for stage in ["1_synthesis", "7_route"] {
            let row = StageRow {
                seq: 0,
                design: "demo design".into(),
                stage: stage.into(),
                outcome: "ok".into(),
                attempts: 1,
                wall_s: 0.25,
            };
            s.append(Table::QStage, &row.to_payload()).unwrap();
        }
        let routes = s
            .stage_history(&QorQuery {
                design: Some("demo design".into()),
                stage: Some("7_route".into()),
                ..Default::default()
            })
            .unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].stage, "7_route");
        assert_eq!(routes[0].design, "demo design");
    }
}
