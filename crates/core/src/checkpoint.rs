//! Flow checkpointing: exact serialization of the supervisor's state after
//! every completed stage, so a killed or failed flow resumes from the last
//! good stage with bit-identical QoR.
//!
//! The on-disk format is line-oriented text. Everything that influences QoR
//! round-trips exactly: `f64` values are written as `to_bits()` hex (never
//! decimal), the netlist goes through [`eda_netlist::codec`], and the
//! placement is stored as raw geometry ([`eda_place::PlacementSnapshot`])
//! rather than being re-derived from the netlist — whose instance count may
//! legitimately differ from placement time once decaps are inserted.
//!
//! A checkpoint embeds a fingerprint of every QoR-relevant config field plus
//! the design identity. Resuming under a different config (different seed,
//! node, effort...) would silently splice two different flows together, so a
//! fingerprint mismatch is a hard [`LoadError::Mismatch`].

use crate::config::FlowConfig;
use crate::harness::{StageOutcome, StageStatus};
use eda_netlist::codec::{escape, unescape};
use eda_netlist::{codec, InstId, Netlist};
use eda_place::{Placement, PlacementSnapshot, Point};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything the flow has computed so far. `cursor` counts completed stage
/// positions (0..=11); each stage reads its inputs from here and writes its
/// outputs back, so the struct doubles as the resume image.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlowState {
    pub cursor: usize,
    pub netlist: Option<Netlist>,
    pub placement: Option<Placement>,
    pub chains: Vec<Vec<InstId>>,
    pub synthesis_verified: Option<bool>,
    pub cells: usize,
    pub flops: usize,
    pub hold_violations: usize,
    pub routed_wirelength: u64,
    pub routed_vias: u64,
    pub routed_overflow: u64,
    pub masks: u32,
    pub stitches: usize,
    pub litho_legal: bool,
    pub decaps: usize,
    pub hotspots: usize,
    pub scan_wirelength_um: f64,
    pub clock_skew_ps: f64,
    pub clock_tree_um: f64,
    pub wns_ps: f64,
    pub critical_path_ps: f64,
    pub opc_rms_epe_nm: f64,
    pub dynamic_mw: f64,
    pub leakage_mw: f64,
    pub ir_drop_mv: f64,
    pub test_coverage: f64,
    pub statuses: BTreeMap<String, StageStatus>,
    pub stage_seconds: BTreeMap<String, f64>,
    pub stage_threads: BTreeMap<String, usize>,
    pub stage_speedup: BTreeMap<String, f64>,
}

impl FlowState {
    pub fn fresh() -> FlowState {
        FlowState { litho_legal: true, ..FlowState::default() }
    }
}

/// Why a checkpoint could not be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LoadError {
    /// The checkpoint was written under a different config or design.
    Mismatch(String),
    /// The file exists but does not parse.
    Corrupt(String),
}

/// FNV-1a-style fingerprint of every QoR-relevant config field plus the
/// design identity. Excludes fields that cannot change the result:
/// `name`, `threads` (bit-identical by the eda-par contract),
/// `checkpoint_dir`, `resume`, `cache_dir`, `store`, `fault_plan`,
/// `budgets`, and `deadline_s`.
pub(crate) fn fingerprint(design: &Netlist, cfg: &FlowConfig) -> u64 {
    let decap_bits = cfg
        .power
        .decap_droop_limit_mv
        .map(f64::to_bits)
        .unwrap_or(u64::MAX);
    let key = format!(
        "{}|{}|{:?}|{:?}|{:?}|{:?}|{}|{:016x}|{:?}|{:?}|{}|{}|{}|{}|{}|{:?}|{}|{:016x}|{:016x}|{}|{}",
        design.name(),
        design.num_instances(),
        cfg.node,
        cfg.library,
        cfg.synthesis,
        cfg.map_goal,
        cfg.aig_rewrite_passes,
        cfg.utilization.to_bits(),
        cfg.place,
        cfg.router,
        cfg.layers,
        cfg.ripup_iterations,
        cfg.route_grid_cells,
        cfg.route_window_margin,
        cfg.route_region_size,
        cfg.scan,
        cfg.power.clock_gating_group,
        decap_bits,
        cfg.clock_mhz.to_bits(),
        cfg.verify_synthesis,
        cfg.seed,
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The checkpoint file for one (design, config) pair. The config fingerprint
/// is part of the file name, not just the header: concurrent requests that
/// share a `checkpoint_dir` and a design name but differ in config (seed,
/// node, effort...) must not clobber each other's files — with a shared path
/// the last writer would win and a later `resume: true` under either config
/// would hit a hard fingerprint mismatch instead of its own checkpoint.
pub(crate) fn path_for(dir: &Path, design: &str, fp: u64) -> PathBuf {
    let safe: String = design
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect();
    dir.join(format!("{safe}-{fp:016x}.flowck"))
}

fn fmt_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Serializes the full flow state (everything after the header lines) in the
/// line-oriented checkpoint body format. Shared verbatim by the checkpoint
/// file and the stage-cache entries (`crate::cache`), so a cache hit replays
/// exactly the state a resume would.
///
/// `wall` selects whether the wall-clock-derived maps (`stage_seconds`,
/// `stage_speedup`, `stage_threads`) are included. Files on disk always
/// include them; the cache-key state hash passes `wall: false` so a stage's
/// key never depends on how long an earlier stage took to compute (or on how
/// many workers computed it).
pub(crate) fn write_body(st: &FlowState, out: &mut String, wall: bool) {
    out.push_str(&format!("cursor {}\n", st.cursor));
    let v = match st.synthesis_verified {
        None => "-",
        Some(false) => "0",
        Some(true) => "1",
    };
    out.push_str(&format!("verified {v}\n"));
    out.push_str(&format!(
        "u {} {} {} {} {} {} {} {} {} {} {}\n",
        st.cells,
        st.flops,
        st.hold_violations,
        st.routed_wirelength,
        st.routed_vias,
        st.routed_overflow,
        st.masks,
        st.stitches,
        st.decaps,
        st.hotspots,
        u8::from(st.litho_legal),
    ));
    out.push_str(&format!(
        "f {} {} {} {} {} {} {} {} {} {}\n",
        fmt_f64(st.scan_wirelength_um),
        fmt_f64(st.clock_skew_ps),
        fmt_f64(st.clock_tree_um),
        fmt_f64(st.wns_ps),
        fmt_f64(st.critical_path_ps),
        fmt_f64(st.opc_rms_epe_nm),
        fmt_f64(st.dynamic_mw),
        fmt_f64(st.leakage_mw),
        fmt_f64(st.ir_drop_mv),
        fmt_f64(st.test_coverage),
    ));
    out.push_str(&format!("chains {}\n", st.chains.len()));
    for chain in &st.chains {
        out.push_str(&format!("c {}", chain.len()));
        for inst in chain {
            out.push_str(&format!(" {}", inst.index()));
        }
        out.push('\n');
    }
    out.push_str(&format!("status {}\n", st.statuses.len()));
    for (stage, s) in &st.statuses {
        let tail = match &s.outcome {
            StageOutcome::Completed => "C".to_string(),
            StageOutcome::Recovered { attempts } => format!("R {attempts}"),
            StageOutcome::Degraded { reason } => format!("D {}", escape(reason)),
            StageOutcome::Skipped { cause } => format!("S {}", escape(cause)),
        };
        out.push_str(&format!("s {} {} {tail}\n", escape(stage), s.attempts));
    }
    if wall {
        for (tag, map) in [("sec", &st.stage_seconds), ("spd", &st.stage_speedup)] {
            out.push_str(&format!("{tag} {}\n", map.len()));
            for (stage, v) in map {
                out.push_str(&format!("m {} {}\n", escape(stage), fmt_f64(*v)));
            }
        }
        out.push_str(&format!("thr {}\n", st.stage_threads.len()));
        for (stage, v) in &st.stage_threads {
            out.push_str(&format!("m {} {v}\n", escape(stage)));
        }
    }
    match &st.placement {
        None => out.push_str("placement 0\n"),
        Some(p) => {
            let snap = p.snapshot();
            out.push_str("placement 1\n");
            out.push_str(&format!(
                "die {} {} {} {} {}\n",
                fmt_f64(snap.die.width_um),
                fmt_f64(snap.die.height_um),
                fmt_f64(snap.die.site_um),
                snap.die.cols,
                snap.die.rows,
            ));
            for (tag, pts) in [("pos", &snap.positions), ("pip", &snap.pi_pins), ("pop", &snap.po_pins)] {
                out.push_str(&format!("{tag} {}", pts.len()));
                for pt in pts {
                    out.push_str(&format!(" {} {}", fmt_f64(pt.x), fmt_f64(pt.y)));
                }
                out.push('\n');
            }
        }
    }
    match &st.netlist {
        None => out.push_str("netlist 0\n"),
        Some(n) => {
            let text = codec::to_text(n);
            out.push_str(&format!("netlist {}\n", text.lines().count()));
            out.push_str(&text);
        }
    }
}

/// Atomically writes the checkpoint (temp file + rename).
pub(crate) fn save(dir: &Path, design: &str, fp: u64, st: &FlowState) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let mut out = String::new();
    out.push_str("eda-flowck v1\n");
    out.push_str(&format!("fingerprint {fp:016x}\n"));
    write_body(st, &mut out, true);

    let path = path_for(dir, design, fp);
    write_atomic(&path, &out)
        .map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Writes `text` to `path` via a process-unique temp file plus rename, so
/// concurrent writers (e.g. `experiments` child processes sharing a cache
/// directory) never observe a half-written file.
pub(crate) fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

pub(crate) struct Lines<'a> {
    iter: std::str::Lines<'a>,
    num: usize,
}

impl<'a> Lines<'a> {
    pub(crate) fn new(text: &'a str) -> Lines<'a> {
        Lines { iter: text.lines(), num: 0 }
    }

    pub(crate) fn next(&mut self) -> Result<&'a str, LoadError> {
        self.num += 1;
        self.iter
            .next()
            .ok_or_else(|| LoadError::Corrupt(format!("line {}: unexpected end of checkpoint", self.num)))
    }

    pub(crate) fn err(&self, reason: impl std::fmt::Display) -> LoadError {
        LoadError::Corrupt(format!("line {}: {reason}", self.num))
    }
}

fn parse_f64(lines: &Lines<'_>, tok: &str) -> Result<f64, LoadError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| lines.err(format!("bad f64 bits {tok:?}")))
}

fn parse_num<T: std::str::FromStr>(lines: &Lines<'_>, tok: &str, what: &str) -> Result<T, LoadError> {
    tok.parse().map_err(|_| lines.err(format!("bad {what}: {tok:?}")))
}

fn tagged_count(lines: &mut Lines<'_>, tag: &str) -> Result<usize, LoadError> {
    let line = lines.next()?;
    let rest = line
        .strip_prefix(tag)
        .and_then(|r| r.strip_prefix(' '))
        .ok_or_else(|| lines.err(format!("expected `{tag} <count>`, got {line:?}")))?;
    parse_num(lines, rest, "count")
}

fn toks<'a>(lines: &Lines<'_>, line: &'a str, tag: &str) -> Result<Vec<&'a str>, LoadError> {
    let mut parts: Vec<&str> = line.split(' ').collect();
    if parts.first() != Some(&tag) {
        return Err(lines.err(format!("expected `{tag} ...`, got {line:?}")));
    }
    parts.remove(0);
    Ok(parts)
}

/// Loads the checkpoint for `design`, if one exists.
///
/// `Ok(None)` = no checkpoint file (start fresh). `Err(Mismatch)` = the file
/// was written under a different config/design. `Err(Corrupt)` = unreadable.
pub(crate) fn load(dir: &Path, design: &str, fp: u64) -> Result<Option<FlowState>, LoadError> {
    let path = path_for(dir, design, fp);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(LoadError::Corrupt(format!("read {}: {e}", path.display()))),
    };
    let mut lines = Lines { iter: text.lines(), num: 0 };
    let header = lines.next()?;
    if header != "eda-flowck v1" {
        return Err(lines.err(format!("bad header {header:?}")));
    }
    let fp_line = lines.next()?;
    let stored = fp_line
        .strip_prefix("fingerprint ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| lines.err(format!("bad fingerprint line {fp_line:?}")))?;
    if stored != fp {
        return Err(LoadError::Mismatch(format!(
            "checkpoint {} was written under a different design/config (fingerprint {stored:016x}, current {fp:016x})",
            path.display()
        )));
    }
    let st = read_body(&mut lines)?;
    Ok(Some(st))
}

/// Parses a checkpoint body (everything after the header lines) — the
/// inverse of [`write_body`] at `wall: true`.
pub(crate) fn read_body(lines: &mut Lines<'_>) -> Result<FlowState, LoadError> {
    let mut st = FlowState::fresh();
    st.cursor = tagged_count(lines, "cursor")?;
    let v_line = lines.next()?;
    st.synthesis_verified = match v_line.strip_prefix("verified ") {
        Some("-") => None,
        Some("0") => Some(false),
        Some("1") => Some(true),
        _ => return Err(lines.err(format!("bad verified line {v_line:?}"))),
    };

    let u_line = lines.next()?;
    let u = toks(lines, u_line, "u")?;
    if u.len() != 11 {
        return Err(lines.err("wrong integer field count"));
    }
    st.cells = parse_num(lines, u[0], "cells")?;
    st.flops = parse_num(lines, u[1], "flops")?;
    st.hold_violations = parse_num(lines, u[2], "hold")?;
    st.routed_wirelength = parse_num(lines, u[3], "wirelength")?;
    st.routed_vias = parse_num(lines, u[4], "vias")?;
    st.routed_overflow = parse_num(lines, u[5], "overflow")?;
    st.masks = parse_num(lines, u[6], "masks")?;
    st.stitches = parse_num(lines, u[7], "stitches")?;
    st.decaps = parse_num(lines, u[8], "decaps")?;
    st.hotspots = parse_num(lines, u[9], "hotspots")?;
    st.litho_legal = u[10] == "1";

    let f_line = lines.next()?;
    let fl = toks(lines, f_line, "f")?;
    if fl.len() != 10 {
        return Err(lines.err("wrong float field count"));
    }
    st.scan_wirelength_um = parse_f64(lines, fl[0])?;
    st.clock_skew_ps = parse_f64(lines, fl[1])?;
    st.clock_tree_um = parse_f64(lines, fl[2])?;
    st.wns_ps = parse_f64(lines, fl[3])?;
    st.critical_path_ps = parse_f64(lines, fl[4])?;
    st.opc_rms_epe_nm = parse_f64(lines, fl[5])?;
    st.dynamic_mw = parse_f64(lines, fl[6])?;
    st.leakage_mw = parse_f64(lines, fl[7])?;
    st.ir_drop_mv = parse_f64(lines, fl[8])?;
    st.test_coverage = parse_f64(lines, fl[9])?;

    let n_chains = tagged_count(lines, "chains")?;
    for _ in 0..n_chains {
        let line = lines.next()?;
        let c = toks(lines, line, "c")?;
        let len: usize = parse_num(lines, c.first().copied().unwrap_or(""), "chain length")?;
        if c.len() != len + 1 {
            return Err(lines.err("chain length mismatch"));
        }
        let mut chain = Vec::with_capacity(len);
        for t in &c[1..] {
            let i: usize = parse_num(lines, t, "chain element")?;
            chain.push(InstId::from_index(i));
        }
        st.chains.push(chain);
    }

    let n_status = tagged_count(lines, "status")?;
    for _ in 0..n_status {
        let line = lines.next()?;
        let s = toks(lines, line, "s")?;
        if s.len() < 3 {
            return Err(lines.err(format!("bad status line {line:?}")));
        }
        let stage = unescape(s[0]).map_err(|e| lines.err(e))?;
        let attempts: usize = parse_num(lines, s[1], "attempts")?;
        let outcome = match (s[2], s.get(3)) {
            ("C", None) => StageOutcome::Completed,
            ("R", Some(n)) => StageOutcome::Recovered { attempts: parse_num(lines, n, "recovered attempts")? },
            ("D", Some(r)) => StageOutcome::Degraded { reason: unescape(r).map_err(|e| lines.err(e))? },
            ("S", Some(c)) => StageOutcome::Skipped { cause: unescape(c).map_err(|e| lines.err(e))? },
            _ => return Err(lines.err(format!("bad status line {line:?}"))),
        };
        st.statuses.insert(stage, StageStatus { outcome, attempts });
    }

    for (tag, map) in [("sec", &mut st.stage_seconds), ("spd", &mut st.stage_speedup)] {
        let n = tagged_count(lines, tag)?;
        for _ in 0..n {
            let line = lines.next()?;
            let m = toks(lines, line, "m")?;
            if m.len() != 2 {
                return Err(lines.err(format!("bad map line {line:?}")));
            }
            let stage = unescape(m[0]).map_err(|e| lines.err(e))?;
            map.insert(stage, parse_f64(lines, m[1])?);
        }
    }
    let n_thr = tagged_count(lines, "thr")?;
    for _ in 0..n_thr {
        let line = lines.next()?;
        let m = toks(lines, line, "m")?;
        if m.len() != 2 {
            return Err(lines.err(format!("bad map line {line:?}")));
        }
        let stage = unescape(m[0]).map_err(|e| lines.err(e))?;
        st.stage_threads.insert(stage, parse_num(lines, m[1], "threads")?);
    }

    let has_placement = tagged_count(lines, "placement")?;
    if has_placement == 1 {
        let die_line = lines.next()?;
        let d = toks(lines, die_line, "die")?;
        if d.len() != 5 {
            return Err(lines.err(format!("bad die line {die_line:?}")));
        }
        let die = eda_place::Die {
            width_um: parse_f64(lines, d[0])?,
            height_um: parse_f64(lines, d[1])?,
            site_um: parse_f64(lines, d[2])?,
            cols: parse_num(lines, d[3], "cols")?,
            rows: parse_num(lines, d[4], "rows")?,
        };
        let mut vecs: [Vec<Point>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (tag, slot) in ["pos", "pip", "pop"].into_iter().zip(vecs.iter_mut()) {
            let line = lines.next()?;
            let p = toks(lines, line, tag)?;
            let len: usize = parse_num(lines, p.first().copied().unwrap_or(""), "point count")?;
            if p.len() != 1 + 2 * len {
                return Err(lines.err(format!("point count mismatch in `{tag}`")));
            }
            for pair in p[1..].chunks(2) {
                slot.push(Point::new(parse_f64(lines, pair[0])?, parse_f64(lines, pair[1])?));
            }
        }
        let [positions, pi_pins, po_pins] = vecs;
        st.placement = Some(Placement::from_snapshot(PlacementSnapshot { die, positions, pi_pins, po_pins }));
    }

    let n_netlist_lines = tagged_count(lines, "netlist")?;
    if n_netlist_lines > 0 {
        let mut text = String::new();
        for _ in 0..n_netlist_lines {
            text.push_str(lines.next()?);
            text.push('\n');
        }
        let netlist = codec::from_text(&text).map_err(|e| LoadError::Corrupt(e.to_string()))?;
        st.netlist = Some(netlist);
    }

    Ok(st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_tech::Node;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eda_ck_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let design = generate::switch_fabric(3, 2).unwrap();
        let cfg = FlowConfig::advanced_2016(Node::N28);
        let fp = fingerprint(&design, &cfg);

        let mut st = FlowState::fresh();
        st.cursor = 7;
        st.netlist = Some(design.clone());
        let die = eda_place::Die::for_netlist(&design, 0.7);
        st.placement = Some(Placement::new(&design, die));
        st.chains = vec![vec![InstId::from_index(0), InstId::from_index(3)]];
        st.synthesis_verified = Some(true);
        st.wns_ps = -12.345678901;
        st.test_coverage = 0.87654321;
        st.statuses.insert(
            "7_route".into(),
            StageStatus { outcome: StageOutcome::Degraded { reason: "partial routes %& spaces".into() }, attempts: 2 },
        );
        st.stage_seconds.insert("1_synthesis".into(), 0.123456789);
        st.stage_threads.insert("7_route".into(), 4);
        st.stage_speedup.insert("7_route".into(), 2.5);

        let dir = tmp_dir("roundtrip");
        save(&dir, design.name(), fp, &st).unwrap();
        let back = load(&dir, design.name(), fp).unwrap().unwrap();

        assert_eq!(back.cursor, st.cursor);
        assert_eq!(back.synthesis_verified, st.synthesis_verified);
        assert_eq!(back.wns_ps.to_bits(), st.wns_ps.to_bits());
        assert_eq!(back.test_coverage.to_bits(), st.test_coverage.to_bits());
        assert_eq!(back.chains, st.chains);
        assert_eq!(back.statuses, st.statuses);
        assert_eq!(back.stage_seconds, st.stage_seconds);
        assert_eq!(back.stage_threads, st.stage_threads);
        assert_eq!(back.stage_speedup, st.stage_speedup);
        assert_eq!(back.placement, st.placement);
        let (a, b) = (back.netlist.unwrap(), st.netlist.unwrap());
        assert_eq!(codec::to_text(&a), codec::to_text(&b));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_rejects_config_drift() {
        let design = generate::ripple_carry_adder(4).unwrap();
        let cfg = FlowConfig::advanced_2016(Node::N28);
        let fp = fingerprint(&design, &cfg);
        let dir = tmp_dir("mismatch");
        save(&dir, design.name(), fp, &FlowState::fresh()).unwrap();

        // A different config resolves to a different file: no clobber, and
        // loading under the other fingerprint is a clean fresh start.
        let mut other = cfg.clone();
        other.seed = 99;
        let fp2 = fingerprint(&design, &other);
        assert_ne!(fp, fp2);
        assert_ne!(path_for(&dir, design.name(), fp), path_for(&dir, design.name(), fp2));
        assert!(load(&dir, design.name(), fp2).unwrap().is_none());

        // A file whose embedded fingerprint disagrees with the path (copied
        // or renamed by hand) is still a hard mismatch, never spliced in.
        std::fs::copy(path_for(&dir, design.name(), fp), path_for(&dir, design.name(), fp2)).unwrap();
        assert!(matches!(load(&dir, design.name(), fp2), Err(LoadError::Mismatch(_))));

        // Fields that cannot change QoR do not change the fingerprint.
        let mut same = cfg.clone();
        same.threads = 7;
        same.resume = true;
        same.name = "renamed".into();
        assert_eq!(fingerprint(&design, &same), fp);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_start() {
        let design = generate::ripple_carry_adder(4).unwrap();
        let cfg = FlowConfig::basic_2006(Node::N90);
        let dir = tmp_dir("missing");
        assert!(load(&dir, design.name(), fingerprint(&design, &cfg))
            .unwrap()
            .is_none());
    }
}
