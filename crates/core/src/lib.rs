//! The integrated EDA flow — the panel's primary subject, as a library.
//!
//! `eda-core` wires every substrate crate into one RTL-to-layout pipeline
//! ([`run_flow`]) with two presets bracketing the panel's decade
//! ([`FlowConfig::basic_2006`] vs [`FlowConfig::advanced_2016`] — Domic's "if
//! one uses an advanced EDA solution, one can do more with less"), and adds
//! the self-learning flow engine Rossi asks for ([`FlowTuner`], claim C11).
//!
//! # Examples
//!
//! ```
//! use eda_core::{run_flow, FlowConfig};
//! use eda_netlist::generate;
//! use eda_tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(8)?;
//! let report = run_flow(&design, &FlowConfig::advanced_2016(Node::N28))?;
//! assert!(report.cell_area_um2 > 0.0);
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

// The flow library must never panic on user-reachable paths: recover,
// degrade, or return a typed error instead. `.expect()` stays legal for
// documented internal invariants; test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod cache;
mod checkpoint;
pub mod config;
pub mod daemon;
pub mod flow;
pub mod harness;
pub mod learn;
pub mod report;
pub mod server;
pub mod store;
pub mod telemetry;

pub use config::{ConfigError, FlowConfig, FlowConfigBuilder, LibraryChoice, PlaceEffort, PowerOptions, ScanOptions};
pub use daemon::client::{DaemonClient, Endpoint, RequestOutcome, RetryPolicy, Terminal};
pub use daemon::protocol::{
    flow_config_for, DaemonStats, DesignSpec, QuerySpec, RejectReason, SubmitSpec,
    TransportFault, TransportFaultPlan,
};
pub use daemon::{Daemon, DaemonConfig};
pub use flow::{run_flow, run_flow_observed, FlowError, PartialFlow, StageFailure, STAGES};
pub use harness::{
    Fault, FaultPlan, FaultRule, FaultSpecError, StageBudget, StageBudgets, StageOutcome,
    StageStatus,
};
pub use learn::{Arm, ArmStats, FlowTuner};
pub use report::FlowReport;
pub use server::{FlowRequest, FlowResponse, FlowServer, FlowServerBuilder, FlowSession, ServerReport};
pub use store::{
    EvictionPolicy, FlowStore, Lookup, QorQuery, QorRow, Query, StageRow, Store, StoreConfig,
    StoreError, Table,
};
pub use telemetry::{read_peak_rss_bytes, Histogram, Metric, Span, SpanKind, Telemetry, TelemetrySnapshot, WallSpan};
