//! Content-addressed stage result cache: the incremental-flow engine, now
//! backed by the persistent [`FlowStore`].
//!
//! Every stage of `run_flow` transforms one [`FlowState`] into the next, and
//! both ends of that transform are deterministic functions of (design,
//! config, seed). That makes each stage memoizable: the cache key is an
//! FNV-1a hash over `(stage name, per-stage config fingerprint, state
//! hash)`, where the state hash covers the exact serialized pre-stage flow
//! state — the stage's entire input. An entry is the post-stage state in the
//! checkpoint body codec (`f64` as bit-exact hex), so a hit replays
//! bit-identical QoR, the same guarantee resume gives.
//!
//! The per-stage fingerprint ([`stage_fp`]) covers only the config fields
//! the stage's body actually reads (plus node and seed, which almost every
//! stage consumes), instead of the whole-config fingerprint checkpoints
//! use. The payoff is prefix reuse: changing `ripup_iterations` leaves the
//! synthesis-through-STA keys untouched, so a warm rerun replays seven
//! stages and recomputes only routing and what follows. Design identity is
//! folded in only for `1_synthesis` — every later stage's input netlist
//! arrives through the state hash, so two designs that converge to the same
//! intermediate state share downstream entries.
//!
//! The state hash deliberately excludes the wall-clock maps
//! (`stage_seconds`, `stage_speedup`, `stage_threads`): how long an earlier
//! stage took, or how many workers computed it, must never invalidate a
//! downstream entry — a recomputed stage still yields downstream hits, and a
//! warm run at 8 threads hits entries written at 1.
//!
//! Failures are contained by design: a corrupt or truncated entry is a
//! typed [`CacheError`] that `run_flow` downgrades to a recompute (counted
//! in the `cache.errors` metric), never a flow error and never a panic. An
//! entry that vanishes between the index probe and the record read — the
//! store compacted under a concurrent writer — is [`CacheError::Evicted`],
//! its own variant precisely so the flow can count it as an expected
//! `cache.evicted_miss` instead of a scary I/O error. Store writes are
//! serialized by the store's sidecar lock, so concurrent flows — e.g.
//! `experiments` child processes sharing one store — can race on the same
//! entry and both land on identical bytes.

use crate::checkpoint::{self, FlowState, Lines, LoadError};
use crate::config::FlowConfig;
use crate::store::{FlowStore, Lookup, Store, Table};
use eda_netlist::Netlist;
use std::sync::Arc;

/// Why a cache entry could not be read or written. Never fatal to the flow:
/// every variant downgrades to a recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CacheError {
    /// The entry exists but is truncated, unparseable, or was written for a
    /// different stage/key than its address claims.
    Corrupt(String),
    /// Store failure reading or writing the entry.
    Io(String),
    /// The entry was present at probe time but evicted (LRU compaction by
    /// a concurrent writer) before it could be read. An expected race, not
    /// a fault: the caller recomputes and counts `cache.evicted_miss`.
    Evicted,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Corrupt(m) => write!(f, "corrupt cache entry: {m}"),
            CacheError::Io(m) => write!(f, "cache I/O: {m}"),
            CacheError::Evicted => write!(f, "entry evicted between probe and read"),
        }
    }
}

fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Hash of the deterministic portion of a flow state — a stage's entire
/// input. Serializes through [`checkpoint::write_body`] with the wall-clock
/// maps excluded, so the hash is a pure function of QoR-relevant state.
pub(crate) fn state_hash(st: &FlowState) -> u64 {
    let mut body = String::new();
    checkpoint::write_body(st, &mut body, false);
    fnv(body.bytes())
}

/// The content address of one stage execution:
/// `(stage kind, per-stage config fingerprint, pre-stage state hash)`.
pub(crate) fn entry_key(stage: &str, config_fp: u64, state_hash: u64) -> u64 {
    fnv(format!("{stage}|{config_fp:016x}|{state_hash:016x}").bytes())
}

/// The per-stage config fingerprint: node and seed (consumed nearly
/// everywhere) plus exactly the config fields `stage`'s body reads. Fields
/// a stage never looks at must not invalidate its entries; fields it does
/// read must all be here, or a warm run could replay state computed under a
/// different effective config. Design identity appears only in
/// `1_synthesis` — downstream stages see the design through their pre-stage
/// state hash.
pub(crate) fn stage_fp(stage: &str, design: &Netlist, cfg: &FlowConfig) -> u64 {
    let mut key = format!("{stage}|{:?}|{}", cfg.node, cfg.seed);
    match stage {
        "1_synthesis" => key.push_str(&format!(
            "|{}|{}|{:?}|{:?}|{:?}|{}|{}",
            design.name(),
            design.num_instances(),
            cfg.library,
            cfg.synthesis,
            cfg.map_goal,
            cfg.aig_rewrite_passes,
            cfg.verify_synthesis,
        )),
        "2_clock_gating" => key.push_str(&format!("|{}", cfg.power.clock_gating_group)),
        // Scan insertion, reordering, and fault simulation all key on the
        // scan options (chains and reorder flag both change their results
        // or their skip notes).
        "3_scan" | "5_scan_reorder" | "10_dft" => key.push_str(&format!("|{:?}", cfg.scan)),
        "4_place" => {
            key.push_str(&format!("|{:016x}|{:?}", cfg.utilization.to_bits(), cfg.place))
        }
        // CTS runs on defaults; litho derives everything from the node (in
        // the common part) and the routed state.
        "6_cts" | "8_litho" => {}
        "6_sta" => key.push_str(&format!("|{:016x}", cfg.clock_mhz.to_bits())),
        "7_route" => key.push_str(&format!(
            "|{:?}|{}|{}|{}|{}|{}",
            cfg.router,
            cfg.layers,
            cfg.ripup_iterations,
            cfg.route_grid_cells,
            cfg.route_window_margin,
            cfg.route_region_size,
        )),
        "9_power" => key.push_str(&format!(
            "|{:016x}|{:016x}",
            cfg.clock_mhz.to_bits(),
            cfg.power.decap_droop_limit_mv.map(f64::to_bits).unwrap_or(u64::MAX),
        )),
        // A stage this audit does not know falls back to the full-config
        // fingerprint: correct (never a false hit), just less incremental.
        _ => key.push_str(&format!("|{:016x}", checkpoint::fingerprint(design, cfg))),
    }
    fnv(key.bytes())
}

/// The stage-granular view of the flow store.
#[derive(Debug, Clone)]
pub(crate) struct StageCache {
    store: Arc<FlowStore>,
}

impl StageCache {
    pub fn new(store: Arc<FlowStore>) -> StageCache {
        StageCache { store }
    }

    /// Loads the post-stage state for `(stage, key)`.
    ///
    /// `Ok(None)` = no entry (cold). `Err(Corrupt | Io)` = an entry exists
    /// but cannot be trusted; `Err(Evicted)` = it vanished under a
    /// concurrent compaction. The caller recomputes in every `Err` case.
    pub fn load(&self, stage: &str, key: u64) -> Result<Option<FlowState>, CacheError> {
        let text = match self.store.get(Table::Stage, key) {
            Lookup::Miss => return Ok(None),
            Lookup::Evicted => return Err(CacheError::Evicted),
            Lookup::Corrupt(m) => return Err(CacheError::Corrupt(m)),
            Lookup::Hit(text) => text,
        };
        let corrupt = |m: String| CacheError::Corrupt(format!("stage {stage} key {key:016x}: {m}"));
        let mut lines = Lines::new(&text);
        let demote = |e: LoadError| match e {
            LoadError::Corrupt(m) | LoadError::Mismatch(m) => corrupt(m),
        };
        let header = lines.next().map_err(demote)?;
        if header != "eda-stagecache v1" {
            return Err(corrupt(format!("bad header {header:?}")));
        }
        let stage_line = lines.next().map_err(demote)?;
        if stage_line.strip_prefix("stage ") != Some(stage) {
            return Err(corrupt(format!("entry names a different stage ({stage_line:?})")));
        }
        let key_line = lines.next().map_err(demote)?;
        let stored = key_line
            .strip_prefix("key ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt(format!("bad key line {key_line:?}")))?;
        if stored != key {
            return Err(corrupt(format!(
                "entry key {stored:016x} does not match its address {key:016x}"
            )));
        }
        let st = checkpoint::read_body(&mut lines).map_err(demote)?;
        Ok(Some(st))
    }

    /// Writes the post-stage state for `(stage, key)` — atomic at record
    /// granularity by the store's append discipline.
    pub fn store(&self, stage: &str, key: u64, st: &FlowState) -> Result<(), CacheError> {
        let mut out = String::new();
        out.push_str("eda-stagecache v1\n");
        out.push_str(&format!("stage {stage}\n"));
        out.push_str(&format!("key {key:016x}\n"));
        checkpoint::write_body(st, &mut out, true);
        self.store
            .put(Table::Stage, key, &out)
            .map_err(|e| CacheError::Io(format!("stage {stage} key {key:016x}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{StageOutcome, StageStatus};
    use crate::store::StoreConfig;
    use eda_netlist::generate;
    use eda_tech::Node;

    fn tmp_cache(tag: &str) -> (StageCache, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("eda_cache_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            FlowStore::open(&StoreConfig::at(dir.join("flow.store"))).expect("open test store");
        (StageCache::new(Arc::new(store)), dir)
    }

    fn sample_state() -> FlowState {
        let mut st = FlowState::fresh();
        st.cursor = 3;
        st.cells = 42;
        st.wns_ps = -1.2345;
        st.statuses.insert(
            "1_synthesis".into(),
            StageStatus { outcome: StageOutcome::Completed, attempts: 1 },
        );
        st
    }

    #[test]
    fn roundtrip_preserves_state_bits() {
        let (cache, dir) = tmp_cache("roundtrip");
        let st = sample_state();
        let key = entry_key("3_scan", 0xdead_beef, state_hash(&st));
        cache.store("3_scan", key, &st).unwrap();
        let back = cache.load("3_scan", key).unwrap().unwrap();
        assert_eq!(back.cursor, st.cursor);
        assert_eq!(back.cells, st.cells);
        assert_eq!(back.wns_ps.to_bits(), st.wns_ps.to_bits());
        assert_eq!(back.statuses, st.statuses);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_clean_miss() {
        let (cache, dir) = tmp_cache("miss");
        assert!(cache.load("1_synthesis", 7).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn state_hash_ignores_wall_clock_maps() {
        let mut a = sample_state();
        let mut b = sample_state();
        a.stage_seconds.insert("1_synthesis".into(), 0.5);
        b.stage_seconds.insert("1_synthesis".into(), 99.0);
        b.stage_threads.insert("4_place".into(), 8);
        b.stage_speedup.insert("4_place".into(), 3.2);
        assert_eq!(state_hash(&a), state_hash(&b));

        let mut c = sample_state();
        c.cells += 1;
        assert_ne!(state_hash(&a), state_hash(&c));
    }

    #[test]
    fn key_separates_stage_config_and_state() {
        let h = state_hash(&sample_state());
        let base = entry_key("4_place", 1, h);
        assert_ne!(base, entry_key("5_scan_reorder", 1, h));
        assert_ne!(base, entry_key("4_place", 2, h));
        assert_ne!(base, entry_key("4_place", 1, h ^ 1));
    }

    #[test]
    fn stage_fp_tracks_only_the_fields_a_stage_reads() {
        let design = generate::ripple_carry_adder(4).unwrap();
        let base = FlowConfig::advanced_2016(Node::N28);

        // A routing knob must move the route fingerprint and nothing
        // upstream of it — that is the whole prefix-reuse story.
        let mut routed = base.clone();
        routed.ripup_iterations += 1;
        for stage in ["1_synthesis", "2_clock_gating", "3_scan", "4_place", "6_cts", "6_sta"] {
            assert_eq!(
                stage_fp(stage, &design, &base),
                stage_fp(stage, &design, &routed),
                "{stage} must not see ripup_iterations"
            );
        }
        assert_ne!(stage_fp("7_route", &design, &base), stage_fp("7_route", &design, &routed));

        // The synthesis script length is a synthesis-only concern.
        let mut scripted = base.clone();
        scripted.aig_rewrite_passes -= 1;
        assert_ne!(
            stage_fp("1_synthesis", &design, &base),
            stage_fp("1_synthesis", &design, &scripted)
        );
        assert_eq!(stage_fp("7_route", &design, &base), stage_fp("7_route", &design, &scripted));

        // The seed feeds nearly every stage: it lives in the common part.
        let mut reseeded = base.clone();
        reseeded.seed += 1;
        assert_ne!(stage_fp("4_place", &design, &base), stage_fp("4_place", &design, &reseeded));

        // Design identity binds only the first stage; downstream stages key
        // on their pre-stage state instead.
        let other = generate::ripple_carry_adder(8).unwrap();
        assert_ne!(stage_fp("1_synthesis", &design, &base), stage_fp("1_synthesis", &other, &base));
        assert_eq!(stage_fp("4_place", &design, &base), stage_fp("4_place", &other, &base));
    }

    #[test]
    fn corrupt_entries_are_typed_errors() {
        let (cache, dir) = tmp_cache("corrupt");
        let st = sample_state();
        let key = entry_key("4_place", 9, state_hash(&st));
        cache.store("4_place", key, &st).unwrap();

        // A payload stored under the wrong address (a copied entry) is
        // Corrupt, not a silent wrong-state replay.
        assert!(matches!(cache.load("4_place", key ^ 1), Ok(None)));
        let mut hijack = String::new();
        hijack.push_str("eda-stagecache v1\n");
        hijack.push_str("stage 4_place\n");
        hijack.push_str(&format!("key {key:016x}\n"));
        checkpoint::write_body(&st, &mut hijack, true);
        cache.store.put(Table::Stage, key ^ 1, &hijack).unwrap();
        assert!(matches!(cache.load("4_place", key ^ 1), Err(CacheError::Corrupt(_))));

        // Same address, different stage name.
        assert!(matches!(cache.load("5_scan_reorder", key), Err(CacheError::Corrupt(_))));

        // Garbage payload at a valid record address.
        cache.store.put(Table::Stage, 77, "not a cache entry\n").unwrap();
        assert!(matches!(cache.load("4_place", 77), Err(CacheError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
