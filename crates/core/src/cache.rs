//! Content-addressed stage result cache: the incremental-flow engine.
//!
//! Every stage of `run_flow` transforms one [`FlowState`] into the next, and
//! both ends of that transform are deterministic functions of (design,
//! config, seed). That makes each stage memoizable: the cache key is an
//! FNV-1a hash over `(stage name, config fingerprint, state hash)`, where
//! the config fingerprint already folds in the design identity and RNG seed
//! (see [`checkpoint::fingerprint`]) and the state hash covers the exact
//! serialized pre-stage flow state — the stage's entire input. An entry is
//! the post-stage state in the checkpoint body codec (`f64` as bit-exact
//! hex), so a hit replays bit-identical QoR, the same guarantee resume
//! gives.
//!
//! The state hash deliberately excludes the wall-clock maps
//! (`stage_seconds`, `stage_speedup`, `stage_threads`): how long an earlier
//! stage took, or how many workers computed it, must never invalidate a
//! downstream entry — a recomputed stage still yields downstream hits, and a
//! warm run at 8 threads hits entries written at 1.
//!
//! Failures are contained by design: a corrupt, truncated, or unreadable
//! entry is a typed [`CacheError`] that `run_flow` downgrades to a recompute
//! (counted in the `cache.errors` metric), never a flow error and never a
//! panic. Writes are atomic (process-unique temp file + rename), so
//! concurrent flows — e.g. `experiments` child processes sharing one
//! `--cache-dir` — can race on the same entry and both land on identical
//! bytes.

use crate::checkpoint::{self, FlowState, Lines, LoadError};
use std::path::{Path, PathBuf};

/// Why a cache entry could not be read or written. Never fatal to the flow:
/// every variant downgrades to a recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CacheError {
    /// The entry file exists but is truncated, unparseable, or was written
    /// for a different stage/key than its name claims.
    Corrupt(String),
    /// Filesystem failure reading or writing the entry.
    Io(String),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Corrupt(m) => write!(f, "corrupt cache entry: {m}"),
            CacheError::Io(m) => write!(f, "cache I/O: {m}"),
        }
    }
}

fn fnv(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Hash of the deterministic portion of a flow state — a stage's entire
/// input. Serializes through [`checkpoint::write_body`] with the wall-clock
/// maps excluded, so the hash is a pure function of QoR-relevant state.
pub(crate) fn state_hash(st: &FlowState) -> u64 {
    let mut body = String::new();
    checkpoint::write_body(st, &mut body, false);
    fnv(body.bytes())
}

/// The content address of one stage execution:
/// `(stage kind, config fingerprint ⊇ {design, seed}, pre-stage state hash)`.
pub(crate) fn entry_key(stage: &str, config_fp: u64, state_hash: u64) -> u64 {
    fnv(format!("{stage}|{config_fp:016x}|{state_hash:016x}").bytes())
}

/// A directory of content-addressed stage results.
#[derive(Debug, Clone)]
pub(crate) struct StageCache {
    dir: PathBuf,
}

impl StageCache {
    pub fn new(dir: &Path) -> StageCache {
        StageCache { dir: dir.to_path_buf() }
    }

    /// The entry file for `(stage, key)`. Stage names are `[0-9a-z_]` by
    /// construction (see `flow::STAGES`), so the name needs no sanitizing.
    pub fn entry_path(&self, stage: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{stage}-{key:016x}.stage"))
    }

    /// Loads the post-stage state for `(stage, key)`.
    ///
    /// `Ok(None)` = no entry (cold). `Err(Corrupt | Io)` = an entry exists
    /// but cannot be trusted; the caller recomputes.
    pub fn load(&self, stage: &str, key: u64) -> Result<Option<FlowState>, CacheError> {
        let path = self.entry_path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(CacheError::Io(format!("read {}: {e}", path.display()))),
        };
        let corrupt = |m: String| CacheError::Corrupt(format!("{}: {m}", path.display()));
        let mut lines = Lines::new(&text);
        let demote = |e: LoadError| match e {
            LoadError::Corrupt(m) | LoadError::Mismatch(m) => corrupt(m),
        };
        let header = lines.next().map_err(demote)?;
        if header != "eda-stagecache v1" {
            return Err(corrupt(format!("bad header {header:?}")));
        }
        let stage_line = lines.next().map_err(demote)?;
        if stage_line.strip_prefix("stage ") != Some(stage) {
            return Err(corrupt(format!("entry names a different stage ({stage_line:?})")));
        }
        let key_line = lines.next().map_err(demote)?;
        let stored = key_line
            .strip_prefix("key ")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| corrupt(format!("bad key line {key_line:?}")))?;
        if stored != key {
            return Err(corrupt(format!("entry key {stored:016x} does not match its address {key:016x}")));
        }
        let st = checkpoint::read_body(&mut lines).map_err(demote)?;
        Ok(Some(st))
    }

    /// Atomically writes the post-stage state for `(stage, key)`.
    pub fn store(&self, stage: &str, key: u64, st: &FlowState) -> Result<PathBuf, CacheError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| CacheError::Io(format!("create {}: {e}", self.dir.display())))?;
        let mut out = String::new();
        out.push_str("eda-stagecache v1\n");
        out.push_str(&format!("stage {stage}\n"));
        out.push_str(&format!("key {key:016x}\n"));
        checkpoint::write_body(st, &mut out, true);
        let path = self.entry_path(stage, key);
        checkpoint::write_atomic(&path, &out)
            .map_err(|e| CacheError::Io(format!("write {}: {e}", path.display())))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{StageOutcome, StageStatus};

    fn tmp_cache(tag: &str) -> StageCache {
        let dir = std::env::temp_dir().join(format!("eda_cache_test_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        StageCache::new(&dir)
    }

    fn cleanup(c: &StageCache) {
        let _ = std::fs::remove_dir_all(&c.dir);
    }

    fn sample_state() -> FlowState {
        let mut st = FlowState::fresh();
        st.cursor = 3;
        st.cells = 42;
        st.wns_ps = -1.2345;
        st.statuses.insert(
            "1_synthesis".into(),
            StageStatus { outcome: StageOutcome::Completed, attempts: 1 },
        );
        st
    }

    #[test]
    fn roundtrip_preserves_state_bits() {
        let cache = tmp_cache("roundtrip");
        let st = sample_state();
        let key = entry_key("3_scan", 0xdead_beef, state_hash(&st));
        cache.store("3_scan", key, &st).unwrap();
        let back = cache.load("3_scan", key).unwrap().unwrap();
        assert_eq!(back.cursor, st.cursor);
        assert_eq!(back.cells, st.cells);
        assert_eq!(back.wns_ps.to_bits(), st.wns_ps.to_bits());
        assert_eq!(back.statuses, st.statuses);
        cleanup(&cache);
    }

    #[test]
    fn missing_entry_is_a_clean_miss() {
        let cache = tmp_cache("miss");
        assert!(cache.load("1_synthesis", 7).unwrap().is_none());
        cleanup(&cache);
    }

    #[test]
    fn state_hash_ignores_wall_clock_maps() {
        let mut a = sample_state();
        let mut b = sample_state();
        a.stage_seconds.insert("1_synthesis".into(), 0.5);
        b.stage_seconds.insert("1_synthesis".into(), 99.0);
        b.stage_threads.insert("4_place".into(), 8);
        b.stage_speedup.insert("4_place".into(), 3.2);
        assert_eq!(state_hash(&a), state_hash(&b));

        let mut c = sample_state();
        c.cells += 1;
        assert_ne!(state_hash(&a), state_hash(&c));
    }

    #[test]
    fn key_separates_stage_config_and_state() {
        let h = state_hash(&sample_state());
        let base = entry_key("4_place", 1, h);
        assert_ne!(base, entry_key("5_scan_reorder", 1, h));
        assert_ne!(base, entry_key("4_place", 2, h));
        assert_ne!(base, entry_key("4_place", 1, h ^ 1));
    }

    #[test]
    fn corrupt_and_truncated_entries_are_typed_errors() {
        let cache = tmp_cache("corrupt");
        let st = sample_state();
        let key = entry_key("4_place", 9, state_hash(&st));
        let path = cache.store("4_place", key, &st).unwrap();

        // Truncation mid-body.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(cache.load("4_place", key), Err(CacheError::Corrupt(_))));

        // Garbage.
        std::fs::write(&path, "not a cache entry\n").unwrap();
        assert!(matches!(cache.load("4_place", key), Err(CacheError::Corrupt(_))));

        // Right header, wrong embedded key (a renamed entry).
        let renamed = full.replace(&format!("key {key:016x}"), "key 0000000000000001");
        std::fs::write(&path, renamed).unwrap();
        assert!(matches!(cache.load("4_place", key), Err(CacheError::Corrupt(_))));

        // Empty file.
        std::fs::write(&path, "").unwrap();
        assert!(matches!(cache.load("4_place", key), Err(CacheError::Corrupt(_))));
        cleanup(&cache);
    }
}
