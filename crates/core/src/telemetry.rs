//! Deterministic span tracing and metric registry for the flow.
//!
//! Every [`run_flow`](crate::flow::run_flow) call records a tree of spans
//! (flow → stage → attempt → kernel) and a registry of typed metrics
//! (counters, gauges, and histograms with fixed bucket edges) capturing
//! per-stage QoR provenance: AIG node counts around every rewrite pass,
//! router rip-up iterations, OPC fragment moves, fault-sim pattern blocks,
//! and the parallel-kernel dispatch shapes from `eda-par`.
//!
//! The design splits hard along the determinism boundary:
//!
//! * the **deterministic section** — span structure, names, tags, and every
//!   metric — is a pure function of the design and config. It is
//!   bit-identical across runs, machines, and thread counts, which is what
//!   lets `tests/golden.rs` pin it byte-for-byte
//!   ([`TelemetrySnapshot::deterministic_text`]);
//! * the **wall section** ([`TelemetrySnapshot::wall`]) holds everything
//!   clock- or thread-shaped: span start/duration, resolved worker counts,
//!   and per-worker busy seconds. It feeds the Chrome-trace and
//!   folded-stack exports and is excluded from golden comparison.
//!
//! The collector uses interior mutability (`RefCell`) because flow
//! orchestration is single-threaded: stage bodies borrow the collector
//! through a shared [`Telemetry`] handle on
//! [`StageCtx`](crate::harness::StageCtx) while the supervisor holds its
//! own reference. Parallel kernels never touch the collector from worker
//! threads — they return [`ParStats`] which the orchestrator records.

use eda_par::ParStats;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// What a span represents in the flow hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// The whole `run_flow` call.
    Flow,
    /// One supervised stage (including skipped stages).
    Stage,
    /// One attempt of a stage under the harness (retries are siblings).
    Attempt,
    /// One kernel dispatch or optimization pass inside an attempt.
    Kernel,
}

impl SpanKind {
    /// Stable lowercase name used in every export.
    pub fn as_str(self) -> &'static str {
        match self {
            SpanKind::Flow => "flow",
            SpanKind::Stage => "stage",
            SpanKind::Attempt => "attempt",
            SpanKind::Kernel => "kernel",
        }
    }
}

impl std::fmt::Display for SpanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One node of the span tree — deterministic fields only.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Dense id; also the index into [`TelemetrySnapshot::spans`] and
    /// [`TelemetrySnapshot::wall`].
    pub id: usize,
    /// Parent span id (`None` only for the root flow span).
    pub parent: Option<usize>,
    /// Hierarchy level.
    pub kind: SpanKind,
    /// Span name (stage key, `try<invocation>`, or kernel name).
    pub name: String,
    /// Deterministic key→value annotations (outcomes, counts, injected
    /// faults). Values must never encode wall-clock or thread identity.
    pub tags: BTreeMap<String, String>,
}

/// Non-deterministic timing for one span, parallel to the span list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WallSpan {
    /// Start offset from the collector's epoch, seconds.
    pub start_s: f64,
    /// Wall-clock duration, seconds.
    pub dur_s: f64,
    /// Resolved worker count for kernel dispatches (0 = not a parallel
    /// dispatch).
    pub threads: usize,
    /// Per-worker busy seconds for kernel dispatches (empty otherwise).
    pub busy_s: Vec<f64>,
    /// Process peak resident-set size (`VmHWM`) in bytes, sampled when the
    /// span closed; 0 while a span is open or where `/proc` is
    /// unavailable. A high-water mark, so the sequence over successive
    /// spans is monotone non-decreasing. Lives in the wall section — never
    /// in the deterministic text golden snapshots pin.
    pub peak_rss_bytes: u64,
}

/// Peak resident-set size of this process in bytes — the `VmHWM` line of
/// `/proc/self/status` — or 0 where unavailable (non-Linux). The kernel
/// reports a high-water mark, so successive reads are monotone
/// non-decreasing. Machine state, not QoR: recorded only in the telemetry
/// wall section so golden snapshots stay bit-stable.
pub fn read_peak_rss_bytes() -> u64 {
    parse_vm_hwm(&std::fs::read_to_string("/proc/self/status").unwrap_or_default())
}

fn parse_vm_hwm(status: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 =
                rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// A histogram with fixed bucket edges, so its serialized form is
/// bit-stable: bucket `i` counts samples `v <= edges[i]` (first match), and
/// the final bucket is the overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds.
    pub edges: Vec<f64>,
    /// Bucket counts; `len() == edges.len() + 1` (last = overflow).
    pub counts: Vec<u64>,
}

impl Histogram {
    pub(crate) fn new(edges: &[f64]) -> Histogram {
        Histogram { edges: edges.to_vec(), counts: vec![0; edges.len() + 1] }
    }

    pub(crate) fn observe(&mut self, value: f64) {
        let idx = self.edges.iter().position(|e| value <= *e).unwrap_or(self.edges.len());
        self.counts[idx] += 1;
    }

    /// Total samples observed.
    pub fn samples(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A typed metric in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonic sum of `u64` increments.
    Counter(u64),
    /// Last-written `f64` value.
    Gauge(f64),
    /// Fixed-edge histogram.
    Histogram(Histogram),
}

/// The exported telemetry of one flow run, carried on
/// [`FlowReport`](crate::report::FlowReport).
///
/// `spans` and `metrics` are deterministic; `wall` is not. The two sections
/// are index-aligned: `wall[i]` times `spans[i]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// The span tree in creation order (parents precede children).
    pub spans: Vec<Span>,
    /// The metric registry, keyed by metric name.
    pub metrics: BTreeMap<String, Metric>,
    /// Non-deterministic wall-clock section, index-aligned with `spans`.
    pub wall: Vec<WallSpan>,
}

struct Inner {
    epoch: Instant,
    spans: Vec<Span>,
    wall: Vec<WallSpan>,
    /// Open-span stack (ids); innermost last.
    stack: Vec<usize>,
    /// Start instant of each span, for duration on close.
    started: Vec<Instant>,
    metrics: BTreeMap<String, Metric>,
}

/// A live per-stage progress callback: `(stage, outcome, attempts)`, fired
/// by the supervisor the moment a stage's status is recorded (completed,
/// recovered, degraded, skipped, or replayed from cache). Observation-only:
/// nothing the flow computes may depend on it. The flow daemon installs one
/// to stream stage events to clients while a request is still running.
pub type ProgressFn = Box<dyn FnMut(&str, &str, usize) + Send>;

/// The live collector. One per `run_flow` call; cheap shared handles
/// (`&Telemetry`) are threaded to the supervisor and stage bodies.
pub struct Telemetry {
    inner: RefCell<Inner>,
    /// Separate cell so a callback that records metrics re-entrantly never
    /// conflicts with the borrow held while invoking it.
    observer: RefCell<Option<ProgressFn>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("Telemetry")
            .field("spans", &inner.spans.len())
            .field("metrics", &inner.metrics.len())
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh collector with its epoch at "now".
    pub fn new() -> Telemetry {
        Telemetry {
            inner: RefCell::new(Inner {
                epoch: Instant::now(),
                spans: Vec::new(),
                wall: Vec::new(),
                stack: Vec::new(),
                started: Vec::new(),
                metrics: BTreeMap::new(),
            }),
            observer: RefCell::new(None),
        }
    }

    /// Installs a live per-stage progress observer (replacing any previous
    /// one). The callback fires once per recorded stage status, in stage
    /// order, on the thread running the flow.
    pub fn set_observer(&self, observer: ProgressFn) {
        *self.observer.borrow_mut() = Some(observer);
    }

    /// Fires the progress observer, if one is installed.
    pub(crate) fn progress(&self, stage: &str, outcome: &str, attempts: usize) {
        if let Some(f) = self.observer.borrow_mut().as_mut() {
            f(stage, outcome, attempts);
        }
    }

    /// Opens a span under the innermost open span. The returned guard
    /// closes it on drop; spans therefore nest strictly with scope.
    pub fn span(&self, kind: SpanKind, name: &str) -> SpanGuard<'_> {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len();
        let parent = inner.stack.last().copied();
        let now = Instant::now();
        let start_s = now.duration_since(inner.epoch).as_secs_f64();
        inner.spans.push(Span {
            id,
            parent,
            kind,
            name: name.to_string(),
            tags: BTreeMap::new(),
        });
        inner.wall.push(WallSpan { start_s, ..WallSpan::default() });
        inner.started.push(now);
        inner.stack.push(id);
        SpanGuard { tel: self, id }
    }

    /// Records a finished parallel-kernel dispatch as a closed child span
    /// of the innermost open span. The deterministic side carries the chunk
    /// count (a pure function of the input size); worker count and busy
    /// clocks go to the wall section.
    pub fn kernel(&self, name: &str, stats: &ParStats) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.spans.len();
        let parent = inner.stack.last().copied();
        let now_s = Instant::now().duration_since(inner.epoch).as_secs_f64();
        let mut tags = BTreeMap::new();
        tags.insert("chunks".to_string(), stats.chunks.to_string());
        inner.spans.push(Span { id, parent, kind: SpanKind::Kernel, name: name.to_string(), tags });
        inner.wall.push(WallSpan {
            start_s: (now_s - stats.wall_s).max(0.0),
            dur_s: stats.wall_s,
            threads: stats.threads,
            busy_s: stats.busy_s.clone(),
            peak_rss_bytes: read_peak_rss_bytes(),
        });
        inner.started.push(Instant::now());
    }

    /// Adds a tag to the innermost open span (no-op when none is open).
    pub fn tag(&self, key: &str, value: impl std::fmt::Display) {
        let mut inner = self.inner.borrow_mut();
        if let Some(&id) = inner.stack.last() {
            inner.spans[id].tags.insert(key.to_string(), value.to_string());
        }
    }

    /// Adds `delta` to the named counter (created at 0).
    pub fn count(&self, name: &str, delta: u64) {
        let mut inner = self.inner.borrow_mut();
        match inner.metrics.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += delta,
            _ => debug_assert!(false, "metric {name} is not a counter"),
        }
    }

    /// Sets the named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        let mut inner = self.inner.borrow_mut();
        inner.metrics.insert(name.to_string(), Metric::Gauge(value));
    }

    /// Observes `value` into the named fixed-edge histogram. The first
    /// observation registers the edges; later calls reuse them.
    pub fn observe(&self, name: &str, edges: &[f64], value: f64) {
        let mut inner = self.inner.borrow_mut();
        match inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(edges)))
        {
            Metric::Histogram(h) => h.observe(value),
            _ => debug_assert!(false, "metric {name} is not a histogram"),
        }
    }

    fn close(&self, id: usize) {
        let mut inner = self.inner.borrow_mut();
        let dur = inner.started[id].elapsed().as_secs_f64();
        inner.wall[id].dur_s = dur;
        inner.wall[id].peak_rss_bytes = read_peak_rss_bytes();
        // Spans close in LIFO order (guards are scope-bound), so `id` is
        // the top of the stack; tolerate out-of-order drops regardless.
        if let Some(pos) = inner.stack.iter().rposition(|&s| s == id) {
            inner.stack.remove(pos);
        }
    }

    fn tag_span(&self, id: usize, key: &str, value: String) {
        let mut inner = self.inner.borrow_mut();
        inner.spans[id].tags.insert(key.to_string(), value);
    }

    /// A snapshot of everything recorded so far. Still-open spans get their
    /// elapsed time so far as duration.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.borrow();
        let mut wall = inner.wall.clone();
        let rss_now = read_peak_rss_bytes();
        for &id in &inner.stack {
            wall[id].dur_s = inner.started[id].elapsed().as_secs_f64();
            wall[id].peak_rss_bytes = rss_now;
        }
        TelemetrySnapshot { spans: inner.spans.clone(), metrics: inner.metrics.clone(), wall }
    }
}

/// Closes its span on drop; [`SpanGuard::tag`] annotates that specific
/// span even while children are open.
pub struct SpanGuard<'t> {
    tel: &'t Telemetry,
    id: usize,
}

impl SpanGuard<'_> {
    /// Tags this guard's span (not the innermost open one).
    pub fn tag(&self, key: &str, value: impl std::fmt::Display) {
        self.tel.tag_span(self.id, key, value.to_string());
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tel.close(self.id);
    }
}

/// `f64` as a bit-exact lowercase hex word, matching the checkpoint codec.
fn bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Percent-escapes spaces, `%`, and control bytes so names and tag values
/// stay single-token in the line-oriented deterministic text.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        if b == b'%' || b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
            out.push('%');
            out.push_str(&format!("{b:02x}"));
        } else {
            out.push(b as char);
        }
    }
    out
}

/// Minimal JSON string escaping for the hand-rolled exports.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl TelemetrySnapshot {
    /// The canonical deterministic section: spans (structure, kinds, names,
    /// tags) and the full metric registry, one token-separated record per
    /// line, `f64` as bit-exact hex. Excludes the wall section entirely —
    /// this text is byte-identical across runs and thread counts and is
    /// what `tests/golden.rs` pins.
    pub fn deterministic_text(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry v1\n");
        out.push_str(&format!("spans {}\n", self.spans.len()));
        for s in &self.spans {
            let parent = s.parent.map_or_else(|| "-".to_string(), |p| p.to_string());
            out.push_str(&format!(
                "s {} {} {} {} {}",
                s.id,
                parent,
                s.kind.as_str(),
                escape(&s.name),
                s.tags.len()
            ));
            for (k, v) in &s.tags {
                out.push_str(&format!(" {}={}", escape(k), escape(v)));
            }
            out.push('\n');
        }
        out.push_str(&format!("metrics {}\n", self.metrics.len()));
        for (name, m) in &self.metrics {
            match m {
                Metric::Counter(c) => out.push_str(&format!("c {} {c}\n", escape(name))),
                Metric::Gauge(g) => {
                    out.push_str(&format!("g {} {} # {g}\n", escape(name), bits(*g)))
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("h {} {}", escape(name), h.edges.len()));
                    for e in &h.edges {
                        out.push_str(&format!(" {e}"));
                    }
                    out.push_str(" |");
                    for c in &h.counts {
                        out.push_str(&format!(" {c}"));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Chrome-trace (`chrome://tracing`, Perfetto) JSON: one complete
    /// (`"ph":"X"`) event per span, microsecond timestamps from the wall
    /// section, tags as `args`. All events share one pid/tid so the viewer
    /// reconstructs nesting from time containment.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let w = &self.wall[i];
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":1,\"args\":{{",
                json_str(&s.name),
                json_str(s.kind.as_str()),
                w.start_s * 1e6,
                w.dur_s * 1e6,
            ));
            let mut first = true;
            for (k, v) in &s.tags {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("{}:{}", json_str(k), json_str(v)));
            }
            if w.threads > 0 {
                if !first {
                    out.push(',');
                }
                out.push_str(&format!("\"threads\":\"{}\"", w.threads));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Flat metrics JSON: counters as integers, gauges as floats,
    /// histograms as `{edges, counts, samples}` objects. Key order is the
    /// registry's (BTreeMap) order, so the file is deterministic.
    pub fn metrics_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, m)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("  {}: ", json_str(name)));
            match m {
                Metric::Counter(c) => out.push_str(&c.to_string()),
                Metric::Gauge(g) => out.push_str(&format!("{g:?}")),
                Metric::Histogram(h) => {
                    out.push_str("{\"edges\":[");
                    for (j, e) in h.edges.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{e:?}"));
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&c.to_string());
                    }
                    out.push_str(&format!("],\"samples\":{}}}", h.samples()));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Folded-stack text for flamegraph tools: one `path;to;span weight`
    /// line per span with self-time weight in integer microseconds
    /// (wall time minus direct children's wall time).
    pub fn folded_stacks(&self) -> String {
        let mut child_time = vec![0.0f64; self.spans.len()];
        for (i, s) in self.spans.iter().enumerate() {
            if let Some(p) = s.parent {
                child_time[p] += self.wall[i].dur_s;
            }
        }
        let mut out = String::new();
        for (i, s) in self.spans.iter().enumerate() {
            let self_us = ((self.wall[i].dur_s - child_time[i]).max(0.0) * 1e6) as u64;
            if self_us == 0 {
                continue;
            }
            let mut path = vec![s.name.replace([';', ' '], "_")];
            let mut cur = s.parent;
            while let Some(p) = cur {
                path.push(self.spans[p].name.replace([';', ' '], "_"));
                cur = self.spans[p].parent;
            }
            path.reverse();
            out.push_str(&format!("{} {self_us}\n", path.join(";")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Telemetry {
        let tel = Telemetry::new();
        let flow = tel.span(SpanKind::Flow, "flow");
        {
            let stage = tel.span(SpanKind::Stage, "1_synthesis");
            {
                let attempt = tel.span(SpanKind::Attempt, "try0");
                attempt.tag("injected", "fail");
                tel.kernel(
                    "aig:rewrite",
                    &ParStats { threads: 4, chunks: 8, wall_s: 0.25, busy_s: vec![0.2; 4] },
                );
                tel.count("synth.aig_nodes_after", 123);
            }
            stage.tag("outcome", "completed");
        }
        tel.gauge("route.overflow", 0.0);
        tel.observe("opc.rms_epe_nm", &[1.0, 2.0, 4.0], 1.5);
        tel.observe("opc.rms_epe_nm", &[1.0, 2.0, 4.0], 9.0);
        drop(flow);
        tel
    }

    #[test]
    fn spans_nest_and_close_in_scope_order() {
        let snap = sample().snapshot();
        assert_eq!(snap.spans.len(), 4);
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, Some(1));
        assert_eq!(snap.spans[3].parent, Some(2), "kernel nests under the attempt");
        assert_eq!(snap.spans[3].kind, SpanKind::Kernel);
        assert_eq!(snap.spans[3].tags["chunks"], "8");
        assert_eq!(snap.wall.len(), snap.spans.len());
        assert_eq!(snap.wall[3].threads, 4);
    }

    #[test]
    fn metrics_are_typed_and_histograms_bucket_with_overflow() {
        let snap = sample().snapshot();
        assert_eq!(snap.metrics["synth.aig_nodes_after"], Metric::Counter(123));
        assert_eq!(snap.metrics["route.overflow"], Metric::Gauge(0.0));
        let Metric::Histogram(h) = &snap.metrics["opc.rms_epe_nm"] else {
            panic!("histogram expected");
        };
        assert_eq!(h.edges, vec![1.0, 2.0, 4.0]);
        assert_eq!(h.counts, vec![0, 1, 0, 1], "1.5 in (1,2], 9.0 in overflow");
        assert_eq!(h.samples(), 2);
    }

    #[test]
    fn deterministic_text_has_no_wall_clock_content() {
        let a = sample().snapshot();
        let b = sample().snapshot();
        // Wall sections differ between the two collections, but the
        // deterministic text must not.
        assert_eq!(a.deterministic_text(), b.deterministic_text());
        assert!(a.deterministic_text().contains("s 3 2 kernel aig:rewrite 1 chunks=8"));
    }

    #[test]
    fn exports_are_well_formed() {
        let snap = sample().snapshot();
        let trace = snap.chrome_trace_json();
        assert!(trace.starts_with('{') && trace.trim_end().ends_with('}'));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"cat\":\"attempt\""));
        let metrics = snap.metrics_json();
        assert!(metrics.contains("\"synth.aig_nodes_after\": 123"));
        assert!(metrics.contains("\"samples\":2"));
        let folded = snap.folded_stacks();
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("weight separator");
            assert!(!path.is_empty());
            weight.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn peak_rss_is_monotone_and_stays_out_of_the_deterministic_text() {
        let snap = sample().snapshot();
        if cfg!(target_os = "linux") {
            assert!(snap.wall[0].peak_rss_bytes > 0, "VmHWM readable on Linux");
        }
        // Spans close child-before-parent, so walking closes in close order
        // must never see the high-water mark decrease.
        let mut by_close: Vec<&WallSpan> = snap.wall.iter().collect();
        by_close.sort_by(|a, b| {
            (a.start_s + a.dur_s).partial_cmp(&(b.start_s + b.dur_s)).expect("finite")
        });
        for w in by_close.windows(2) {
            assert!(w[0].peak_rss_bytes <= w[1].peak_rss_bytes, "high-water mark is monotone");
        }
        // The gauge lives in the wall section only: the pinned text never
        // mentions it, so golden snapshots stay bit-stable.
        assert!(!sample().snapshot().deterministic_text().contains("rss"));
    }

    #[test]
    fn vm_hwm_parses_and_tolerates_garbage() {
        assert_eq!(parse_vm_hwm("VmPeak:\t  100 kB\nVmHWM:\t   5164 kB\n"), 5164 * 1024);
        assert_eq!(parse_vm_hwm(""), 0);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot a number\n"), 0);
        assert_eq!(parse_vm_hwm("no such line\n"), 0);
    }

    #[test]
    fn escaping_keeps_records_single_line() {
        let tel = Telemetry::new();
        let s = tel.span(SpanKind::Stage, "odd name%with\nnewline");
        s.tag("why", "two words");
        drop(s);
        let text = tel.snapshot().deterministic_text();
        assert_eq!(text.lines().count(), 4, "header + count + span + metrics header");
        assert!(text.contains("odd%20name%25with%0anewline"));
        assert!(text.contains("why=two%20words"));
    }
}
