//! Minimal line-oriented JSON codec for the daemon protocol.
//!
//! The workspace policy is no external serialization crates, so frames are
//! parsed by a small recursive-descent JSON reader and rendered with
//! `format!`. The reader is written for hostile input: depth-capped (no
//! stack overflow from `[[[[…`), allocation-bounded by the transport's
//! frame cap, and every failure is a typed [`WireError`] — never a panic.

use std::fmt;

/// Maximum nesting depth a frame may use. Protocol frames are flat objects;
/// anything deeper is an attack or a bug, and rejecting it keeps recursion
/// bounded.
const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer. Rejects
    /// fractions and values outside `u64`'s f64-exact window.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&n) {
            return None;
        }
        Some(n as u64)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A typed JSON syntax error: byte offset plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset of the failure in the input line.
    pub at: usize,
    /// What the parser expected or rejected.
    pub what: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for WireError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, WireError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(v)
}

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> WireError {
        WireError { at: self.pos, what: what.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogates would need pairing; the protocol
                            // never emits them, so reject rather than build
                            // an invalid char.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar. The input is a &str, so byte
                    // boundaries are already valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unexpected end"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_submit_frame() {
        let line = r#"{"type":"submit","id":3,"design":"fabric:3x3","seed":7,"deadline_ms":null,"flags":[true,false]}"#;
        let v = parse(line).expect("parses");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("deadline_ms"), Some(&Json::Null));
        assert_eq!(
            v.get("flags"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Bool(false)]))
        );
    }

    #[test]
    fn hostile_input_is_typed_errors_not_panics() {
        let cases = [
            "",
            "{",
            "}",
            "\"unterminated",
            "{\"a\":}",
            "[1,2,",
            "nul",
            "1e999",
            "{\"a\":1}garbage",
            "\u{7f}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "--1",
        ];
        for c in cases {
            assert!(parse(c).is_err(), "{c:?} should fail");
        }
        // Depth bomb: error, not stack overflow.
        let bomb = "[".repeat(4096);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let line = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&line).expect("parses"), Json::Str(nasty.to_string()));
    }
}
