//! Typed frames of the daemon's line-delimited JSON protocol, plus the
//! deterministic transport-layer fault space used to test it.
//!
//! # Protocol grammar
//!
//! Every frame is one JSON object on one `\n`-terminated line. Client →
//! server:
//!
//! ```text
//! {"type":"submit","id":N,"design":SPEC,"node":"10nm","seed":N,
//!  "priority":N,"deadline_ms":N,"inject":FAULTSPEC}   // run a flow
//! {"type":"query","design":S,"last":N}                // QoR provenance history
//! {"type":"ping"}                                     // liveness + stats
//! {"type":"shutdown"}                                 // begin graceful drain
//! ```
//!
//! Server → client:
//!
//! ```text
//! {"type":"accepted","id":N,"queued":N}
//! {"type":"rejected","id":N,"reason":R,"detail":S}    // R: queue-full | draining | bad-request
//! {"type":"stage","id":N,"stage":S,"outcome":S,"attempts":N}
//! {"type":"done","id":N,"ok":true,"qor_fp":HEX16,"wall_s":F,"stages":N}
//! {"type":"done","id":N,"ok":false,"error":S,"stages":N}
//! {"type":"query-result","rows":[{"seq":N,"design":S,...}]}
//! {"type":"pong", ...stats}
//! {"type":"shutdown-ack", ...stats}
//! {"type":"protocol-error","detail":S}                // then the connection closes
//! ```
//!
//! A `query` reads the daemon's flow store (QoR provenance table) and is
//! answered inline on the connection's reader thread — it never waits for,
//! or occupies, a flow worker. A daemon without a store answers with zero
//! rows.
//!
//! `id` is chosen by the client and scopes every later frame about that
//! request; ids are per-connection, so two clients may both use `1`.
//! `qor_fp` is the FNV-1a fingerprint of the report's QoR text
//! ([`FlowReport::qor_fingerprint`](crate::report::FlowReport::qor_fingerprint)),
//! sent as a 16-digit hex string because `u64` does not survive a JSON
//! `f64` round trip.

use std::fmt;
use std::str::FromStr;

use eda_netlist::{generate, Netlist, NetlistError};
use eda_tech::Node;

use crate::config::FlowConfig;
use crate::daemon::wire::{self, Json};
use crate::harness::FaultPlan;
use crate::store::{QorRow, StoreConfig};

/// One flow request as submitted over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Client-chosen request id; scopes every response frame.
    pub id: u64,
    /// Design generator spec, e.g. `fabric:3x3` (see [`DesignSpec`]).
    pub design: String,
    /// Target technology node.
    pub node: Node,
    /// Flow seed: equal seeds give bit-identical QoR.
    pub seed: u64,
    /// Scheduling priority: higher runs earlier, ties keep admission order.
    pub priority: i64,
    /// Wall-clock deadline from admission, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Optional deterministic stage-fault spec (see
    /// [`FaultPlan::parse`](crate::harness::FaultPlan::parse)).
    pub inject: Option<String>,
}

impl SubmitSpec {
    /// A minimal spec: 10 nm, seed 1, no priority, deadline, or faults.
    pub fn new(id: u64, design: impl Into<String>) -> SubmitSpec {
        SubmitSpec {
            id,
            design: design.into(),
            node: Node::N10,
            seed: 1,
            priority: 0,
            deadline_ms: None,
            inject: None,
        }
    }
}

/// One provenance query as submitted over the wire: filters over the
/// daemon store's QoR history table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySpec {
    /// Keep rows of this design only (`None` = every design).
    pub design: Option<String>,
    /// Keep only the newest N matching rows (`0` = unlimited).
    pub last: u64,
}

/// A frame sent by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Run a flow.
    Submit(SubmitSpec),
    /// Read QoR provenance history from the daemon's flow store; answered
    /// with [`ServerFrame::QueryResult`] without occupying a flow worker.
    Query(QuerySpec),
    /// Liveness probe; answered with [`ServerFrame::Pong`].
    Ping,
    /// Begin graceful drain; answered with [`ServerFrame::ShutdownAck`]
    /// once every in-flight request has finished.
    Shutdown,
}

impl ClientFrame {
    /// Renders the frame as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ClientFrame::Ping => "{\"type\":\"ping\"}".to_string(),
            ClientFrame::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
            ClientFrame::Query(q) => {
                let mut line = "{\"type\":\"query\"".to_string();
                if let Some(design) = &q.design {
                    line.push_str(&format!(",\"design\":\"{}\"", wire::escape(design)));
                }
                line.push_str(&format!(",\"last\":{}}}", q.last));
                line
            }
            ClientFrame::Submit(s) => {
                let mut line = format!(
                    "{{\"type\":\"submit\",\"id\":{},\"design\":\"{}\",\"node\":\"{}\",\"seed\":{},\"priority\":{}",
                    s.id,
                    wire::escape(&s.design),
                    wire::escape(&s.node.name()),
                    s.seed,
                    s.priority
                );
                if let Some(ms) = s.deadline_ms {
                    line.push_str(&format!(",\"deadline_ms\":{ms}"));
                }
                if let Some(inject) = &s.inject {
                    line.push_str(&format!(",\"inject\":\"{}\"", wire::escape(inject)));
                }
                line.push('}');
                line
            }
        }
    }
}

/// Why the daemon refused a submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The bounded admission queue is at its high-water mark: shed load.
    QueueFull,
    /// The daemon is draining and no longer admits work.
    Draining,
    /// The submit frame was well-formed JSON but semantically invalid
    /// (unknown design spec, bad node, bad fault spec, missing id).
    BadRequest,
}

impl RejectReason {
    /// Wire token for the reason.
    pub fn token(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::Draining => "draining",
            RejectReason::BadRequest => "bad-request",
        }
    }

    fn from_token(t: &str) -> Option<RejectReason> {
        match t {
            "queue-full" => Some(RejectReason::QueueFull),
            "draining" => Some(RejectReason::Draining),
            "bad-request" => Some(RejectReason::BadRequest),
            _ => None,
        }
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Daemon lifetime counters, carried in pong and shutdown-ack frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Submits admitted to the queue.
    pub accepted: u64,
    /// Submits shed with `queue-full`.
    pub rejected_full: u64,
    /// Submits refused with `draining`.
    pub rejected_draining: u64,
    /// Submits refused with `bad-request`.
    pub rejected_bad: u64,
    /// Admitted requests that completed with a report.
    pub completed: u64,
    /// Admitted requests that ended in a typed flow error.
    pub failed: u64,
    /// Connections closed after an unparseable or oversized frame.
    pub protocol_errors: u64,
    /// Admitted requests cancelled because their client vanished.
    pub disconnects: u64,
}

impl DaemonStats {
    /// Every submit the daemon turned away, by any reason.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_draining + self.rejected_bad
    }

    fn fields(&self) -> String {
        format!(
            "\"accepted\":{},\"rejected_full\":{},\"rejected_draining\":{},\"rejected_bad\":{},\"completed\":{},\"failed\":{},\"protocol_errors\":{},\"disconnects\":{}",
            self.accepted,
            self.rejected_full,
            self.rejected_draining,
            self.rejected_bad,
            self.completed,
            self.failed,
            self.protocol_errors,
            self.disconnects
        )
    }

    fn from_json(v: &Json) -> DaemonStats {
        let g = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        DaemonStats {
            accepted: g("accepted"),
            rejected_full: g("rejected_full"),
            rejected_draining: g("rejected_draining"),
            rejected_bad: g("rejected_bad"),
            completed: g("completed"),
            failed: g("failed"),
            protocol_errors: g("protocol_errors"),
            disconnects: g("disconnects"),
        }
    }
}

/// A frame sent by the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// The submit passed admission and is queued.
    Accepted {
        /// Request id.
        id: u64,
        /// Queue depth right after admission.
        queued: usize,
    },
    /// The submit was refused; nothing was queued.
    Rejected {
        /// Request id (0 when the frame had none).
        id: u64,
        /// Why.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
    /// A stage of the request finished (streamed mid-run).
    Stage {
        /// Request id.
        id: u64,
        /// Stage name, e.g. `4_place`.
        stage: String,
        /// Stage outcome text, e.g. `done` or `degraded (2 attempts)`.
        outcome: String,
        /// Attempts the stage took.
        attempts: usize,
    },
    /// Terminal frame for a request.
    Done {
        /// Request id.
        id: u64,
        /// `true` when the flow produced a report.
        ok: bool,
        /// QoR fingerprint of the report (present when `ok`).
        qor_fp: Option<u64>,
        /// Wall-clock seconds from admission to completion.
        wall_s: f64,
        /// Stages that recorded a status.
        stages: usize,
        /// Typed flow-error text (present when `!ok`).
        error: Option<String>,
    },
    /// Answer to a query: matching QoR provenance rows, newest first.
    QueryResult {
        /// The matching rows (empty when the daemon has no store, the
        /// store is unreadable, or nothing matches).
        rows: Vec<QorRow>,
    },
    /// Answer to a ping.
    Pong(DaemonStats),
    /// Drain finished; the daemon is about to exit 0.
    ShutdownAck(DaemonStats),
    /// The client's last frame was unparseable; the connection closes.
    ProtocolError {
        /// What was wrong.
        detail: String,
    },
}

impl ServerFrame {
    /// Renders the frame as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            ServerFrame::Accepted { id, queued } => {
                format!("{{\"type\":\"accepted\",\"id\":{id},\"queued\":{queued}}}")
            }
            ServerFrame::Rejected { id, reason, detail } => format!(
                "{{\"type\":\"rejected\",\"id\":{id},\"reason\":\"{}\",\"detail\":\"{}\"}}",
                reason.token(),
                wire::escape(detail)
            ),
            ServerFrame::Stage { id, stage, outcome, attempts } => format!(
                "{{\"type\":\"stage\",\"id\":{id},\"stage\":\"{}\",\"outcome\":\"{}\",\"attempts\":{attempts}}}",
                wire::escape(stage),
                wire::escape(outcome)
            ),
            ServerFrame::Done { id, ok, qor_fp, wall_s, stages, error } => {
                let mut line = format!("{{\"type\":\"done\",\"id\":{id},\"ok\":{ok}");
                if let Some(fp) = qor_fp {
                    line.push_str(&format!(",\"qor_fp\":\"{fp:016x}\""));
                }
                if let Some(err) = error {
                    line.push_str(&format!(",\"error\":\"{}\"", wire::escape(err)));
                }
                line.push_str(&format!(",\"wall_s\":{wall_s:.6},\"stages\":{stages}}}"));
                line
            }
            ServerFrame::QueryResult { rows } => {
                let items: Vec<String> = rows.iter().map(qor_row_json).collect();
                format!("{{\"type\":\"query-result\",\"rows\":[{}]}}", items.join(","))
            }
            ServerFrame::Pong(stats) => format!("{{\"type\":\"pong\",{}}}", stats.fields()),
            ServerFrame::ShutdownAck(stats) => {
                format!("{{\"type\":\"shutdown-ack\",{}}}", stats.fields())
            }
            ServerFrame::ProtocolError { detail } => format!(
                "{{\"type\":\"protocol-error\",\"detail\":\"{}\"}}",
                wire::escape(detail)
            ),
        }
    }
}

/// Renders one QoR provenance row as a JSON object. Fingerprints travel as
/// 16-digit hex strings (u64s do not survive a JSON `f64` round trip);
/// floats use Rust's shortest round-trip formatting.
fn qor_row_json(r: &QorRow) -> String {
    format!(
        "{{\"seq\":{},\"design\":\"{}\",\"node\":\"{}\",\"cfg_fp\":\"{:016x}\",\"qor_fp\":\"{:016x}\",\"wns_ps\":{},\"overflow\":{},\"hpwl_um\":{},\"wall_s\":{},\"peak_rss_bytes\":{}}}",
        r.seq,
        wire::escape(&r.design),
        wire::escape(&r.node),
        r.cfg_fp,
        r.qor_fp,
        r.wns_ps,
        r.overflow,
        r.hpwl_um,
        r.wall_s,
        r.peak_rss_bytes
    )
}

fn qor_row_from_json(v: &Json) -> Option<QorRow> {
    let hex =
        |k: &str| v.get(k).and_then(Json::as_str).and_then(|h| u64::from_str_radix(h, 16).ok());
    Some(QorRow {
        seq: v.get("seq").and_then(Json::as_u64)?,
        design: v.get("design").and_then(Json::as_str)?.to_string(),
        node: v.get("node").and_then(Json::as_str).unwrap_or("").to_string(),
        cfg_fp: hex("cfg_fp")?,
        qor_fp: hex("qor_fp")?,
        wns_ps: v.get("wns_ps").and_then(Json::as_f64).unwrap_or(0.0),
        overflow: v.get("overflow").and_then(Json::as_u64).unwrap_or(0),
        hpwl_um: v.get("hpwl_um").and_then(Json::as_f64).unwrap_or(0.0),
        wall_s: v.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
        peak_rss_bytes: v.get("peak_rss_bytes").and_then(Json::as_u64).unwrap_or(0),
    })
}

/// A semantically malformed frame: well-formed JSON that is not a valid
/// frame of the given direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad frame: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

fn frame_type(v: &Json) -> Result<&str, FrameError> {
    v.get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| FrameError("missing `type` field".to_string()))
}

/// Parses one client line into a typed frame. JSON syntax errors and
/// unknown frame types are both [`FrameError`]s — the daemon answers with
/// `protocol-error` and closes the connection.
pub fn parse_client_frame(line: &str) -> Result<ClientFrame, FrameError> {
    let v = wire::parse(line).map_err(|e| FrameError(e.to_string()))?;
    match frame_type(&v)? {
        "ping" => Ok(ClientFrame::Ping),
        "shutdown" => Ok(ClientFrame::Shutdown),
        "query" => Ok(ClientFrame::Query(QuerySpec {
            design: v.get("design").and_then(Json::as_str).map(str::to_string),
            last: v.get("last").and_then(Json::as_u64).unwrap_or(0),
        })),
        "submit" => {
            let id = v
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| FrameError("submit needs a numeric `id`".to_string()))?;
            let design = v
                .get("design")
                .and_then(Json::as_str)
                .ok_or_else(|| FrameError("submit needs a `design` string".to_string()))?
                .to_string();
            let node = match v.get("node").and_then(Json::as_str) {
                None => Node::N10,
                Some(s) => Node::from_str(s)
                    .map_err(|e| FrameError(format!("bad node `{s}`: {e}")))?,
            };
            let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(1);
            let priority = v.get("priority").and_then(Json::as_f64).unwrap_or(0.0) as i64;
            let deadline_ms = v.get("deadline_ms").and_then(Json::as_u64);
            let inject = v.get("inject").and_then(Json::as_str).map(str::to_string);
            Ok(ClientFrame::Submit(SubmitSpec {
                id,
                design,
                node,
                seed,
                priority,
                deadline_ms,
                inject,
            }))
        }
        other => Err(FrameError(format!("unknown frame type `{other}`"))),
    }
}

/// Parses one server line into a typed frame (the client half).
pub fn parse_server_frame(line: &str) -> Result<ServerFrame, FrameError> {
    let v = wire::parse(line).map_err(|e| FrameError(e.to_string()))?;
    let id = || v.get("id").and_then(Json::as_u64).unwrap_or(0);
    let text = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or("").to_string();
    match frame_type(&v)? {
        "accepted" => Ok(ServerFrame::Accepted {
            id: id(),
            queued: v.get("queued").and_then(Json::as_u64).unwrap_or(0) as usize,
        }),
        "rejected" => {
            let token = text("reason");
            let reason = RejectReason::from_token(&token)
                .ok_or_else(|| FrameError(format!("unknown reject reason `{token}`")))?;
            Ok(ServerFrame::Rejected { id: id(), reason, detail: text("detail") })
        }
        "stage" => Ok(ServerFrame::Stage {
            id: id(),
            stage: text("stage"),
            outcome: text("outcome"),
            attempts: v.get("attempts").and_then(Json::as_u64).unwrap_or(0) as usize,
        }),
        "done" => {
            let ok = v
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or_else(|| FrameError("done needs `ok`".to_string()))?;
            let qor_fp = match v.get("qor_fp").and_then(Json::as_str) {
                None => None,
                Some(hex) => Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| FrameError(format!("bad qor_fp `{hex}`")))?,
                ),
            };
            let error = v.get("error").and_then(Json::as_str).map(str::to_string);
            Ok(ServerFrame::Done {
                id: id(),
                ok,
                qor_fp,
                wall_s: v.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0),
                stages: v.get("stages").and_then(Json::as_u64).unwrap_or(0) as usize,
                error,
            })
        }
        "query-result" => {
            let rows = match v.get("rows") {
                Some(Json::Arr(items)) => items.iter().filter_map(qor_row_from_json).collect(),
                _ => Vec::new(),
            };
            Ok(ServerFrame::QueryResult { rows })
        }
        "pong" => Ok(ServerFrame::Pong(DaemonStats::from_json(&v))),
        "shutdown-ack" => Ok(ServerFrame::ShutdownAck(DaemonStats::from_json(&v))),
        "protocol-error" => Ok(ServerFrame::ProtocolError { detail: text("detail") }),
        other => Err(FrameError(format!("unknown frame type `{other}`"))),
    }
}

/// The design generators reachable over the wire, as a parsed spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignSpec {
    /// `fabric:RxC` — an RxC switch fabric.
    Fabric {
        /// Port rows.
        rows: usize,
        /// Port columns (the fabric's word width).
        cols: usize,
    },
    /// `adder:N` — an N-bit ripple-carry adder.
    Adder(usize),
    /// `parity:N` — an N-input parity tree.
    Parity(usize),
    /// `mult:N` — an N×N array multiplier.
    Mult(usize),
    /// `rand:GATES:SEED` — seeded random logic.
    Rand {
        /// Combinational gate count.
        gates: usize,
        /// Generator seed (independent of the flow seed).
        seed: u64,
    },
}

/// Generated designs are capped so a hostile `rand:999999999:1` submit
/// cannot balloon daemon memory; real designs in this workspace are far
/// smaller.
const MAX_DESIGN_UNITS: usize = 1 << 16;

impl FromStr for DesignSpec {
    type Err = FrameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || FrameError(format!("bad design spec `{s}` (want fabric:RxC, adder:N, parity:N, mult:N, or rand:GATES:SEED)"));
        let mut parts = s.split(':');
        let kind = parts.next().ok_or_else(bad)?;
        let arg = parts.next().ok_or_else(bad)?;
        let spec = match kind {
            "fabric" => {
                let (r, c) = arg.split_once('x').ok_or_else(bad)?;
                DesignSpec::Fabric {
                    rows: r.parse().map_err(|_| bad())?,
                    cols: c.parse().map_err(|_| bad())?,
                }
            }
            "adder" => DesignSpec::Adder(arg.parse().map_err(|_| bad())?),
            "parity" => DesignSpec::Parity(arg.parse().map_err(|_| bad())?),
            "mult" => DesignSpec::Mult(arg.parse().map_err(|_| bad())?),
            "rand" => DesignSpec::Rand {
                gates: arg.parse().map_err(|_| bad())?,
                seed: parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?,
            },
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        let units = match spec {
            DesignSpec::Fabric { rows, cols } => rows.saturating_mul(cols),
            DesignSpec::Adder(n) | DesignSpec::Parity(n) | DesignSpec::Mult(n) => n,
            DesignSpec::Rand { gates, .. } => gates,
        };
        if units == 0 || units > MAX_DESIGN_UNITS {
            return Err(FrameError(format!(
                "design spec `{s}` out of range (1..={MAX_DESIGN_UNITS} units)"
            )));
        }
        Ok(spec)
    }
}

impl fmt::Display for DesignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignSpec::Fabric { rows, cols } => write!(f, "fabric:{rows}x{cols}"),
            DesignSpec::Adder(n) => write!(f, "adder:{n}"),
            DesignSpec::Parity(n) => write!(f, "parity:{n}"),
            DesignSpec::Mult(n) => write!(f, "mult:{n}"),
            DesignSpec::Rand { gates, seed } => write!(f, "rand:{gates}:{seed}"),
        }
    }
}

impl DesignSpec {
    /// Generates the netlist. Equal specs give bit-identical netlists.
    pub fn build(&self) -> Result<Netlist, NetlistError> {
        match *self {
            DesignSpec::Fabric { rows, cols } => generate::switch_fabric(rows, cols),
            DesignSpec::Adder(n) => generate::ripple_carry_adder(n),
            DesignSpec::Parity(n) => generate::parity_tree(n),
            DesignSpec::Mult(n) => generate::array_multiplier(n),
            DesignSpec::Rand { gates, seed } => generate::random_logic(generate::RandomLogicConfig {
                inputs: 16,
                outputs: 8,
                gates,
                flop_fraction: 0.15,
                seed,
            }),
        }
    }
}

/// Builds the [`FlowConfig`] a submit runs under. The daemon and any
/// out-of-band verifier both call this, so every QoR-relevant knob (preset,
/// node, seed, fault plan) is derived from the spec alone — `threads`, the
/// shared store, and the checkpoint directory are execution detail that
/// cannot move the QoR.
pub fn flow_config_for(
    spec: &SubmitSpec,
    threads: usize,
    store: Option<&StoreConfig>,
    checkpoint_dir: Option<&std::path::Path>,
) -> Result<FlowConfig, FrameError> {
    let mut cfg = FlowConfig::advanced_2016(spec.node);
    cfg.name = format!("daemon-{}", spec.design);
    cfg.seed = spec.seed;
    cfg.threads = threads.max(1);
    cfg.store = store.cloned();
    cfg.checkpoint_dir = checkpoint_dir.map(std::path::Path::to_path_buf);
    if let Some(inject) = &spec.inject {
        let plan = FaultPlan::parse(inject, spec.seed)
            .map_err(|e| FrameError(format!("bad inject spec `{inject}`: {e}")))?;
        cfg.fault_plan = Some(plan);
    }
    Ok(cfg)
}

/// A transport-layer fault a test client injects deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    /// Close the connection instead of sending the frame.
    ConnDrop,
    /// Replace the frame with unparseable bytes.
    FrameGarbage,
    /// Pause mid-frame (a slow-loris write) before completing it.
    Stall,
}

impl TransportFault {
    fn token(self) -> &'static str {
        match self {
            TransportFault::ConnDrop => "conn-drop",
            TransportFault::FrameGarbage => "frame-garbage",
            TransportFault::Stall => "stall",
        }
    }
}

/// A malformed transport-fault spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportFaultError {
    /// The fault name is not one of `conn-drop`, `frame-garbage`, `stall`.
    UnknownFault(String),
    /// The `@N` frame index is missing or unparseable.
    BadIndex(String),
}

impl fmt::Display for TransportFaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportFaultError::UnknownFault(s) => write!(
                f,
                "unknown transport fault `{s}` (want conn-drop, frame-garbage, or stall)"
            ),
            TransportFaultError::BadIndex(s) => {
                write!(f, "bad transport fault index in `{s}` (want fault@N)")
            }
        }
    }
}

impl std::error::Error for TransportFaultError {}

/// The deterministic transport-fault space: which client frames (0-based)
/// get sabotaged, and how. The counterpart of the stage-level
/// [`FaultPlan`](crate::harness::FaultPlan), one layer down the stack.
///
/// Grammar: comma-separated `conn-drop@N | frame-garbage@N | stall@N`,
/// where `N` is the index of the client frame the fault fires on. Equal
/// specs misbehave identically, so every hostile-client test is replayable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransportFaultPlan {
    rules: Vec<(u64, TransportFault)>,
}

impl TransportFaultPlan {
    /// Parses the spec; see the type docs for the grammar.
    pub fn parse(spec: &str) -> Result<TransportFaultPlan, TransportFaultError> {
        let mut rules = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, at) = part
                .split_once('@')
                .ok_or_else(|| TransportFaultError::BadIndex(part.to_string()))?;
            let fault = match name.trim() {
                "conn-drop" => TransportFault::ConnDrop,
                "frame-garbage" => TransportFault::FrameGarbage,
                "stall" => TransportFault::Stall,
                other => return Err(TransportFaultError::UnknownFault(other.to_string())),
            };
            let index: u64 = at
                .trim()
                .parse()
                .map_err(|_| TransportFaultError::BadIndex(part.to_string()))?;
            rules.push((index, fault));
        }
        Ok(TransportFaultPlan { rules })
    }

    /// The fault to fire when sending client frame `index`, if any (first
    /// matching rule wins).
    pub fn fault_for(&self, index: u64) -> Option<TransportFault> {
        self.rules.iter().find(|(at, _)| *at == index).map(|(_, f)| *f)
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for TransportFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> =
            self.rules.iter().map(|(at, fault)| format!("{}@{at}", fault.token())).collect();
        f.write_str(&parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_frames_round_trip() {
        let spec = SubmitSpec {
            id: 7,
            design: "fabric:3x3".into(),
            node: Node::N10,
            seed: 42,
            priority: -2,
            deadline_ms: Some(1500),
            inject: Some("route=fail@1".into()),
        };
        let frames = [
            ClientFrame::Submit(spec),
            ClientFrame::Ping,
            ClientFrame::Shutdown,
            ClientFrame::Query(QuerySpec { design: Some("fabric:3x3".into()), last: 10 }),
            ClientFrame::Query(QuerySpec::default()),
        ];
        for f in frames {
            let line = f.to_line();
            assert_eq!(parse_client_frame(&line).expect("parses"), f, "line: {line}");
        }
    }

    #[test]
    fn query_results_round_trip_with_exact_fingerprints() {
        let row = QorRow {
            seq: 12,
            design: "daemon-adder:8".into(),
            node: "10nm".into(),
            cfg_fp: u64::MAX - 3,
            qor_fp: 0x0123_4567_89ab_cdef,
            wns_ps: -42.5,
            overflow: 3,
            hpwl_um: 1234.0625,
            wall_s: 0.25,
            peak_rss_bytes: 1 << 20,
        };
        let frames = [
            ServerFrame::QueryResult { rows: vec![row] },
            ServerFrame::QueryResult { rows: Vec::new() },
        ];
        for f in frames {
            let line = f.to_line();
            assert_eq!(parse_server_frame(&line).expect("parses"), f, "line: {line}");
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let stats = DaemonStats { accepted: 4, rejected_full: 2, completed: 3, ..Default::default() };
        let frames = [
            ServerFrame::Accepted { id: 1, queued: 3 },
            ServerFrame::Rejected {
                id: 2,
                reason: RejectReason::QueueFull,
                detail: "queue at high water (4)".into(),
            },
            ServerFrame::Stage { id: 1, stage: "4_place".into(), outcome: "done".into(), attempts: 1 },
            ServerFrame::Done {
                id: 1,
                ok: true,
                qor_fp: Some(0x00ab_cdef_0123_4567),
                wall_s: 0.25,
                stages: 11,
                error: None,
            },
            ServerFrame::Done {
                id: 3,
                ok: false,
                qor_fp: None,
                wall_s: 0.125,
                stages: 4,
                error: Some("flow deadline exceeded before stage `7_route`".into()),
            },
            ServerFrame::Pong(stats),
            ServerFrame::ShutdownAck(stats),
            ServerFrame::ProtocolError { detail: "bad JSON at byte 0".into() },
        ];
        for f in frames {
            let line = f.to_line();
            assert_eq!(parse_server_frame(&line).expect("parses"), f, "line: {line}");
        }
    }

    #[test]
    fn qor_fp_survives_the_wire_as_hex() {
        // The motivating case: u64s above 2^53 corrupt silently as f64.
        let fp = u64::MAX - 1;
        let line = ServerFrame::Done {
            id: 1,
            ok: true,
            qor_fp: Some(fp),
            wall_s: 0.0,
            stages: 11,
            error: None,
        }
        .to_line();
        match parse_server_frame(&line).expect("parses") {
            ServerFrame::Done { qor_fp, .. } => assert_eq!(qor_fp, Some(fp)),
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn design_specs_parse_build_and_bound() {
        for (s, name) in [
            ("fabric:3x3", "fabric_3x3"),
            ("adder:16", "rca16"),
            ("parity:32", "parity32"),
        ] {
            let spec: DesignSpec = s.parse().expect("parses");
            assert_eq!(spec.to_string(), s);
            let net = spec.build().expect("builds");
            assert!(!net.name().is_empty(), "{s} → {name}");
        }
        for bad in ["fabric:3", "adder:x", "rand:100", "nope:1", "adder:0", "rand:99999999:1", "adder:4:4"] {
            assert!(bad.parse::<DesignSpec>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn transport_fault_grammar() {
        let plan = TransportFaultPlan::parse("conn-drop@2, frame-garbage@0,stall@5").expect("parses");
        assert_eq!(plan.fault_for(0), Some(TransportFault::FrameGarbage));
        assert_eq!(plan.fault_for(1), None);
        assert_eq!(plan.fault_for(2), Some(TransportFault::ConnDrop));
        assert_eq!(plan.fault_for(5), Some(TransportFault::Stall));
        assert_eq!(plan.to_string(), "conn-drop@2,frame-garbage@0,stall@5");
        assert!(TransportFaultPlan::parse("").expect("empty ok").is_empty());
        assert!(matches!(
            TransportFaultPlan::parse("bomb@1"),
            Err(TransportFaultError::UnknownFault(_))
        ));
        assert!(matches!(
            TransportFaultPlan::parse("stall"),
            Err(TransportFaultError::BadIndex(_))
        ));
        assert!(matches!(
            TransportFaultPlan::parse("stall@x"),
            Err(TransportFaultError::BadIndex(_))
        ));
    }

    #[test]
    fn flow_config_is_a_pure_function_of_the_spec() {
        let spec = SubmitSpec { inject: Some("route=fail@0".into()), ..SubmitSpec::new(1, "adder:8") };
        let a = flow_config_for(&spec, 1, None, None).expect("builds");
        let store = StoreConfig::at("/tmp/c/flow.store");
        let b = flow_config_for(&spec, 8, Some(&store), None).expect("builds");
        // Threads and the shared store differ; everything QoR-relevant matches.
        assert_eq!(a.name, b.name);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.node, b.node);
        assert!(b.fault_plan.is_some());
        assert!(flow_config_for(
            &SubmitSpec { inject: Some("bogus=x".into()), ..SubmitSpec::new(1, "adder:8") },
            1,
            None,
            None
        )
        .is_err());
    }
}
