//! Network-facing flow daemon: a long-lived, fault-contained front end
//! over the transport-free flow engine.
//!
//! The batch [`FlowServer`](crate::server::FlowServer) plans a fixed batch
//! and runs it to completion; the daemon is its streaming counterpart for
//! clients that arrive over a socket. It speaks the line-delimited JSON
//! protocol of [`protocol`] on a Unix socket (and optionally TCP), shares
//! the server's thread-split policy
//! ([`kernel_share`](crate::server::kernel_share)) and the same
//! [`run_flow_observed`](crate::flow::run_flow_observed) core, and adds the
//! concerns a network boundary forces:
//!
//! - **Admission control.** The queue is bounded: past
//!   [`DaemonConfig::queue_high_water`] a submit gets a typed
//!   `rejected{queue-full}` frame instead of unbounded buffering. Load is
//!   shed loudly, never absorbed silently.
//! - **Deadlines.** A submit may carry `deadline_ms`, measured from
//!   admission. The remaining allowance is handed to the supervisor as
//!   [`FlowConfig::deadline_s`](crate::config::FlowConfig::deadline_s), so
//!   an overrun surfaces as a typed
//!   [`FlowError::DeadlineExceeded`](crate::flow::FlowError::DeadlineExceeded)
//!   at a stage boundary — a worker is never killed mid-attempt, and never
//!   hangs.
//! - **Fault containment.** Every connection gets its own reader thread
//!   and write lock. A malformed frame, an oversized frame, or a mid-run
//!   disconnect kills *that* connection and lazily cancels *its* queued
//!   requests; every other client's requests run to completion with
//!   bit-identical QoR (the determinism contract is end-to-end:
//!   `qor_fp` over the wire equals a solo rerun's).
//! - **Graceful drain.** A `shutdown` frame or SIGTERM (opt-in,
//!   [`DaemonConfig::handle_sigterm`]) moves the daemon from *accepting*
//!   to *draining*: listeners stop accepting, new submits get
//!   `rejected{draining}`, in-flight requests finish (checkpointing as
//!   they go when a checkpoint dir is set), then the daemon acknowledges,
//!   cleans up its socket, and [`Daemon::run`] returns the final stats —
//!   the CLI exits 0.

pub mod client;
pub mod protocol;
pub mod wire;

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use eda_netlist::Netlist;
use eda_par::resolve_threads;

use crate::config::FlowConfig;
use crate::flow::run_flow_shared;
use crate::server::kernel_share;
use crate::store::{FlowStore, QorQuery, Query, StoreConfig};

use protocol::{
    flow_config_for, parse_client_frame, ClientFrame, DaemonStats, DesignSpec, QuerySpec,
    RejectReason, ServerFrame, SubmitSpec,
};

/// Hard cap on one frame's length; longer input is a protocol error and
/// closes the connection, so a hostile client cannot balloon daemon memory.
const FRAME_CAP: usize = 1 << 20;

/// How often blocked threads wake to check the stop/drain flags.
const TICK: Duration = Duration::from_millis(100);

/// How long a frame write to a stalled client may block before the
/// connection is declared dead (slow-loris containment on the write side).
const WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Set by the SIGTERM handler; polled by the daemon's drain loop. Global
/// because signal dispositions are process-wide.
static SIGTERM_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: libc::c_int) {
    // Async-signal-safe by construction: one atomic store, nothing else.
    SIGTERM_FLAG.store(true, Ordering::SeqCst);
}

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix listening socket; created at bind, removed at exit.
    pub socket: PathBuf,
    /// Optional TCP listen address (e.g. `127.0.0.1:0`).
    pub tcp: Option<String>,
    /// Flow worker threads (`0` = auto: half the resolved thread budget).
    pub workers: usize,
    /// Global kernel thread budget shared by the workers (`0` = all cores);
    /// each request's kernels get [`kernel_share`] of it.
    pub threads: usize,
    /// Admission high-water mark: submits arriving while this many requests
    /// are already queued (not yet running) are rejected with `queue-full`.
    pub queue_high_water: usize,
    /// Shared flow store handed to every request: stage + sub-stage cache
    /// plus the QoR provenance tables the `query` frame reads.
    pub store: Option<StoreConfig>,
    /// Deprecated shim: shared stage-cache directory. When `store` is
    /// `None`, maps to a store at `<cache_dir>/flow.store` with default
    /// settings; an explicit `store` wins. Prefer `store`.
    pub cache_dir: Option<PathBuf>,
    /// Checkpoint directory handed to every request, so in-flight work is
    /// resumable after a drain. Concurrent requests cannot clobber each
    /// other here: checkpoint files are namespaced by config fingerprint.
    pub checkpoint_dir: Option<PathBuf>,
    /// Install a SIGTERM handler that triggers graceful drain. Opt-in
    /// because signal dispositions are process-wide: the CLI enables it,
    /// in-process tests leave it off.
    pub handle_sigterm: bool,
}

impl DaemonConfig {
    /// A daemon on `socket` with 2 workers, an all-cores kernel budget, a
    /// high-water mark of 8, no TCP endpoint, and no SIGTERM handler.
    pub fn new(socket: impl Into<PathBuf>) -> DaemonConfig {
        DaemonConfig {
            socket: socket.into(),
            tcp: None,
            workers: 2,
            threads: 0,
            queue_high_water: 8,
            store: None,
            cache_dir: None,
            checkpoint_dir: None,
            handle_sigterm: false,
        }
    }

    /// The store this daemon actually uses: an explicit `store` wins, a
    /// bare `cache_dir` maps to `<dir>/flow.store` with default settings.
    pub fn effective_store(&self) -> Option<StoreConfig> {
        self.store
            .clone()
            .or_else(|| self.cache_dir.as_ref().map(|dir| StoreConfig::at(dir.join("flow.store"))))
    }
}

/// Either transport the daemon serves.
#[derive(Debug)]
pub(crate) enum Stream {
    /// A Unix-domain connection.
    Unix(UnixStream),
    /// A TCP connection.
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }

    pub(crate) fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_read_timeout(d),
            Stream::Tcp(s) => s.set_read_timeout(d),
        }
    }

    pub(crate) fn set_write_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.set_write_timeout(d),
            Stream::Tcp(s) => s.set_write_timeout(d),
        }
    }

    pub(crate) fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

/// The write half of one connection: a line-atomic, poison-proof writer
/// that turns dead the first time a write fails, after which every send is
/// a silent no-op. Workers and the reader share it through an `Arc`.
pub(crate) struct ConnWriter {
    stream: Mutex<Stream>,
    dead: AtomicBool,
}

impl ConnWriter {
    fn new(stream: Stream) -> ConnWriter {
        ConnWriter { stream: Mutex::new(stream), dead: AtomicBool::new(false) }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Marks the connection dead and unblocks any reader on it.
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        lock_clean(&self.stream).shutdown();
    }

    /// Sends one frame; a failed or timed-out write kills the connection.
    fn send(&self, frame: &ServerFrame) {
        if self.is_dead() {
            return;
        }
        let mut line = frame.to_line();
        line.push('\n');
        let mut s = lock_clean(&self.stream);
        if s.write_all(line.as_bytes()).and_then(|()| s.flush()).is_err() {
            self.dead.store(true, Ordering::SeqCst);
            s.shutdown();
        }
    }
}

/// Locks a mutex, surviving poisoning: a panicking peer must not take the
/// whole daemon down with it.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    id: u64,
    priority: i64,
    netlist: Netlist,
    config: FlowConfig,
    conn: Arc<ConnWriter>,
    admitted: Instant,
    deadline: Option<Duration>,
}

/// Queue + running count under one lock, so the drain condition
/// (`queue empty && running == 0`) is checked atomically.
struct DispatchState {
    queue: VecDeque<Job>,
    running: usize,
}

#[derive(Default)]
struct StatCounters {
    accepted: AtomicU64,
    rejected_full: AtomicU64,
    rejected_draining: AtomicU64,
    rejected_bad: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    protocol_errors: AtomicU64,
    disconnects: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> DaemonStats {
        DaemonStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            rejected_full: self.rejected_full.load(Ordering::SeqCst),
            rejected_draining: self.rejected_draining.load(Ordering::SeqCst),
            rejected_bad: self.rejected_bad.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            protocol_errors: self.protocol_errors.load(Ordering::SeqCst),
            disconnects: self.disconnects.load(Ordering::SeqCst),
        }
    }
}

struct Shared {
    cfg: DaemonConfig,
    kernel_threads: usize,
    /// The effective store config handed to every admitted request.
    store_cfg: Option<StoreConfig>,
    /// The store, opened once at bind and shared by workers (cache) and
    /// reader threads (queries). `None` when no store is configured or the
    /// open failed; requests then resolve per-run and degrade to uncached.
    store: Option<Arc<FlowStore>>,
    state: Mutex<DispatchState>,
    /// One condvar serves workers (waiting for jobs) and the drain loop
    /// (waiting for quiescence); state transitions `notify_all`.
    cv: Condvar,
    draining: AtomicBool,
    stop: AtomicBool,
    stats: StatCounters,
    /// The connection that asked for shutdown, owed a `shutdown-ack`.
    shutdown_conn: Mutex<Option<Arc<ConnWriter>>>,
    readers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// A bound, not-yet-running daemon. [`Daemon::run`] blocks the calling
/// thread until graceful drain completes.
pub struct Daemon {
    shared: Arc<Shared>,
    unix: UnixListener,
    tcp: Option<TcpListener>,
    tcp_addr: Option<SocketAddr>,
}

impl Daemon {
    /// Binds the listening sockets. A stale Unix socket file from a
    /// previous crash is removed first.
    pub fn bind(cfg: DaemonConfig) -> io::Result<Daemon> {
        let _ = std::fs::remove_file(&cfg.socket);
        let unix = UnixListener::bind(&cfg.socket)?;
        unix.set_nonblocking(true)?;
        let (tcp, tcp_addr) = match &cfg.tcp {
            None => (None, None),
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let a = l.local_addr()?;
                (Some(l), Some(a))
            }
        };
        let budget = resolve_threads(cfg.threads);
        let workers = if cfg.workers == 0 { (budget / 2).max(1) } else { cfg.workers };
        let kernel_threads = kernel_share(budget, workers);
        let store_cfg = cfg.effective_store();
        let store = store_cfg.as_ref().and_then(|sc| FlowStore::open(sc).ok().map(Arc::new));
        let shared = Arc::new(Shared {
            cfg: DaemonConfig { workers, ..cfg },
            kernel_threads,
            store_cfg,
            store,
            state: Mutex::new(DispatchState { queue: VecDeque::new(), running: 0 }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
            stats: StatCounters::default(),
            shutdown_conn: Mutex::new(None),
            readers: Mutex::new(Vec::new()),
        });
        Ok(Daemon { shared, unix, tcp, tcp_addr })
    }

    /// The bound TCP address, when a TCP endpoint was configured (useful
    /// with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Serves until graceful drain completes, then returns the lifetime
    /// stats. Never panics on client behavior; a hostile client costs at
    /// most its own connection.
    pub fn run(self) -> io::Result<DaemonStats> {
        let shared = self.shared;
        if shared.cfg.handle_sigterm {
            // SAFETY: installs an async-signal-safe handler (single atomic
            // store) for SIGTERM; process-wide by nature, opt-in by config.
            unsafe {
                libc::signal(
                    libc::SIGTERM,
                    on_sigterm as extern "C" fn(libc::c_int) as *const () as libc::sighandler_t,
                );
            }
        }

        let mut threads = Vec::new();
        for w in 0..shared.cfg.workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("flowd-worker-{w}"))
                    .spawn(move || worker_loop(&sh))?,
            );
        }
        {
            let sh = Arc::clone(&shared);
            let listener = self.unix;
            threads.push(
                std::thread::Builder::new()
                    .name("flowd-accept-unix".to_string())
                    .spawn(move || accept_loop(&sh, AnyListener::Unix(listener)))?,
            );
        }
        if let Some(listener) = self.tcp {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("flowd-accept-tcp".to_string())
                    .spawn(move || accept_loop(&sh, AnyListener::Tcp(listener)))?,
            );
        }

        // Drain loop: wait until a shutdown request (frame or SIGTERM)
        // arrives AND every admitted request has finished.
        {
            let mut st = lock_clean(&shared.state);
            loop {
                if shared.cfg.handle_sigterm && SIGTERM_FLAG.load(Ordering::SeqCst) {
                    shared.draining.store(true, Ordering::SeqCst);
                }
                if shared.draining.load(Ordering::SeqCst)
                    && st.queue.is_empty()
                    && st.running == 0
                {
                    break;
                }
                let (g, _timeout) = shared
                    .cv
                    .wait_timeout(st, TICK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        }

        // Quiesced: acknowledge, stop every thread, clean up.
        let stats = shared.stats.snapshot();
        if let Some(conn) = lock_clean(&shared.shutdown_conn).take() {
            conn.send(&ServerFrame::ShutdownAck(stats));
        }
        shared.stop.store(true, Ordering::SeqCst);
        shared.cv.notify_all();
        for t in threads {
            let _ = t.join();
        }
        let readers = std::mem::take(&mut *lock_clean(&shared.readers));
        for t in readers {
            let _ = t.join();
        }
        let _ = std::fs::remove_file(&shared.cfg.socket);
        Ok(stats)
    }
}

enum AnyListener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl AnyListener {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            AnyListener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: AnyListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok(stream) => {
                if let Err(e) = spawn_reader(shared, stream) {
                    // Connection setup failed (clone/timeout/thread spawn):
                    // drop this client, keep serving others.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(TICK / 2),
            Err(_) => std::thread::sleep(TICK / 2),
        }
    }
}

fn spawn_reader(shared: &Arc<Shared>, stream: Stream) -> io::Result<()> {
    stream.set_read_timeout(Some(TICK))?;
    stream.set_write_timeout(Some(WRITE_TIMEOUT))?;
    let writer = stream.try_clone()?;
    let conn = Arc::new(ConnWriter::new(writer));
    let sh = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name("flowd-conn".to_string())
        .spawn(move || reader_loop(&sh, stream, &conn))?;
    lock_clean(&shared.readers).push(handle);
    Ok(())
}

enum FrameRead {
    /// A complete line is in the buffer (newline stripped).
    Line,
    /// Timeout tick; the partial line stays buffered.
    Pending,
    /// Peer closed (a truncated final line is discarded).
    Eof,
    /// The line exceeded [`FRAME_CAP`].
    TooLong,
}

fn read_frame(r: &mut BufReader<Stream>, buf: &mut Vec<u8>) -> FrameRead {
    match r.read_until(b'\n', buf) {
        Ok(0) => FrameRead::Eof,
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
                if buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                if buf.len() > FRAME_CAP {
                    FrameRead::TooLong
                } else {
                    FrameRead::Line
                }
            } else {
                // Data without a newline only happens at EOF.
                FrameRead::Eof
            }
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            if buf.len() > FRAME_CAP {
                FrameRead::TooLong
            } else {
                FrameRead::Pending
            }
        }
        Err(_) => FrameRead::Eof,
    }
}

fn reader_loop(shared: &Arc<Shared>, stream: Stream, conn: &Arc<ConnWriter>) {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) || conn.is_dead() {
            break;
        }
        match read_frame(&mut reader, &mut buf) {
            FrameRead::Pending => continue,
            FrameRead::Eof => {
                // Mid-run disconnect: this client's queued requests are
                // lazily cancelled at dequeue; nobody else is affected.
                conn.kill();
                break;
            }
            FrameRead::TooLong => {
                protocol_error(shared, conn, format!("frame exceeds {FRAME_CAP} bytes"));
                break;
            }
            FrameRead::Line => {
                let line = match std::str::from_utf8(&buf) {
                    Ok(s) => s.to_string(),
                    Err(_) => {
                        protocol_error(shared, conn, "frame is not UTF-8".to_string());
                        break;
                    }
                };
                buf.clear();
                if line.trim().is_empty() {
                    continue;
                }
                match parse_client_frame(&line) {
                    Err(e) => {
                        protocol_error(shared, conn, e.to_string());
                        break;
                    }
                    Ok(ClientFrame::Ping) => {
                        conn.send(&ServerFrame::Pong(shared.stats.snapshot()));
                    }
                    Ok(ClientFrame::Shutdown) => {
                        *lock_clean(&shared.shutdown_conn) = Some(Arc::clone(conn));
                        shared.draining.store(true, Ordering::SeqCst);
                        shared.cv.notify_all();
                    }
                    Ok(ClientFrame::Submit(spec)) => {
                        handle_submit(shared, conn, spec);
                    }
                    Ok(ClientFrame::Query(spec)) => {
                        // Answered right here on the reader thread — a
                        // provenance read never waits behind flow work.
                        handle_query(shared, conn, &spec);
                    }
                }
            }
        }
    }
}

fn protocol_error(shared: &Arc<Shared>, conn: &Arc<ConnWriter>, detail: String) {
    shared.stats.protocol_errors.fetch_add(1, Ordering::SeqCst);
    conn.send(&ServerFrame::ProtocolError { detail });
    conn.kill();
}

fn reject(
    shared: &Arc<Shared>,
    conn: &Arc<ConnWriter>,
    id: u64,
    reason: RejectReason,
    detail: String,
) {
    let counter = match reason {
        RejectReason::QueueFull => &shared.stats.rejected_full,
        RejectReason::Draining => &shared.stats.rejected_draining,
        RejectReason::BadRequest => &shared.stats.rejected_bad,
    };
    counter.fetch_add(1, Ordering::SeqCst);
    conn.send(&ServerFrame::Rejected { id, reason, detail });
}

fn handle_query(shared: &Arc<Shared>, conn: &Arc<ConnWriter>, spec: &QuerySpec) {
    let rows = match &shared.store {
        None => Vec::new(),
        Some(store) => store
            .qor_history(&QorQuery {
                design: spec.design.clone(),
                stage: None,
                last: spec.last as usize,
            })
            .unwrap_or_default(),
    };
    conn.send(&ServerFrame::QueryResult { rows });
}

fn handle_submit(shared: &Arc<Shared>, conn: &Arc<ConnWriter>, spec: SubmitSpec) {
    // Validate before admission so a bad request never occupies a queue
    // slot. Generation cost is bounded by the design-spec size cap.
    let design = match DesignSpec::from_str(&spec.design) {
        Ok(d) => d,
        Err(e) => return reject(shared, conn, spec.id, RejectReason::BadRequest, e.0),
    };
    let config = match flow_config_for(
        &spec,
        shared.kernel_threads,
        shared.store_cfg.as_ref(),
        shared.cfg.checkpoint_dir.as_deref(),
    ) {
        Ok(c) => c,
        Err(e) => return reject(shared, conn, spec.id, RejectReason::BadRequest, e.0),
    };
    let netlist = match design.build() {
        Ok(n) => n,
        Err(e) => {
            return reject(shared, conn, spec.id, RejectReason::BadRequest, e.to_string())
        }
    };
    let job = Job {
        id: spec.id,
        priority: spec.priority,
        netlist,
        config,
        conn: Arc::clone(conn),
        admitted: Instant::now(),
        deadline: spec.deadline_ms.map(Duration::from_millis),
    };

    let mut st = lock_clean(&shared.state);
    if shared.draining.load(Ordering::SeqCst) {
        drop(st);
        return reject(
            shared,
            conn,
            spec.id,
            RejectReason::Draining,
            "daemon is draining; resubmit elsewhere".to_string(),
        );
    }
    if st.queue.len() >= shared.cfg.queue_high_water {
        drop(st);
        return reject(
            shared,
            conn,
            spec.id,
            RejectReason::QueueFull,
            format!("queue at high water ({})", shared.cfg.queue_high_water),
        );
    }
    // Priority order, stable within a priority class (admission order).
    let pos = st.queue.iter().position(|j| j.priority < job.priority).unwrap_or(st.queue.len());
    st.queue.insert(pos, job);
    let queued = st.queue.len();
    drop(st);
    shared.stats.accepted.fetch_add(1, Ordering::SeqCst);
    conn.send(&ServerFrame::Accepted { id: spec.id, queued });
    shared.cv.notify_all();
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut st = lock_clean(&shared.state);
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = st.queue.pop_front() {
                    // `running` rises under the same lock as the pop, so
                    // the drain loop can never observe a job in neither
                    // place.
                    st.running += 1;
                    break job;
                }
                let (g, _timeout) = shared
                    .cv
                    .wait_timeout(st, TICK)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                st = g;
            }
        };
        run_job(shared, job);
        let mut st = lock_clean(&shared.state);
        st.running -= 1;
        drop(st);
        shared.cv.notify_all();
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    if job.conn.is_dead() {
        // The client vanished while this was queued: cancel without
        // spending a worker on it.
        shared.stats.disconnects.fetch_add(1, Ordering::SeqCst);
        return;
    }
    let mut config = job.config;
    if let Some(deadline) = job.deadline {
        // Queue wait counts against the deadline; what is left (possibly
        // zero) goes to the supervisor, which trips at the next stage
        // boundary with a typed error.
        let remaining = deadline.saturating_sub(job.admitted.elapsed());
        config.deadline_s = Some(remaining.as_secs_f64());
    }
    let conn = Arc::clone(&job.conn);
    let id = job.id;
    let observer: crate::telemetry::ProgressFn = Box::new(move |stage, outcome, attempts| {
        conn.send(&ServerFrame::Stage {
            id,
            stage: stage.to_string(),
            outcome: outcome.to_string(),
            attempts,
        });
    });
    let result = run_flow_shared(&job.netlist, &config, Some(observer), shared.store.clone());
    let wall_s = job.admitted.elapsed().as_secs_f64();
    let frame = match result {
        Ok(report) => {
            shared.stats.completed.fetch_add(1, Ordering::SeqCst);
            ServerFrame::Done {
                id: job.id,
                ok: true,
                qor_fp: Some(report.qor_fingerprint()),
                wall_s,
                stages: report.stage_status.len(),
                error: None,
            }
        }
        Err(e) => {
            shared.stats.failed.fetch_add(1, Ordering::SeqCst);
            let stages = e.partial().map_or(0, |p| p.statuses.len());
            ServerFrame::Done {
                id: job.id,
                ok: false,
                qor_fp: None,
                wall_s,
                stages,
                error: Some(e.to_string()),
            }
        }
    };
    job.conn.send(&frame);
}
