//! Daemon client helper: typed requests over the wire, capped-exponential
//! retry, and a deterministic hostile mode for transport-fault testing.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use super::protocol::{
    parse_server_frame, ClientFrame, DaemonStats, FrameError, QuerySpec, RejectReason,
    ServerFrame, SubmitSpec, TransportFault, TransportFaultPlan,
};
use super::Stream;
use crate::store::QorRow;

/// How long a client waits for one server frame before giving up. Bounds
/// every test and script against a wedged daemon.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

/// Capped exponential backoff for client-side retries: attempt `n` sleeps
/// `min(base_ms << n, cap_ms)` milliseconds. Deterministic — no jitter —
/// so retry schedules are replayable in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub attempts: u32,
    /// Backoff before the second attempt, in milliseconds.
    pub base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub cap_ms: u64,
    /// Also retry submits that were shed with `queue-full`. Off by
    /// default: under sustained overload, retrying sheds nothing.
    pub retry_queue_full: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { attempts: 5, base_ms: 10, cap_ms: 500, retry_queue_full: false }
    }
}

impl RetryPolicy {
    /// Backoff before attempt `attempt + 1` (0-based), in milliseconds.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        if attempt >= self.base_ms.leading_zeros() {
            return self.cap_ms;
        }
        (self.base_ms << attempt).min(self.cap_ms)
    }
}

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix socket path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7433`.
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> io::Result<Stream> {
        match self {
            Endpoint::Unix(path) => UnixStream::connect(path).map(Stream::Unix),
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Stream::Tcp),
        }
    }
}

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or timeout).
    Io(io::Error),
    /// The server sent a frame the client cannot parse.
    Frame(FrameError),
    /// The server closed the connection (or answered `protocol-error`)
    /// while a request was outstanding.
    ServerClosed(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "unparseable server frame: {e}"),
            ClientError::ServerClosed(why) => write!(f, "server closed the connection: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One streamed per-stage progress event.
#[derive(Debug, Clone, PartialEq)]
pub struct StageEvent {
    /// Stage name, e.g. `4_place`.
    pub stage: String,
    /// Outcome text, e.g. `done`.
    pub outcome: String,
    /// Attempts the stage took.
    pub attempts: usize,
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminal {
    /// The flow ran; `ok` distinguishes a report from a typed flow error.
    Done {
        /// Whether a report was produced.
        ok: bool,
        /// QoR fingerprint of the report (present when `ok`).
        qor_fp: Option<u64>,
        /// Server-side wall seconds from admission to completion.
        wall_s: f64,
        /// Stages that recorded a status.
        stages: usize,
        /// Typed flow-error text (present when `!ok`).
        error: Option<String>,
    },
    /// Admission refused the request; nothing ran.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
}

/// Everything the client observed about one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// The request id.
    pub id: u64,
    /// Whether an `accepted` frame arrived.
    pub accepted: bool,
    /// Streamed stage events, in arrival order.
    pub stages: Vec<StageEvent>,
    /// The terminal frame.
    pub terminal: Terminal,
    /// Client-measured seconds from submit to the terminal frame.
    pub latency_s: f64,
}

impl RequestOutcome {
    /// The QoR fingerprint, when the request completed with a report.
    pub fn qor_fp(&self) -> Option<u64> {
        match &self.terminal {
            Terminal::Done { ok: true, qor_fp, .. } => *qor_fp,
            _ => None,
        }
    }

    /// Whether the request was shed with the given reason.
    pub fn rejected_with(&self, reason: RejectReason) -> bool {
        matches!(&self.terminal, Terminal::Rejected { reason: r, .. } if *r == reason)
    }
}

/// A connection to the daemon. Also doubles as the deterministic hostile
/// client: with a [`TransportFaultPlan`] installed, outgoing frames are
/// sabotaged exactly as the plan dictates.
pub struct DaemonClient {
    reader: BufReader<Stream>,
    writer: Stream,
    faults: TransportFaultPlan,
    frames_sent: u64,
}

impl DaemonClient {
    /// Connects once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<DaemonClient> {
        let stream = endpoint.connect()?;
        stream.set_read_timeout(Some(RECV_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(DaemonClient {
            reader: BufReader::new(stream),
            writer,
            faults: TransportFaultPlan::default(),
            frames_sent: 0,
        })
    }

    /// Connects with capped-exponential-backoff retry — the standard way
    /// to reach a daemon that may still be binding its socket.
    pub fn connect_retry(endpoint: &Endpoint, policy: &RetryPolicy) -> io::Result<DaemonClient> {
        let mut attempt = 0;
        loop {
            match DaemonClient::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    attempt += 1;
                    if attempt >= policy.attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt - 1)));
                }
            }
        }
    }

    /// Installs a deterministic transport-fault plan; frame indices count
    /// every frame this client sends, starting at 0.
    pub fn with_faults(mut self, faults: TransportFaultPlan) -> DaemonClient {
        self.faults = faults;
        self
    }

    /// Sends one frame, applying any transport fault scheduled for it.
    pub fn send(&mut self, frame: &ClientFrame) -> io::Result<()> {
        let index = self.frames_sent;
        self.frames_sent += 1;
        let mut line = frame.to_line();
        line.push('\n');
        match self.faults.fault_for(index) {
            None => self.writer.write_all(line.as_bytes())?,
            Some(TransportFault::FrameGarbage) => {
                self.writer.write_all(b"\x01{{{ not json at all\n")?;
            }
            Some(TransportFault::Stall) => {
                // Slow-loris: half a frame, a pause, then the rest. The
                // daemon must keep every other client flowing meanwhile.
                let mid = line.len() / 2;
                self.writer.write_all(&line.as_bytes()[..mid])?;
                self.writer.flush()?;
                std::thread::sleep(Duration::from_millis(300));
                self.writer.write_all(&line.as_bytes()[mid..])?;
            }
            Some(TransportFault::ConnDrop) => {
                self.writer.shutdown();
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    format!("injected conn-drop at frame {index}"),
                ));
            }
        }
        self.writer.flush()
    }

    /// Reads the next server frame.
    pub fn recv(&mut self) -> Result<ServerFrame, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::ServerClosed("EOF".to_string()));
        }
        parse_server_frame(line.trim_end()).map_err(ClientError::Frame)
    }

    /// Pings the daemon and returns its lifetime stats.
    pub fn ping(&mut self) -> Result<DaemonStats, ClientError> {
        self.send(&ClientFrame::Ping)?;
        loop {
            match self.recv()? {
                ServerFrame::Pong(stats) => return Ok(stats),
                ServerFrame::ProtocolError { detail } => {
                    return Err(ClientError::ServerClosed(detail))
                }
                _ => continue,
            }
        }
    }

    /// Reads QoR provenance history from the daemon's flow store, newest
    /// first. A daemon without a store answers with zero rows; the read is
    /// served on the connection's reader thread, so it returns promptly
    /// even while every flow worker is busy.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<Vec<QorRow>, ClientError> {
        self.send(&ClientFrame::Query(spec.clone()))?;
        loop {
            match self.recv()? {
                ServerFrame::QueryResult { rows } => return Ok(rows),
                ServerFrame::ProtocolError { detail } => {
                    return Err(ClientError::ServerClosed(detail))
                }
                _ => continue,
            }
        }
    }

    /// Asks the daemon to drain and waits for the acknowledgement, which
    /// only arrives once every in-flight request has finished.
    pub fn shutdown(&mut self) -> Result<DaemonStats, ClientError> {
        self.send(&ClientFrame::Shutdown)?;
        loop {
            match self.recv()? {
                ServerFrame::ShutdownAck(stats) => return Ok(stats),
                ServerFrame::ProtocolError { detail } => {
                    return Err(ClientError::ServerClosed(detail))
                }
                _ => continue,
            }
        }
    }

    /// Submits one request and follows it to its terminal frame.
    pub fn request(&mut self, spec: &SubmitSpec) -> Result<RequestOutcome, ClientError> {
        let outcomes = self.drive(std::slice::from_ref(spec))?;
        outcomes
            .into_iter()
            .next()
            .ok_or_else(|| ClientError::ServerClosed("no outcome".to_string()))
    }

    /// [`request`](Self::request) with queue-full retry per `policy` (when
    /// `retry_queue_full` is set). Rejections for other reasons and all
    /// terminal outcomes return immediately.
    pub fn request_retry(
        &mut self,
        spec: &SubmitSpec,
        policy: &RetryPolicy,
    ) -> Result<RequestOutcome, ClientError> {
        let mut attempt = 0;
        loop {
            let outcome = self.request(spec)?;
            let shed = outcome.rejected_with(RejectReason::QueueFull);
            attempt += 1;
            if !(shed && policy.retry_queue_full) || attempt >= policy.attempts.max(1) {
                return Ok(outcome);
            }
            std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt - 1)));
        }
    }

    /// Submits a batch on this one connection and collects every request's
    /// outcome (in `specs` order), demultiplexing interleaved frames by id.
    /// Ids must be unique within the batch.
    pub fn drive(&mut self, specs: &[SubmitSpec]) -> Result<Vec<RequestOutcome>, ClientError> {
        let started = Instant::now();
        let mut pending: Vec<(u64, usize)> = Vec::with_capacity(specs.len());
        let mut outcomes: Vec<Option<RequestOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut accepted: Vec<bool> = vec![false; specs.len()];
        let mut stages: Vec<Vec<StageEvent>> = (0..specs.len()).map(|_| Vec::new()).collect();
        for (slot, spec) in specs.iter().enumerate() {
            self.send(&ClientFrame::Submit(spec.clone()))?;
            pending.push((spec.id, slot));
        }
        while outcomes.iter().any(Option::is_none) {
            let frame = self.recv()?;
            let slot_of = |id: u64| pending.iter().find(|(i, _)| *i == id).map(|&(_, s)| s);
            match frame {
                ServerFrame::Accepted { id, .. } => {
                    if let Some(slot) = slot_of(id) {
                        accepted[slot] = true;
                    }
                }
                ServerFrame::Stage { id, stage, outcome, attempts } => {
                    if let Some(slot) = slot_of(id) {
                        stages[slot].push(StageEvent { stage, outcome, attempts });
                    }
                }
                ServerFrame::Rejected { id, reason, detail } => {
                    if let Some(slot) = slot_of(id) {
                        outcomes[slot] = Some(RequestOutcome {
                            id,
                            accepted: accepted[slot],
                            stages: std::mem::take(&mut stages[slot]),
                            terminal: Terminal::Rejected { reason, detail },
                            latency_s: started.elapsed().as_secs_f64(),
                        });
                    }
                }
                ServerFrame::Done { id, ok, qor_fp, wall_s, stages: n, error } => {
                    if let Some(slot) = slot_of(id) {
                        outcomes[slot] = Some(RequestOutcome {
                            id,
                            accepted: accepted[slot],
                            stages: std::mem::take(&mut stages[slot]),
                            terminal: Terminal::Done { ok, qor_fp, wall_s, stages: n, error },
                            latency_s: started.elapsed().as_secs_f64(),
                        });
                    }
                }
                ServerFrame::ProtocolError { detail } => {
                    return Err(ClientError::ServerClosed(detail));
                }
                ServerFrame::QueryResult { .. }
                | ServerFrame::Pong(_)
                | ServerFrame::ShutdownAck(_) => {}
            }
        }
        Ok(outcomes.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ms(0), 10);
        assert_eq!(p.backoff_ms(1), 20);
        assert_eq!(p.backoff_ms(2), 40);
        assert_eq!(p.backoff_ms(5), 320);
        assert_eq!(p.backoff_ms(6), 500, "hits the cap");
        assert_eq!(p.backoff_ms(63), 500);
        assert_eq!(p.backoff_ms(64), 500, "shift overflow saturates at the cap");
    }

    #[test]
    fn connect_retry_gives_up_with_the_original_error() {
        let gone = Endpoint::Unix(PathBuf::from("/nonexistent/daemon.sock"));
        let policy = RetryPolicy { attempts: 2, base_ms: 1, cap_ms: 1, retry_queue_full: false };
        let start = Instant::now();
        assert!(DaemonClient::connect_retry(&gone, &policy).is_err());
        // One backoff sleep happened (attempts=2), bounded well under a second.
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
