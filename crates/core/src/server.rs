//! A deterministic work-stealing flow server: many designs, one flow,
//! one shared stage cache.
//!
//! The panel's forward-looking claims treat EDA as a *service* — exploit
//! previous runs, push many designs through one flow, make throughput the
//! scaling lever. This module is that entry point: a [`FlowServer`] accepts
//! a batch of [`FlowRequest`]s (design + config + priority), runs them
//! concurrently on a bounded worker pool, and returns [`FlowResponse`]s
//! carrying the existing [`FlowReport`] / [`PartialFlow`] / telemetry
//! surfaces unchanged.
//!
//! # Scheduling
//!
//! [`FlowServer::submit`] sorts the batch by `(priority desc, submission
//! order)` and deals it round-robin into per-worker deques — a pure
//! function of the batch, independent of timing. Each worker drains its own
//! deque front-to-back and, when empty, *steals* from the back of the next
//! non-empty victim deque. Which worker executes a request (and therefore
//! `server.steals`, `server.queue_depth`, and all wall clocks) depends on
//! host timing; **which results come back does not**.
//!
//! # Determinism
//!
//! Every request runs the same flow that a serial [`run_flow`] caller would
//! invoke, and the flow is bit-identical for any thread count. A shared
//! flow store cannot break this: store records are written atomically
//! and replay bit-identically, so whether a request computes a stage or
//! replays a sibling's entry, the QoR is the same
//! ([`FlowReport::same_qor`]). Batch results are therefore bit-identical to
//! serial per-design runs at any worker count — steal order may vary,
//! outputs may not.
//!
//! # Thread budget
//!
//! One global `threads` knob is split between inter-design workers and
//! intra-stage kernels: with a resolved budget `T` and `W` workers, each
//! request's kernels get `max(1, T / W)` threads. By default the server
//! spends half the budget on workers (`W = min(batch, max(1, T / 2))`) and
//! the rest inside each flow.
//!
//! # Fault isolation
//!
//! A fault, timeout, or budget exhaustion inside one request degrades only
//! that request: its [`FlowResponse::outcome`] carries the typed
//! [`FlowError`] (with salvageable [`PartialFlow`]), recovered degradations
//! surface as stage statuses in its report, and every other request is
//! untouched.
//!
//! # Examples
//!
//! ```
//! use eda_core::server::{FlowRequest, FlowServer};
//! use eda_core::FlowConfig;
//! use eda_netlist::generate;
//! use eda_tech::Node;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = generate::ripple_carry_adder(4)?;
//! let cfg = FlowConfig::builder().name("demo").node(Node::N28).threads(1).build()?;
//! let server = FlowServer::builder().threads(2).build();
//! let batch = vec![
//!     FlowRequest::new(design.clone(), cfg.clone()).with_priority(1),
//!     FlowRequest::new(design, cfg),
//! ];
//! let report = server.serve(batch);
//! assert_eq!(report.responses.len(), 2);
//! assert!(report.responses.iter().all(|r| r.outcome.is_ok()));
//! # Ok(())
//! # }
//! ```

use crate::config::FlowConfig;
use crate::flow::{run_flow_shared, FlowError, STAGES};
use crate::report::FlowReport;
use crate::store::{FlowStore, StoreConfig};
use crate::telemetry::{Histogram, Metric, Span, SpanKind, TelemetrySnapshot, WallSpan};
use eda_netlist::Netlist;
use eda_par::resolve_threads;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[allow(unused_imports)] // rustdoc link targets only.
use crate::flow::{run_flow, PartialFlow};

/// Bucket edges for the `server.queue_depth` histogram.
const QUEUE_DEPTH_EDGES: [f64; 7] = [0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// One design submitted to the server: what to run, how, and how urgently.
#[derive(Debug, Clone)]
pub struct FlowRequest {
    /// The design to push through the flow.
    pub design: Netlist,
    /// The flow configuration. The server overrides `threads` with its
    /// kernel share of the global budget and, when it has a store,
    /// points the request at the shared flow store; every QoR-relevant knob
    /// is taken as-is.
    pub config: FlowConfig,
    /// Scheduling priority: higher runs earlier; ties keep submission order.
    pub priority: i32,
}

impl FlowRequest {
    /// A request at the default priority (0).
    pub fn new(design: Netlist, config: FlowConfig) -> FlowRequest {
        FlowRequest { design, config, priority: 0 }
    }

    /// Sets the scheduling priority (higher runs earlier).
    pub fn with_priority(mut self, priority: i32) -> FlowRequest {
        self.priority = priority;
        self
    }
}

/// The server's answer for one request, in submission order.
#[derive(Debug)]
pub struct FlowResponse {
    /// Submission index of the originating request.
    pub index: usize,
    /// Design name (kept even when the flow fails).
    pub design: String,
    /// Priority the request ran at.
    pub priority: i32,
    /// Worker that executed the request (timing-dependent).
    pub worker: usize,
    /// Whether the request was stolen from another worker's deque.
    pub stolen: bool,
    /// Requests still queued when this one was dequeued.
    pub queue_depth: usize,
    /// Seconds after the batch started that this request began executing.
    pub start_s: f64,
    /// Wall-clock seconds this request spent executing.
    pub wall_s: f64,
    /// The flow result: a full [`FlowReport`], or the typed [`FlowError`]
    /// (carrying salvageable [`PartialFlow`]) if this request — and only
    /// this request — failed.
    pub outcome: Result<FlowReport, FlowError>,
}

impl FlowResponse {
    /// The report, when the flow completed.
    pub fn report(&self) -> Option<&FlowReport> {
        self.outcome.as_ref().ok()
    }

    /// The error, when the flow failed.
    pub fn error(&self) -> Option<&FlowError> {
        self.outcome.as_ref().err()
    }
}

/// Builder for [`FlowServer`].
#[derive(Debug, Clone, Default)]
pub struct FlowServerBuilder {
    threads: usize,
    workers: usize,
    store: Option<StoreConfig>,
}

impl FlowServerBuilder {
    /// Global thread budget shared by workers and kernels (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Inter-design workers (`0` = auto: half the resolved budget, capped at
    /// the batch size).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Shared flow store, overriding every request's store so common flow
    /// prefixes across requests replay instead of recompute and every
    /// request's provenance lands in one queryable file.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.store = Some(store);
        self
    }

    /// Deprecated shim: shared stage-cache directory. Maps to
    /// [`store`](Self::store) with `<dir>/flow.store` and the default size
    /// budget; an explicit `store(...)` wins. Prefer `store(StoreConfig::at(..))`.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        if self.store.is_none() {
            self.store = Some(StoreConfig::at(dir.into().join("flow.store")));
        }
        self
    }

    /// Produces the server.
    pub fn build(self) -> FlowServer {
        FlowServer { threads: self.threads, workers: self.workers, store: self.store }
    }
}

/// A multi-design flow server: a bounded work-stealing worker pool over a
/// shared stage cache. See the [module docs](self) for the scheduling and
/// determinism contract.
#[derive(Debug, Clone)]
pub struct FlowServer {
    threads: usize,
    workers: usize,
    store: Option<StoreConfig>,
}

impl FlowServer {
    /// A builder with an all-cores budget, auto worker split, and no shared
    /// cache.
    pub fn builder() -> FlowServerBuilder {
        FlowServerBuilder::default()
    }

    /// Plans a batch: resolves the thread-budget split, applies the shared
    /// cache, and deals requests into per-worker deques. The plan is a pure
    /// function of the batch and the server config.
    pub fn submit(&self, requests: Vec<FlowRequest>) -> FlowSession {
        let n = requests.len();
        let budget = resolve_threads(self.threads);
        let workers = if self.workers == 0 {
            (budget / 2).max(1).min(n.max(1))
        } else {
            self.workers.min(n.max(1))
        };
        let kernel_threads = kernel_share(budget, workers);

        let mut tasks: Vec<Task> = requests
            .into_iter()
            .enumerate()
            .map(|(index, mut req)| {
                req.config.threads = kernel_threads;
                if let Some(sc) = &self.store {
                    req.config.store = Some(sc.clone());
                }
                Task { index, priority: req.priority, design: req.design, config: req.config }
            })
            .collect();
        // Priority first, submission order among equals (stable key sort).
        tasks.sort_by_key(|t| (std::cmp::Reverse(t.priority), t.index));

        let mut queues: Vec<VecDeque<Task>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (slot, task) in tasks.into_iter().enumerate() {
            queues[slot % workers].push_back(task);
        }
        // Open the shared store once so every worker reuses one in-memory
        // index instead of each re-scanning the file. An unopenable store
        // degrades to per-run resolution inside `run_flow_shared` (which
        // counts `cache.open_errors` and runs uncached).
        let store = self
            .store
            .as_ref()
            .and_then(|sc| FlowStore::open(sc).ok().map(Arc::new));
        FlowSession { queues, workers, kernel_threads, requests: n, store }
    }

    /// [`submit`](Self::submit) + [`FlowSession::run`] in one call.
    pub fn serve(&self, requests: Vec<FlowRequest>) -> ServerReport {
        self.submit(requests).run()
    }
}

/// One queued unit of work.
#[derive(Debug)]
struct Task {
    index: usize,
    priority: i32,
    design: Netlist,
    config: FlowConfig,
}

/// What one worker recorded about one executed request.
struct RequestRecord {
    design: String,
    priority: i32,
    worker: usize,
    stolen: bool,
    queue_depth: usize,
    start_s: f64,
    wall_s: f64,
    outcome: Result<FlowReport, FlowError>,
}

/// A planned batch bound to a worker split, ready to execute.
///
/// Produced by [`FlowServer::submit`]; consumed by [`run`](Self::run).
#[derive(Debug)]
pub struct FlowSession {
    queues: Vec<VecDeque<Task>>,
    workers: usize,
    kernel_threads: usize,
    requests: usize,
    store: Option<Arc<FlowStore>>,
}

impl FlowSession {
    /// Requests queued in this session.
    pub fn queued(&self) -> usize {
        self.requests
    }

    /// Inter-design workers the session will spawn.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Threads each request's intra-stage kernels will get.
    pub fn kernel_threads(&self) -> usize {
        self.kernel_threads
    }

    /// Executes the batch on scoped worker threads and returns every
    /// response (submission order) plus the server-level telemetry.
    pub fn run(self) -> ServerReport {
        let n = self.requests;
        let workers = self.workers;
        let kernel_threads = self.kernel_threads;
        let shared_store = self.store;
        let queues: Vec<Mutex<VecDeque<Task>>> = self.queues.into_iter().map(Mutex::new).collect();
        let slots: Vec<Mutex<Option<RequestRecord>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let remaining = AtomicUsize::new(n);
        let steals = AtomicU64::new(0);
        let epoch = Instant::now();

        std::thread::scope(|scope| {
            for w in 0..workers {
                let (queues, slots, remaining, steals) = (&queues, &slots, &remaining, &steals);
                let shared_store = &shared_store;
                scope.spawn(move || loop {
                    // Own deque first (front), then steal from the back of
                    // the next non-empty victim. Work only ever shrinks, so
                    // an all-empty sweep means this worker is done.
                    let mut stolen = false;
                    let mut task = queues[w].lock().expect("no poisoned worker").pop_front();
                    if task.is_none() {
                        for off in 1..workers {
                            let victim = (w + off) % workers;
                            task = queues[victim].lock().expect("no poisoned worker").pop_back();
                            if task.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some(task) = task else { break };
                    if stolen {
                        steals.fetch_add(1, Ordering::Relaxed);
                    }
                    let queue_depth = remaining.fetch_sub(1, Ordering::Relaxed) - 1;
                    let start_s = epoch.elapsed().as_secs_f64();
                    let t0 = Instant::now();
                    let outcome =
                        run_flow_shared(&task.design, &task.config, None, shared_store.clone());
                    let record = RequestRecord {
                        design: task.design.name().to_string(),
                        priority: task.priority,
                        worker: w,
                        stolen,
                        queue_depth,
                        start_s,
                        wall_s: t0.elapsed().as_secs_f64(),
                        outcome,
                    };
                    *slots[task.index].lock().expect("no poisoned worker") = Some(record);
                });
            }
        });
        let wall_s = epoch.elapsed().as_secs_f64();

        let mut responses = Vec::with_capacity(n);
        let mut cross_design_hits = 0u64;
        for (index, slot) in slots.into_iter().enumerate() {
            let rec = slot
                .into_inner()
                .expect("workers joined")
                .expect("every queued task is executed exactly once");
            if let Ok(report) = &rec.outcome {
                // Within one run a flow never reads an entry it wrote, so
                // every hit here came from another request (or an earlier
                // occupant of the shared store).
                cross_design_hits += counter(&report.telemetry, "cache.hits");
            }
            responses.push(FlowResponse {
                index,
                design: rec.design,
                priority: rec.priority,
                worker: rec.worker,
                stolen: rec.stolen,
                queue_depth: rec.queue_depth,
                start_s: rec.start_s,
                wall_s: rec.wall_s,
                outcome: rec.outcome,
            });
        }
        let steals = steals.load(Ordering::Relaxed);
        let telemetry =
            server_snapshot(&responses, wall_s, workers, kernel_threads, steals, cross_design_hits);
        ServerReport {
            responses,
            telemetry,
            wall_s,
            workers,
            kernel_threads,
            steals,
            cross_design_hits,
        }
    }
}

/// Everything one batch produced: per-request responses plus server-level
/// telemetry and scheduling counters.
#[derive(Debug)]
pub struct ServerReport {
    /// One response per request, in submission order.
    pub responses: Vec<FlowResponse>,
    /// Server-level snapshot: a root span, one span per request, and the
    /// `server.queue_depth` / `server.steals` / `cache.cross_design_hits`
    /// metrics. Unlike a flow's own snapshot, the scheduling metrics here
    /// are timing-shaped and not golden-pinned.
    pub telemetry: TelemetrySnapshot,
    /// Wall-clock seconds for the whole batch.
    pub wall_s: f64,
    /// Inter-design workers used.
    pub workers: usize,
    /// Kernel threads each request ran with.
    pub kernel_threads: usize,
    /// Requests executed off another worker's deque.
    pub steals: u64,
    /// Stage-cache hits against entries the hitting request did not itself
    /// write — the shared-cache amortization across the batch.
    pub cross_design_hits: u64,
}

impl ServerReport {
    /// Requests whose flow failed (each carries its own typed error).
    pub fn failed(&self) -> usize {
        self.responses.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Completed requests per wall-clock second.
    pub fn throughput_per_s(&self) -> f64 {
        self.responses.len() as f64 / self.wall_s.max(1e-12)
    }

    /// Cross-request cache hits as a fraction of the batch's nominal stage
    /// visits (`requests × stages`).
    pub fn cross_hit_rate(&self) -> f64 {
        if self.responses.is_empty() {
            return 0.0;
        }
        self.cross_design_hits as f64 / (self.responses.len() * STAGES.len()) as f64
    }
}

/// Kernel threads each request's intra-stage kernels get when a global
/// budget of `threads` is split across `workers` concurrent requests. Shared
/// by the batch session planner and the daemon's worker pool so both sides
/// of the wire agree on the split.
pub fn kernel_share(threads: usize, workers: usize) -> usize {
    (threads / workers.max(1)).max(1)
}

fn counter(snapshot: &TelemetrySnapshot, name: &str) -> u64 {
    match snapshot.metrics.get(name) {
        Some(Metric::Counter(v)) => *v,
        _ => 0,
    }
}

/// Assembles the server-level snapshot after the pool joins. The collector
/// type (`Telemetry`) is single-threaded by design, so the server builds its
/// snapshot directly: span structure and tags stay deterministic (submission
/// order, design names, priorities, outcomes); worker identity, steal
/// counts, and queue depths are timing-shaped and live in the wall section
/// and the scheduling metrics.
fn server_snapshot(
    responses: &[FlowResponse],
    wall_s: f64,
    workers: usize,
    kernel_threads: usize,
    steals: u64,
    cross_design_hits: u64,
) -> TelemetrySnapshot {
    let mut spans = Vec::with_capacity(responses.len() + 1);
    let mut wall = Vec::with_capacity(responses.len() + 1);
    spans.push(Span {
        id: 0,
        parent: None,
        kind: SpanKind::Flow,
        name: "server".into(),
        tags: BTreeMap::from([("requests".into(), responses.len().to_string())]),
    });
    wall.push(WallSpan {
        start_s: 0.0,
        dur_s: wall_s,
        threads: workers,
        busy_s: Vec::new(),
        peak_rss_bytes: crate::telemetry::read_peak_rss_bytes(),
    });
    for r in responses {
        let outcome = match &r.outcome {
            Ok(report) if report.stage_status.values().all(|s| s.is_clean()) => "ok".to_string(),
            Ok(_) => "degraded".to_string(),
            Err(e) => match e.stage() {
                Some(stage) => format!("failed:{stage}"),
                None => "failed".to_string(),
            },
        };
        spans.push(Span {
            id: spans.len(),
            parent: Some(0),
            kind: SpanKind::Stage,
            name: format!("request:{}", r.index),
            tags: BTreeMap::from([
                ("design".into(), r.design.clone()),
                ("priority".into(), r.priority.to_string()),
                ("outcome".into(), outcome),
            ]),
        });
        wall.push(WallSpan {
            start_s: r.start_s,
            dur_s: r.wall_s,
            threads: kernel_threads,
            busy_s: Vec::new(),
            peak_rss_bytes: crate::telemetry::read_peak_rss_bytes(),
        });
    }
    let mut depth = Histogram::new(&QUEUE_DEPTH_EDGES);
    for r in responses {
        depth.observe(r.queue_depth as f64);
    }
    let metrics = BTreeMap::from([
        ("cache.cross_design_hits".to_string(), Metric::Counter(cross_design_hits)),
        ("server.queue_depth".to_string(), Metric::Histogram(depth)),
        ("server.requests".to_string(), Metric::Counter(responses.len() as u64)),
        ("server.steals".to_string(), Metric::Counter(steals)),
        ("server.workers".to_string(), Metric::Gauge(workers as f64)),
    ]);
    TelemetrySnapshot { spans, metrics, wall }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_netlist::generate;
    use eda_tech::Node;

    fn tiny_request(priority: i32) -> FlowRequest {
        let design = generate::ripple_carry_adder(2).expect("generator is valid");
        FlowRequest::new(design, FlowConfig::basic_2006(Node::N90)).with_priority(priority)
    }

    #[test]
    fn budget_splits_between_workers_and_kernels() {
        let server = FlowServer::builder().threads(8).build();
        let session = server.submit((0..4).map(tiny_request).collect());
        assert_eq!(session.workers(), 4, "auto split spends half the budget on workers");
        assert_eq!(session.kernel_threads(), 2);

        let session = server.submit(vec![tiny_request(0)]);
        assert_eq!(session.workers(), 1, "workers never exceed the batch");
        assert_eq!(session.kernel_threads(), 8);

        let server = FlowServer::builder().threads(4).workers(3).build();
        let session = server.submit((0..8).map(tiny_request).collect());
        assert_eq!(session.workers(), 3);
        assert_eq!(session.kernel_threads(), 1);
    }

    #[test]
    fn plan_orders_by_priority_then_submission() {
        let server = FlowServer::builder().threads(1).workers(1).build();
        let session =
            server.submit(vec![tiny_request(0), tiny_request(5), tiny_request(5), tiny_request(9)]);
        let order: Vec<usize> = session.queues[0].iter().map(|t| t.index).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn empty_batch_returns_an_empty_report() {
        let report = FlowServer::builder().threads(2).build().serve(Vec::new());
        assert!(report.responses.is_empty());
        assert_eq!(report.failed(), 0);
        assert_eq!(report.cross_design_hits, 0);
        assert_eq!(report.cross_hit_rate(), 0.0);
        assert_eq!(report.telemetry.spans.len(), 1, "just the root server span");
    }

    #[test]
    fn responses_come_back_in_submission_order_with_spans() {
        let server = FlowServer::builder().threads(2).build();
        let report = server.serve(vec![tiny_request(0), tiny_request(7)]);
        assert_eq!(report.responses.len(), 2);
        for (i, r) in report.responses.iter().enumerate() {
            assert_eq!(r.index, i);
            assert!(r.outcome.is_ok());
        }
        assert_eq!(report.telemetry.spans.len(), 3);
        assert_eq!(report.telemetry.spans[1].name, "request:0");
        assert_eq!(report.telemetry.spans[2].name, "request:1");
        assert_eq!(
            report.telemetry.metrics.get("server.requests"),
            Some(&Metric::Counter(2))
        );
        assert!(matches!(
            report.telemetry.metrics.get("server.queue_depth"),
            Some(Metric::Histogram(h)) if h.samples() == 2
        ));
    }
}
