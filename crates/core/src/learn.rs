//! The self-learning flow engine.
//!
//! Rossi (claim C11): *"there is no real self-monitoring of the
//! implementation tools able to generate information useful to the next
//! runs... a kind of built-in self-learning engine having access [to] an
//! exhaustive set of information could better drive for more consistent
//! results."* [`FlowTuner`] is that engine in miniature: an ε-greedy bandit
//! over flow-parameter arms that records every run's QoR and steers later
//! runs toward the arms that delivered.

use crate::config::FlowConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One tunable arm: a named set of flow-parameter overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct Arm {
    /// Display name.
    pub name: String,
    /// Annealing moves per cell.
    pub anneal_moves_per_cell: usize,
    /// Global placement iterations.
    pub global_iterations: usize,
    /// Rip-up iterations for the router.
    pub ripup_iterations: usize,
}

impl Arm {
    /// Applies the arm to a config.
    pub fn apply(&self, cfg: &FlowConfig) -> FlowConfig {
        let mut out = cfg.clone();
        out.place.anneal_moves_per_cell = self.anneal_moves_per_cell;
        out.place.global_iterations = self.global_iterations;
        out.ripup_iterations = self.ripup_iterations;
        out
    }
}

/// Statistics the tuner keeps per arm — Rossi's "exhaustive set of
/// information" from previous runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ArmStats {
    /// Runs recorded.
    pub runs: u32,
    /// Mean score (lower = better).
    pub mean_score: f64,
}

/// An ε-greedy bandit over flow arms.
#[derive(Debug, Clone)]
pub struct FlowTuner {
    arms: Vec<Arm>,
    stats: Vec<ArmStats>,
    epsilon: f64,
    rng: StdRng,
}

impl FlowTuner {
    /// Creates a tuner with the default arm ladder (effort levels from
    /// too-lazy to overkill; the interesting middle must be *learned*).
    pub fn new(seed: u64) -> FlowTuner {
        let arms = vec![
            Arm { name: "lazy".into(), anneal_moves_per_cell: 5, global_iterations: 2, ripup_iterations: 1 },
            Arm { name: "light".into(), anneal_moves_per_cell: 20, global_iterations: 6, ripup_iterations: 3 },
            Arm { name: "standard".into(), anneal_moves_per_cell: 40, global_iterations: 10, ripup_iterations: 6 },
            Arm { name: "heavy".into(), anneal_moves_per_cell: 80, global_iterations: 14, ripup_iterations: 8 },
        ];
        let n = arms.len();
        FlowTuner { arms, stats: vec![ArmStats::default(); n], epsilon: 0.2, rng: StdRng::seed_from_u64(seed) }
    }

    /// Creates a tuner with custom arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or `epsilon` is outside [0, 1].
    pub fn with_arms(arms: Vec<Arm>, epsilon: f64, seed: u64) -> FlowTuner {
        assert!(!arms.is_empty(), "need at least one arm");
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be a probability");
        let n = arms.len();
        FlowTuner { arms, stats: vec![ArmStats::default(); n], epsilon, rng: StdRng::seed_from_u64(seed) }
    }

    /// Suggests the next arm to run: unexplored arms first, then ε-greedy.
    pub fn suggest(&mut self) -> usize {
        if let Some(i) = self.stats.iter().position(|s| s.runs == 0) {
            return i;
        }
        if self.rng.gen::<f64>() < self.epsilon {
            return self.rng.gen_range(0..self.arms.len());
        }
        self.best_arm()
    }

    /// Records the score of a run with arm `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn record(&mut self, index: usize, score: f64) {
        let s = &mut self.stats[index];
        s.mean_score = (s.mean_score * s.runs as f64 + score) / (s.runs + 1) as f64;
        s.runs += 1;
    }

    /// The arm with the best (lowest) mean score; unexplored arms lose.
    pub fn best_arm(&self) -> usize {
        (0..self.arms.len())
            .filter(|&i| self.stats[i].runs > 0)
            .min_by(|&a, &b| self.stats[a].mean_score.total_cmp(&self.stats[b].mean_score))
            .unwrap_or(0)
    }

    /// The arms.
    pub fn arms(&self) -> &[Arm] {
        &self.arms
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> &[ArmStats] {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic QoR oracle: "standard" is the sweet spot, with noise.
    fn oracle(arm: &Arm, rng: &mut StdRng) -> f64 {
        let ideal = 40.0;
        let miss = (arm.anneal_moves_per_cell as f64 - ideal).abs();
        100.0 + miss + rng.gen::<f64>() * 5.0
    }

    #[test]
    fn tuner_converges_to_the_sweet_spot() {
        let mut tuner = FlowTuner::new(3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..60 {
            let i = tuner.suggest();
            let arm = tuner.arms()[i].clone();
            let score = oracle(&arm, &mut rng);
            tuner.record(i, score);
        }
        assert_eq!(tuner.arms()[tuner.best_arm()].name, "standard");
        // The learned arm is exploited more than explored arms on average.
        let best_runs = tuner.stats()[tuner.best_arm()].runs;
        let avg_other: f64 = tuner
            .stats()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != tuner.best_arm())
            .map(|(_, s)| s.runs as f64)
            .sum::<f64>()
            / (tuner.arms().len() - 1) as f64;
        assert!(best_runs as f64 > avg_other, "exploitation should dominate");
    }

    #[test]
    fn all_arms_explored_first() {
        let mut tuner = FlowTuner::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..tuner.arms().len() {
            let i = tuner.suggest();
            seen.insert(i);
            tuner.record(i, 1.0);
        }
        assert_eq!(seen.len(), tuner.arms().len());
    }

    #[test]
    fn record_averages() {
        let mut tuner = FlowTuner::new(1);
        tuner.record(0, 10.0);
        tuner.record(0, 20.0);
        assert_eq!(tuner.stats()[0].runs, 2);
        assert!((tuner.stats()[0].mean_score - 15.0).abs() < 1e-12);
    }

    #[test]
    fn arm_applies_overrides() {
        use eda_tech::Node;
        let cfg = FlowConfig::advanced_2016(Node::N28);
        let arm = Arm { name: "x".into(), anneal_moves_per_cell: 7, global_iterations: 3, ripup_iterations: 2 };
        let out = arm.apply(&cfg);
        assert_eq!(out.place.anneal_moves_per_cell, 7);
        assert_eq!(out.ripup_iterations, 2);
        assert_eq!(out.library, cfg.library);
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_arms_panic() {
        let _ = FlowTuner::with_arms(vec![], 0.1, 1);
    }
}
