//! The flow's quality-of-results report.

use std::collections::BTreeMap;

/// End-to-end QoR for one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Flow preset name.
    pub flow: String,
    /// Design name.
    pub design: String,
    /// Target node name.
    pub node: String,
    /// Mapped cell area, µm² (cells only, pre-DFT).
    pub cell_area_um2: f64,
    /// Combinational cell count after synthesis.
    pub cells: usize,
    /// Flop count.
    pub flops: usize,
    /// Worst negative slack, ps (0 = met).
    pub wns_ps: f64,
    /// Critical path, ps.
    pub critical_path_ps: f64,
    /// Final placement wirelength, µm.
    pub hpwl_um: f64,
    /// Routed wirelength, g-cell units.
    pub routed_wirelength: u64,
    /// Via count.
    pub vias: u64,
    /// Routing overflow (0 = routable on this stack).
    pub overflow: u64,
    /// Masks needed for the critical layer.
    pub masks: u32,
    /// Stitches inserted by decomposition.
    pub stitches: usize,
    /// Whether decomposition is conflict-free.
    pub litho_legal: bool,
    /// Dynamic power, mW.
    pub dynamic_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Stuck-at test coverage in [0, 1] (0 if DFT disabled).
    pub test_coverage: f64,
    /// Scan-stitch wirelength, µm (0 if DFT disabled).
    pub scan_wirelength_um: f64,
    /// Decap cells inserted.
    pub decaps: usize,
    /// Power-grid hotspots remaining.
    pub hotspots: usize,
    /// Clock-tree skew, ps.
    pub clock_skew_ps: f64,
    /// Clock-tree wirelength, µm.
    pub clock_tree_um: f64,
    /// Worst static IR drop, mV.
    pub ir_drop_mv: f64,
    /// Hold violations at the fast corner.
    pub hold_violations: usize,
    /// Formal-equivalence verdict for synthesis: `Some(true)` = proven
    /// equivalent, `Some(false)` = counterexample found, `None` = not run
    /// or inconclusive.
    pub synthesis_verified: Option<bool>,
    /// Wall-clock seconds per stage.
    pub stage_seconds: BTreeMap<String, f64>,
    /// Worker threads actually used per parallel stage (absent for stages
    /// that ran serially or have no parallel kernel).
    pub stage_threads: BTreeMap<String, usize>,
    /// Projected speedup over a one-thread run per parallel stage, from
    /// per-worker CPU clocks (see `eda-par`).
    pub stage_speedup: BTreeMap<String, f64>,
}

impl FlowReport {
    /// Total runtime across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.values().sum()
    }

    /// Composite score (lower is better): the tuner's objective. Mixes area,
    /// wirelength, timing violation, routability and power.
    pub fn score(&self) -> f64 {
        self.cell_area_um2 * 0.01
            + self.hpwl_um * 0.001
            + (-self.wns_ps).max(0.0) * 0.5
            + self.overflow as f64 * 10.0
            + (self.dynamic_mw + self.leakage_mw) * 2.0
            + self.scan_wirelength_um * 0.001
            + self.hotspots as f64 * 5.0
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "flow {} on {} @ {}", self.flow, self.design, self.node)?;
        writeln!(f, "  area:      {:.1} um^2 ({} cells + {} flops)", self.cell_area_um2, self.cells, self.flops)?;
        writeln!(f, "  timing:    cp {:.0} ps, wns {:.0} ps", self.critical_path_ps, self.wns_ps)?;
        writeln!(f, "  place:     hpwl {:.0} um", self.hpwl_um)?;
        writeln!(
            f,
            "  route:     wl {} vias {} overflow {}",
            self.routed_wirelength, self.vias, self.overflow
        )?;
        writeln!(
            f,
            "  litho:     {} masks, {} stitches, legal={}",
            self.masks, self.stitches, self.litho_legal
        )?;
        writeln!(f, "  power:     {:.3} mW dyn + {:.3} mW leak", self.dynamic_mw, self.leakage_mw)?;
        writeln!(
            f,
            "  dft:       coverage {:.1}%, scan wl {:.0} um",
            self.test_coverage * 100.0,
            self.scan_wirelength_um
        )?;
        writeln!(f, "  pgrid:     {} decaps, {} hotspots, {:.1} mV IR drop", self.decaps, self.hotspots, self.ir_drop_mv)?;
        writeln!(
            f,
            "  clock:     skew {:.1} ps over {:.0} um tree, {} hold violations",
            self.clock_skew_ps, self.clock_tree_um, self.hold_violations
        )?;
        let verified = match self.synthesis_verified {
            Some(true) => "formally equivalent",
            Some(false) => "COUNTEREXAMPLE FOUND",
            None => "not verified",
        };
        writeln!(f, "  verify:    {verified}")?;
        if !self.stage_threads.is_empty() {
            let mut parts = Vec::new();
            for (stage, &t) in &self.stage_threads {
                let sp = self.stage_speedup.get(stage).copied().unwrap_or(1.0);
                parts.push(format!("{stage} x{t} ({sp:.1}x)"));
            }
            writeln!(f, "  threads:   {}", parts.join(", "))?;
        }
        write!(f, "  runtime:   {:.2} s, score {:.1}", self.total_seconds(), self.score())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> FlowReport {
        FlowReport {
            flow: "t".into(),
            design: "d".into(),
            node: "28nm".into(),
            cell_area_um2: 100.0,
            cells: 10,
            flops: 2,
            wns_ps: 0.0,
            critical_path_ps: 500.0,
            hpwl_um: 1000.0,
            routed_wirelength: 50,
            vias: 5,
            overflow: 0,
            masks: 1,
            stitches: 0,
            litho_legal: true,
            dynamic_mw: 1.0,
            leakage_mw: 0.1,
            test_coverage: 0.95,
            scan_wirelength_um: 100.0,
            decaps: 0,
            hotspots: 0,
            clock_skew_ps: 5.0,
            clock_tree_um: 100.0,
            ir_drop_mv: 10.0,
            hold_violations: 0,
            synthesis_verified: Some(true),
            stage_seconds: BTreeMap::new(),
            stage_threads: BTreeMap::new(),
            stage_speedup: BTreeMap::new(),
        }
    }

    #[test]
    fn score_punishes_overflow_and_wns() {
        let good = dummy();
        let mut congested = dummy();
        congested.overflow = 10;
        let mut slow = dummy();
        slow.wns_ps = -100.0;
        assert!(congested.score() > good.score());
        assert!(slow.score() > good.score());
    }

    #[test]
    fn display_mentions_key_metrics() {
        let r = dummy();
        let s = r.to_string();
        assert!(s.contains("area"));
        assert!(s.contains("coverage"));
        assert!(s.contains("28nm"));
    }
}
