//! The flow's quality-of-results report.

use crate::harness::{StageOutcome, StageStatus};
use crate::telemetry::TelemetrySnapshot;
use std::collections::BTreeMap;

/// End-to-end QoR for one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Flow preset name.
    pub flow: String,
    /// Design name.
    pub design: String,
    /// Target node name.
    pub node: String,
    /// Mapped cell area, µm² (cells only, pre-DFT).
    pub cell_area_um2: f64,
    /// Combinational cell count after synthesis.
    pub cells: usize,
    /// Flop count.
    pub flops: usize,
    /// Worst negative slack, ps (0 = met).
    pub wns_ps: f64,
    /// Critical path, ps.
    pub critical_path_ps: f64,
    /// Final placement wirelength, µm.
    pub hpwl_um: f64,
    /// Routed wirelength, g-cell units.
    pub routed_wirelength: u64,
    /// Via count.
    pub vias: u64,
    /// Routing overflow (0 = routable on this stack).
    pub overflow: u64,
    /// Masks needed for the critical layer.
    pub masks: u32,
    /// Stitches inserted by decomposition.
    pub stitches: usize,
    /// Whether decomposition is conflict-free.
    pub litho_legal: bool,
    /// RMS edge-placement error of the critical layer after OPC, nm
    /// (0 on single-patterned nodes, where no OPC runs).
    pub opc_rms_epe_nm: f64,
    /// Dynamic power, mW.
    pub dynamic_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Stuck-at test coverage in [0, 1] (0 if DFT disabled).
    pub test_coverage: f64,
    /// Scan-stitch wirelength, µm (0 if DFT disabled).
    pub scan_wirelength_um: f64,
    /// Decap cells inserted.
    pub decaps: usize,
    /// Power-grid hotspots remaining.
    pub hotspots: usize,
    /// Clock-tree skew, ps.
    pub clock_skew_ps: f64,
    /// Clock-tree wirelength, µm.
    pub clock_tree_um: f64,
    /// Worst static IR drop, mV.
    pub ir_drop_mv: f64,
    /// Hold violations at the fast corner.
    pub hold_violations: usize,
    /// Formal-equivalence verdict for synthesis: `Some(true)` = proven
    /// equivalent, `Some(false)` = counterexample found, `None` = not run
    /// or inconclusive.
    pub synthesis_verified: Option<bool>,
    /// Typed outcome of every stage the supervisor ran or skipped, keyed by
    /// stage name. Holds no wall-clock data: identical runs produce
    /// identical maps at any thread count.
    pub stage_status: BTreeMap<String, StageStatus>,
    /// Wall-clock seconds per stage.
    pub stage_seconds: BTreeMap<String, f64>,
    /// Worker threads actually used per parallel stage (absent for stages
    /// that ran serially or have no parallel kernel).
    pub stage_threads: BTreeMap<String, usize>,
    /// Projected speedup over a one-thread run per parallel stage, from
    /// per-worker CPU clocks (see `eda-par`).
    pub stage_speedup: BTreeMap<String, f64>,
    /// Span tree and metric registry recorded during the run. Its
    /// deterministic section is part of [`FlowReport::golden_text`];
    /// excluded from [`FlowReport::same_qor`] because a resumed flow only
    /// records telemetry for the stages it actually reran.
    pub telemetry: TelemetrySnapshot,
}

impl FlowReport {
    /// Total runtime across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.values().sum()
    }

    /// Composite score (lower is better): the tuner's objective. Mixes area,
    /// wirelength, timing violation, routability and power.
    pub fn score(&self) -> f64 {
        self.cell_area_um2 * 0.01
            + self.hpwl_um * 0.001
            + (-self.wns_ps).max(0.0) * 0.5
            + self.overflow as f64 * 10.0
            + (self.dynamic_mw + self.leakage_mw) * 2.0
            + self.scan_wirelength_um * 0.001
            + self.hotspots as f64 * 5.0
    }

    /// Bit-exact QoR equality: every deterministic field matches, including
    /// stage statuses. Wall-clock- and thread-shaped fields
    /// (`stage_seconds`, `stage_speedup`, `stage_threads`) are excluded —
    /// they differ run to run by nature, and a warm cached run at 8 threads
    /// must match a cold run at 1. This is both the resume contract (a flow
    /// killed after any stage and resumed from its checkpoint satisfies
    /// `same_qor` against an uninterrupted run) and the stage-cache
    /// contract (a warm run satisfies it against the cold run that filled
    /// the cache).
    pub fn same_qor(&self, other: &FlowReport) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        self.flow == other.flow
            && self.design == other.design
            && self.node == other.node
            && feq(self.cell_area_um2, other.cell_area_um2)
            && self.cells == other.cells
            && self.flops == other.flops
            && feq(self.wns_ps, other.wns_ps)
            && feq(self.critical_path_ps, other.critical_path_ps)
            && feq(self.hpwl_um, other.hpwl_um)
            && self.routed_wirelength == other.routed_wirelength
            && self.vias == other.vias
            && self.overflow == other.overflow
            && self.masks == other.masks
            && self.stitches == other.stitches
            && self.litho_legal == other.litho_legal
            && feq(self.opc_rms_epe_nm, other.opc_rms_epe_nm)
            && feq(self.dynamic_mw, other.dynamic_mw)
            && feq(self.leakage_mw, other.leakage_mw)
            && feq(self.test_coverage, other.test_coverage)
            && feq(self.scan_wirelength_um, other.scan_wirelength_um)
            && self.decaps == other.decaps
            && self.hotspots == other.hotspots
            && feq(self.clock_skew_ps, other.clock_skew_ps)
            && feq(self.clock_tree_um, other.clock_tree_um)
            && feq(self.ir_drop_mv, other.ir_drop_mv)
            && self.hold_violations == other.hold_violations
            && self.synthesis_verified == other.synthesis_verified
            && self.stage_status == other.stage_status
    }

    /// The canonical golden-snapshot text: every deterministic QoR field
    /// (`f64` as bit-exact hex, with a human-readable echo) followed by the
    /// telemetry's deterministic section. Excludes everything wall-clock- or
    /// thread-count-shaped (`stage_seconds`, `stage_speedup`,
    /// `stage_threads`, telemetry wall section), so the text is
    /// byte-identical across runs and thread counts — `tests/golden.rs`
    /// asserts exactly that.
    pub fn golden_text(&self) -> String {
        let mut out = self.qor_text();
        out.push_str(&self.telemetry.deterministic_text());
        out
    }

    /// The QoR-only section of [`golden_text`](Self::golden_text): exactly
    /// the fields [`same_qor`](Self::same_qor) compares, serialized
    /// bit-exactly, and nothing else. Unlike the full golden text it
    /// excludes the telemetry section, so it is byte-identical between a
    /// cold run, a warm cached run, and a resumed run — two reports satisfy
    /// `same_qor` if and only if their `qor_text` matches.
    pub fn qor_text(&self) -> String {
        fn f(out: &mut String, name: &str, v: f64) {
            out.push_str(&format!("f {name} {:016x} # {v}\n", v.to_bits()));
        }
        let mut out = String::new();
        out.push_str("golden v1\n");
        out.push_str(&format!("flow {} design {} node {}\n", self.flow, self.design, self.node));
        f(&mut out, "cell_area_um2", self.cell_area_um2);
        out.push_str(&format!("i cells {}\n", self.cells));
        out.push_str(&format!("i flops {}\n", self.flops));
        f(&mut out, "wns_ps", self.wns_ps);
        f(&mut out, "critical_path_ps", self.critical_path_ps);
        f(&mut out, "hpwl_um", self.hpwl_um);
        out.push_str(&format!("i routed_wirelength {}\n", self.routed_wirelength));
        out.push_str(&format!("i vias {}\n", self.vias));
        out.push_str(&format!("i overflow {}\n", self.overflow));
        out.push_str(&format!("i masks {}\n", self.masks));
        out.push_str(&format!("i stitches {}\n", self.stitches));
        out.push_str(&format!("i litho_legal {}\n", self.litho_legal));
        f(&mut out, "opc_rms_epe_nm", self.opc_rms_epe_nm);
        f(&mut out, "dynamic_mw", self.dynamic_mw);
        f(&mut out, "leakage_mw", self.leakage_mw);
        f(&mut out, "test_coverage", self.test_coverage);
        f(&mut out, "scan_wirelength_um", self.scan_wirelength_um);
        out.push_str(&format!("i decaps {}\n", self.decaps));
        out.push_str(&format!("i hotspots {}\n", self.hotspots));
        f(&mut out, "clock_skew_ps", self.clock_skew_ps);
        f(&mut out, "clock_tree_um", self.clock_tree_um);
        f(&mut out, "ir_drop_mv", self.ir_drop_mv);
        out.push_str(&format!("i hold_violations {}\n", self.hold_violations));
        out.push_str(&format!("i synthesis_verified {:?}\n", self.synthesis_verified));
        for (stage, status) in &self.stage_status {
            out.push_str(&format!(
                "status {stage} attempts {} outcome {}\n",
                status.attempts, status.outcome
            ));
        }
        out
    }

    /// FNV-1a hash of [`qor_text`](Self::qor_text): a 64-bit digest of the
    /// bit-exact QoR. Two reports with equal fingerprints satisfy
    /// [`same_qor`](Self::same_qor) (modulo hash collision), which is what
    /// lets the flow daemon assert bit-identity over the wire without
    /// shipping the whole report.
    pub fn qor_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.qor_text().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "flow {} on {} @ {}", self.flow, self.design, self.node)?;
        writeln!(f, "  area:      {:.1} um^2 ({} cells + {} flops)", self.cell_area_um2, self.cells, self.flops)?;
        writeln!(f, "  timing:    cp {:.0} ps, wns {:.0} ps", self.critical_path_ps, self.wns_ps)?;
        writeln!(f, "  place:     hpwl {:.0} um", self.hpwl_um)?;
        writeln!(
            f,
            "  route:     wl {} vias {} overflow {}",
            self.routed_wirelength, self.vias, self.overflow
        )?;
        writeln!(
            f,
            "  litho:     {} masks, {} stitches, legal={}",
            self.masks, self.stitches, self.litho_legal
        )?;
        writeln!(f, "  power:     {:.3} mW dyn + {:.3} mW leak", self.dynamic_mw, self.leakage_mw)?;
        writeln!(
            f,
            "  dft:       coverage {:.1}%, scan wl {:.0} um",
            self.test_coverage * 100.0,
            self.scan_wirelength_um
        )?;
        writeln!(f, "  pgrid:     {} decaps, {} hotspots, {:.1} mV IR drop", self.decaps, self.hotspots, self.ir_drop_mv)?;
        writeln!(
            f,
            "  clock:     skew {:.1} ps over {:.0} um tree, {} hold violations",
            self.clock_skew_ps, self.clock_tree_um, self.hold_violations
        )?;
        let verified = match self.synthesis_verified {
            Some(true) => "formally equivalent",
            Some(false) => "COUNTEREXAMPLE FOUND",
            None => "not verified",
        };
        writeln!(f, "  verify:    {verified}")?;
        let exceptions: Vec<String> = self
            .stage_status
            .iter()
            .filter(|(_, s)| !matches!(s.outcome, StageOutcome::Completed))
            .map(|(stage, s)| format!("{stage} {}", s.outcome))
            .collect();
        if !exceptions.is_empty() {
            writeln!(f, "  stages:    {}", exceptions.join("; "))?;
        }
        if !self.stage_threads.is_empty() {
            let mut parts = Vec::new();
            for (stage, &t) in &self.stage_threads {
                let sp = self.stage_speedup.get(stage).copied().unwrap_or(1.0);
                parts.push(format!("{stage} x{t} ({sp:.1}x)"));
            }
            writeln!(f, "  threads:   {}", parts.join(", "))?;
        }
        write!(f, "  runtime:   {:.2} s, score {:.1}", self.total_seconds(), self.score())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> FlowReport {
        FlowReport {
            flow: "t".into(),
            design: "d".into(),
            node: "28nm".into(),
            cell_area_um2: 100.0,
            cells: 10,
            flops: 2,
            wns_ps: 0.0,
            critical_path_ps: 500.0,
            hpwl_um: 1000.0,
            routed_wirelength: 50,
            vias: 5,
            overflow: 0,
            masks: 1,
            stitches: 0,
            litho_legal: true,
            opc_rms_epe_nm: 0.0,
            dynamic_mw: 1.0,
            leakage_mw: 0.1,
            test_coverage: 0.95,
            scan_wirelength_um: 100.0,
            decaps: 0,
            hotspots: 0,
            clock_skew_ps: 5.0,
            clock_tree_um: 100.0,
            ir_drop_mv: 10.0,
            hold_violations: 0,
            synthesis_verified: Some(true),
            stage_status: BTreeMap::new(),
            stage_seconds: BTreeMap::new(),
            stage_threads: BTreeMap::new(),
            stage_speedup: BTreeMap::new(),
            telemetry: TelemetrySnapshot::default(),
        }
    }

    #[test]
    fn score_punishes_overflow_and_wns() {
        let good = dummy();
        let mut congested = dummy();
        congested.overflow = 10;
        let mut slow = dummy();
        slow.wns_ps = -100.0;
        assert!(congested.score() > good.score());
        assert!(slow.score() > good.score());
    }

    #[test]
    fn golden_text_excludes_wall_clock_and_thread_fields() {
        let mut a = dummy();
        a.stage_seconds.insert("1_synthesis".into(), 1.0);
        let mut b = dummy();
        b.stage_seconds.insert("1_synthesis".into(), 9.0);
        b.stage_threads.insert("7_route".into(), 8);
        b.stage_speedup.insert("7_route".into(), 3.5);
        assert_eq!(a.golden_text(), b.golden_text());
        assert!(a.golden_text().contains("f cell_area_um2"));
        assert!(a.golden_text().contains("telemetry v1"));
    }

    #[test]
    fn qor_fingerprint_tracks_same_qor() {
        let a = dummy();
        let mut b = dummy();
        b.stage_seconds.insert("1_synthesis".into(), 9.0);
        b.stage_threads.insert("7_route".into(), 8);
        assert!(a.same_qor(&b));
        assert_eq!(a.qor_fingerprint(), b.qor_fingerprint());
        let mut c = dummy();
        c.overflow = 3;
        assert!(!a.same_qor(&c));
        assert_ne!(a.qor_fingerprint(), c.qor_fingerprint());
    }

    #[test]
    fn display_mentions_key_metrics() {
        let r = dummy();
        let s = r.to_string();
        assert!(s.contains("area"));
        assert!(s.contains("coverage"));
        assert!(s.contains("28nm"));
    }
}
