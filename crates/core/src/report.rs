//! The flow's quality-of-results report.

use crate::harness::{StageOutcome, StageStatus};
use std::collections::BTreeMap;

/// End-to-end QoR for one flow run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowReport {
    /// Flow preset name.
    pub flow: String,
    /// Design name.
    pub design: String,
    /// Target node name.
    pub node: String,
    /// Mapped cell area, µm² (cells only, pre-DFT).
    pub cell_area_um2: f64,
    /// Combinational cell count after synthesis.
    pub cells: usize,
    /// Flop count.
    pub flops: usize,
    /// Worst negative slack, ps (0 = met).
    pub wns_ps: f64,
    /// Critical path, ps.
    pub critical_path_ps: f64,
    /// Final placement wirelength, µm.
    pub hpwl_um: f64,
    /// Routed wirelength, g-cell units.
    pub routed_wirelength: u64,
    /// Via count.
    pub vias: u64,
    /// Routing overflow (0 = routable on this stack).
    pub overflow: u64,
    /// Masks needed for the critical layer.
    pub masks: u32,
    /// Stitches inserted by decomposition.
    pub stitches: usize,
    /// Whether decomposition is conflict-free.
    pub litho_legal: bool,
    /// RMS edge-placement error of the critical layer after OPC, nm
    /// (0 on single-patterned nodes, where no OPC runs).
    pub opc_rms_epe_nm: f64,
    /// Dynamic power, mW.
    pub dynamic_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
    /// Stuck-at test coverage in [0, 1] (0 if DFT disabled).
    pub test_coverage: f64,
    /// Scan-stitch wirelength, µm (0 if DFT disabled).
    pub scan_wirelength_um: f64,
    /// Decap cells inserted.
    pub decaps: usize,
    /// Power-grid hotspots remaining.
    pub hotspots: usize,
    /// Clock-tree skew, ps.
    pub clock_skew_ps: f64,
    /// Clock-tree wirelength, µm.
    pub clock_tree_um: f64,
    /// Worst static IR drop, mV.
    pub ir_drop_mv: f64,
    /// Hold violations at the fast corner.
    pub hold_violations: usize,
    /// Formal-equivalence verdict for synthesis: `Some(true)` = proven
    /// equivalent, `Some(false)` = counterexample found, `None` = not run
    /// or inconclusive.
    pub synthesis_verified: Option<bool>,
    /// Typed outcome of every stage the supervisor ran or skipped, keyed by
    /// stage name. Holds no wall-clock data: identical runs produce
    /// identical maps at any thread count.
    pub stage_status: BTreeMap<String, StageStatus>,
    /// Wall-clock seconds per stage.
    pub stage_seconds: BTreeMap<String, f64>,
    /// Worker threads actually used per parallel stage (absent for stages
    /// that ran serially or have no parallel kernel).
    pub stage_threads: BTreeMap<String, usize>,
    /// Projected speedup over a one-thread run per parallel stage, from
    /// per-worker CPU clocks (see `eda-par`).
    pub stage_speedup: BTreeMap<String, f64>,
}

impl FlowReport {
    /// Total runtime across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stage_seconds.values().sum()
    }

    /// Composite score (lower is better): the tuner's objective. Mixes area,
    /// wirelength, timing violation, routability and power.
    pub fn score(&self) -> f64 {
        self.cell_area_um2 * 0.01
            + self.hpwl_um * 0.001
            + (-self.wns_ps).max(0.0) * 0.5
            + self.overflow as f64 * 10.0
            + (self.dynamic_mw + self.leakage_mw) * 2.0
            + self.scan_wirelength_um * 0.001
            + self.hotspots as f64 * 5.0
    }

    /// Bit-exact QoR equality: every deterministic field matches, including
    /// stage statuses. Wall-clock-derived fields (`stage_seconds`,
    /// `stage_speedup`) are excluded — they differ run to run by nature.
    /// This is the resume contract: a flow killed after any stage and
    /// resumed from its checkpoint satisfies `same_qor` against an
    /// uninterrupted run.
    pub fn same_qor(&self, other: &FlowReport) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            a.to_bits() == b.to_bits()
        }
        self.flow == other.flow
            && self.design == other.design
            && self.node == other.node
            && feq(self.cell_area_um2, other.cell_area_um2)
            && self.cells == other.cells
            && self.flops == other.flops
            && feq(self.wns_ps, other.wns_ps)
            && feq(self.critical_path_ps, other.critical_path_ps)
            && feq(self.hpwl_um, other.hpwl_um)
            && self.routed_wirelength == other.routed_wirelength
            && self.vias == other.vias
            && self.overflow == other.overflow
            && self.masks == other.masks
            && self.stitches == other.stitches
            && self.litho_legal == other.litho_legal
            && feq(self.opc_rms_epe_nm, other.opc_rms_epe_nm)
            && feq(self.dynamic_mw, other.dynamic_mw)
            && feq(self.leakage_mw, other.leakage_mw)
            && feq(self.test_coverage, other.test_coverage)
            && feq(self.scan_wirelength_um, other.scan_wirelength_um)
            && self.decaps == other.decaps
            && self.hotspots == other.hotspots
            && feq(self.clock_skew_ps, other.clock_skew_ps)
            && feq(self.clock_tree_um, other.clock_tree_um)
            && feq(self.ir_drop_mv, other.ir_drop_mv)
            && self.hold_violations == other.hold_violations
            && self.synthesis_verified == other.synthesis_verified
            && self.stage_status == other.stage_status
            && self.stage_threads == other.stage_threads
    }
}

impl std::fmt::Display for FlowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "flow {} on {} @ {}", self.flow, self.design, self.node)?;
        writeln!(f, "  area:      {:.1} um^2 ({} cells + {} flops)", self.cell_area_um2, self.cells, self.flops)?;
        writeln!(f, "  timing:    cp {:.0} ps, wns {:.0} ps", self.critical_path_ps, self.wns_ps)?;
        writeln!(f, "  place:     hpwl {:.0} um", self.hpwl_um)?;
        writeln!(
            f,
            "  route:     wl {} vias {} overflow {}",
            self.routed_wirelength, self.vias, self.overflow
        )?;
        writeln!(
            f,
            "  litho:     {} masks, {} stitches, legal={}",
            self.masks, self.stitches, self.litho_legal
        )?;
        writeln!(f, "  power:     {:.3} mW dyn + {:.3} mW leak", self.dynamic_mw, self.leakage_mw)?;
        writeln!(
            f,
            "  dft:       coverage {:.1}%, scan wl {:.0} um",
            self.test_coverage * 100.0,
            self.scan_wirelength_um
        )?;
        writeln!(f, "  pgrid:     {} decaps, {} hotspots, {:.1} mV IR drop", self.decaps, self.hotspots, self.ir_drop_mv)?;
        writeln!(
            f,
            "  clock:     skew {:.1} ps over {:.0} um tree, {} hold violations",
            self.clock_skew_ps, self.clock_tree_um, self.hold_violations
        )?;
        let verified = match self.synthesis_verified {
            Some(true) => "formally equivalent",
            Some(false) => "COUNTEREXAMPLE FOUND",
            None => "not verified",
        };
        writeln!(f, "  verify:    {verified}")?;
        let exceptions: Vec<String> = self
            .stage_status
            .iter()
            .filter(|(_, s)| !matches!(s.outcome, StageOutcome::Completed))
            .map(|(stage, s)| format!("{stage} {}", s.outcome))
            .collect();
        if !exceptions.is_empty() {
            writeln!(f, "  stages:    {}", exceptions.join("; "))?;
        }
        if !self.stage_threads.is_empty() {
            let mut parts = Vec::new();
            for (stage, &t) in &self.stage_threads {
                let sp = self.stage_speedup.get(stage).copied().unwrap_or(1.0);
                parts.push(format!("{stage} x{t} ({sp:.1}x)"));
            }
            writeln!(f, "  threads:   {}", parts.join(", "))?;
        }
        write!(f, "  runtime:   {:.2} s, score {:.1}", self.total_seconds(), self.score())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> FlowReport {
        FlowReport {
            flow: "t".into(),
            design: "d".into(),
            node: "28nm".into(),
            cell_area_um2: 100.0,
            cells: 10,
            flops: 2,
            wns_ps: 0.0,
            critical_path_ps: 500.0,
            hpwl_um: 1000.0,
            routed_wirelength: 50,
            vias: 5,
            overflow: 0,
            masks: 1,
            stitches: 0,
            litho_legal: true,
            opc_rms_epe_nm: 0.0,
            dynamic_mw: 1.0,
            leakage_mw: 0.1,
            test_coverage: 0.95,
            scan_wirelength_um: 100.0,
            decaps: 0,
            hotspots: 0,
            clock_skew_ps: 5.0,
            clock_tree_um: 100.0,
            ir_drop_mv: 10.0,
            hold_violations: 0,
            synthesis_verified: Some(true),
            stage_status: BTreeMap::new(),
            stage_seconds: BTreeMap::new(),
            stage_threads: BTreeMap::new(),
            stage_speedup: BTreeMap::new(),
        }
    }

    #[test]
    fn score_punishes_overflow_and_wns() {
        let good = dummy();
        let mut congested = dummy();
        congested.overflow = 10;
        let mut slow = dummy();
        slow.wns_ps = -100.0;
        assert!(congested.score() > good.score());
        assert!(slow.score() > good.score());
    }

    #[test]
    fn display_mentions_key_metrics() {
        let r = dummy();
        let s = r.to_string();
        assert!(s.contains("area"));
        assert!(s.contains("coverage"));
        assert!(s.contains("28nm"));
    }
}
