//! Supervised stage execution: budgets, typed outcomes, recovery, and
//! deterministic fault injection.
//!
//! Every stage of [`run_flow`](crate::flow::run_flow) executes inside a
//! [`Supervisor`] harness. The harness gives each stage a [`StageBudget`]
//! (attempt cap plus an optional wall-clock soft deadline), records a typed
//! [`StageStatus`] for the report, and drives the stage's recovery policy:
//! a stage body reports `Done`, `Degraded`, or `Retry` per attempt, and the
//! harness decides whether to re-run it, accept a salvaged partial result,
//! or surface a typed error carrying everything completed so far.
//!
//! Fault injection is deterministic by construction: a [`FaultPlan`] keys
//! faults on `(stage name, invocation count)` — never on wall-clock time or
//! thread identity — so an injected failure reproduces bit-identically at
//! any thread count. The soft deadline is the one wall-clock input, and it
//! only gates *whether a retry is attempted*; it never alters the result of
//! an attempt that ran, so flows with the default (`None`) deadline stay
//! fully deterministic.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::flow::{FlowError, PartialFlow, StageFailure, STAGES};
use crate::telemetry::{SpanKind, Telemetry};

/// How a stage concluded, as recorded in
/// [`FlowReport::stage_status`](crate::report::FlowReport::stage_status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOutcome {
    /// First attempt succeeded with a full-quality result.
    Completed,
    /// A recovery policy kicked in and a later attempt succeeded cleanly.
    Recovered {
        /// Total attempts consumed, including the failures.
        attempts: usize,
    },
    /// The stage produced a usable but reduced-quality result.
    Degraded {
        /// Human-readable cause (e.g. "partial routes after coarse-grid retry").
        reason: String,
    },
    /// The stage did not run at all.
    Skipped {
        /// Why it was skipped (e.g. "scan insertion disabled").
        cause: String,
    },
}

impl std::fmt::Display for StageOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageOutcome::Completed => write!(f, "completed"),
            StageOutcome::Recovered { attempts } => write!(f, "recovered after {attempts} attempts"),
            StageOutcome::Degraded { reason } => write!(f, "degraded: {reason}"),
            StageOutcome::Skipped { cause } => write!(f, "skipped: {cause}"),
        }
    }
}

/// Final status of one flow stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStatus {
    /// The typed outcome.
    pub outcome: StageOutcome,
    /// Attempts consumed (0 for skipped stages).
    pub attempts: usize,
}

impl StageStatus {
    /// True when the stage ended at full quality (completed or recovered).
    pub fn is_clean(&self) -> bool {
        matches!(self.outcome, StageOutcome::Completed | StageOutcome::Recovered { .. })
    }
}

/// Per-stage execution budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudget {
    /// Maximum attempts (first run + retries). Clamped to at least 1.
    pub max_attempts: usize,
    /// Wall-clock soft deadline in seconds. When the stage has already spent
    /// longer than this, no further retries are attempted — the harness
    /// accepts the best salvaged result or reports budget exhaustion. It
    /// never interrupts a running attempt, so results stay deterministic.
    /// `None` (the default) disables the deadline.
    pub soft_deadline_s: Option<f64>,
}

impl Default for StageBudget {
    fn default() -> StageBudget {
        StageBudget { max_attempts: 2, soft_deadline_s: None }
    }
}

/// Budgets for every stage: a default plus per-stage overrides.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageBudgets {
    default: StageBudget,
    overrides: BTreeMap<String, StageBudget>,
}

impl StageBudgets {
    /// Budgets with `default` for every stage not overridden.
    pub fn uniform(default: StageBudget) -> StageBudgets {
        StageBudgets { default, overrides: BTreeMap::new() }
    }

    /// Overrides the budget for one stage (full key like `"7_route"`, or the
    /// bare name `"route"`).
    pub fn set(mut self, stage: &str, budget: StageBudget) -> StageBudgets {
        self.overrides.insert(stage.to_string(), budget);
        self
    }

    /// The budget in force for `stage`.
    pub fn for_stage(&self, stage: &str) -> StageBudget {
        self.overrides
            .iter()
            .find(|(k, _)| stage_matches(k, stage))
            .map(|(_, b)| *b)
            .unwrap_or(self.default)
    }
}

/// A fault the injection layer can force on a stage attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The attempt fails outright without running; the recovery policy
    /// decides whether a retry happens.
    Fail,
    /// The attempt's soft deadline is treated as blown: its work is kept but
    /// the stage is marked degraded and no retry is allowed.
    Timeout,
    /// The attempt runs and succeeds, but its result is force-marked
    /// degraded.
    Degrade,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Fail => write!(f, "fail"),
            Fault::Timeout => write!(f, "timeout"),
            Fault::Degrade => write!(f, "degrade"),
        }
    }
}

/// One rule of a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// Stage the rule applies to: a full key (`"7_route"`) or bare name
    /// (`"route"`).
    pub stage: String,
    /// Which invocation of the stage to hit (`None` = every invocation).
    /// Invocations count every attempt of the stage within one flow run,
    /// starting at 0.
    pub invocation: Option<u64>,
    /// The fault to inject.
    pub fault: Fault,
}

/// A malformed `--inject` fault specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpecError {
    /// The spec contained no rules at all.
    Empty,
    /// A rule was not of the form `stage=fault[@invocation]`.
    BadRule(String),
    /// A rule named a stage that is not in [`STAGES`] (neither as a full
    /// key nor as a bare name).
    UnknownStage(String),
    /// A rule named a fault other than `fail`/`timeout`/`degrade`.
    UnknownFault(String),
    /// An `@invocation` suffix did not parse as an unsigned count.
    BadInvocation(String),
    /// The `random:` per-mille was not an integer in 1..=1000.
    BadPerMille(String),
    /// `random:0` would inject nothing; an explicitly empty plan is
    /// rejected the same way an empty rule list is.
    ZeroRandom,
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::Empty => write!(f, "empty --inject spec"),
            FaultSpecError::BadRule(r) => {
                write!(f, "bad --inject rule {r:?}: expected stage=fault[@invocation]")
            }
            FaultSpecError::UnknownStage(s) => {
                write!(f, "unknown stage {s:?} in --inject spec (want one of {})", STAGES.join("|"))
            }
            FaultSpecError::UnknownFault(k) => {
                write!(f, "unknown fault {k:?} (want fail|timeout|degrade)")
            }
            FaultSpecError::BadInvocation(i) => {
                write!(f, "bad invocation {i:?} in --inject rule (want an unsigned count)")
            }
            FaultSpecError::BadPerMille(p) => {
                write!(f, "bad per-mille {p:?} in --inject spec (want an integer in 1..=1000)")
            }
            FaultSpecError::ZeroRandom => {
                write!(f, "random:0 injects nothing; omit --inject instead")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic fault-injection plan.
///
/// Faults are keyed purely on `(stage name, invocation count)`: the nth
/// attempt of a given stage sees the same fault on every run, on every
/// machine, at any thread count. The `seed` feeds the optional random mode
/// ([`FaultPlan::random`]), which hashes `(seed, stage, invocation)` — still
/// fully reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the hashed random mode.
    pub seed: u64,
    /// Explicit rules, first match wins.
    pub rules: Vec<FaultRule>,
    /// Probability (in 1/1000ths) that the hashed random mode injects a
    /// fault into any given attempt. 0 disables the random mode.
    pub random_per_mille: u16,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new(), random_per_mille: 0 }
    }

    /// Adds an explicit rule.
    pub fn with(mut self, stage: &str, invocation: Option<u64>, fault: Fault) -> FaultPlan {
        self.rules.push(FaultRule { stage: stage.to_string(), invocation, fault });
        self
    }

    /// A seeded plan that injects a hashed pseudo-random fault into roughly
    /// `per_mille`/1000 of all stage attempts.
    pub fn random(seed: u64, per_mille: u16) -> FaultPlan {
        FaultPlan { seed, rules: Vec::new(), random_per_mille: per_mille.min(1000) }
    }

    /// The standard smoke plan used by `experiments --inject smoke` and CI:
    /// one recoverable failure, one timeout, and one forced degradation
    /// spread across the flow.
    pub fn smoke(seed: u64) -> FaultPlan {
        FaultPlan::new(seed)
            .with("route", Some(0), Fault::Fail)
            .with("litho", Some(0), Fault::Timeout)
            .with("clock_gating", Some(0), Fault::Degrade)
            .with("dft", Some(0), Fault::Fail)
    }

    /// Parses a command-line spec.
    ///
    /// Accepted forms: `"smoke"`, `"random:<per-mille>"` with per-mille in
    /// 1..=1000, or a comma list of `stage=fault[@invocation]` rules where
    /// `stage` names a real flow stage (full key or bare name) and `fault`
    /// is `fail`, `timeout`, or `degrade` — e.g. `"route=fail@0,litho=timeout"`.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, FaultSpecError> {
        let spec = spec.trim();
        if spec == "smoke" {
            return Ok(FaultPlan::smoke(seed));
        }
        if let Some(pm) = spec.strip_prefix("random:") {
            let parsed: u16 = pm
                .parse()
                .map_err(|_| FaultSpecError::BadPerMille(pm.to_string()))?;
            if parsed == 0 {
                return Err(FaultSpecError::ZeroRandom);
            }
            if parsed > 1000 {
                return Err(FaultSpecError::BadPerMille(pm.to_string()));
            }
            return Ok(FaultPlan::random(seed, parsed));
        }
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (stage, rhs) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError::BadRule(part.to_string()))?;
            if !STAGES.iter().any(|s| stage_matches(stage, s)) {
                return Err(FaultSpecError::UnknownStage(stage.to_string()));
            }
            let (fault, invocation) = match rhs.split_once('@') {
                Some((f, inv)) => {
                    let inv: u64 = inv
                        .parse()
                        .map_err(|_| FaultSpecError::BadInvocation(inv.to_string()))?;
                    (f, Some(inv))
                }
                None => (rhs, None),
            };
            let fault = match fault {
                "fail" => Fault::Fail,
                "timeout" => Fault::Timeout,
                "degrade" => Fault::Degrade,
                other => return Err(FaultSpecError::UnknownFault(other.to_string())),
            };
            plan.rules.push(FaultRule { stage: stage.to_string(), invocation, fault });
        }
        if plan.rules.is_empty() {
            return Err(FaultSpecError::Empty);
        }
        Ok(plan)
    }

    /// The fault (if any) to inject into the given invocation of `stage`.
    /// Pure function of the plan, the stage name, and the invocation count.
    pub fn fault_for(&self, stage: &str, invocation: u64) -> Option<Fault> {
        for rule in &self.rules {
            if stage_matches(&rule.stage, stage) && rule.invocation.is_none_or(|i| i == invocation) {
                return Some(rule.fault);
            }
        }
        if self.random_per_mille > 0 {
            let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
            for b in stage.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            h ^= invocation.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            h = splitmix(h);
            if h % 1000 < u64::from(self.random_per_mille) {
                return Some(match (h / 1000) % 3 {
                    0 => Fault::Fail,
                    1 => Fault::Timeout,
                    _ => Fault::Degrade,
                });
            }
        }
        None
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// True when `pattern` names `stage` — either the full key (`"7_route"`)
/// or the bare name after the order prefix (`"route"`).
fn stage_matches(pattern: &str, stage: &str) -> bool {
    if pattern == stage {
        return true;
    }
    match stage.split_once('_') {
        Some((order, bare)) => order.chars().all(|c| c.is_ascii_digit()) && pattern == bare,
        None => false,
    }
}

/// What a stage body reports back to the harness for one attempt.
pub(crate) enum StageTry<T> {
    /// Full-quality result.
    Done(T),
    /// Usable result of reduced quality, with the reason.
    Degraded(T, String),
    /// The attempt did not produce an acceptable result; ask for a retry.
    /// `salvage` optionally carries a partial result (and a note) the
    /// harness can fall back to if the budget runs out.
    Retry {
        /// Why this attempt was unacceptable.
        reason: String,
        /// Best-effort partial result to accept if no retry is possible.
        salvage: Option<(T, String)>,
    },
}

/// Per-attempt context handed to a stage body.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StageCtx<'t> {
    /// 0-based attempt index (counts injected failures too).
    #[allow(dead_code)]
    pub attempt: usize,
    /// Number of *observed* failures so far: attempts whose body actually ran
    /// and asked for a retry. Recovery policies key their parameter
    /// escalation (coarser grid, bigger simulation budget, OPC backoff) off
    /// this, not off `attempt`, so an injected fault that skips the body does
    /// not perturb the parameters — and therefore cannot change the QoR — of
    /// the retry.
    pub adapt: usize,
    /// The flow's telemetry collector: stage bodies record kernel spans and
    /// QoR-provenance metrics through this. Recording is observation-only —
    /// nothing a body reads back from it may influence control flow.
    pub tel: &'t Telemetry,
}

/// The stage harness: runs every stage under its budget, applies the fault
/// plan, and accumulates statuses.
pub(crate) struct Supervisor<'p> {
    plan: Option<&'p FaultPlan>,
    budgets: StageBudgets,
    tel: &'p Telemetry,
    /// Statuses of stages finished so far, keyed by stage name.
    pub statuses: BTreeMap<String, StageStatus>,
    invocations: BTreeMap<&'static str, u64>,
    /// Path of the checkpoint file, once one has been written or loaded.
    pub checkpoint: Option<std::path::PathBuf>,
    /// Pending `cache` tag for the next stage span: a cache miss or an
    /// unreadable entry is noted here, then consumed when the recomputing
    /// stage opens its span.
    cache_note: Option<&'static str>,
    /// Flow-level wall-clock deadline: when the flow has already run longer
    /// than this, the next stage boundary surfaces a typed
    /// [`FlowError::DeadlineExceeded`] instead of starting the stage. Like
    /// the per-stage soft deadline it never interrupts a running attempt —
    /// a worker is never left hung mid-stage, and the partial state (plus
    /// any checkpoint) is carried on the error.
    deadline_s: Option<f64>,
    flow_started: Instant,
}

impl<'p> Supervisor<'p> {
    pub fn new(
        plan: Option<&'p FaultPlan>,
        budgets: StageBudgets,
        tel: &'p Telemetry,
        deadline_s: Option<f64>,
    ) -> Supervisor<'p> {
        Supervisor {
            plan,
            budgets,
            tel,
            statuses: BTreeMap::new(),
            invocations: BTreeMap::new(),
            checkpoint: None,
            cache_note: None,
            deadline_s,
            flow_started: Instant::now(),
        }
    }

    /// The telemetry collector the supervisor records into.
    pub fn telemetry(&self) -> &'p Telemetry {
        self.tel
    }

    /// Records a stage-cache hit: the cached statuses replace the current
    /// map (the content address covers the status prefix, so they agree for
    /// every earlier stage), and the stage gets a span tagged `cache=hit`
    /// in place of attempt spans — the body never ran.
    pub fn cache_hit(&mut self, stage: &'static str, statuses: &BTreeMap<String, StageStatus>) {
        let span = self.tel.span(SpanKind::Stage, stage);
        span.tag("cache", "hit");
        if let Some(status) = statuses.get(stage) {
            span.tag("outcome", &status.outcome);
            span.tag("attempts", status.attempts);
            self.tel.progress(stage, &status.outcome.to_string(), status.attempts);
        }
        self.statuses = statuses.clone();
        self.tel.count("cache.hits", 1);
    }

    /// Counts a stage-cache miss; the stage recomputes and its span is
    /// tagged `cache=miss`.
    pub fn cache_miss(&mut self) {
        self.tel.count("cache.misses", 1);
        self.cache_note = Some("miss");
    }

    /// Counts an unreadable (corrupt, truncated, or I/O-failing) cache
    /// entry; the stage recomputes as if cold and its span is tagged
    /// `cache=error`.
    pub fn cache_unreadable(&mut self) {
        self.tel.count("cache.errors", 1);
        self.cache_note = Some("error");
    }

    /// Counts an entry that was evicted between the cache's index probe and
    /// the record read — an expected race under a size-bounded store with
    /// concurrent writers, not a fault. The stage recomputes as if cold and
    /// its span is tagged `cache=evicted`.
    pub fn cache_evicted(&mut self) {
        self.tel.count("cache.evicted_miss", 1);
        self.cache_note = Some("evicted");
    }

    /// Records `stage` as skipped and passes `value` through.
    pub fn skip<T>(&mut self, stage: &'static str, cause: &str, value: T) -> T {
        let span = self.tel.span(SpanKind::Stage, stage);
        if let Some(note) = self.cache_note.take() {
            span.tag("cache", note);
        }
        span.tag("outcome", format!("skipped: {cause}"));
        let outcome = StageOutcome::Skipped { cause: cause.to_string() };
        self.tel.progress(stage, &outcome.to_string(), 0);
        self.statuses.insert(stage.to_string(), StageStatus { outcome, attempts: 0 });
        value
    }

    /// Runs one stage under the harness.
    ///
    /// The body is invoked once per attempt with a [`StageCtx`]; it returns
    /// a [`StageTry`] describing the attempt, or a hard [`StageFailure`]
    /// that no recovery policy can absorb.
    ///
    /// The stage runs inside a telemetry stage span; each attempt gets a
    /// tagged child span (`try<invocation>`), so injected faults, retries,
    /// and degradations are visible in the trace exactly where they struck.
    pub fn run_stage<T>(
        &mut self,
        stage: &'static str,
        body: impl FnMut(StageCtx<'_>) -> Result<StageTry<T>, StageFailure>,
    ) -> Result<T, FlowError> {
        // The flow deadline trips at stage boundaries only: an attempt that
        // is already running always finishes (determinism — its result never
        // depends on the clock), but no new stage starts past the deadline.
        if let Some(limit) = self.deadline_s {
            let elapsed = self.flow_started.elapsed().as_secs_f64();
            if elapsed > limit {
                return Err(FlowError::DeadlineExceeded {
                    stage,
                    elapsed_s: elapsed,
                    deadline_s: limit,
                    partial: self.partial(),
                });
            }
        }
        let span = self.tel.span(SpanKind::Stage, stage);
        if let Some(note) = self.cache_note.take() {
            span.tag("cache", note);
        }
        let result = self.run_stage_inner(stage, body);
        match &result {
            Ok(_) => {
                if let Some(status) = self.statuses.get(stage) {
                    span.tag("outcome", &status.outcome);
                    span.tag("attempts", status.attempts);
                }
            }
            Err(e) => span.tag("outcome", format!("error: {e}")),
        }
        result
    }

    fn run_stage_inner<T>(
        &mut self,
        stage: &'static str,
        mut body: impl FnMut(StageCtx<'_>) -> Result<StageTry<T>, StageFailure>,
    ) -> Result<T, FlowError> {
        let budget = self.budgets.for_stage(stage);
        let max_attempts = budget.max_attempts.max(1);
        let started = Instant::now();
        let mut salvage: Option<(T, String)> = None;
        let mut last_reason;
        let mut attempt = 0usize;
        let mut adapt = 0usize;
        loop {
            let invocation = {
                let c = self.invocations.entry(stage).or_insert(0);
                let v = *c;
                *c += 1;
                v
            };
            let injected = self.plan.and_then(|p| p.fault_for(stage, invocation));
            let aspan = self.tel.span(SpanKind::Attempt, &format!("try{invocation}"));
            if let Some(fault) = injected {
                aspan.tag("injected", fault);
            }
            match injected {
                Some(Fault::Fail) => {
                    aspan.tag("result", "injected-fail");
                    last_reason = format!("injected failure (invocation {invocation})");
                }
                Some(Fault::Timeout) => {
                    // A simulated blown deadline: whatever this attempt
                    // produces is kept, but marked degraded and no retry
                    // is allowed.
                    aspan.tag("result", "timeout");
                    let outcome = body(StageCtx { attempt, adapt, tel: self.tel })
                        .map_err(|e| self.stage_failed(stage, e))?;
                    let note = format!("soft deadline exceeded (injected timeout, invocation {invocation})");
                    return match outcome {
                        StageTry::Done(v) => {
                            self.record(stage, attempt + 1, StageOutcome::Degraded { reason: note });
                            Ok(v)
                        }
                        StageTry::Degraded(v, why) => {
                            self.record(
                                stage,
                                attempt + 1,
                                StageOutcome::Degraded { reason: format!("{why}; {note}") },
                            );
                            Ok(v)
                        }
                        StageTry::Retry { reason, salvage: Some((v, why)) } => {
                            let _ = reason;
                            self.record(
                                stage,
                                attempt + 1,
                                StageOutcome::Degraded { reason: format!("{why}; {note}") },
                            );
                            Ok(v)
                        }
                        StageTry::Retry { reason, salvage: None } => {
                            Err(self.budget_exhausted(stage, attempt + 1, format!("{reason}; {note}")))
                        }
                    };
                }
                Some(Fault::Degrade) | None => {
                    let outcome = body(StageCtx { attempt, adapt, tel: self.tel })
                        .map_err(|e| self.stage_failed(stage, e))?;
                    match outcome {
                        StageTry::Done(v) => {
                            aspan.tag("result", "done");
                            let o = if let Some(Fault::Degrade) = injected {
                                StageOutcome::Degraded {
                                    reason: format!("injected degradation (invocation {invocation})"),
                                }
                            } else if attempt == 0 {
                                StageOutcome::Completed
                            } else {
                                StageOutcome::Recovered { attempts: attempt + 1 }
                            };
                            self.record(stage, attempt + 1, o);
                            return Ok(v);
                        }
                        StageTry::Degraded(v, reason) => {
                            aspan.tag("result", "degraded");
                            self.record(stage, attempt + 1, StageOutcome::Degraded { reason });
                            return Ok(v);
                        }
                        StageTry::Retry { reason, salvage: s } => {
                            aspan.tag("result", "retry");
                            aspan.tag("reason", &reason);
                            if s.is_some() {
                                salvage = s;
                            }
                            last_reason = reason;
                            adapt += 1;
                        }
                    }
                }
            }
            attempt += 1;
            let deadline_blown = budget
                .soft_deadline_s
                .is_some_and(|d| started.elapsed().as_secs_f64() > d);
            if attempt >= max_attempts || deadline_blown {
                let why = if deadline_blown && attempt < max_attempts {
                    format!("{last_reason}; soft deadline exceeded after {attempt} attempt(s)")
                } else {
                    format!("{last_reason} ({attempt} attempt(s))")
                };
                return match salvage.take() {
                    Some((v, note)) => {
                        self.record(stage, attempt, StageOutcome::Degraded { reason: format!("{note}: {why}") });
                        Ok(v)
                    }
                    None => Err(self.budget_exhausted(stage, attempt, why)),
                };
            }
        }
    }

    fn record(&mut self, stage: &'static str, attempts: usize, outcome: StageOutcome) {
        self.tel.progress(stage, &outcome.to_string(), attempts);
        self.statuses.insert(stage.to_string(), StageStatus { outcome, attempts });
    }

    fn partial(&self) -> Box<PartialFlow> {
        Box::new(PartialFlow { statuses: self.statuses.clone(), checkpoint: self.checkpoint.clone() })
    }

    fn stage_failed(&self, stage: &'static str, source: StageFailure) -> FlowError {
        FlowError::Stage { stage, source, partial: self.partial() }
    }

    fn budget_exhausted(&self, stage: &'static str, attempts: usize, reason: String) -> FlowError {
        FlowError::BudgetExhausted { stage, attempts, reason, partial: self.partial() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_matching_accepts_full_key_and_bare_name() {
        assert!(stage_matches("7_route", "7_route"));
        assert!(stage_matches("route", "7_route"));
        assert!(stage_matches("clock_gating", "2_clock_gating"));
        assert!(!stage_matches("route", "8_litho"));
        assert!(!stage_matches("7_route", "route"));
    }

    #[test]
    fn fault_plan_is_deterministic() {
        let plan = FaultPlan::random(42, 200);
        for stage in ["1_synthesis", "7_route", "10_dft"] {
            for inv in 0..8 {
                assert_eq!(plan.fault_for(stage, inv), plan.fault_for(stage, inv));
            }
        }
        // ~20% of attempts should be hit — loose sanity bound.
        let hits = (0..1000)
            .filter(|&i| plan.fault_for("7_route", i).is_some())
            .count();
        assert!(hits > 100 && hits < 320, "hit rate {hits}/1000 out of range");
    }

    #[test]
    fn fault_plan_rules_match_by_invocation() {
        let plan = FaultPlan::new(1).with("route", Some(1), Fault::Fail);
        assert_eq!(plan.fault_for("7_route", 0), None);
        assert_eq!(plan.fault_for("7_route", 1), Some(Fault::Fail));
        assert_eq!(plan.fault_for("7_route", 2), None);
        let always = FaultPlan::new(1).with("7_route", None, Fault::Degrade);
        assert_eq!(always.fault_for("7_route", 5), Some(Fault::Degrade));
    }

    #[test]
    fn parse_accepts_all_forms() {
        assert_eq!(FaultPlan::parse("smoke", 7).unwrap(), FaultPlan::smoke(7));
        assert_eq!(FaultPlan::parse("random:50", 7).unwrap(), FaultPlan::random(7, 50));
        let plan = FaultPlan::parse("route=fail@0, litho=timeout", 7).unwrap();
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].fault, Fault::Fail);
        assert_eq!(plan.rules[0].invocation, Some(0));
        assert_eq!(plan.rules[1].fault, Fault::Timeout);
        assert_eq!(plan.rules[1].invocation, None);
        // Full stage keys work just like bare names.
        let full = FaultPlan::parse("7_route=degrade", 7).unwrap();
        assert_eq!(full.rules[0].stage, "7_route");
    }

    #[test]
    fn parse_rejects_an_empty_spec_with_a_typed_error() {
        assert_eq!(FaultPlan::parse("", 7), Err(FaultSpecError::Empty));
        assert_eq!(FaultPlan::parse("  , ,", 7), Err(FaultSpecError::Empty));
    }

    #[test]
    fn parse_rejects_a_bad_stage_name_with_a_typed_error() {
        assert_eq!(
            FaultPlan::parse("warp_drive=fail", 7),
            Err(FaultSpecError::UnknownStage("warp_drive".into()))
        );
        // An order-prefixed key with the wrong prefix is not a real stage.
        assert_eq!(
            FaultPlan::parse("9_route=fail", 7),
            Err(FaultSpecError::UnknownStage("9_route".into()))
        );
        // Errors surface even when earlier rules are valid.
        assert_eq!(
            FaultPlan::parse("route=fail,bogus=timeout", 7),
            Err(FaultSpecError::UnknownStage("bogus".into()))
        );
    }

    #[test]
    fn parse_rejects_an_out_of_range_invocation_with_a_typed_error() {
        assert_eq!(
            FaultPlan::parse("route=fail@-1", 7),
            Err(FaultSpecError::BadInvocation("-1".into()))
        );
        assert_eq!(
            FaultPlan::parse("route=fail@99999999999999999999", 7),
            Err(FaultSpecError::BadInvocation("99999999999999999999".into()))
        );
        assert_eq!(
            FaultPlan::parse("route=fail@first", 7),
            Err(FaultSpecError::BadInvocation("first".into()))
        );
    }

    #[test]
    fn parse_rejects_random_zero_and_out_of_range_per_mille() {
        assert_eq!(FaultPlan::parse("random:0", 7), Err(FaultSpecError::ZeroRandom));
        assert_eq!(
            FaultPlan::parse("random:1001", 7),
            Err(FaultSpecError::BadPerMille("1001".into()))
        );
        assert_eq!(
            FaultPlan::parse("random:often", 7),
            Err(FaultSpecError::BadPerMille("often".into()))
        );
    }

    #[test]
    fn parse_rejects_malformed_rules_and_unknown_faults() {
        assert_eq!(FaultPlan::parse("route", 7), Err(FaultSpecError::BadRule("route".into())));
        assert_eq!(
            FaultPlan::parse("route=explode", 7),
            Err(FaultSpecError::UnknownFault("explode".into()))
        );
    }

    #[test]
    fn budgets_resolve_overrides_by_bare_name() {
        let budgets = StageBudgets::default()
            .set("route", StageBudget { max_attempts: 5, soft_deadline_s: Some(1.0) });
        assert_eq!(budgets.for_stage("7_route").max_attempts, 5);
        assert_eq!(budgets.for_stage("8_litho").max_attempts, 2);
    }
}
