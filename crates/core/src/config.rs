//! Flow configuration: the knobs of the integrated RTL-to-layout pipeline,
//! with the two presets the panel's decade comparison needs.

use crate::harness::{FaultPlan, StageBudgets};
use eda_logic::{MapGoal, SynthesisEffort};
use eda_netlist::Library;
use eda_route::RouteAlgorithm;
use eda_tech::Node;
use std::path::PathBuf;
use std::sync::Arc;

/// Which standard-cell library the flow maps onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibraryChoice {
    /// The rich modern library.
    Generic,
    /// The impoverished NAND2/INV/DFF baseline library.
    NandInv2006,
    /// De Micheli's controlled-polarity device library.
    ControlledPolarity,
}

impl LibraryChoice {
    /// Resolves to the concrete library.
    pub fn library(self) -> Arc<Library> {
        match self {
            LibraryChoice::Generic => Library::generic(),
            LibraryChoice::NandInv2006 => Library::nand_inv_2006(),
            LibraryChoice::ControlledPolarity => Library::controlled_polarity(),
        }
    }
}

/// Placement effort knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceEffort {
    /// Global-placement smoothing iterations.
    pub global_iterations: usize,
    /// Annealing moves per cell.
    pub anneal_moves_per_cell: usize,
    /// Stripe partitions for partitioned refinement (`<= 1` = monolithic
    /// serial annealing). Determines the placement result; worker threads
    /// come from [`FlowConfig::threads`] and never change the result.
    pub stripes: usize,
}

/// DFT options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Number of scan chains.
    pub chains: usize,
    /// Reorder chains from placement (Rossi's complaint when absent).
    pub placement_aware_reorder: bool,
}

/// Power options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerOptions {
    /// Insert clock gates with this group size (0 = off).
    pub clock_gating_group: usize,
    /// Automatic decap insertion against this droop limit in mV
    /// (`None` = off).
    pub decap_droop_limit_mv: Option<f64>,
}

/// The complete flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Preset name (for reports).
    pub name: String,
    /// Target node.
    pub node: Node,
    /// Library to map onto.
    pub library: LibraryChoice,
    /// Synthesis preset.
    pub synthesis: SynthesisEffort,
    /// Mapping objective.
    pub map_goal: MapGoal,
    /// Core utilization for floorplanning.
    pub utilization: f64,
    /// Placement effort.
    pub place: PlaceEffort,
    /// Router algorithm.
    pub router: RouteAlgorithm,
    /// Metal layers used for routing.
    pub layers: u32,
    /// Rip-up and re-route iterations.
    pub ripup_iterations: usize,
    /// Scan insertion (None = no DFT).
    pub scan: Option<ScanOptions>,
    /// Power techniques.
    pub power: PowerOptions,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Formally verify the mapped netlist against the input design (BDD
    /// equivalence check with simulation fallback).
    pub verify_synthesis: bool,
    /// RNG seed for all stochastic stages.
    pub seed: u64,
    /// Worker threads for every parallel kernel — partitioned placement,
    /// batched routing, fault simulation (`0` = all available cores). The
    /// deterministic parallel layer (`eda-par`) guarantees every QoR output
    /// is bit-identical for any value of this knob — including the
    /// deterministic section of [`FlowReport::telemetry`], which records
    /// worker counts and wall clocks only in its separate `wall` section.
    ///
    /// [`FlowReport::telemetry`]: crate::report::FlowReport::telemetry
    pub threads: usize,
    /// Directory for flow checkpoints (`None` = no checkpointing). After
    /// every completed stage the supervisor serializes the full flow state
    /// (netlist, placement, per-stage artifacts) to
    /// `<checkpoint_dir>/<design>.flowck`, so a killed flow can resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in [`checkpoint_dir`](Self::checkpoint_dir)
    /// if one exists and its config fingerprint matches; the flow then
    /// restarts from the first incomplete stage and its QoR is bit-identical
    /// to an uninterrupted run. A fingerprint mismatch is a hard error; a
    /// missing checkpoint silently falls back to a fresh run.
    pub resume: bool,
    /// Directory for the content-addressed stage result cache (`None` = no
    /// caching). Each stage is keyed by `(stage kind, config fingerprint —
    /// which folds in the design identity and RNG seed, hash of the exact
    /// pre-stage flow state)`; a hit replays the stored post-stage state
    /// bit-identically and the stage body never runs, so a warm re-run of an
    /// unchanged flow skips every stage. Hits/misses/errors land in the
    /// telemetry metric registry (`cache.hits`, `cache.misses`,
    /// `cache.errors`) and tag the stage spans; corrupt entries silently
    /// fall back to recompute. Ignored while a
    /// [`fault_plan`](Self::fault_plan) is active — injected faults must
    /// exercise the real stage bodies, not replay cached results.
    pub cache_dir: Option<PathBuf>,
    /// Deterministic fault-injection plan (`None` = no injection). Faults
    /// are keyed on `(stage name, invocation count)`, so an injected plan
    /// reproduces identically at any thread count.
    pub fault_plan: Option<FaultPlan>,
    /// Per-stage attempt caps and wall-clock soft deadlines. The default is
    /// 2 attempts per stage with no deadline, which keeps flows fully
    /// deterministic.
    pub budgets: StageBudgets,
}

impl FlowConfig {
    /// The decade-old baseline: naive synthesis onto the poor library, BFS
    /// routing without negotiation, no design-for-power, no placement-aware
    /// scan.
    pub fn basic_2006(node: Node) -> FlowConfig {
        FlowConfig {
            name: "basic-2006".into(),
            node,
            library: LibraryChoice::NandInv2006,
            synthesis: SynthesisEffort::Baseline2006,
            map_goal: MapGoal::Area,
            utilization: 0.6,
            place: PlaceEffort { global_iterations: 4, anneal_moves_per_cell: 10, stripes: 1 },
            router: RouteAlgorithm::LeeBfs,
            layers: node.spec().typical_metal_layers,
            ripup_iterations: 0,
            scan: Some(ScanOptions { chains: 1, placement_aware_reorder: false }),
            power: PowerOptions { clock_gating_group: 0, decap_droop_limit_mv: None },
            clock_mhz: 200.0,
            verify_synthesis: false,
            seed: 1,
            threads: 1,
            checkpoint_dir: None,
            resume: false,
            cache_dir: None,
            fault_plan: None,
            budgets: StageBudgets::default(),
        }
    }

    /// The advanced 2016 flow: optimized synthesis onto the rich library,
    /// negotiated line-search routing, clock gating, decaps, and
    /// placement-aware scan reordering.
    pub fn advanced_2016(node: Node) -> FlowConfig {
        FlowConfig {
            name: "advanced-2016".into(),
            node,
            library: LibraryChoice::Generic,
            synthesis: SynthesisEffort::Advanced2016,
            map_goal: MapGoal::Area,
            utilization: 0.7,
            place: PlaceEffort { global_iterations: 10, anneal_moves_per_cell: 40, stripes: 4 },
            router: RouteAlgorithm::LineSearch,
            layers: node.spec().typical_metal_layers,
            ripup_iterations: 6,
            scan: Some(ScanOptions { chains: 2, placement_aware_reorder: true }),
            power: PowerOptions { clock_gating_group: 8, decap_droop_limit_mv: Some(50.0) },
            clock_mhz: 200.0,
            verify_synthesis: true,
            seed: 1,
            threads: 0,
            checkpoint_dir: None,
            resume: false,
            cache_dir: None,
            fault_plan: None,
            budgets: StageBudgets::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let b = FlowConfig::basic_2006(Node::N90);
        let a = FlowConfig::advanced_2016(Node::N90);
        assert_ne!(b.synthesis, a.synthesis);
        assert_ne!(b.router, a.router);
        assert_eq!(b.power.clock_gating_group, 0);
        assert!(a.power.clock_gating_group > 0);
        assert!(a.place.stripes > b.place.stripes);
        // 2006 ran single-threaded; 2016 uses every core (0 = auto).
        assert_eq!(b.threads, 1);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn library_choices_resolve() {
        assert!(LibraryChoice::Generic.library().find("XOR2_X1").is_some());
        assert!(LibraryChoice::NandInv2006.library().find("XOR2_X1").is_none());
        assert!(LibraryChoice::ControlledPolarity.library().find("XOR2_P").is_some());
    }
}
