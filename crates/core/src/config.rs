//! Flow configuration: the knobs of the integrated RTL-to-layout pipeline,
//! with the two presets the panel's decade comparison needs.

use crate::harness::{FaultPlan, StageBudgets};
use crate::store::StoreConfig;
use eda_logic::{MapGoal, SynthesisEffort, DEFAULT_REWRITE_PASSES};
use eda_netlist::Library;
use eda_route::RouteAlgorithm;
use eda_tech::Node;
use std::path::PathBuf;
use std::sync::Arc;

/// Which standard-cell library the flow maps onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibraryChoice {
    /// The rich modern library.
    Generic,
    /// The impoverished NAND2/INV/DFF baseline library.
    NandInv2006,
    /// De Micheli's controlled-polarity device library.
    ControlledPolarity,
}

impl LibraryChoice {
    /// Resolves to the concrete library.
    pub fn library(self) -> Arc<Library> {
        match self {
            LibraryChoice::Generic => Library::generic(),
            LibraryChoice::NandInv2006 => Library::nand_inv_2006(),
            LibraryChoice::ControlledPolarity => Library::controlled_polarity(),
        }
    }
}

/// Placement effort knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceEffort {
    /// Global-placement smoothing iterations.
    pub global_iterations: usize,
    /// Annealing moves per cell.
    pub anneal_moves_per_cell: usize,
    /// Stripe partitions for partitioned refinement (`<= 1` = monolithic
    /// serial annealing). Determines the placement result; worker threads
    /// come from [`FlowConfig::threads`] and never change the result.
    pub stripes: usize,
    /// Target instances per cluster for the multilevel
    /// (cluster → coarse-place → refine) pass the scale tier places with.
    /// `0` (the default) keeps the flat global + anneal path; when positive
    /// it replaces both the flat pass and striped refinement, and
    /// `anneal_moves_per_cell` becomes the refinement budget.
    pub cluster_gates: usize,
}

/// DFT options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Number of scan chains.
    pub chains: usize,
    /// Reorder chains from placement (Rossi's complaint when absent).
    pub placement_aware_reorder: bool,
}

/// Power options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerOptions {
    /// Insert clock gates with this group size (0 = off).
    pub clock_gating_group: usize,
    /// Automatic decap insertion against this droop limit in mV
    /// (`None` = off).
    pub decap_droop_limit_mv: Option<f64>,
}

/// The complete flow configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Preset name (for reports).
    pub name: String,
    /// Target node.
    pub node: Node,
    /// Library to map onto.
    pub library: LibraryChoice,
    /// Synthesis preset.
    pub synthesis: SynthesisEffort,
    /// Mapping objective.
    pub map_goal: MapGoal,
    /// AIG rewrite passes in the advanced synthesis script (the
    /// balance–rewriteⁿ–balance recipe; ignored by the 2006 baseline).
    /// QoR-relevant, so it folds into the config fingerprint — and it is
    /// the canonical "small edit" of the incremental demo: changing it
    /// invalidates the synthesis *stage* entry while the per-pass sub-stage
    /// entries of the unchanged prefix still replay from the store.
    pub aig_rewrite_passes: usize,
    /// Core utilization for floorplanning.
    pub utilization: f64,
    /// Placement effort.
    pub place: PlaceEffort,
    /// Router algorithm.
    pub router: RouteAlgorithm,
    /// Metal layers used for routing.
    pub layers: u32,
    /// Rip-up and re-route iterations.
    pub ripup_iterations: usize,
    /// G-cells per side of the routing grid (the resolution congestion is
    /// negotiated at). Larger designs want finer grids; the supervisor's
    /// coarsening recovery still halves from here.
    pub route_grid_cells: u32,
    /// Bounded-memory routing window: `0` (the default) lets every maze
    /// search materialize the full grid, the classic behaviour. When
    /// positive, each search is confined to its connection's bounding box
    /// expanded by this many g-cells — per-search scratch becomes
    /// proportional to the connection instead of the grid area, which is
    /// how the scale tier routes without a dense grid. QoR-relevant (it
    /// changes detour room), so it folds into the config fingerprint; still
    /// bit-identical at any thread count.
    pub route_window_margin: u32,
    /// Region side length for the region-partitioned router: `0` (the
    /// default) keeps the legacy globally-batched passes; when positive
    /// (requires a positive [`route_window_margin`](Self::route_window_margin)),
    /// the routing grid is tiled into regions this many g-cells on a side
    /// and workers search-and-commit region-interior connections against
    /// private overlays, negotiating only seam-crossing connections — the
    /// near-linear scaling mode of the scale tier. QoR-relevant (region
    /// mode orders connections congestion-aware and rips up in canonical
    /// order), so it folds into the config fingerprint; the partition is
    /// a pure function of grid dims and this knob, so outcomes stay
    /// bit-identical at any thread count *and* any region size.
    pub route_region_size: u32,
    /// Scan insertion (None = no DFT).
    pub scan: Option<ScanOptions>,
    /// Power techniques.
    pub power: PowerOptions,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Formally verify the mapped netlist against the input design (BDD
    /// equivalence check with simulation fallback).
    pub verify_synthesis: bool,
    /// RNG seed for all stochastic stages.
    pub seed: u64,
    /// Worker threads for every parallel kernel — partitioned placement,
    /// batched routing, fault simulation (`0` = all available cores). The
    /// deterministic parallel layer (`eda-par`) guarantees every QoR output
    /// is bit-identical for any value of this knob — including the
    /// deterministic section of [`FlowReport::telemetry`], which records
    /// worker counts and wall clocks only in its separate `wall` section.
    ///
    /// [`FlowReport::telemetry`]: crate::report::FlowReport::telemetry
    pub threads: usize,
    /// Directory for flow checkpoints (`None` = no checkpointing). After
    /// every completed stage the supervisor serializes the full flow state
    /// (netlist, placement, per-stage artifacts) to
    /// `<checkpoint_dir>/<design>-<config fingerprint>.flowck`, so a killed
    /// flow can resume. The fingerprint in the file name keeps concurrent
    /// flows that share a directory and a design name — but differ in seed,
    /// node, or effort — from clobbering each other's checkpoints.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume from the checkpoint in [`checkpoint_dir`](Self::checkpoint_dir)
    /// if one exists and its config fingerprint matches; the flow then
    /// restarts from the first incomplete stage and its QoR is bit-identical
    /// to an uninterrupted run. A fingerprint mismatch is a hard error; a
    /// missing checkpoint silently falls back to a fresh run.
    pub resume: bool,
    /// **Deprecated shim** — directory form of the flow store location.
    /// `Some(dir)` behaves as a [`store`](Self::store) of
    /// `StoreConfig::at(dir.join("flow.store"))` with default size and
    /// eviction; an explicit `store` wins when both are set (see
    /// [`effective_store`](Self::effective_store)). Kept so struct-literal
    /// and builder call sites from the directory-cache era keep compiling;
    /// new code should set `store`.
    pub cache_dir: Option<PathBuf>,
    /// The persistent flow store (`None` = no caching, no provenance).
    /// One schema'd append-friendly file holding the content-addressed
    /// stage cache (keyed by `(stage kind, per-stage config fingerprint,
    /// pre-stage state hash)` — a hit replays the stored post-stage state
    /// bit-identically), the sub-stage cache (per-AIG-pass and per-net
    /// entries that survive edits which invalidate a whole stage), and the
    /// QoR provenance tables `experiments query` reads. Hits/misses/errors
    /// land in the telemetry metric registry (`cache.hits`, `cache.misses`,
    /// `cache.errors`, `cache.evicted_miss`, `cache.substage_hits`,
    /// `cache.substage_misses`) and tag the stage spans; corrupt or evicted
    /// entries silently fall back to recompute. Ignored while a
    /// [`fault_plan`](Self::fault_plan) is active — injected faults must
    /// exercise the real stage bodies, not replay cached results. Excluded
    /// from the config fingerprint: where results are cached cannot change
    /// what they are.
    pub store: Option<StoreConfig>,
    /// Deterministic fault-injection plan (`None` = no injection). Faults
    /// are keyed on `(stage name, invocation count)`, so an injected plan
    /// reproduces identically at any thread count.
    pub fault_plan: Option<FaultPlan>,
    /// Per-stage attempt caps and wall-clock soft deadlines. The default is
    /// 2 attempts per stage with no deadline, which keeps flows fully
    /// deterministic.
    pub budgets: StageBudgets,
    /// Flow-level wall-clock deadline in seconds (`None` = no deadline).
    /// Checked at every stage boundary: once the flow has run longer than
    /// this, the next stage surfaces a typed
    /// [`FlowError::DeadlineExceeded`](crate::flow::FlowError::DeadlineExceeded)
    /// carrying the partial state — a running attempt is never interrupted,
    /// so the work a worker did stays deterministic and checkpointable.
    /// Excluded from the config fingerprint, like `budgets` and
    /// `fault_plan`: it cannot change the QoR of a flow that completes.
    pub deadline_s: Option<f64>,
}

impl Default for FlowConfig {
    /// Modern single-run defaults: the advanced-2016 knob set at N28 with no
    /// checkpointing, caching, or fault injection. Struct-literal updates
    /// (`FlowConfig { seed: 7, ..FlowConfig::default() }`) therefore keep
    /// compiling as fields are added.
    fn default() -> FlowConfig {
        FlowConfig {
            name: "custom".into(),
            node: Node::N28,
            library: LibraryChoice::Generic,
            synthesis: SynthesisEffort::Advanced2016,
            map_goal: MapGoal::Area,
            aig_rewrite_passes: DEFAULT_REWRITE_PASSES,
            utilization: 0.7,
            place: PlaceEffort {
                global_iterations: 10,
                anneal_moves_per_cell: 40,
                stripes: 4,
                cluster_gates: 0,
            },
            router: RouteAlgorithm::LineSearch,
            layers: Node::N28.spec().typical_metal_layers,
            ripup_iterations: 6,
            route_grid_cells: 32,
            route_window_margin: 0,
            route_region_size: 0,
            scan: Some(ScanOptions { chains: 2, placement_aware_reorder: true }),
            power: PowerOptions { clock_gating_group: 8, decap_droop_limit_mv: Some(50.0) },
            clock_mhz: 200.0,
            verify_synthesis: true,
            seed: 1,
            threads: 0,
            checkpoint_dir: None,
            resume: false,
            cache_dir: None,
            store: None,
            fault_plan: None,
            budgets: StageBudgets::default(),
            deadline_s: None,
        }
    }
}

/// A knob combination [`FlowConfigBuilder::build`] refuses to produce.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The config name is empty.
    EmptyName,
    /// Core utilization must lie in `(0, 1]`.
    Utilization(f64),
    /// At least one metal layer is required for routing.
    NoLayers,
    /// The clock frequency must be finite and positive.
    ClockMhz(f64),
    /// Scan insertion was requested with zero chains.
    NoScanChains,
    /// The routing grid needs at least 2 g-cells per side.
    RouteGrid(u32),
    /// Region-partitioned routing was requested without a bounded search
    /// window (the seam protocol needs windows to bound each connection's
    /// demand footprint).
    RegionWithoutWindow(u32),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyName => write!(f, "flow config name must not be empty"),
            ConfigError::Utilization(u) => {
                write!(f, "core utilization must be in (0, 1], got {u}")
            }
            ConfigError::NoLayers => write!(f, "routing needs at least one metal layer"),
            ConfigError::ClockMhz(mhz) => {
                write!(f, "clock frequency must be finite and positive, got {mhz} MHz")
            }
            ConfigError::NoScanChains => {
                write!(f, "scan insertion was requested with zero chains")
            }
            ConfigError::RouteGrid(cells) => {
                write!(f, "routing grid needs at least 2 g-cells per side, got {cells}")
            }
            ConfigError::RegionWithoutWindow(size) => {
                write!(
                    f,
                    "region-partitioned routing (region size {size}) requires a \
                     positive route window margin"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Typed builder for [`FlowConfig`], validating at [`build`](Self::build).
///
/// Starts from [`FlowConfig::default`] (the modern knob set), so a builder
/// only names the knobs it changes. `layers` tracks the target node unless
/// set explicitly.
///
/// # Examples
///
/// ```
/// use eda_core::{ConfigError, FlowConfig};
/// use eda_tech::Node;
///
/// let cfg = FlowConfig::builder()
///     .name("nightly")
///     .node(Node::N10)
///     .threads(4)
///     .cache_dir("/tmp/eda-cache")
///     .build()?;
/// assert_eq!(cfg.layers, Node::N10.spec().typical_metal_layers);
///
/// let err = FlowConfig::builder().utilization(1.5).build();
/// assert_eq!(err, Err(ConfigError::Utilization(1.5)));
/// # Ok::<(), ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FlowConfigBuilder {
    cfg: FlowConfig,
    /// Explicit layer override; `None` resolves from the node at build time.
    layers: Option<u32>,
}

impl FlowConfigBuilder {
    /// Preset name (for reports).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Target node. Also re-resolves the default metal-layer count unless
    /// [`layers`](Self::layers) was set explicitly.
    pub fn node(mut self, node: Node) -> Self {
        self.cfg.node = node;
        self
    }

    /// Library to map onto.
    pub fn library(mut self, library: LibraryChoice) -> Self {
        self.cfg.library = library;
        self
    }

    /// Synthesis preset.
    pub fn synthesis(mut self, synthesis: SynthesisEffort) -> Self {
        self.cfg.synthesis = synthesis;
        self
    }

    /// Mapping objective.
    pub fn map_goal(mut self, map_goal: MapGoal) -> Self {
        self.cfg.map_goal = map_goal;
        self
    }

    /// AIG rewrite passes in the advanced synthesis script.
    pub fn aig_rewrite_passes(mut self, passes: usize) -> Self {
        self.cfg.aig_rewrite_passes = passes;
        self
    }

    /// Core utilization for floorplanning; must be in `(0, 1]`.
    pub fn utilization(mut self, utilization: f64) -> Self {
        self.cfg.utilization = utilization;
        self
    }

    /// Placement effort.
    pub fn place(mut self, place: PlaceEffort) -> Self {
        self.cfg.place = place;
        self
    }

    /// Router algorithm.
    pub fn router(mut self, router: RouteAlgorithm) -> Self {
        self.cfg.router = router;
        self
    }

    /// Metal layers used for routing (defaults to the node's typical stack).
    pub fn layers(mut self, layers: u32) -> Self {
        self.layers = Some(layers);
        self
    }

    /// Rip-up and re-route iterations.
    pub fn ripup_iterations(mut self, iterations: usize) -> Self {
        self.cfg.ripup_iterations = iterations;
        self
    }

    /// G-cells per side of the routing grid; must be at least 2.
    pub fn route_grid_cells(mut self, cells: u32) -> Self {
        self.cfg.route_grid_cells = cells;
        self
    }

    /// Bounded-memory routing window margin in g-cells (`0` = full-grid
    /// searches).
    pub fn route_window_margin(mut self, margin: u32) -> Self {
        self.cfg.route_window_margin = margin;
        self
    }

    /// Region side length for the region-partitioned router (`0` = legacy
    /// batched passes); requires a positive window margin.
    pub fn route_region_size(mut self, size: u32) -> Self {
        self.cfg.route_region_size = size;
        self
    }

    /// Scan insertion (`None` = no DFT).
    pub fn scan(mut self, scan: Option<ScanOptions>) -> Self {
        self.cfg.scan = scan;
        self
    }

    /// Power techniques.
    pub fn power(mut self, power: PowerOptions) -> Self {
        self.cfg.power = power;
        self
    }

    /// Clock frequency in MHz; must be finite and positive.
    pub fn clock_mhz(mut self, clock_mhz: f64) -> Self {
        self.cfg.clock_mhz = clock_mhz;
        self
    }

    /// Formally verify the mapped netlist against the input design.
    pub fn verify_synthesis(mut self, verify: bool) -> Self {
        self.cfg.verify_synthesis = verify;
        self
    }

    /// RNG seed for all stochastic stages.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Worker threads for every parallel kernel (`0` = all cores); never
    /// changes QoR.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads;
        self
    }

    /// Directory for flow checkpoints.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resume from an existing checkpoint in the checkpoint directory.
    pub fn resume(mut self, resume: bool) -> Self {
        self.cfg.resume = resume;
        self
    }

    /// Directory form of the flow store location.
    ///
    /// Deprecated shim: equivalent to
    /// `.store(StoreConfig::at(dir.join("flow.store")))` with default size
    /// and eviction. Prefer [`store`](Self::store), which also exposes
    /// `max_bytes`, the eviction policy, and the provenance switch.
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cfg.cache_dir = Some(dir.into());
        self
    }

    /// The persistent flow store: stage cache, sub-stage cache, and QoR
    /// provenance in one size-bounded file.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.cfg.store = Some(store);
        self
    }

    /// Deterministic fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.cfg.fault_plan = Some(plan);
        self
    }

    /// Per-stage attempt caps and soft deadlines.
    pub fn budgets(mut self, budgets: StageBudgets) -> Self {
        self.cfg.budgets = budgets;
        self
    }

    /// Flow-level wall-clock deadline in seconds, enforced at stage
    /// boundaries.
    pub fn deadline_s(mut self, deadline_s: f64) -> Self {
        self.cfg.deadline_s = Some(deadline_s);
        self
    }

    /// Validates the knob combination and produces the config.
    pub fn build(self) -> Result<FlowConfig, ConfigError> {
        let mut cfg = self.cfg;
        cfg.layers = self.layers.unwrap_or_else(|| cfg.node.spec().typical_metal_layers);
        if cfg.name.is_empty() {
            return Err(ConfigError::EmptyName);
        }
        if !(cfg.utilization > 0.0 && cfg.utilization <= 1.0) {
            return Err(ConfigError::Utilization(cfg.utilization));
        }
        if cfg.layers == 0 {
            return Err(ConfigError::NoLayers);
        }
        if !(cfg.clock_mhz.is_finite() && cfg.clock_mhz > 0.0) {
            return Err(ConfigError::ClockMhz(cfg.clock_mhz));
        }
        if matches!(cfg.scan, Some(ScanOptions { chains: 0, .. })) {
            return Err(ConfigError::NoScanChains);
        }
        if cfg.route_grid_cells < 2 {
            return Err(ConfigError::RouteGrid(cfg.route_grid_cells));
        }
        if cfg.route_region_size > 0 && cfg.route_window_margin == 0 {
            return Err(ConfigError::RegionWithoutWindow(cfg.route_region_size));
        }
        Ok(cfg)
    }
}

impl FlowConfig {
    /// A typed builder seeded with [`FlowConfig::default`]; knobs are
    /// validated together at [`FlowConfigBuilder::build`].
    pub fn builder() -> FlowConfigBuilder {
        FlowConfigBuilder { cfg: FlowConfig::default(), layers: None }
    }

    /// Resolves the flow-store configuration this flow should run with: an
    /// explicit [`store`](Self::store) wins, otherwise the deprecated
    /// [`cache_dir`](Self::cache_dir) shim maps to a default-sized store at
    /// `<cache_dir>/flow.store`, otherwise `None` (no caching).
    pub fn effective_store(&self) -> Option<StoreConfig> {
        self.store.clone().or_else(|| {
            self.cache_dir.as_ref().map(|dir| StoreConfig::at(dir.join("flow.store")))
        })
    }

    /// The decade-old baseline: naive synthesis onto the poor library, BFS
    /// routing without negotiation, no design-for-power, no placement-aware
    /// scan.
    pub fn basic_2006(node: Node) -> FlowConfig {
        FlowConfig::builder()
            .name("basic-2006")
            .node(node)
            .library(LibraryChoice::NandInv2006)
            .synthesis(SynthesisEffort::Baseline2006)
            .utilization(0.6)
            .place(PlaceEffort {
                global_iterations: 4,
                anneal_moves_per_cell: 10,
                stripes: 1,
                cluster_gates: 0,
            })
            .router(RouteAlgorithm::LeeBfs)
            .ripup_iterations(0)
            .scan(Some(ScanOptions { chains: 1, placement_aware_reorder: false }))
            .power(PowerOptions { clock_gating_group: 0, decap_droop_limit_mv: None })
            .verify_synthesis(false)
            .threads(1)
            .build()
            .expect("the 2006 preset is statically valid")
    }

    /// The advanced 2016 flow: optimized synthesis onto the rich library,
    /// negotiated line-search routing, clock gating, decaps, and
    /// placement-aware scan reordering.
    pub fn advanced_2016(node: Node) -> FlowConfig {
        FlowConfig::builder()
            .name("advanced-2016")
            .node(node)
            .build()
            .expect("the 2016 preset is statically valid")
    }

    /// The memory-lean scale-tier preset: the advanced flow retargeted at
    /// 10⁵–10⁶-instance mesh fabrics (see
    /// [`scale_mesh`](eda_netlist::generate::scale_mesh)).
    ///
    /// Placement goes multilevel (cluster → coarse-place → refine), routing
    /// negotiates on a finer grid but confines every maze search to its
    /// connection's bounding box plus an 8-g-cell margin, and the two
    /// verification passes whose cost is super-linear in design size — the
    /// BDD/simulation equivalence check and random-pattern fault
    /// simulation (with the scan stages that only exist to feed it) — are
    /// off. Every stage that remains is near-linear in instances, which is
    /// what lets the same 11-stage supervised flow finish at a million
    /// gates. Still bit-identical at any thread count.
    ///
    /// `instances` is the expected design size and only sizes the routing
    /// grid. Per-edge track capacity is a constant of the rule deck, so
    /// total capacity grows as `grid²` while demand (tile-local wirelength
    /// measured in g-cells) grows as `grid·√instances`: holding the grid
    /// fixed would saturate it, and *coarsening* — the dense flow's escape
    /// hatch — concentrates the same wires onto fewer edges and makes scale
    /// congestion strictly worse. Scaling the grid side as √instances keeps
    /// edge utilization roughly constant from 10⁴ to 10⁶.
    pub fn scale_2016(node: Node, instances: usize) -> FlowConfig {
        // ~3.25·√n: with this family of meshes the constant pins steady-state
        // edge utilization (demand/capacity ∝ 1/constant) near 70%, enough
        // headroom for negotiation to close the remaining hotspots. Floor
        // keeps tiny smoke designs on a sane grid.
        let grid = ((instances as f64).sqrt() * 3.25).round().max(32.0) as u32;
        FlowConfig::builder()
            .name("scale-2016")
            .node(node)
            .place(PlaceEffort {
                global_iterations: 8,
                anneal_moves_per_cell: 1,
                stripes: 1,
                cluster_gates: 64,
            })
            .route_grid_cells(grid)
            .route_window_margin(8)
            // ~8 regions per side (≥2× the window margin so most
            // connections are region-interior): enough parallel grain for
            // any sane worker count while keeping seam fraction low.
            .route_region_size((grid / 8).max(16))
            .ripup_iterations(5)
            .scan(None)
            .verify_synthesis(false)
            .build()
            .expect("the scale preset is statically valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let b = FlowConfig::basic_2006(Node::N90);
        let a = FlowConfig::advanced_2016(Node::N90);
        assert_ne!(b.synthesis, a.synthesis);
        assert_ne!(b.router, a.router);
        assert_eq!(b.power.clock_gating_group, 0);
        assert!(a.power.clock_gating_group > 0);
        assert!(a.place.stripes > b.place.stripes);
        // 2006 ran single-threaded; 2016 uses every core (0 = auto).
        assert_eq!(b.threads, 1);
        assert_eq!(a.threads, 0);
    }

    #[test]
    fn builder_defaults_match_the_advanced_preset() {
        // The presets are now built on the builder; the only deltas from
        // `FlowConfig::default()` are the name and the node-derived layers.
        let mut dflt = FlowConfig::default();
        let adv = FlowConfig::advanced_2016(Node::N10);
        dflt.name = adv.name.clone();
        dflt.node = adv.node;
        dflt.layers = adv.layers;
        assert_eq!(dflt, adv);
    }

    #[test]
    fn scale_preset_is_memory_lean() {
        let s = FlowConfig::scale_2016(Node::N28, 100_000);
        assert!(s.place.cluster_gates > 0, "scale places multilevel");
        assert_eq!(s.place.stripes, 1);
        assert!(s.route_window_margin > 0, "scale routes in bounded windows");
        assert!(s.route_region_size > 0, "scale routes region-partitioned");
        assert!(
            s.route_region_size >= 2 * s.route_window_margin,
            "regions must dwarf the window margin or everything is a seam"
        );
        assert!(s.route_grid_cells > FlowConfig::default().route_grid_cells);
        assert!(!s.verify_synthesis && s.scan.is_none(), "super-linear passes are off");
    }

    #[test]
    fn builder_resolves_layers_from_the_node() {
        let cfg = FlowConfig::builder().node(Node::N10).build().unwrap();
        assert_eq!(cfg.layers, Node::N10.spec().typical_metal_layers);
        let cfg = FlowConfig::builder().node(Node::N10).layers(3).build().unwrap();
        assert_eq!(cfg.layers, 3);
    }

    #[test]
    fn builder_rejects_invalid_knobs() {
        assert_eq!(FlowConfig::builder().name("").build(), Err(ConfigError::EmptyName));
        assert_eq!(
            FlowConfig::builder().utilization(0.0).build(),
            Err(ConfigError::Utilization(0.0))
        );
        assert_eq!(
            FlowConfig::builder().utilization(1.01).build(),
            Err(ConfigError::Utilization(1.01))
        );
        assert_eq!(FlowConfig::builder().layers(0).build(), Err(ConfigError::NoLayers));
        assert!(matches!(
            FlowConfig::builder().clock_mhz(f64::NAN).build(),
            Err(ConfigError::ClockMhz(_))
        ));
        assert_eq!(
            FlowConfig::builder().clock_mhz(-1.0).build(),
            Err(ConfigError::ClockMhz(-1.0))
        );
        assert_eq!(
            FlowConfig::builder()
                .scan(Some(ScanOptions { chains: 0, placement_aware_reorder: true }))
                .build(),
            Err(ConfigError::NoScanChains)
        );
        assert_eq!(
            FlowConfig::builder().route_grid_cells(1).build(),
            Err(ConfigError::RouteGrid(1))
        );
        assert_eq!(
            FlowConfig::builder().route_region_size(16).build(),
            Err(ConfigError::RegionWithoutWindow(16))
        );
        assert!(FlowConfig::builder()
            .route_region_size(16)
            .route_window_margin(4)
            .build()
            .is_ok());
    }

    #[test]
    fn struct_literal_updates_keep_compiling() {
        // The documented migration path for pre-builder call sites.
        let cfg = FlowConfig { seed: 7, threads: 2, ..FlowConfig::default() };
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.library, LibraryChoice::Generic);
    }

    #[test]
    fn library_choices_resolve() {
        assert!(LibraryChoice::Generic.library().find("XOR2_X1").is_some());
        assert!(LibraryChoice::NandInv2006.library().find("XOR2_X1").is_none());
        assert!(LibraryChoice::ControlledPolarity.library().find("XOR2_P").is_some());
    }
}
