//! Layout geometry: rectangular features and synthetic layout generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An axis-aligned rectangle in nanometers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x0: f64,
    /// Bottom edge.
    pub y0: f64,
    /// Right edge.
    pub x1: f64,
    /// Top edge.
    pub y1: f64,
}

impl Rect {
    /// Creates a rectangle; coordinates are normalized so `x0 <= x1`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// Width in nm.
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Height in nm.
    pub fn height(&self) -> f64 {
        self.y1 - self.y0
    }

    /// Euclidean gap between rectangle boundaries (0 if they touch/overlap).
    pub fn gap(&self, other: &Rect) -> f64 {
        let dx = (other.x0 - self.x1).max(self.x0 - other.x1).max(0.0);
        let dy = (other.y0 - self.y1).max(self.y0 - other.y1).max(0.0);
        (dx * dx + dy * dy).sqrt()
    }

    /// Splits the rectangle in half along its long axis (a stitch cut),
    /// leaving a small overlap for the stitch.
    pub fn split(&self, overlap_nm: f64) -> (Rect, Rect) {
        if self.width() >= self.height() {
            let mid = (self.x0 + self.x1) / 2.0;
            (
                Rect::new(self.x0, self.y0, mid + overlap_nm / 2.0, self.y1),
                Rect::new(mid - overlap_nm / 2.0, self.y0, self.x1, self.y1),
            )
        } else {
            let mid = (self.y0 + self.y1) / 2.0;
            (
                Rect::new(self.x0, self.y0, self.x1, mid + overlap_nm / 2.0),
                Rect::new(self.x0, mid - overlap_nm / 2.0, self.x1, self.y1),
            )
        }
    }
}

/// A single-layer layout: a bag of features.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Layout {
    /// Features on the layer.
    pub features: Vec<Rect>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Layout {
        Layout::default()
    }

    /// A 1-D array of `n` parallel vertical lines at the given pitch
    /// (line width = pitch/2, classic 50 % duty line/space).
    ///
    /// # Panics
    ///
    /// Panics if `pitch_nm <= 0` or `n == 0`.
    pub fn line_array(n: usize, pitch_nm: f64, length_nm: f64) -> Layout {
        assert!(pitch_nm > 0.0 && n > 0, "need positive pitch and line count");
        let w = pitch_nm / 2.0;
        Layout {
            features: (0..n)
                .map(|i| {
                    let x = i as f64 * pitch_nm;
                    Rect::new(x, 0.0, x + w, length_nm)
                })
                .collect(),
        }
    }

    /// A 2-D contact/via array of `n × n` squares at the given pitch.
    ///
    /// # Panics
    ///
    /// Panics if `pitch_nm <= 0` or `n == 0`.
    pub fn contact_array(n: usize, pitch_nm: f64) -> Layout {
        assert!(pitch_nm > 0.0 && n > 0, "need positive pitch and count");
        let w = pitch_nm / 2.0;
        let mut features = Vec::with_capacity(n * n);
        for j in 0..n {
            for i in 0..n {
                let x = i as f64 * pitch_nm;
                let y = j as f64 * pitch_nm;
                features.push(Rect::new(x, y, x + w, y + w));
            }
        }
        Layout { features }
    }

    /// A seeded random routing-like layout: horizontal and vertical wire
    /// segments of random length on a track grid.
    ///
    /// # Panics
    ///
    /// Panics if `pitch_nm <= 0`.
    pub fn random_wires(count: usize, pitch_nm: f64, region_nm: f64, seed: u64) -> Layout {
        assert!(pitch_nm > 0.0, "need positive pitch");
        let mut rng = StdRng::seed_from_u64(seed);
        let tracks = (region_nm / pitch_nm).max(1.0) as usize;
        let w = pitch_nm / 2.0;
        let mut features = Vec::with_capacity(count);
        for _ in 0..count {
            let horizontal = rng.gen_bool(0.5);
            let track = rng.gen_range(0..tracks) as f64 * pitch_nm;
            let start = rng.gen::<f64>() * region_nm * 0.6;
            let len = pitch_nm * (2.0 + rng.gen::<f64>() * 8.0);
            if horizontal {
                features.push(Rect::new(start, track, (start + len).min(region_nm), track + w));
            } else {
                features.push(Rect::new(track, start, track + w, (start + len).min(region_nm)));
            }
        }
        Layout { features }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_of_separated_rects() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(20.0, 0.0, 30.0, 10.0);
        assert_eq!(a.gap(&b), 10.0);
        assert_eq!(b.gap(&a), 10.0);
        // Diagonal gap is Euclidean.
        let c = Rect::new(13.0, 14.0, 20.0, 20.0);
        assert!((a.gap(&c) - 5.0).abs() < 1e-9);
        // Overlap -> 0.
        let d = Rect::new(5.0, 5.0, 15.0, 15.0);
        assert_eq!(a.gap(&d), 0.0);
    }

    #[test]
    fn line_array_pitch_checks() {
        let l = Layout::line_array(4, 100.0, 1000.0);
        assert_eq!(l.len(), 4);
        let gap = l.features[0].gap(&l.features[1]);
        assert!((gap - 50.0).abs() < 1e-9, "space = pitch/2");
    }

    #[test]
    fn contact_array_size() {
        let l = Layout::contact_array(5, 80.0);
        assert_eq!(l.len(), 25);
    }

    #[test]
    fn split_leaves_overlap() {
        let r = Rect::new(0.0, 0.0, 100.0, 10.0);
        let (a, b) = r.split(6.0);
        assert!(a.x1 > b.x0, "halves must overlap for the stitch");
        assert!((a.x1 - b.x0 - 6.0).abs() < 1e-9);
        assert_eq!(a.y0, r.y0);
        assert_eq!(b.x1, r.x1);
    }

    #[test]
    fn random_wires_deterministic() {
        let a = Layout::random_wires(50, 64.0, 4000.0, 7);
        let b = Layout::random_wires(50, 64.0, 4000.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn rect_normalization() {
        let r = Rect::new(10.0, 20.0, 0.0, 5.0);
        assert_eq!(r.x0, 0.0);
        assert_eq!(r.y1, 20.0);
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 15.0);
    }
}
