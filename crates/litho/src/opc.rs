//! Model-based optical proximity correction (OPC).
//!
//! Iteratively biases mask edges against the simulated aerial image until
//! the printed contours land on target — Sawicki's "computational
//! lithography" (claim C15). Rule-based pre-bias is applied first (a fixed
//! per-edge bias), then model-based iterations refine each edge
//! independently.

use crate::aerial::{edge_placement_errors_threaded, rms, OpticalModel};

/// OPC configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpcConfig {
    /// Model-based iterations.
    pub iterations: usize,
    /// Feedback gain on the edge correction (0 < gain ≤ 1).
    pub gain: f64,
    /// Rule-based pre-bias per edge in nm (applied outward).
    pub prebias_nm: f64,
    /// Worker threads for the aerial-image convolution and per-fragment
    /// EPE/correction loops (`0` = all cores). Results are bit-identical for
    /// any value.
    pub threads: usize,
}

impl Default for OpcConfig {
    fn default() -> Self {
        OpcConfig { iterations: 8, gain: 0.6, prebias_nm: 2.0, threads: 1 }
    }
}

impl OpcConfig {
    /// The backoff retry configuration: half the correction step (gain) and
    /// twice the iterations. Used by the flow supervisor when a first OPC
    /// pass fails to converge — a large gain can oscillate around the target
    /// edge, and halving it trades speed for stability.
    pub fn backoff(&self) -> OpcConfig {
        OpcConfig { gain: self.gain / 2.0, iterations: self.iterations * 2, ..*self }
    }
}

/// Result of an OPC run.
#[derive(Debug, Clone, PartialEq)]
pub struct OpcOutcome {
    /// The corrected mask intervals.
    pub mask: Vec<(f64, f64)>,
    /// RMS EPE after each iteration (index 0 = before any model-based
    /// correction, i.e. after pre-bias only).
    pub rms_epe_history: Vec<f64>,
    /// Fragments whose mask interval changed (bitwise) across all
    /// correction iterations — the provenance count of edge moves. A pure
    /// function of the target and config, identical at any thread count.
    pub fragment_moves: usize,
}

impl OpcOutcome {
    /// Final RMS EPE in nm.
    pub fn final_rms_epe(&self) -> f64 {
        *self.rms_epe_history.last().expect("history has the initial entry")
    }

    /// Whether the correction converged below `rms_epe_limit_nm`.
    pub fn converged(&self, rms_epe_limit_nm: f64) -> bool {
        self.final_rms_epe() <= rms_epe_limit_nm
    }
}

/// Runs OPC for a 1-D target pattern.
///
/// # Panics
///
/// Panics if `target` is empty or gain is outside `(0, 1]`.
pub fn run_opc(
    model: &OpticalModel,
    target: &[(f64, f64)],
    extent_nm: f64,
    cfg: &OpcConfig,
) -> OpcOutcome {
    run_opc_stats(model, target, extent_nm, cfg).0
}

/// [`run_opc`] returning the accumulated parallel-execution record of every
/// convolution and fragment dispatch (for scaling reports).
pub fn run_opc_stats(
    model: &OpticalModel,
    target: &[(f64, f64)],
    extent_nm: f64,
    cfg: &OpcConfig,
) -> (OpcOutcome, eda_par::ParStats) {
    assert!(!target.is_empty(), "OPC needs a target pattern");
    assert!(cfg.gain > 0.0 && cfg.gain <= 1.0, "gain must be in (0, 1]");
    let mut stats = eda_par::ParStats::empty();
    // Rule-based pre-bias: expand every feature.
    let mut mask: Vec<(f64, f64)> = target
        .iter()
        .map(|&(a, b)| (a - cfg.prebias_nm, b + cfg.prebias_nm))
        .collect();
    let mut history = Vec::with_capacity(cfg.iterations + 1);
    let measure = |mask: &[(f64, f64)], stats: &mut eda_par::ParStats| {
        let (printed, s) = model.print_threaded(mask, extent_nm, cfg.threads);
        stats.absorb(&s);
        rms(&edge_placement_errors_threaded(target, &printed, cfg.threads))
    };
    history.push(measure(&mask, &mut stats));
    let mut fragment_moves = 0usize;
    for _ in 0..cfg.iterations {
        let (printed, s) = model.print_threaded(&mask, extent_nm, cfg.threads);
        stats.absorb(&s);
        // Per-edge correction: move each mask edge opposite its EPE. Each
        // fragment reads only its own mask interval plus the shared printed
        // contours, so fragments are independent and the corrected mask is
        // bit-identical for any thread count.
        let new_mask = eda_par::par_map(cfg.threads, target, |fi, &(t0, t1)| {
            // Printed edge nearest each target edge.
            let p0 = printed
                .iter()
                .map(|&(p, _)| p)
                .min_by(|a, b| {
                    (a - t0).abs().partial_cmp(&(b - t0).abs()).expect("finite")
                });
            let p1 = printed
                .iter()
                .map(|&(_, p)| p)
                .min_by(|a, b| {
                    (a - t1).abs().partial_cmp(&(b - t1).abs()).expect("finite")
                });
            let (m0, m1) = mask[fi];
            // Signed edge errors (printed minus target), clamped; a vanished
            // feature gets a fixed outward widening instead.
            let (e0, e1) = match (p0, p1) {
                (Some(p0), Some(p1)) if (p1 - p0) > 1.0 => {
                    ((p0 - t0).clamp(-20.0, 20.0), (p1 - t1).clamp(-20.0, 20.0))
                }
                _ => (2.0, -2.0),
            };
            // An edge printing too far right (e > 0) moves its mask edge left.
            let mut a = m0 - cfg.gain * e0;
            let mut b = m1 - cfg.gain * e1;
            if b - a < 2.0 {
                let c = (a + b) / 2.0;
                a = c - 1.0;
                b = c + 1.0;
            }
            (a, b)
        });
        fragment_moves += new_mask
            .iter()
            .zip(&mask)
            .filter(|(n, o)| n.0.to_bits() != o.0.to_bits() || n.1.to_bits() != o.1.to_bits())
            .count();
        mask = new_mask;
        history.push(measure(&mask, &mut stats));
    }
    (OpcOutcome { mask, rms_epe_history: history, fragment_moves }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_target(pitch: f64, lines: usize, offset: f64) -> (Vec<(f64, f64)>, f64) {
        let target: Vec<(f64, f64)> = (0..lines)
            .map(|i| {
                let x = offset + i as f64 * pitch;
                (x, x + pitch / 2.0)
            })
            .collect();
        let extent = offset * 2.0 + pitch * lines as f64;
        (target, extent)
    }

    #[test]
    fn opc_reduces_epe_on_printable_pattern() {
        let model = OpticalModel::default();
        let (target, extent) = dense_target(110.0, 8, 300.0);
        let out = run_opc(&model, &target, extent, &OpcConfig::default());
        let first = out.rms_epe_history[0];
        let last = out.final_rms_epe();
        assert!(
            last < first * 0.6,
            "OPC should cut RMS EPE substantially: {first:.2} -> {last:.2}"
        );
        assert!(last < 4.0, "corrected pattern should print within 4nm, got {last:.2}");
    }

    #[test]
    fn opc_cannot_rescue_sub_resolution_pitch() {
        let model = OpticalModel::default();
        let (target, extent) = dense_target(45.0, 8, 300.0);
        let out = run_opc(&model, &target, extent, &OpcConfig::default());
        assert!(
            out.final_rms_epe() > 8.0,
            "45nm pitch cannot single-expose even with OPC, got {:.2}",
            out.final_rms_epe()
        );
    }

    #[test]
    fn history_length_matches_iterations() {
        let model = OpticalModel::default();
        let (target, extent) = dense_target(130.0, 4, 200.0);
        let cfg = OpcConfig { iterations: 5, ..Default::default() };
        let out = run_opc(&model, &target, extent, &cfg);
        assert_eq!(out.rms_epe_history.len(), 6);
        assert_eq!(out.mask.len(), target.len());
    }

    #[test]
    fn mask_features_never_collapse() {
        let model = OpticalModel::default();
        let (target, extent) = dense_target(70.0, 6, 250.0);
        let out = run_opc(&model, &target, extent, &OpcConfig { iterations: 12, ..Default::default() });
        for &(a, b) in &out.mask {
            assert!(b - a >= 2.0, "mask feature collapsed: ({a}, {b})");
        }
    }

    #[test]
    fn threaded_opc_is_bit_identical() {
        let model = OpticalModel::default();
        let (target, extent) = dense_target(110.0, 10, 300.0);
        let serial = run_opc(&model, &target, extent, &OpcConfig::default());
        for threads in [2, 4, 8] {
            let cfg = OpcConfig { threads, ..Default::default() };
            let (par, stats) = run_opc_stats(&model, &target, extent, &cfg);
            assert_eq!(par.mask.len(), serial.mask.len());
            for ((a0, a1), (b0, b1)) in serial.mask.iter().zip(&par.mask) {
                assert_eq!(a0.to_bits(), b0.to_bits(), "threads={threads}");
                assert_eq!(a1.to_bits(), b1.to_bits(), "threads={threads}");
            }
            for (a, b) in serial.rms_epe_history.iter().zip(&par.rms_epe_history) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
            assert!(stats.total_cpu_s() >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "OPC needs a target")]
    fn empty_target_panics() {
        let model = OpticalModel::default();
        let _ = run_opc(&model, &[], 100.0, &OpcConfig::default());
    }
}
